/**
 * @file
 * A single set-associative cache level: tag array + per-set replacement
 * state. Purely a presence/timing model — data values live in the
 * Machine's memory map, which is sound because the simulated caches are
 * coherent with a single core.
 */

#ifndef HR_CACHE_CACHE_HH
#define HR_CACHE_CACHE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/replacement.hh"
#include "util/types.hh"

namespace hr
{

/** Geometry and policy of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    int numSets = 64;
    int assoc = 8;
    int lineBytes = 64;
    PolicyKind policy = PolicyKind::TreePlru;
    std::uint64_t rngSeed = 1; ///< seed for Random replacement streams

    int sizeBytes() const { return numSets * assoc * lineBytes; }
};

/** Hit/miss counters for one level. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t fills = 0;
    std::uint64_t evictions = 0;

    std::uint64_t accesses() const { return hits + misses; }
};

/**
 * One cache level.
 *
 * lookup()/touch()/fill() are separated so the hierarchy can model
 * fills that land later than their lookup (data-return order), which is
 * the mechanism the reorder racing gadget transmits through.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    const CacheConfig &config() const { return config_; }
    const CacheStats &stats() const { return stats_; }
    void clearStats() { stats_ = CacheStats(); }

    /** Set index for an address. */
    int setIndex(Addr addr) const;

    /** Line-aligned address. */
    Addr lineAddr(Addr addr) const;

    /**
     * Probe without any state update or stats.
     * @return way holding the line, or -1.
     */
    int probe(Addr addr) const;

    /** True if the line is present (no state change). */
    bool contains(Addr addr) const { return probe(addr) >= 0; }

    /**
     * Access for a (potential) hit: updates stats and, on hit,
     * replacement state.
     * @return true on hit.
     */
    bool access(Addr addr);

    /**
     * Install a line, evicting if necessary. Invalid ways fill first;
     * otherwise the policy chooses. Touches the new line.
     * @return evicted line address, if any.
     */
    std::optional<Addr> fill(Addr addr);

    /** Drop a line if present. @return true if it was present. */
    bool invalidate(Addr addr);

    /** Drop everything (keeps replacement objects, resets their state). */
    void flushAll();

    /** Addresses currently resident in the set holding addr. */
    std::vector<Addr> residentsOfSet(Addr addr) const;

    /** Line address currently in the policy's victim way (if valid). */
    std::optional<Addr> evictionCandidate(Addr addr) const;

    /** Replacement-state string of the set holding addr. */
    std::string setStateString(Addr addr) const;

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
    };

    CacheConfig config_;
    CacheStats stats_;
    std::vector<Line> lines_; // numSets * assoc, row-major
    std::vector<std::unique_ptr<ReplacementPolicy>> policy_; // per set

    Line &lineAt(int set, int way);
    const Line &lineAt(int set, int way) const;
    Addr tagOf(Addr addr) const;
    Addr rebuild(Addr tag, int set) const;
};

} // namespace hr

#endif // HR_CACHE_CACHE_HH
