/**
 * @file
 * A single set-associative cache level: tag array + per-set replacement
 * state. Purely a presence/timing model — data values live in the
 * Machine's memory map, which is sound because the simulated caches are
 * coherent with a single core.
 */

#ifndef HR_CACHE_CACHE_HH
#define HR_CACHE_CACHE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/replacement.hh"
#include "util/types.hh"

namespace hr
{

/** Geometry and policy of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    int numSets = 64;
    int assoc = 8;
    int lineBytes = 64;
    PolicyKind policy = PolicyKind::TreePlru;
    std::uint64_t rngSeed = 1; ///< seed for Random replacement streams

    int sizeBytes() const { return numSets * assoc * lineBytes; }
};

/** Hit/miss counters for one level. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t fills = 0;
    std::uint64_t evictions = 0;

    std::uint64_t accesses() const { return hits + misses; }
};

/**
 * One cache level.
 *
 * lookup()/touch()/fill() are separated so the hierarchy can model
 * fills that land later than their lookup (data-return order), which is
 * the mechanism the reorder racing gadget transmits through.
 */
class Cache
{
  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
    };

  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Deep copy of the tag array, replacement state, and stats.
     * Produced by snapshot(), consumed by restore(); move-only.
     */
    class Snapshot
    {
      public:
        Snapshot() = default;
        Snapshot(Snapshot &&) = default;
        Snapshot &operator=(Snapshot &&) = default;

      private:
        friend class Cache;
        std::uint64_t syncId = 0; ///< dirty-tracking identity (see Cache)
        CacheStats stats;
        std::vector<Line> lines;
        std::vector<std::unique_ptr<ReplacementPolicy>> policy;
    };

    const CacheConfig &config() const { return config_; }
    const CacheStats &stats() const { return stats_; }
    void clearStats() { stats_ = CacheStats(); }

    /** Set index for an address. */
    int
    setIndex(Addr addr) const
    {
        return static_cast<int>((addr >> lineShift_) & setMask_);
    }

    /** Line-aligned address. */
    Addr lineAddr(Addr addr) const { return addr & ~lineMask_; }

    /**
     * Probe without any state update or stats.
     * @return way holding the line, or -1.
     */
    int probe(Addr addr) const;

    /** True if the line is present (no state change). */
    bool contains(Addr addr) const { return probe(addr) >= 0; }

    /**
     * Access for a (potential) hit: updates stats and, on hit,
     * replacement state.
     * @return true on hit.
     */
    bool
    access(Addr addr)
    {
        if (accessWay(addr) >= 0)
            return true;
        noteMiss();
        return false;
    }

    /**
     * Single-walk access split: on a hit, counts the hit, updates
     * replacement state, and returns the way; on a miss returns -1
     * WITHOUT counting. Callers decide whether the miss is
     * architectural (noteMiss()) or a refused probe that must leave
     * stats untouched (MSHR-full retry).
     */
    int accessWay(Addr addr);

    /** Record a demand miss (see accessWay). */
    void noteMiss() { ++stats_.misses; }

    /**
     * Install a line, evicting if necessary. Invalid ways fill first;
     * otherwise the policy chooses. Touches the new line.
     * @return evicted line address, if any.
     */
    std::optional<Addr> fill(Addr addr);

    /** Drop a line if present. @return true if it was present. */
    bool invalidate(Addr addr);

    /** Drop everything (keeps replacement objects, resets their state). */
    void flushAll();

    /**
     * Capture the full level state. Also rebases the internal
     * dirty-set tracking, so a later restore() of this snapshot only
     * copies back the sets touched in between (the warm-once /
     * restore-per-trial fast path).
     */
    Snapshot snapshot();

    /**
     * Reset to a snapshotted state. The snapshot must come from a
     * cache with identical geometry and policy kind (panics
     * otherwise); it is not consumed and may be restored any number of
     * times.
     */
    void restore(const Snapshot &snap);

    /**
     * Re-seed per-set replacement randomness as if the cache had been
     * built with config.rngSeed = seed (only Random has a stream).
     * @return true if any set's state changed.
     */
    bool reseedPolicies(std::uint64_t seed);

    /** Addresses currently resident in the set holding addr. */
    std::vector<Addr> residentsOfSet(Addr addr) const;

    /**
     * Behavioral signature of one set: tags/valid bits of every way
     * plus the replacement policy's canonical stateSig(). Equal
     * signatures of the same set over time mean the set will answer
     * all future probes and victim choices identically (see
     * ReplacementPolicy::stateSig for the Random-policy caveat).
     */
    std::uint64_t setSignature(int set) const;

    /** Total random values consumed by per-set policies (Random only). */
    std::uint64_t policyRngDraws() const;

    /** Add @p k times the difference of two stats observations. */
    void
    applyStatsDelta(const CacheStats &from, const CacheStats &to,
                    std::uint64_t k)
    {
        stats_.hits += k * (to.hits - from.hits);
        stats_.misses += k * (to.misses - from.misses);
        stats_.fills += k * (to.fills - from.fills);
        stats_.evictions += k * (to.evictions - from.evictions);
    }

    /** Line address currently in the policy's victim way (if valid). */
    std::optional<Addr> evictionCandidate(Addr addr) const;

    /** Replacement-state string of the set holding addr. */
    std::string setStateString(Addr addr) const;

  private:
    CacheConfig config_;
    CacheStats stats_;
    int lineShift_ = 0;  ///< log2(lineBytes)
    int setShift_ = 0;   ///< log2(numSets)
    int tagShift_ = 0;   ///< lineShift_ + setShift_
    Addr lineMask_ = 0;  ///< lineBytes - 1
    Addr setMask_ = 0;   ///< numSets - 1
    std::vector<Line> lines_; // numSets * assoc, row-major
    std::vector<std::unique_ptr<ReplacementPolicy>> policy_; // per set

    // Dirty-set tracking between snapshot()/restore() sync points.
    // syncBase_ names the snapshot the tracking is relative to (0 =
    // none); allDirty_ disables the fast path conservatively.
    std::uint64_t syncBase_ = 0;
    bool allDirty_ = true;
    std::vector<std::uint8_t> dirtyMask_; // per set
    std::vector<int> dirtySets_;

    void
    markDirty(int set)
    {
        if (allDirty_)
            return;
        if (!dirtyMask_[static_cast<std::size_t>(set)]) {
            dirtyMask_[static_cast<std::size_t>(set)] = 1;
            dirtySets_.push_back(set);
        }
    }

    void resetDirtyTracking(std::uint64_t sync_id);
    void copySetFrom(const Snapshot &snap, int set);

    Line &lineAt(int set, int way);
    const Line &lineAt(int set, int way) const;
    Addr tagOf(Addr addr) const { return addr >> tagShift_; }
    Addr
    rebuild(Addr tag, int set) const
    {
        return ((tag << setShift_) | static_cast<Addr>(set))
               << lineShift_;
    }
};

} // namespace hr

#endif // HR_CACHE_CACHE_HH
