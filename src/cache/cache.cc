#include "cache/cache.hh"

#include "util/log.hh"

namespace hr
{

Cache::Cache(const CacheConfig &config) : config_(config)
{
    fatalIf(config_.numSets <= 0 ||
            (config_.numSets & (config_.numSets - 1)) != 0,
            config_.name + ": numSets must be a positive power of two");
    fatalIf(config_.lineBytes <= 0 ||
            (config_.lineBytes & (config_.lineBytes - 1)) != 0,
            config_.name + ": lineBytes must be a positive power of two");
    fatalIf(config_.assoc <= 0, config_.name + ": assoc must be positive");

    lines_.resize(static_cast<std::size_t>(config_.numSets) *
                  static_cast<std::size_t>(config_.assoc));
    policy_.reserve(static_cast<std::size_t>(config_.numSets));
    for (int s = 0; s < config_.numSets; ++s) {
        policy_.push_back(makePolicy(config_.policy, config_.assoc,
                                     config_.rngSeed +
                                     static_cast<std::uint64_t>(s)));
    }
}

Cache::Line &
Cache::lineAt(int set, int way)
{
    return lines_[static_cast<std::size_t>(set) *
                  static_cast<std::size_t>(config_.assoc) +
                  static_cast<std::size_t>(way)];
}

const Cache::Line &
Cache::lineAt(int set, int way) const
{
    return lines_[static_cast<std::size_t>(set) *
                  static_cast<std::size_t>(config_.assoc) +
                  static_cast<std::size_t>(way)];
}

int
Cache::setIndex(Addr addr) const
{
    return static_cast<int>(
        (addr / static_cast<Addr>(config_.lineBytes)) %
        static_cast<Addr>(config_.numSets));
}

Addr
Cache::lineAddr(Addr addr) const
{
    return addr & ~static_cast<Addr>(config_.lineBytes - 1);
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr / static_cast<Addr>(config_.lineBytes) /
           static_cast<Addr>(config_.numSets);
}

Addr
Cache::rebuild(Addr tag, int set) const
{
    return (tag * static_cast<Addr>(config_.numSets) +
            static_cast<Addr>(set)) *
           static_cast<Addr>(config_.lineBytes);
}

int
Cache::probe(Addr addr) const
{
    const int set = setIndex(addr);
    const Addr tag = tagOf(addr);
    for (int w = 0; w < config_.assoc; ++w) {
        const Line &line = lineAt(set, w);
        if (line.valid && line.tag == tag)
            return w;
    }
    return -1;
}

bool
Cache::access(Addr addr)
{
    const int way = probe(addr);
    if (way >= 0) {
        ++stats_.hits;
        policy_[static_cast<std::size_t>(setIndex(addr))]->touch(way);
        return true;
    }
    ++stats_.misses;
    return false;
}

std::optional<Addr>
Cache::fill(Addr addr)
{
    const int set = setIndex(addr);
    const Addr tag = tagOf(addr);
    auto &pol = *policy_[static_cast<std::size_t>(set)];

    // Already present (e.g. a racing fill was merged): just touch.
    for (int w = 0; w < config_.assoc; ++w) {
        Line &line = lineAt(set, w);
        if (line.valid && line.tag == tag) {
            pol.touch(w);
            return std::nullopt;
        }
    }

    ++stats_.fills;

    // Prefer an invalid way.
    for (int w = 0; w < config_.assoc; ++w) {
        Line &line = lineAt(set, w);
        if (!line.valid) {
            line.valid = true;
            line.tag = tag;
            pol.touch(w);
            return std::nullopt;
        }
    }

    const int victim = pol.victim();
    Line &line = lineAt(set, victim);
    panicIf(!line.valid, "fill: victim way invalid");
    const Addr evicted = rebuild(line.tag, set);
    line.tag = tag;
    pol.touch(victim);
    ++stats_.evictions;
    return evicted;
}

bool
Cache::invalidate(Addr addr)
{
    const int set = setIndex(addr);
    const Addr tag = tagOf(addr);
    for (int w = 0; w < config_.assoc; ++w) {
        Line &line = lineAt(set, w);
        if (line.valid && line.tag == tag) {
            line.valid = false;
            policy_[static_cast<std::size_t>(set)]->invalidate(w);
            return true;
        }
    }
    return false;
}

void
Cache::flushAll()
{
    for (auto &line : lines_)
        line.valid = false;
    for (int s = 0; s < config_.numSets; ++s) {
        policy_[static_cast<std::size_t>(s)] =
            makePolicy(config_.policy, config_.assoc,
                       config_.rngSeed + static_cast<std::uint64_t>(s));
    }
}

std::vector<Addr>
Cache::residentsOfSet(Addr addr) const
{
    const int set = setIndex(addr);
    std::vector<Addr> out;
    for (int w = 0; w < config_.assoc; ++w) {
        const Line &line = lineAt(set, w);
        if (line.valid)
            out.push_back(rebuild(line.tag, set));
    }
    return out;
}

std::optional<Addr>
Cache::evictionCandidate(Addr addr) const
{
    const int set = setIndex(addr);
    // victim() is const in effect for all policies except Random, where
    // peeking would perturb the stream; clone first.
    auto pol = policy_[static_cast<std::size_t>(set)]->clone();
    const int way = pol->victim();
    const Line &line = lineAt(set, way);
    if (!line.valid)
        return std::nullopt;
    return rebuild(line.tag, set);
}

std::string
Cache::setStateString(Addr addr) const
{
    const int set = setIndex(addr);
    std::string out = "{";
    for (int w = 0; w < config_.assoc; ++w) {
        const Line &line = lineAt(set, w);
        if (w)
            out += ' ';
        if (line.valid) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "0x%llx",
                          static_cast<unsigned long long>(
                              rebuild(line.tag, set)));
            out += buf;
        } else {
            out += '-';
        }
    }
    out += "} " + policy_[static_cast<std::size_t>(set)]->stateString();
    return out;
}

} // namespace hr
