#include "cache/cache.hh"

#include <atomic>

#include "util/log.hh"

namespace hr
{

namespace
{

int
log2Exact(int v)
{
    int s = 0;
    while ((1 << s) < v)
        ++s;
    return s;
}

/** Process-unique id tying a snapshot to the dirty-tracking epoch. */
std::uint64_t
nextSyncId()
{
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

} // namespace

Cache::Cache(const CacheConfig &config) : config_(config)
{
    fatalIf(config_.numSets <= 0 ||
            (config_.numSets & (config_.numSets - 1)) != 0,
            config_.name + ": numSets must be a positive power of two");
    fatalIf(config_.lineBytes <= 0 ||
            (config_.lineBytes & (config_.lineBytes - 1)) != 0,
            config_.name + ": lineBytes must be a positive power of two");
    fatalIf(config_.assoc <= 0, config_.name + ": assoc must be positive");

    lineShift_ = log2Exact(config_.lineBytes);
    setShift_ = log2Exact(config_.numSets);
    tagShift_ = lineShift_ + setShift_;
    lineMask_ = static_cast<Addr>(config_.lineBytes - 1);
    setMask_ = static_cast<Addr>(config_.numSets - 1);

    lines_.resize(static_cast<std::size_t>(config_.numSets) *
                  static_cast<std::size_t>(config_.assoc));
    policy_.reserve(static_cast<std::size_t>(config_.numSets));
    for (int s = 0; s < config_.numSets; ++s) {
        policy_.push_back(makePolicy(config_.policy, config_.assoc,
                                     config_.rngSeed +
                                     static_cast<std::uint64_t>(s)));
    }
}

Cache::Line &
Cache::lineAt(int set, int way)
{
    return lines_[static_cast<std::size_t>(set) *
                  static_cast<std::size_t>(config_.assoc) +
                  static_cast<std::size_t>(way)];
}

const Cache::Line &
Cache::lineAt(int set, int way) const
{
    return lines_[static_cast<std::size_t>(set) *
                  static_cast<std::size_t>(config_.assoc) +
                  static_cast<std::size_t>(way)];
}

int
Cache::probe(Addr addr) const
{
    const int set = setIndex(addr);
    const Addr tag = tagOf(addr);
    const Line *row = &lineAt(set, 0);
    for (int w = 0; w < config_.assoc; ++w) {
        if (row[w].valid && row[w].tag == tag)
            return w;
    }
    return -1;
}

int
Cache::accessWay(Addr addr)
{
    const int set = setIndex(addr);
    const Addr tag = tagOf(addr);
    const Line *row = &lineAt(set, 0);
    for (int w = 0; w < config_.assoc; ++w) {
        if (row[w].valid && row[w].tag == tag) {
            ++stats_.hits;
            policy_[static_cast<std::size_t>(set)]->touch(w);
            markDirty(set);
            return w;
        }
    }
    return -1;
}

std::optional<Addr>
Cache::fill(Addr addr)
{
    const int set = setIndex(addr);
    const Addr tag = tagOf(addr);
    auto &pol = *policy_[static_cast<std::size_t>(set)];
    markDirty(set);

    // One walk finds both an existing copy (e.g. a racing fill was
    // merged: just touch) and the first invalid way.
    Line *row = &lineAt(set, 0);
    int free_way = -1;
    for (int w = 0; w < config_.assoc; ++w) {
        if (row[w].valid) {
            if (row[w].tag == tag) {
                pol.touch(w);
                return std::nullopt;
            }
        } else if (free_way < 0) {
            free_way = w;
        }
    }

    ++stats_.fills;

    if (free_way >= 0) {
        row[free_way].valid = true;
        row[free_way].tag = tag;
        pol.touch(free_way);
        return std::nullopt;
    }

    const int victim = pol.victim();
    Line &line = row[victim];
    panicIf(!line.valid, "fill: victim way invalid");
    const Addr evicted = rebuild(line.tag, set);
    line.tag = tag;
    pol.touch(victim);
    ++stats_.evictions;
    return evicted;
}

bool
Cache::invalidate(Addr addr)
{
    const int set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *row = &lineAt(set, 0);
    for (int w = 0; w < config_.assoc; ++w) {
        if (row[w].valid && row[w].tag == tag) {
            row[w].valid = false;
            policy_[static_cast<std::size_t>(set)]->invalidate(w);
            markDirty(set);
            return true;
        }
    }
    return false;
}

void
Cache::flushAll()
{
    for (auto &line : lines_)
        line.valid = false;
    for (int s = 0; s < config_.numSets; ++s) {
        policy_[static_cast<std::size_t>(s)] =
            makePolicy(config_.policy, config_.assoc,
                       config_.rngSeed + static_cast<std::uint64_t>(s));
    }
    // Every set changed; force the next restore onto the full path.
    allDirty_ = true;
    dirtySets_.clear();
}

void
Cache::resetDirtyTracking(std::uint64_t sync_id)
{
    syncBase_ = sync_id;
    allDirty_ = false;
    dirtyMask_.assign(static_cast<std::size_t>(config_.numSets), 0);
    dirtySets_.clear();
}

Cache::Snapshot
Cache::snapshot()
{
    Snapshot snap;
    snap.syncId = nextSyncId();
    snap.stats = stats_;
    snap.lines = lines_;
    snap.policy.reserve(policy_.size());
    for (const auto &pol : policy_)
        snap.policy.push_back(pol->clone());
    resetDirtyTracking(snap.syncId);
    return snap;
}

void
Cache::copySetFrom(const Snapshot &snap, int set)
{
    const std::size_t assoc = static_cast<std::size_t>(config_.assoc);
    const std::size_t base = static_cast<std::size_t>(set) * assoc;
    for (std::size_t w = 0; w < assoc; ++w)
        lines_[base + w] = snap.lines[base + w];
    policy_[static_cast<std::size_t>(set)]->copyFrom(
        *snap.policy[static_cast<std::size_t>(set)]);
}

void
Cache::restore(const Snapshot &snap)
{
    panicIf(snap.lines.size() != lines_.size() ||
            snap.policy.size() != policy_.size(),
            config_.name + ": restore from mismatched snapshot");
    stats_ = snap.stats;

    if (snap.syncId != 0 && snap.syncId == syncBase_ && !allDirty_) {
        // Fast path: only the sets touched since this snapshot was
        // taken (or last restored) can differ.
        for (int set : dirtySets_) {
            dirtyMask_[static_cast<std::size_t>(set)] = 0;
            copySetFrom(snap, set);
        }
        dirtySets_.clear();
        return;
    }

    lines_ = snap.lines;
    for (std::size_t s = 0; s < policy_.size(); ++s)
        policy_[s]->copyFrom(*snap.policy[s]);
    resetDirtyTracking(snap.syncId);
}

bool
Cache::reseedPolicies(std::uint64_t seed)
{
    config_.rngSeed = seed;
    bool changed = false;
    for (int s = 0; s < config_.numSets; ++s) {
        changed |= policy_[static_cast<std::size_t>(s)]->reseed(
            seed + static_cast<std::uint64_t>(s));
    }
    if (changed) {
        // Reseeded streams diverge from any snapshot's streams.
        allDirty_ = true;
        dirtySets_.clear();
    }
    return changed;
}

std::vector<Addr>
Cache::residentsOfSet(Addr addr) const
{
    const int set = setIndex(addr);
    std::vector<Addr> out;
    for (int w = 0; w < config_.assoc; ++w) {
        const Line &line = lineAt(set, w);
        if (line.valid)
            out.push_back(rebuild(line.tag, set));
    }
    return out;
}

std::uint64_t
Cache::setSignature(int set) const
{
    std::uint64_t sig = 0xcbf29ce484222325ull;
    auto mix = [&](std::uint64_t value) {
        sig ^= value;
        sig *= 0x100000001b3ull;
    };
    for (int w = 0; w < config_.assoc; ++w) {
        const Line &line = lineAt(set, w);
        mix(line.valid ? line.tag + 1 : 0);
    }
    mix(policy_[static_cast<std::size_t>(set)]->stateSig());
    return sig;
}

std::uint64_t
Cache::policyRngDraws() const
{
    if (config_.policy != PolicyKind::Random)
        return 0;
    std::uint64_t draws = 0;
    for (const auto &pol : policy_)
        draws += pol->rngDraws();
    return draws;
}

std::optional<Addr>
Cache::evictionCandidate(Addr addr) const
{
    const int set = setIndex(addr);
    // victim() is const in effect for all policies except Random, where
    // peeking would perturb the stream; clone first.
    auto pol = policy_[static_cast<std::size_t>(set)]->clone();
    const int way = pol->victim();
    const Line &line = lineAt(set, way);
    if (!line.valid)
        return std::nullopt;
    return rebuild(line.tag, set);
}

std::string
Cache::setStateString(Addr addr) const
{
    const int set = setIndex(addr);
    std::string out = "{";
    for (int w = 0; w < config_.assoc; ++w) {
        const Line &line = lineAt(set, w);
        if (w)
            out += ' ';
        if (line.valid) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "0x%llx",
                          static_cast<unsigned long long>(
                              rebuild(line.tag, set)));
            out += buf;
        } else {
            out += '-';
        }
    }
    out += "} " + policy_[static_cast<std::size_t>(set)]->stateString();
    return out;
}

} // namespace hr
