/**
 * @file
 * Per-set cache replacement policies.
 *
 * The paper's magnifier gadgets are defined purely in terms of
 * replacement-state transitions (tree-PLRU for sections 6.1/6.2, random
 * for 6.3), so policies are first-class, inspectable objects here.
 */

#ifndef HR_CACHE_REPLACEMENT_HH
#define HR_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hh"

namespace hr
{

/** Replacement policy selector. */
enum class PolicyKind : std::uint8_t
{
    TreePlru, ///< Tree-based pseudo-LRU (Fig. 3/4 semantics)
    Lru,      ///< True least-recently-used
    Random,   ///< Uniform random victim
    Nru,      ///< Not-recently-used (reference bit)
    Srrip,    ///< Static RRIP with 2-bit re-reference predictions
};

/** Parse/emit policy names ("plru", "lru", "random", "nru", "srrip"). */
PolicyKind policyKindFromName(const std::string &name);
std::string policyKindName(PolicyKind kind);

/**
 * Replacement state for one cache set.
 *
 * The cache calls touch() on every hit and on every fill (after
 * installing the line in the returned victim way), and victim() when it
 * needs to evict. Policies are deterministic given their Rng stream.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Associativity this instance was built for. */
    int assoc() const { return assoc_; }

    /** Record an access (hit or fill) to a way. */
    virtual void touch(int way) = 0;

    /** Choose the eviction candidate among valid ways. */
    virtual int victim() = 0;

    /** Forget any state attached to a way (invalidation). */
    virtual void invalidate(int way) = 0;

    /** Compact state rendering for walkthrough output and tests. */
    virtual std::string stateString() const = 0;

    /** Deep copy (used by search utilities exploring state spaces). */
    virtual std::unique_ptr<ReplacementPolicy> clone() const = 0;

    /**
     * Copy replacement state from another instance of the same concrete
     * type and associativity, without allocating (the snapshot-restore
     * fast path). panics on a type or associativity mismatch.
     */
    virtual void copyFrom(const ReplacementPolicy &other) = 0;

    /**
     * Re-seed internal randomness as if freshly built via
     * makePolicy(kind, assoc, seed).
     * @return true if the call changed any state (only Random does).
     */
    virtual bool reseed(std::uint64_t seed)
    {
        (void)seed;
        return false;
    }

    /**
     * Canonical behavioral signature of the current replacement
     * state: two observations of the *same instance* with equal
     * signatures are guaranteed to make identical future
     * touch/victim decisions. Representations that drift without
     * behavioral effect (LRU's monotone stamps) are canonicalized
     * (rank order), so a steady-state loop re-touching the same ways
     * in the same order reports a stable signature.
     */
    virtual std::uint64_t stateSig() const = 0;

    /** Random values consumed so far (only Random draws any). */
    virtual std::uint64_t rngDraws() const { return 0; }

  protected:
    explicit ReplacementPolicy(int assoc) : assoc_(assoc) {}

    int assoc_;
};

/**
 * Tree-based pseudo-LRU.
 *
 * Nodes form an implicit binary heap; bit 0 points left, 1 points right.
 * victim() follows the pointers from the root; touch(w) flips every node
 * on the root-to-w path to point away from w. This matches the arrow
 * semantics of the paper's Figure 3 exactly (verified in unit tests).
 */
class TreePlruPolicy : public ReplacementPolicy
{
  public:
    explicit TreePlruPolicy(int assoc);

    void touch(int way) override;
    int victim() override;
    void invalidate(int way) override;
    std::string stateString() const override;
    std::unique_ptr<ReplacementPolicy> clone() const override;
    void copyFrom(const ReplacementPolicy &other) override;
    std::uint64_t stateSig() const override;

    /** Direct bit access for tests and the pin-pattern search. */
    const std::vector<std::uint8_t> &bits() const { return bits_; }
    void setBits(const std::vector<std::uint8_t> &bits);

  private:
    std::vector<std::uint8_t> bits_; // assoc-1 nodes, heap order
};

/** True LRU via monotonically increasing access stamps. */
class LruPolicy : public ReplacementPolicy
{
  public:
    explicit LruPolicy(int assoc);

    void touch(int way) override;
    int victim() override;
    void invalidate(int way) override;
    std::string stateString() const override;
    std::unique_ptr<ReplacementPolicy> clone() const override;
    void copyFrom(const ReplacementPolicy &other) override;
    std::uint64_t stateSig() const override;

  private:
    std::vector<std::uint64_t> stamp_;
    std::uint64_t clock_ = 0;
};

/** Uniform random victim selection. */
class RandomPolicy : public ReplacementPolicy
{
  public:
    RandomPolicy(int assoc, Rng rng);

    void touch(int way) override;
    int victim() override;
    void invalidate(int way) override;
    std::string stateString() const override;
    std::unique_ptr<ReplacementPolicy> clone() const override;
    void copyFrom(const ReplacementPolicy &other) override;
    bool reseed(std::uint64_t seed) override;
    std::uint64_t stateSig() const override;
    std::uint64_t rngDraws() const override;

  private:
    Rng rng_;
};

/** Not-recently-used: one reference bit per way. */
class NruPolicy : public ReplacementPolicy
{
  public:
    explicit NruPolicy(int assoc);

    void touch(int way) override;
    int victim() override;
    void invalidate(int way) override;
    std::string stateString() const override;
    std::unique_ptr<ReplacementPolicy> clone() const override;
    void copyFrom(const ReplacementPolicy &other) override;
    std::uint64_t stateSig() const override;

  private:
    std::vector<std::uint8_t> ref_;
};

/** Static RRIP with 2-bit RRPVs (insert at 2, promote to 0 on hit). */
class SrripPolicy : public ReplacementPolicy
{
  public:
    explicit SrripPolicy(int assoc);

    void touch(int way) override;
    int victim() override;
    void invalidate(int way) override;
    std::string stateString() const override;
    std::unique_ptr<ReplacementPolicy> clone() const override;
    void copyFrom(const ReplacementPolicy &other) override;
    std::uint64_t stateSig() const override;

  private:
    static constexpr std::uint8_t kMax = 3;
    std::vector<std::uint8_t> rrpv_;
    std::vector<std::uint8_t> filled_;
};

/** Factory. The rng seed only matters for Random. */
std::unique_ptr<ReplacementPolicy>
makePolicy(PolicyKind kind, int assoc, std::uint64_t rng_seed = 1);

} // namespace hr

#endif // HR_CACHE_REPLACEMENT_HH
