#include "cache/hierarchy.hh"

#include <algorithm>

#include "util/log.hh"

namespace hr
{

Hierarchy::Hierarchy(const HierarchyConfig &config)
    : config_(config), l1_(config.l1), l2_(config.l2), l3_(config.l3),
      rng_(config.rngSeed)
{
    fatalIf(config_.l1.lineBytes != config_.l2.lineBytes ||
            config_.l2.lineBytes != config_.l3.lineBytes,
            "Hierarchy: line size must match across levels");
    fatalIf(config_.l1Mshrs <= 0, "Hierarchy: need at least one MSHR");
    fatalIf(config_.contexts < 1, "Hierarchy: need at least one context");
    for (int ctx = 1; ctx < config_.contexts; ++ctx)
        ctxRngs_.emplace_back(
            contextSeed(config_.rngSeed, static_cast<ContextId>(ctx)));
    ctxStats_.resize(static_cast<std::size_t>(config_.contexts));
}

const ContextAccessStats &
Hierarchy::contextStats(ContextId ctx) const
{
    panicIf(ctx >= ctxStats_.size(), "Hierarchy: context out of range");
    return ctxStats_[ctx];
}

AccessOutcome
Hierarchy::access(Addr addr, Cycle now, AccessKind kind, ContextId ctx)
{
    (void)kind; // stores are write-allocate, prefetches fetch like loads
    applyFillsUpTo(now);

    // No bounds check on the hot path: the core only issues contexts
    // it was constructed with (contextStats() guards external readers).
    ContextAccessStats &attribution = ctxStats_[ctx];
    const Addr line = l1_.lineAddr(addr);
    AccessOutcome out;

    // Single L1 walk: a hit counts and touches; a miss defers its
    // stats until we know the access is accepted (noteMiss below).
    if (l1_.accessWay(line) >= 0) {
        ++attribution.hits[0];
        out.readyCycle = now + config_.l1Latency;
        out.level = 1;
        return out;
    }

    // Coalesce with an in-flight request for the same line.
    auto it = inflight_.find(line);
    if (it != inflight_.end()) {
        l1_.noteMiss(); // counts the demand miss
        ++attribution.misses;
        out.readyCycle = std::max(it->second.ready,
                                  now + config_.l1Latency);
        out.level = it->second.level;
        out.merged = true;
        return out;
    }

    // Out of MSHRs: refuse without perturbing stats — the core will
    // retry this access, and retries are not demand misses.
    if (static_cast<int>(inflight_.size()) >= config_.l1Mshrs) {
        out.accepted = false;
        return out;
    }
    l1_.noteMiss(); // counts the demand miss
    ++attribution.misses;

    // Jitter comes from the requesting context's private stream so
    // co-runners do not perturb each other's latency-noise sequences.
    Rng &jitter = ctx == 0 ? rng_ : ctxRngs_[ctx - 1];
    Cycle ready;
    int level;
    if (l2_.access(line)) {
        ready = now + config_.l2Latency;
        level = 2;
        ++attribution.hits[1];
    } else if (l3_.access(line)) {
        ready = now + config_.l3Latency +
                (config_.l3Jitter ? jitter.below(config_.l3Jitter + 1) : 0);
        level = 3;
        ++attribution.hits[2];
    } else {
        ++memAccesses_;
        ++attribution.memAccesses;
        ready = now + config_.memLatency +
                (config_.memJitter ? jitter.below(config_.memJitter + 1) : 0);
        level = 4;
    }

    Inflight fill{ready, nextSeq_++, line, level, ctx};
    inflight_.emplace(line, fill);
    fillQueue_.push(fill);

    out.readyCycle = ready;
    out.level = level;
    return out;
}

void
Hierarchy::applyFill(const Inflight &fill)
{
    // The line is installed in every level above where it was found
    // (data-return path). Hits in a level leave it resident there.
    if (fill.level >= 4) {
        auto evicted = l3_.fill(fill.line);
        if (evicted && config_.inclusiveL3) {
            l1_.invalidate(*evicted);
            l2_.invalidate(*evicted);
        }
    }
    if (fill.level >= 3)
        l2_.fill(fill.line);
    l1_.fill(fill.line);
    if (fill.ctx < ctxStats_.size())
        ++ctxStats_[fill.ctx].fills;
}

void
Hierarchy::applyFillsUpTo(Cycle now)
{
    while (!fillQueue_.empty() && fillQueue_.top().ready <= now) {
        const Inflight fill = fillQueue_.top();
        fillQueue_.pop();
        // Entry may have been cancelled by flushLine: only apply if the
        // inflight map still holds this exact request.
        auto it = inflight_.find(fill.line);
        if (it == inflight_.end() || it->second.seq != fill.seq)
            continue;
        inflight_.erase(it);
        applyFill(fill);
    }
}

void
Hierarchy::drainAllFills()
{
    while (!fillQueue_.empty()) {
        const Inflight fill = fillQueue_.top();
        fillQueue_.pop();
        auto it = inflight_.find(fill.line);
        if (it == inflight_.end() || it->second.seq != fill.seq)
            continue;
        inflight_.erase(it);
        applyFill(fill);
    }
}

std::optional<Cycle>
Hierarchy::nextFillCycle() const
{
    if (fillQueue_.empty())
        return std::nullopt;
    return fillQueue_.top().ready;
}

int
Hierarchy::probeLevel(Addr addr) const
{
    const Addr line = l1_.lineAddr(addr);
    if (l1_.contains(line))
        return 1;
    if (l2_.contains(line))
        return 2;
    if (l3_.contains(line))
        return 3;
    return 0;
}

void
Hierarchy::flushLine(Addr addr)
{
    const Addr line = l1_.lineAddr(addr);
    l1_.invalidate(line);
    l2_.invalidate(line);
    l3_.invalidate(line);
    inflight_.erase(line); // cancels any pending fill (seq check skips it)
}

void
Hierarchy::flushAll()
{
    l1_.flushAll();
    l2_.flushAll();
    l3_.flushAll();
    inflight_.clear();
    while (!fillQueue_.empty())
        fillQueue_.pop();
}

void
Hierarchy::warm(Addr addr, int upto_level)
{
    const Addr line = l1_.lineAddr(addr);
    auto evicted = l3_.fill(line);
    if (evicted && config_.inclusiveL3) {
        l1_.invalidate(*evicted);
        l2_.invalidate(*evicted);
    }
    if (upto_level <= 2)
        l2_.fill(line);
    if (upto_level <= 1)
        l1_.fill(line);
}

void
Hierarchy::clearStats()
{
    l1_.clearStats();
    l2_.clearStats();
    l3_.clearStats();
    memAccesses_ = 0;
    for (ContextAccessStats &stats : ctxStats_)
        stats = ContextAccessStats();
}

Hierarchy::Snapshot
Hierarchy::snapshot()
{
    Snapshot snap;
    snap.l1 = l1_.snapshot();
    snap.l2 = l2_.snapshot();
    snap.l3 = l3_.snapshot();
    snap.rng = rng_;
    snap.ctxRngs = ctxRngs_;
    snap.ctxStats = ctxStats_;
    snap.memAccesses = memAccesses_;
    snap.nextSeq = nextSeq_;
    snap.inflight = inflight_;
    snap.fillQueue = fillQueue_;
    return snap;
}

void
Hierarchy::restore(const Snapshot &snap)
{
    l1_.restore(snap.l1);
    l2_.restore(snap.l2);
    l3_.restore(snap.l3);
    rng_ = snap.rng;
    panicIf(snap.ctxStats.size() != ctxStats_.size(),
            "Hierarchy::restore: context count mismatch");
    ctxRngs_ = snap.ctxRngs;
    ctxStats_ = snap.ctxStats;
    memAccesses_ = snap.memAccesses;
    nextSeq_ = snap.nextSeq;
    inflight_ = snap.inflight;
    fillQueue_ = snap.fillQueue;
}

void
Hierarchy::reseed(std::uint64_t mem_seed, std::uint64_t l1_seed,
                  std::uint64_t l2_seed, std::uint64_t l3_seed)
{
    config_.rngSeed = mem_seed;
    config_.l1.rngSeed = l1_seed;
    config_.l2.rngSeed = l2_seed;
    config_.l3.rngSeed = l3_seed;
    rng_.reseed(mem_seed);
    for (std::size_t i = 0; i < ctxRngs_.size(); ++i)
        ctxRngs_[i].reseed(contextSeed(
            mem_seed, static_cast<ContextId>(i + 1)));
    l1_.reseedPolicies(l1_seed);
    l2_.reseedPolicies(l2_seed);
    l3_.reseedPolicies(l3_seed);
}

std::uint64_t
Hierarchy::rngDraws() const
{
    std::uint64_t draws = rng_.draws();
    for (const Rng &rng : ctxRngs_)
        draws += rng.draws();
    return draws + l1_.policyRngDraws() + l2_.policyRngDraws() +
           l3_.policyRngDraws();
}

namespace
{

/** Read-only view of a priority_queue's underlying container. */
template <class Q>
const typename Q::container_type &
queueContainer(const Q &queue)
{
    struct Expose : Q
    {
        using Q::c;
    };
    return queue.*&Expose::c;
}

} // namespace

std::uint64_t
Hierarchy::inflightSignature(Cycle base) const
{
    std::uint64_t sig = 0xcbf29ce484222325ull;
    auto mix = [&](std::uint64_t value) {
        sig ^= value;
        sig *= 0x100000001b3ull;
    };
    // Iterate in drain order (ready, seq) — the order fills will be
    // applied in — so two states that drain differently cannot share a
    // signature. An overdue fill (ready <= base) behaves identically
    // however overdue it is: every reader saturates (applyFillsUpTo
    // applies it, coalescing clamps to now + L1 latency, the wake path
    // clamps to the next cycle), so its rel is canonicalized to zero
    // rather than left drifting as the boundary advances past it.
    std::vector<const Inflight *> order;
    order.reserve(inflight_.size());
    for (const auto &[line, fill] : inflight_)
        order.push_back(&fill);
    std::sort(order.begin(), order.end(),
              [](const Inflight *a, const Inflight *b) {
                  if (a->ready != b->ready)
                      return a->ready < b->ready;
                  return a->seq < b->seq;
              });
    for (const Inflight *fill : order) {
        mix(fill->line);
        mix(fill->ready > base
                ? static_cast<std::uint64_t>(fill->ready - base)
                : 0);
        mix(nextSeq_ - fill->seq);
        mix(static_cast<std::uint64_t>(fill->level));
        mix(fill->ctx);
    }
    // Cancelled fill-queue leftovers still gate nextFillCycle(), so
    // their presence must fail the steady-state match.
    mix(queueContainer(fillQueue_).size() - inflight_.size());
    return sig;
}

void
Hierarchy::shiftInflight(Cycle delta)
{
    panicIf(queueContainer(fillQueue_).size() != inflight_.size(),
            "Hierarchy::shiftInflight: cancelled fills pending");
    while (!fillQueue_.empty())
        fillQueue_.pop();
    for (auto &[line, fill] : inflight_) {
        (void)line;
        fill.ready += delta;
        fillQueue_.push(fill);
    }
}

Hierarchy::CountersSample
Hierarchy::sampleCounters() const
{
    CountersSample sample;
    sample.l1 = l1_.stats();
    sample.l2 = l2_.stats();
    sample.l3 = l3_.stats();
    sample.ctx = ctxStats_;
    sample.memAccesses = memAccesses_;
    sample.nextSeq = nextSeq_;
    return sample;
}

void
Hierarchy::applyCountersDelta(const CountersSample &from,
                              const CountersSample &to, std::uint64_t k)
{
    l1_.applyStatsDelta(from.l1, to.l1, k);
    l2_.applyStatsDelta(from.l2, to.l2, k);
    l3_.applyStatsDelta(from.l3, to.l3, k);
    for (std::size_t i = 0; i < ctxStats_.size(); ++i) {
        const ContextAccessStats d = to.ctx[i] - from.ctx[i];
        for (int lvl = 0; lvl < 3; ++lvl)
            ctxStats_[i].hits[lvl] += k * d.hits[lvl];
        ctxStats_[i].misses += k * d.misses;
        ctxStats_[i].fills += k * d.fills;
        ctxStats_[i].memAccesses += k * d.memAccesses;
    }
    memAccesses_ += k * (to.memAccesses - from.memAccesses);
    nextSeq_ += k * (to.nextSeq - from.nextSeq);
}

void
Hierarchy::reseedContext(ContextId ctx, std::uint64_t seed)
{
    panicIf(ctx >= ctxStats_.size(), "Hierarchy: context out of range");
    if (ctx == 0)
        rng_.reseed(seed);
    else
        ctxRngs_[ctx - 1].reseed(seed);
}

} // namespace hr
