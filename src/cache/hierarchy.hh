/**
 * @file
 * Multi-level cache hierarchy with MSHRs and delayed, ordered fills.
 *
 * Fills are applied in data-return order (ready cycle, then issue
 * sequence), so the relative completion order of two racing loads turns
 * into relative cache-insertion order — the exact state the paper's
 * non-transient reorder gadget (section 5.2) transmits through.
 */

#ifndef HR_CACHE_HIERARCHY_HH
#define HR_CACHE_HIERARCHY_HH

#include <cstdint>
#include <map>
#include <optional>
#include <queue>
#include <vector>

#include "cache/cache.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace hr
{

/** Kinds of memory access the core issues. */
enum class AccessKind : std::uint8_t { Load, Store, Prefetch };

/** Configuration of the whole memory subsystem. */
struct HierarchyConfig
{
    CacheConfig l1{"l1", 64, 8, 64, PolicyKind::TreePlru, 11};
    CacheConfig l2{"l2", 512, 8, 64, PolicyKind::Lru, 22};
    CacheConfig l3{"l3", 4096, 16, 64, PolicyKind::Lru, 33};

    Cycle l1Latency = 4;    ///< load-to-use on an L1 hit
    Cycle l2Latency = 14;   ///< total latency on an L2 hit
    Cycle l3Latency = 44;   ///< total latency on an L3 hit
    Cycle memLatency = 210; ///< total latency on a full miss

    /** Uniform extra cycles [0, jitter] added to L3/memory trips. */
    Cycle l3Jitter = 0;
    Cycle memJitter = 0;

    int l1Mshrs = 10;       ///< max outstanding L1 misses
    bool inclusiveL3 = true;

    std::uint64_t rngSeed = 7; ///< jitter stream seed

    /**
     * Hardware contexts sharing the hierarchy (set by the Machine from
     * MachineConfig::contexts). Sizes the per-context attribution
     * counters and jitter streams; context 0 always uses the stream
     * seeded with rngSeed, so single-context behaviour is unchanged.
     */
    int contexts = 1;
};

/**
 * Per-context attribution of demand traffic through the shared
 * hierarchy. Indices 0..2 are L1..L3; hits[i] counts demand hits whose
 * data was found at level i+1, misses counts L1 demand misses, fills
 * counts lines installed on this context's behalf. These are pure
 * attribution — the per-level CacheStats aggregates are unchanged, so
 * single-context totals match the legacy counters exactly.
 */
struct ContextAccessStats
{
    std::uint64_t hits[3] = {};
    std::uint64_t misses = 0;
    std::uint64_t fills = 0;
    std::uint64_t memAccesses = 0;

    ContextAccessStats operator-(const ContextAccessStats &o) const
    {
        ContextAccessStats d;
        for (int i = 0; i < 3; ++i)
            d.hits[i] = hits[i] - o.hits[i];
        d.misses = misses - o.misses;
        d.fills = fills - o.fills;
        d.memAccesses = memAccesses - o.memAccesses;
        return d;
    }
};

/** Result of issuing a memory access. */
struct AccessOutcome
{
    bool accepted = true; ///< false: out of MSHRs, retry later
    Cycle readyCycle = 0; ///< when the data (or line) is available
    int level = 0;        ///< 1..3 = cache level, 4 = memory
    bool merged = false;  ///< coalesced onto an in-flight miss
};

/**
 * The memory-side model the out-of-order core talks to.
 *
 * Data values are not stored here — only presence and timing. The
 * Machine keeps the architectural memory image.
 */
class Hierarchy
{
  private:
    struct Inflight
    {
        Cycle ready;
        std::uint64_t seq;
        Addr line;
        int level;          ///< where the data was found
        ContextId ctx = 0;  ///< requesting context (fill attribution)
    };

    struct FillOrder
    {
        bool
        operator()(const Inflight &a, const Inflight &b) const
        {
            if (a.ready != b.ready)
                return a.ready > b.ready;
            return a.seq > b.seq;
        }
    };

  public:
    explicit Hierarchy(const HierarchyConfig &config);

    /**
     * Deep copy of all memory-side state: per-level tag arrays and
     * replacement state, every context's jitter stream and
     * attribution counters, aggregate counters, and in-flight
     * requests (so pending fills replay identically). Move-only.
     */
    class Snapshot
    {
      public:
        Snapshot() = default;
        Snapshot(Snapshot &&) = default;
        Snapshot &operator=(Snapshot &&) = default;

      private:
        friend class Hierarchy;
        Cache::Snapshot l1, l2, l3;
        Rng rng;
        std::vector<Rng> ctxRngs;
        std::vector<ContextAccessStats> ctxStats;
        std::uint64_t memAccesses = 0;
        std::uint64_t nextSeq = 0;
        std::map<Addr, Inflight> inflight;
        std::priority_queue<Inflight, std::vector<Inflight>, FillOrder>
            fillQueue;
    };

    const HierarchyConfig &config() const { return config_; }

    Cache &l1() { return l1_; }
    Cache &l2() { return l2_; }
    Cache &l3() { return l3_; }
    const Cache &l1() const { return l1_; }
    const Cache &l2() const { return l2_; }
    const Cache &l3() const { return l3_; }

    std::uint64_t memAccesses() const { return memAccesses_; }

    /** Number of hardware contexts sharing this hierarchy. */
    int contexts() const { return config_.contexts; }

    /** Demand-traffic attribution for one context. */
    const ContextAccessStats &contextStats(ContextId ctx) const;

    /**
     * Issue an access at cycle @p now on behalf of context @p ctx.
     *
     * Applies all fills due at or before @p now first, so lookups always
     * see up-to-date state. May refuse (no MSHR) — the core retries.
     * Latency jitter is drawn from the requesting context's own stream,
     * so one context's jitter sequence does not depend on how another
     * context's accesses interleave with it.
     */
    AccessOutcome access(Addr addr, Cycle now, AccessKind kind,
                         ContextId ctx = 0);

    /** Apply every pending fill with ready <= now (in return order). */
    void applyFillsUpTo(Cycle now);

    /** Apply all pending fills regardless of time (end-of-run drain). */
    void drainAllFills();

    /** Cycle of the next pending fill, if any (for event skipping). */
    std::optional<Cycle> nextFillCycle() const;

    /** Number of in-flight line requests. */
    std::size_t inflightCount() const { return inflight_.size(); }

    /** Highest level containing the line: 1, 2, 3, or 0 if nowhere. */
    int probeLevel(Addr addr) const;

    /**
     * Invalidate a line everywhere (clflush-like; used by the harness
     * between attack phases). Cancels any in-flight fill of the line.
     */
    void flushLine(Addr addr);

    /** Invalidate everything and forget in-flight requests. */
    void flushAll();

    /**
     * Test/setup helper: install a line instantly into all levels from
     * L3 up to @p upto_level (1 = into L1/L2/L3, 3 = only L3).
     */
    void warm(Addr addr, int upto_level = 1);

    /** Clear all per-level stats counters. */
    void clearStats();

    /** Capture the full memory-side state (see Machine::snapshot). */
    Snapshot snapshot();

    /** Reset to a snapshotted state (geometry must match; reusable). */
    void restore(const Snapshot &snap);

    /**
     * Re-seed the latency-jitter stream and per-level replacement
     * randomness as if the hierarchy had been freshly built with these
     * seeds (sweep grid points reuse one pooled machine this way).
     */
    void reseed(std::uint64_t mem_seed, std::uint64_t l1_seed,
                std::uint64_t l2_seed, std::uint64_t l3_seed);

    /**
     * Re-seed one context's private jitter stream (context 0's stream
     * is also re-seeded by reseed()). Lets noisy-neighbor sweeps vary
     * a single co-runner's latency noise without touching the others.
     */
    void reseedContext(ContextId ctx, std::uint64_t seed);

    /**
     * The seed a context's jitter stream starts from: context 0 uses
     * @p base verbatim (legacy stream), higher contexts derive an
     * independent stream deterministically.
     */
    static std::uint64_t contextSeed(std::uint64_t base, ContextId ctx)
    {
        return base + 0x9e3779b97f4a7c15ull * ctx;
    }

    /**
     * Total random values consumed so far: every context's jitter
     * stream plus every level's Random replacement streams. An
     * unchanged total across a stretch of execution proves that
     * stretch was randomness-free (so reseeding the streams in it
     * would have been behaviorally dead, and a time-shifted repeat of
     * it stays deterministic).
     */
    std::uint64_t rngDraws() const;

    /**
     * Canonical signature of the in-flight request set, with ready
     * times taken relative to @p base and issue sequence numbers
     * relative to the current allocator — equal signatures at two
     * cycles b1 < b2 mean the pending fills are the same set shifted
     * by (b2 - b1). Includes the count of cancelled entries still in
     * the fill queue, so stale flushLine leftovers (which perturb
     * nextFillCycle()) refuse the match instead of hiding.
     */
    std::uint64_t inflightSignature(Cycle base) const;

    /**
     * True while the fill queue holds entries cancelled by flushLine
     * (they still perturb nextFillCycle(), so a fast-forward must
     * refuse until they drain).
     */
    bool hasCancelledFills() const
    {
        return fillQueue_.size() != inflight_.size();
    }

    /**
     * Shift every in-flight request and queued fill @p delta cycles
     * into the future (lockstep fast-forward). Cancelled fill-queue
     * leftovers must not exist (see inflightSignature); the queue is
     * rebuilt from the live set.
     */
    void shiftInflight(Cycle delta);

    /** Aggregate counters bundle for delta capture/extrapolation. */
    struct CountersSample
    {
        CacheStats l1, l2, l3;
        std::vector<ContextAccessStats> ctx;
        std::uint64_t memAccesses = 0;
        std::uint64_t nextSeq = 0;
    };

    /** Capture all monotone counters (cheap; no cache-array walk). */
    CountersSample sampleCounters() const;

    /** Add @p k times the per-field difference @p to - @p from. */
    void applyCountersDelta(const CountersSample &from,
                            const CountersSample &to, std::uint64_t k);

  private:
    HierarchyConfig config_;
    Cache l1_, l2_, l3_;
    Rng rng_;
    /** Private jitter streams for contexts 1.. (context 0 uses rng_). */
    std::vector<Rng> ctxRngs_;
    /** Per-context demand-traffic attribution. */
    std::vector<ContextAccessStats> ctxStats_;
    std::uint64_t memAccesses_ = 0;
    std::uint64_t nextSeq_ = 0;

    /** In-flight requests keyed by L1 line address. */
    std::map<Addr, Inflight> inflight_;
    std::priority_queue<Inflight, std::vector<Inflight>, FillOrder>
        fillQueue_;

    void applyFill(const Inflight &fill);
};

} // namespace hr

#endif // HR_CACHE_HIERARCHY_HH
