#include "cache/replacement.hh"

#include <algorithm>

#include "util/log.hh"

namespace hr
{

PolicyKind
policyKindFromName(const std::string &name)
{
    if (name == "plru")
        return PolicyKind::TreePlru;
    if (name == "lru")
        return PolicyKind::Lru;
    if (name == "random")
        return PolicyKind::Random;
    if (name == "nru")
        return PolicyKind::Nru;
    if (name == "srrip")
        return PolicyKind::Srrip;
    fatal("unknown replacement policy: " + name);
}

std::string
policyKindName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::TreePlru: return "plru";
      case PolicyKind::Lru: return "lru";
      case PolicyKind::Random: return "random";
      case PolicyKind::Nru: return "nru";
      case PolicyKind::Srrip: return "srrip";
    }
    panic("policyKindName: bad kind");
}


namespace
{

/** Downcast for copyFrom, panicking on type/associativity mismatch. */
template <typename T>
const T &
sameKind(const ReplacementPolicy &self, const ReplacementPolicy &other)
{
    const T *o = dynamic_cast<const T *>(&other);
    panicIf(o == nullptr || o->assoc() != self.assoc(),
            "ReplacementPolicy::copyFrom: type/assoc mismatch");
    return *o;
}

} // namespace

// ---------------------------------------------------------------- PLRU

TreePlruPolicy::TreePlruPolicy(int assoc)
    : ReplacementPolicy(assoc), bits_(static_cast<std::size_t>(assoc - 1), 0)
{
    fatalIf(assoc < 2 || (assoc & (assoc - 1)) != 0,
            "TreePlru requires power-of-two associativity >= 2");
}

void
TreePlruPolicy::touch(int way)
{
    panicIf(way < 0 || way >= assoc_, "TreePlru::touch: bad way");
    // Walk from the root toward the leaf, flipping each node to point
    // away from the accessed way.
    int node = 0;
    int lo = 0, hi = assoc_; // [lo, hi) range of ways under this node
    while (hi - lo > 1) {
        const int mid = lo + (hi - lo) / 2;
        if (way < mid) {
            bits_[node] = 1; // accessed left, point right
            node = 2 * node + 1;
            hi = mid;
        } else {
            bits_[node] = 0; // accessed right, point left
            node = 2 * node + 2;
            lo = mid;
        }
    }
}

int
TreePlruPolicy::victim()
{
    int node = 0;
    int lo = 0, hi = assoc_;
    while (hi - lo > 1) {
        const int mid = lo + (hi - lo) / 2;
        if (bits_[node] == 0) {
            node = 2 * node + 1;
            hi = mid;
        } else {
            node = 2 * node + 2;
            lo = mid;
        }
    }
    return lo;
}

void
TreePlruPolicy::invalidate(int way)
{
    // Point the tree at the invalidated way so it is refilled first.
    int node = 0;
    int lo = 0, hi = assoc_;
    while (hi - lo > 1) {
        const int mid = lo + (hi - lo) / 2;
        if (way < mid) {
            bits_[node] = 0;
            node = 2 * node + 1;
            hi = mid;
        } else {
            bits_[node] = 1;
            node = 2 * node + 2;
            lo = mid;
        }
    }
}

std::string
TreePlruPolicy::stateString() const
{
    std::string s = "plru[";
    for (auto b : bits_)
        s += b ? '1' : '0';
    return s + "]";
}

std::unique_ptr<ReplacementPolicy>
TreePlruPolicy::clone() const
{
    return std::make_unique<TreePlruPolicy>(*this);
}

void
TreePlruPolicy::copyFrom(const ReplacementPolicy &other)
{
    bits_ = sameKind<TreePlruPolicy>(*this, other).bits_;
}

void
TreePlruPolicy::setBits(const std::vector<std::uint8_t> &bits)
{
    panicIf(bits.size() != bits_.size(), "setBits: size mismatch");
    bits_ = bits;
}

// ----------------------------------------------------------------- LRU

LruPolicy::LruPolicy(int assoc)
    : ReplacementPolicy(assoc), stamp_(static_cast<std::size_t>(assoc), 0)
{
}

void
LruPolicy::touch(int way)
{
    stamp_[static_cast<std::size_t>(way)] = ++clock_;
}

int
LruPolicy::victim()
{
    return static_cast<int>(std::distance(
        stamp_.begin(), std::min_element(stamp_.begin(), stamp_.end())));
}

void
LruPolicy::invalidate(int way)
{
    stamp_[static_cast<std::size_t>(way)] = 0;
}

std::string
LruPolicy::stateString() const
{
    std::string s = "lru[";
    for (std::size_t i = 0; i < stamp_.size(); ++i) {
        if (i)
            s += ',';
        s += std::to_string(stamp_[i]);
    }
    return s + "]";
}

std::unique_ptr<ReplacementPolicy>
LruPolicy::clone() const
{
    return std::make_unique<LruPolicy>(*this);
}

void
LruPolicy::copyFrom(const ReplacementPolicy &other)
{
    const auto &o = sameKind<LruPolicy>(*this, other);
    stamp_ = o.stamp_;
    clock_ = o.clock_;
}

// -------------------------------------------------------------- Random

RandomPolicy::RandomPolicy(int assoc, Rng rng)
    : ReplacementPolicy(assoc), rng_(rng)
{
}

void
RandomPolicy::touch(int way)
{
    (void)way;
}

int
RandomPolicy::victim()
{
    return static_cast<int>(rng_.below(static_cast<std::uint64_t>(assoc_)));
}

void
RandomPolicy::invalidate(int way)
{
    (void)way;
}

std::string
RandomPolicy::stateString() const
{
    return "random[]";
}

std::unique_ptr<ReplacementPolicy>
RandomPolicy::clone() const
{
    return std::make_unique<RandomPolicy>(*this);
}

void
RandomPolicy::copyFrom(const ReplacementPolicy &other)
{
    rng_ = sameKind<RandomPolicy>(*this, other).rng_;
}

bool
RandomPolicy::reseed(std::uint64_t seed)
{
    rng_.reseed(seed);
    return true;
}

// ----------------------------------------------------------------- NRU

NruPolicy::NruPolicy(int assoc)
    : ReplacementPolicy(assoc), ref_(static_cast<std::size_t>(assoc), 0)
{
}

void
NruPolicy::touch(int way)
{
    ref_[static_cast<std::size_t>(way)] = 1;
    // If every way is now recently used, age everyone else.
    if (std::all_of(ref_.begin(), ref_.end(),
                    [](std::uint8_t r) { return r == 1; })) {
        std::fill(ref_.begin(), ref_.end(), 0);
        ref_[static_cast<std::size_t>(way)] = 1;
    }
}

int
NruPolicy::victim()
{
    for (std::size_t i = 0; i < ref_.size(); ++i)
        if (ref_[i] == 0)
            return static_cast<int>(i);
    return 0;
}

void
NruPolicy::invalidate(int way)
{
    ref_[static_cast<std::size_t>(way)] = 0;
}

std::string
NruPolicy::stateString() const
{
    std::string s = "nru[";
    for (auto r : ref_)
        s += r ? '1' : '0';
    return s + "]";
}

std::unique_ptr<ReplacementPolicy>
NruPolicy::clone() const
{
    return std::make_unique<NruPolicy>(*this);
}

void
NruPolicy::copyFrom(const ReplacementPolicy &other)
{
    ref_ = sameKind<NruPolicy>(*this, other).ref_;
}

// --------------------------------------------------------------- SRRIP

SrripPolicy::SrripPolicy(int assoc)
    : ReplacementPolicy(assoc),
      rrpv_(static_cast<std::size_t>(assoc), kMax),
      filled_(static_cast<std::size_t>(assoc), 0)
{
}

void
SrripPolicy::touch(int way)
{
    auto w = static_cast<std::size_t>(way);
    if (!filled_[w]) {
        filled_[w] = 1;
        rrpv_[w] = kMax - 1; // long re-reference on insertion
    } else {
        rrpv_[w] = 0; // near re-reference on hit
    }
}

int
SrripPolicy::victim()
{
    for (;;) {
        for (std::size_t i = 0; i < rrpv_.size(); ++i)
            if (rrpv_[i] == kMax)
                return static_cast<int>(i);
        for (auto &r : rrpv_)
            ++r;
    }
}

void
SrripPolicy::invalidate(int way)
{
    auto w = static_cast<std::size_t>(way);
    rrpv_[w] = kMax;
    filled_[w] = 0;
}

std::string
SrripPolicy::stateString() const
{
    std::string s = "srrip[";
    for (std::size_t i = 0; i < rrpv_.size(); ++i) {
        if (i)
            s += ',';
        s += std::to_string(rrpv_[i]);
    }
    return s + "]";
}

std::unique_ptr<ReplacementPolicy>
SrripPolicy::clone() const
{
    return std::make_unique<SrripPolicy>(*this);
}

void
SrripPolicy::copyFrom(const ReplacementPolicy &other)
{
    const auto &o = sameKind<SrripPolicy>(*this, other);
    rrpv_ = o.rrpv_;
    filled_ = o.filled_;
}

// ------------------------------------------------- state signatures

namespace
{

/** FNV-1a over a byte sequence fed 64 bits at a time. */
std::uint64_t
sigMix(std::uint64_t hash, std::uint64_t value)
{
    hash ^= value;
    return hash * 0x100000001b3ull;
}

constexpr std::uint64_t kSigBasis = 0xcbf29ce484222325ull;

} // namespace

std::uint64_t
TreePlruPolicy::stateSig() const
{
    std::uint64_t sig = kSigBasis;
    for (std::uint8_t bit : bits_)
        sig = sigMix(sig, bit);
    return sig;
}

std::uint64_t
LruPolicy::stateSig() const
{
    // Canonicalize the monotone stamps to dense ranks: victim() only
    // compares stamps (min wins, lowest way breaks ties), so the rank
    // vector — with ties mapped to the same rank — captures exactly
    // the behaviorally relevant order while staying stable across a
    // loop that re-touches the ways in the same sequence.
    std::uint64_t sig = kSigBasis;
    for (std::size_t i = 0; i < stamp_.size(); ++i) {
        std::uint64_t rank = 0;
        for (std::size_t j = 0; j < stamp_.size(); ++j)
            if (stamp_[j] < stamp_[i])
                ++rank;
        sig = sigMix(sig, rank);
    }
    return sig;
}

std::uint64_t
RandomPolicy::stateSig() const
{
    // Only meaningful when compared on the same instance over time:
    // an unchanged draw count means the stream was never consumed, so
    // its state (and therefore all future victim choices) is intact.
    return sigMix(kSigBasis, rng_.draws());
}

std::uint64_t
RandomPolicy::rngDraws() const
{
    return rng_.draws();
}

std::uint64_t
NruPolicy::stateSig() const
{
    std::uint64_t sig = kSigBasis;
    for (std::uint8_t bit : ref_)
        sig = sigMix(sig, bit);
    return sig;
}

std::uint64_t
SrripPolicy::stateSig() const
{
    std::uint64_t sig = kSigBasis;
    for (std::size_t i = 0; i < rrpv_.size(); ++i)
        sig = sigMix(sig, static_cast<std::uint64_t>(rrpv_[i]) |
                              (static_cast<std::uint64_t>(filled_[i])
                               << 8));
    return sig;
}

// ------------------------------------------------------------- factory

std::unique_ptr<ReplacementPolicy>
makePolicy(PolicyKind kind, int assoc, std::uint64_t rng_seed)
{
    switch (kind) {
      case PolicyKind::TreePlru:
        return std::make_unique<TreePlruPolicy>(assoc);
      case PolicyKind::Lru:
        return std::make_unique<LruPolicy>(assoc);
      case PolicyKind::Random:
        return std::make_unique<RandomPolicy>(assoc, Rng(rng_seed));
      case PolicyKind::Nru:
        return std::make_unique<NruPolicy>(assoc);
      case PolicyKind::Srrip:
        return std::make_unique<SrripPolicy>(assoc);
    }
    panic("makePolicy: bad kind");
}

} // namespace hr
