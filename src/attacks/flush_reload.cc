#include "attacks/flush_reload.hh"

#include "util/log.hh"

namespace hr
{

FlushReloadRepetition::FlushReloadRepetition(
    Machine &machine, const FlushReloadConfig &config)
    : machine_(machine), config_(config)
{
}

RepetitionGadget
FlushReloadRepetition::makeGadget(bool same_addr, bool racing)
{
    FlushReloadStages stages;
    stages.probeAddr = config_.probeAddr;
    stages.otherAddr = config_.otherAddr;
    stages.syncAddr = config_.syncAddr;
    stages.envelopeOps = config_.envelopeOps;
    return makeFlushReloadGadget(machine_, stages, same_addr, racing);
}

FlushReloadOutcome
FlushReloadRepetition::runVariant(bool racing)
{
    FlushReloadOutcome outcome;
    machine_.warm(config_.otherAddr, 1);
    RepetitionGadget same = makeGadget(true, racing);
    outcome.sameAddr = same.run(config_.rounds);
    machine_.warm(config_.otherAddr, 1);
    RepetitionGadget diff = makeGadget(false, racing);
    outcome.diffAddr = diff.run(config_.rounds);
    return outcome;
}

FlushReloadOutcome
FlushReloadRepetition::runPlain()
{
    return runVariant(false);
}

FlushReloadOutcome
FlushReloadRepetition::runWithRacingGadget()
{
    return runVariant(true);
}

} // namespace hr
