#include "attacks/flush_reload.hh"

#include "util/log.hh"

namespace hr
{

FlushReloadRepetition::FlushReloadRepetition(
    Machine &machine, const FlushReloadConfig &config)
    : machine_(machine), config_(config)
{
}

RepetitionGadget
FlushReloadRepetition::makeGadget(bool same_addr, bool racing)
{
    const Addr victim_addr =
        same_addr ? config_.probeAddr : config_.otherAddr;

    // Stage 1: evict — flush the probe line (an eviction-set traversal
    // in a browser; modelled by the clflush-like harness primitive so
    // the stage itself has constant cost).
    RepetitionGadget::Stage evict;
    evict.name = "evict";
    {
        ProgramBuilder builder("fr_evict");
        RegId r = builder.movImm(0);
        builder.opChain(Opcode::Add, 40, r, 1); // fixed eviction work
        builder.halt();
        evict.program = builder.take();
    }
    evict.setup = [probe = config_.probeAddr](Machine &machine) {
        machine.flushLine(probe);
    };

    // Stage 2: load — the victim's access (same or different line).
    RepetitionGadget::Stage load;
    load.name = "load";
    if (racing) {
        load.program = makeConstantTimeStage(
            TargetExpr::loadLatency(victim_addr), Opcode::Add,
            config_.envelopeOps, config_.syncAddr, "fr_load_raced");
        load.setup = [sync = config_.syncAddr](Machine &machine) {
            machine.flushLine(sync);
        };
    } else {
        ProgramBuilder builder("fr_load");
        builder.loadAbsolute(victim_addr);
        builder.halt();
        load.program = builder.take();
    }

    // Stage 3: reload — the attacker's probe access.
    RepetitionGadget::Stage reload;
    reload.name = "reload";
    {
        ProgramBuilder builder("fr_reload");
        builder.loadAbsolute(config_.probeAddr);
        builder.halt();
        reload.program = builder.take();
    }

    return RepetitionGadget(machine_,
                            {std::move(evict), std::move(load),
                             std::move(reload)});
}

FlushReloadOutcome
FlushReloadRepetition::runVariant(bool racing)
{
    FlushReloadOutcome outcome;
    machine_.warm(config_.otherAddr, 1);
    RepetitionGadget same = makeGadget(true, racing);
    outcome.sameAddr = same.run(config_.rounds);
    machine_.warm(config_.otherAddr, 1);
    RepetitionGadget diff = makeGadget(false, racing);
    outcome.diffAddr = diff.run(config_.rounds);
    return outcome;
}

FlushReloadOutcome
FlushReloadRepetition::runPlain()
{
    return runVariant(false);
}

FlushReloadOutcome
FlushReloadRepetition::runWithRacingGadget()
{
    return runVariant(true);
}

} // namespace hr
