#include "attacks/spectreback.hh"

#include "timer/calibration.hh"
#include "util/log.hh"

namespace hr
{

SpectreBack::SpectreBack(Machine &machine, const SpectreBackConfig &config)
    : machine_(machine), config_(config), coarse_(config.timer)
{
    magConfig_ = PlruMagnifier::makeConfig(machine_, config_.plruSet,
                                           config_.magnifierRepeats,
                                           config_.plruTagBase);
    magnifier_ = std::make_unique<PlruMagnifier>(machine_, magConfig_,
                                                 PlruVariant::Reorder);

    // None of the attack's working lines may alias the magnifier set.
    const auto &l1 = machine_.hierarchy().l1();
    for (Addr addr : {config_.offset1, config_.offset2, config_.sizeAddr,
                      config_.chainHead1, config_.chainHead2}) {
        fatalIf(l1.setIndex(addr) == config_.plruSet,
                "SpectreBack: attack line aliases the magnifier set");
    }

    layoutMemory();
    build();
}

void
SpectreBack::layoutMemory()
{
    // Pointer chases: head -> offset line -> final (A or B) line.
    machine_.poke(config_.chainHead1,
                  static_cast<std::int64_t>(config_.offset1));
    machine_.poke(config_.offset1,
                  static_cast<std::int64_t>(magConfig_.a));
    machine_.poke(config_.chainHead2,
                  static_cast<std::int64_t>(config_.offset2));
    machine_.poke(config_.offset2,
                  static_cast<std::int64_t>(magConfig_.b));
    machine_.poke(config_.sizeAddr, config_.arrayWords);
}

void
SpectreBack::build()
{
    // Code Listing 3, adapted to the micro-op ISA. Program order:
    // bounds check material, the two racing chases, then the
    // (mis)speculated secret-dependent touch.
    ProgramBuilder builder("spectreback");
    xReg_ = builder.newReg();     // attacker-controlled index
    shiftReg_ = builder.newReg(); // which bit to leak

    // Bounds check: in_bounds = ((x - size) >> 63) & 1, with the size
    // word kept cold so the branch resolves late (the transient window).
    RegId size = builder.loadAbsolute(config_.sizeAddr);
    RegId diff = builder.binop(Opcode::Sub, xReg_, size);
    RegId sign = builder.binopImm(Opcode::Shr, diff, 63);
    RegId in_bounds = builder.binopImm(Opcode::And, sign, 1);

    // Chain 1: cold head -> offset1 -> access A.
    RegId c1 = builder.loadAbsolute(config_.chainHead1);
    RegId c1_off = builder.loadPointer(c1);
    builder.loadPointer(c1_off); // the access to A

    // Chain 2: cold head -> offset2 -> access B.
    RegId c2 = builder.loadAbsolute(config_.chainHead2);
    RegId c2_off = builder.loadPointer(c2);
    builder.loadPointer(c2_off); // the access to B

    // if (x < array_size) { touch offset1 or offset2 based on secret }
    auto end = builder.newLabel();
    builder.branch(in_bounds, end, /*invert=*/true); // skip iff OOB

    Instruction secret_load;
    secret_load.op = Opcode::Load;
    secret_load.dst = builder.newReg();
    secret_load.src0 = xReg_;
    secret_load.scale0 = 8; // word index
    secret_load.imm = static_cast<std::int64_t>(config_.arrayBase);
    builder.emit(secret_load);

    RegId shifted = builder.binop(Opcode::Shr, secret_load.dst, shiftReg_);
    RegId sel = builder.binopImm(Opcode::And, shifted, 1);
    const std::int64_t spread =
        static_cast<std::int64_t>(config_.offset2) -
        static_cast<std::int64_t>(config_.offset1);
    RegId dispm = builder.binopImm(Opcode::Mul, sel, spread);
    Instruction touch;
    touch.op = Opcode::Load;
    touch.dst = builder.newReg();
    touch.src0 = dispm;
    touch.scale0 = 1;
    touch.imm = static_cast<std::int64_t>(config_.offset1);
    builder.emit(touch);

    builder.bind(end);
    builder.halt();
    program_ = builder.take();
}

void
SpectreBack::primeTrial()
{
    magnifier_->prime(); // [B,C,D,E] primed, A staged in L2
    for (Addr addr : {config_.sizeAddr, config_.chainHead1,
                      config_.chainHead2, config_.offset1,
                      config_.offset2}) {
        machine_.flushLine(addr);
    }
}

void
SpectreBack::train()
{
    // In-bounds executions teach the predictor "body executes".
    for (int i = 0; i < config_.trainRounds; ++i) {
        primeTrial();
        machine_.run(program_, {{xReg_, 0}, {shiftReg_, 0}});
        machine_.settle();
    }
}

double
SpectreBack::runTrialAndTime(std::int64_t x, std::int64_t shift)
{
    machine_.run(program_, {{xReg_, x}, {shiftReg_, shift}});
    const double begin = coarse_.nowNs(machine_.now());
    magnifier_->traverse();
    return coarse_.nowNs(machine_.now()) - begin;
}

void
SpectreBack::calibrate()
{
    // Force both reorder outcomes directly and time the magnifier:
    // A first -> pinned -> slow; B first -> A evicted -> fast.
    thresholdNs_ = calibrateThreshold(
                       [&](bool slow) {
                           primeTrial();
                           machine_.warm(slow ? magConfig_.a
                                              : magConfig_.b, 1);
                           machine_.warm(slow ? magConfig_.b
                                              : magConfig_.a, 1);
                           const double begin =
                               coarse_.nowNs(machine_.now());
                           magnifier_->traverse();
                           return coarse_.nowNs(machine_.now()) - begin;
                       },
                       "SpectreBack::calibrate")
                       .thresholdNs;
}

bool
SpectreBack::leakBit(std::int64_t oob_word_index, int bit)
{
    panicIf(thresholdNs_ < 0, "SpectreBack used before calibrate()");
    train();
    primeTrial();
    // The secret word must answer quickly for the transient touch to
    // fire inside the window (staged in L2, as repeated leaky.page-style
    // attempts achieve on real hardware).
    machine_.warm(config_.arrayBase +
                      static_cast<Addr>(oob_word_index) * 8, 2);
    const double t = runTrialAndTime(oob_word_index, bit);
    // Secret bit 0 -> offset1 touched -> chain 1 accelerated -> A first
    // -> traversal slow. Bit 1 -> B first -> fast.
    return t <= thresholdNs_;
}

std::uint8_t
SpectreBack::leakByte(std::int64_t oob_word_index, int bit_base)
{
    std::uint8_t value = 0;
    for (int bit = 0; bit < 8; ++bit) {
        if (leakBit(oob_word_index, bit_base + bit))
            value |= static_cast<std::uint8_t>(1u << bit);
    }
    return value;
}

SpectreBackResult
SpectreBack::leakSecret(const std::vector<std::uint8_t> &secret)
{
    // Plant the ground truth just past the array bounds (one byte per
    // word, as a JS typed-array victim would look after boxing).
    for (std::size_t i = 0; i < secret.size(); ++i) {
        machine_.poke(config_.arrayBase +
                          (static_cast<Addr>(config_.arrayWords) + i) * 8,
                      secret[i]);
    }

    SpectreBackResult result;
    const Cycle start = machine_.now();
    std::uint64_t correct_bits = 0;
    for (std::size_t i = 0; i < secret.size(); ++i) {
        const std::int64_t oob =
            config_.arrayWords + static_cast<std::int64_t>(i);
        const std::uint8_t leaked = leakByte(oob);
        result.leaked.push_back(leaked);
        for (int bit = 0; bit < 8; ++bit) {
            correct_bits +=
                ((leaked >> bit) & 1) == ((secret[i] >> bit) & 1);
        }
        result.trials += 8;
    }
    const double seconds =
        machine_.toNs(machine_.now() - start) / 1e9;
    result.accuracy = static_cast<double>(correct_bits) /
                      static_cast<double>(8 * secret.size());
    result.kilobitsPerSecond =
        static_cast<double>(8 * secret.size()) / seconds / 1e3;
    return result;
}

} // namespace hr
