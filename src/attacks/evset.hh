/**
 * @file
 * LLC eviction-set generation without SharedArrayBuffer (paper
 * section 7.4).
 *
 * The group-testing reduction of Vila et al. (as used by Purnal et
 * al.'s Prime+Scope profiling) builds a minimal last-level-cache
 * eviction set for a target address. The only clock it uses is a
 * HackyTimer — transient P/A race + PLRU magnifier + 5 microsecond
 * browser clock — demonstrating that Hacky Racers are a drop-in
 * replacement for the removed SharedArrayBuffer timers.
 */

#ifndef HR_ATTACKS_EVSET_HH
#define HR_ATTACKS_EVSET_HH

#include <optional>
#include <vector>

#include "gadgets/hacky_timer.hh"
#include "gadgets/plru_magnifier.hh"

namespace hr
{

/** Eviction-set generator configuration. */
struct EvSetConfig
{
    EvSetConfig()
    {
        // The reload classifier must separate an LLC hit (target still
        // resident) from a full miss (target evicted): a ~30-MUL
        // reference path sits between the two.
        timer.refOps = 30;
    }

    HackyTimerConfig timer;

    Addr poolBase = 0x4000'0000; ///< attacker buffer (page-aligned)
    int poolPages = 0;           ///< 0 = auto (2x assoc x classes)
    std::uint64_t seed = 42;     ///< pool shuffling
};

/** Outcome of one eviction-set construction. */
struct EvSetResult
{
    bool success = false;
    std::vector<Addr> set;           ///< the minimal eviction set
    std::uint64_t timerQueries = 0;  ///< HackyTimer invocations
    std::uint64_t traversedLoads = 0;
    Cycle cycles = 0;                ///< total simulated time
    bool groundTruthCongruent = false; ///< all lines share the L3 set
};

/** The generator. Requires a 4-way PLRU L1 machine (HackyTimer). */
class EvictionSetGenerator
{
  public:
    EvictionSetGenerator(Machine &machine, const EvSetConfig &config);

    const EvSetConfig &config() const { return config_; }

    /**
     * Build a minimal eviction set for @p target: candidates share the
     * target's page offset (all an attacker knows under virtual
     * addressing); reduction keeps only W congruent lines.
     */
    EvSetResult build(Addr target);

    /** The test primitive: does traversing S evict target from the LLC? */
    bool evicts(const std::vector<Addr> &candidate_set, Addr target);

  private:
    Machine &machine_;
    EvSetConfig config_;
    std::unique_ptr<HackyTimer> timer_;
    std::uint64_t traversedLoads_ = 0;

    std::vector<Addr> makePool(Addr target) const;
    void setupTimer(Addr target);
    void traverse(const std::vector<Addr> &lines);
};

} // namespace hr

#endif // HR_ATTACKS_EVSET_HH
