#include "attacks/evset.hh"

#include <algorithm>

#include "util/log.hh"
#include "util/rng.hh"

namespace hr
{

EvictionSetGenerator::EvictionSetGenerator(Machine &machine,
                                           const EvSetConfig &config)
    : machine_(machine), config_(config)
{
}

void
EvictionSetGenerator::setupTimer(Addr target)
{
    // The timer's own service lines (sync, training dummy, magnifier
    // set) must not be congruent with the target in the LLC: their
    // per-query refetches would evict the target and poison verdicts.
    const auto &l3 = machine_.hierarchy().l3();
    const int target_set = l3.setIndex(target);

    HackyTimerConfig tc = config_.timer;
    while (l3.setIndex(tc.syncAddr) == target_set)
        tc.syncAddr += 64;
    while (l3.setIndex(tc.trainAddr) == target_set)
        tc.trainAddr += 64;
    for (bool collides = true; collides; ) {
        collides = false;
        auto lines = PlruMagnifier::sameSetLines(machine_, tc.plruSet, 5,
                                                 tc.plruTagBase);
        for (Addr addr : lines)
            collides |= l3.setIndex(addr) == target_set;
        if (collides)
            ++tc.plruTagBase;
    }
    timer_ = std::make_unique<HackyTimer>(machine_, tc);
    timer_->calibrate();
}

std::vector<Addr>
EvictionSetGenerator::makePool(Addr target) const
{
    const auto &l3 = machine_.hierarchy().l3().config();
    constexpr Addr kPage = 4096;
    const Addr page_offset = target % kPage;

    // Unknown L3 index bits: those above the page offset.
    const Addr sets_per_page =
        kPage / static_cast<Addr>(l3.lineBytes); // index bits known
    const Addr classes =
        static_cast<Addr>(l3.numSets) / sets_per_page;

    const int pages =
        config_.poolPages > 0
            ? config_.poolPages
            : static_cast<int>(2 * classes *
                               static_cast<Addr>(l3.assoc));

    std::vector<Addr> pool;
    pool.reserve(static_cast<std::size_t>(pages));
    for (int p = 0; p < pages; ++p) {
        pool.push_back(config_.poolBase +
                       static_cast<Addr>(p) * kPage + page_offset);
    }
    Rng rng(config_.seed);
    rng.shuffle(pool);
    return pool;
}

void
EvictionSetGenerator::traverse(const std::vector<Addr> &lines)
{
    if (lines.empty())
        return;
    ProgramBuilder builder("evset_traverse");
    RegId r = builder.movImm(0);
    for (Addr addr : lines)
        builder.loadOrderedInto(r, addr);
    builder.halt();
    Program prog = builder.take();
    machine_.run(prog);
    machine_.settle();
    traversedLoads_ += lines.size();
}

bool
EvictionSetGenerator::evicts(const std::vector<Addr> &candidate_set,
                             Addr target)
{
    // Prime target into the hierarchy, traverse the candidates, then
    // time the reload with the Hacky-Racers timer: a slow reload means
    // the candidates pushed the target out of the (inclusive) LLC.
    // Two passes: with LRU-like policies a single pass can touch every
    // candidate without ever filling after the target became
    // least-recently-used (the classic eviction-set false negative).
    machine_.warm(target, 1);
    traverse(candidate_set);
    traverse(candidate_set);
    return timer_->loadIsSlow(target);
}

EvSetResult
EvictionSetGenerator::build(Addr target)
{
    EvSetResult result;
    const Cycle start = machine_.now();
    traversedLoads_ = 0;
    setupTimer(target);

    const int assoc = machine_.hierarchy().l3().config().assoc;
    std::vector<Addr> set = makePool(target);

    if (!evicts(set, target)) {
        result.cycles = machine_.now() - start;
        result.timerQueries = timer_->stats().queries;
        return result; // pool too small: cannot succeed
    }

    // Group-testing reduction with backtracking (Vila et al.): remove
    // one of assoc+1 groups per round while the remainder still evicts;
    // when stuck (a noisy timer verdict removed too much), restore the
    // most recently removed group and try again.
    std::vector<std::vector<Addr>> removed_stack;
    int backtracks = 0;
    const int max_backtracks = 8 * assoc;
    while (static_cast<int>(set.size()) > assoc) {
        const std::size_t groups = std::min(
            set.size(), static_cast<std::size_t>(assoc) + 1);
        bool removed = false;
        for (std::size_t g = 0; g < groups && !removed; ++g) {
            // Balanced split: group g covers [g*n/G, (g+1)*n/G).
            const std::size_t lo = g * set.size() / groups;
            const std::size_t hi = (g + 1) * set.size() / groups;
            if (hi <= lo)
                continue;
            std::vector<Addr> reduced;
            reduced.reserve(set.size() - (hi - lo));
            reduced.insert(reduced.end(), set.begin(),
                           set.begin() + static_cast<std::ptrdiff_t>(lo));
            reduced.insert(reduced.end(),
                           set.begin() + static_cast<std::ptrdiff_t>(hi),
                           set.end());
            // Confirm removals with a second vote: a single false
            // positive here would silently drop a needed line.
            if (evicts(reduced, target) && evicts(reduced, target)) {
                removed_stack.emplace_back(
                    set.begin() + static_cast<std::ptrdiff_t>(lo),
                    set.begin() + static_cast<std::ptrdiff_t>(hi));
                set = std::move(reduced);
                removed = true;
            }
        }
        if (!removed) {
            if (++backtracks > max_backtracks)
                break; // give up
            if (!removed_stack.empty()) {
                set.insert(set.end(), removed_stack.back().begin(),
                           removed_stack.back().end());
                removed_stack.pop_back();
            }
            // Everything is deterministic, so retrying the identical
            // configuration would stall forever: rotate the candidate
            // order to perturb both the grouping and the traversal.
            std::rotate(set.begin(), set.begin() + 1, set.end());
            // Near the end, group tests become knife-edge sensitive;
            // switch to majority-voted singleton elimination (the
            // "just repeat the measurement" robustness real attacks
            // use against verdict noise).
            if (static_cast<int>(set.size()) < 3 * assoc) {
                bool any = true;
                while (any &&
                       static_cast<int>(set.size()) > assoc) {
                    any = false;
                    for (std::size_t i = 0;
                         i < set.size() &&
                         static_cast<int>(set.size()) > assoc;
                         ++i) {
                        std::vector<Addr> reduced;
                        for (std::size_t j = 0; j < set.size(); ++j)
                            if (j != i)
                                reduced.push_back(set[j]);
                        int votes = 0;
                        for (int v = 0; v < 3; ++v)
                            votes += evicts(reduced, target);
                        if (votes >= 2) {
                            set = std::move(reduced);
                            --i;
                            any = true;
                        }
                    }
                }
                break;
            }
        }
    }

    result.set = set;
    result.timerQueries = timer_->stats().queries;
    result.traversedLoads = traversedLoads_;
    result.cycles = machine_.now() - start;
    int final_votes = 0;
    for (int v = 0; v < 3; ++v)
        final_votes += evicts(set, target);
    result.success =
        static_cast<int>(set.size()) == assoc && final_votes >= 2;

    // Ground truth (the simulator knows physical set mappings).
    const auto &l3 = machine_.hierarchy().l3();
    result.groundTruthCongruent = true;
    for (Addr addr : set) {
        if (l3.setIndex(addr) != l3.setIndex(target))
            result.groundTruthCongruent = false;
    }
    return result;
}

} // namespace hr
