/**
 * @file
 * SpectreBack (paper section 7.3): a backwards-in-time Spectre V1
 * variant.
 *
 * A bounds-check-bypassing transient load touches one of two cold
 * "accelerator" lines depending on a secret bit. Two pointer chases
 * *earlier in program order* each stall on one of those lines; the
 * secret therefore decides which chase finishes first, converting the
 * transient leak into the relative order of two final accesses (A vs
 * B) — the input format of the PLRU reorder magnifier (section 6.2),
 * readable with a coarse clock. The secret is transmitted to state
 * created *before* the misspeculation is squashed, which defeats
 * rollback-style Spectre defences.
 */

#ifndef HR_ATTACKS_SPECTREBACK_HH
#define HR_ATTACKS_SPECTREBACK_HH

#include <cstdint>
#include <vector>

#include "gadgets/plru_magnifier.hh"
#include "timer/coarse_timer.hh"

namespace hr
{

/** SpectreBack configuration. */
struct SpectreBackConfig
{
    TimerConfig timer;

    Addr arrayBase = 0x40'0000;  ///< in-bounds array (word-addressed)
    int arrayWords = 256;        ///< bounds; secrets live past the end
    Addr offset1 = 0x50'0000;    ///< accelerator line for chain 1 ("A")
    Addr offset2 = 0x50'4000;    ///< accelerator line for chain 2 ("B")
    Addr sizeAddr = 0x52'0000;   ///< bounds word (kept cold: the window)
    Addr chainHead1 = 0x54'0000; ///< chain 1 entry pointer
    Addr chainHead2 = 0x54'4000; ///< chain 2 entry pointer

    int plruSet = 9;          ///< L1 set for the reorder magnifier
    int plruTagBase = 900;
    int magnifierRepeats = 400;
    int trainRounds = 2;
};

/** Result of leaking a buffer. */
struct SpectreBackResult
{
    std::vector<std::uint8_t> leaked;
    double accuracy = 0.0;       ///< fraction of correct bits
    double kilobitsPerSecond = 0.0; ///< leak rate over simulated time
    std::uint64_t trials = 0;
};

/**
 * The SpectreBack attack. Requires a Machine with a 4-way tree-PLRU L1
 * (MachineConfig::plruProfile()).
 */
class SpectreBack
{
  public:
    SpectreBack(Machine &machine, const SpectreBackConfig &config);

    const SpectreBackConfig &config() const { return config_; }

    /** Calibrate the coarse-clock decision threshold. */
    void calibrate();

    /** Leak one bit of the word at out-of-bounds word index. */
    bool leakBit(std::int64_t oob_word_index, int bit);

    /** Leak a whole byte (8 leakBit calls). */
    std::uint8_t leakByte(std::int64_t oob_word_index, int bit_base = 0);

    /**
     * Leak `count` secret bytes placed immediately after the array and
     * compare against ground truth.
     */
    SpectreBackResult leakSecret(const std::vector<std::uint8_t> &secret);

  private:
    Machine &machine_;
    SpectreBackConfig config_;
    CoarseTimer coarse_;
    PlruMagnifierConfig magConfig_;
    std::unique_ptr<PlruMagnifier> magnifier_;
    Program program_;
    RegId xReg_ = kNoReg;
    RegId shiftReg_ = kNoReg;
    double thresholdNs_ = -1.0;

    void build();
    void layoutMemory();
    void train();
    void primeTrial();
    double runTrialAndTime(std::int64_t x, std::int64_t shift);
};

} // namespace hr

#endif // HR_ATTACKS_SPECTREBACK_HH
