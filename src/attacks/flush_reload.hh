/**
 * @file
 * Flush+reload repetition study (paper section 7.1, Fig. 7).
 *
 * Demonstrates that naive repetition of a flush+reload round leaks no
 * total-time signal — the victim-load stage's timing anti-correlates
 * with the reload stage's and cancels it — and that hiding the load
 * stage inside a constant-time racing envelope restores the signal.
 */

#ifndef HR_ATTACKS_FLUSH_RELOAD_HH
#define HR_ATTACKS_FLUSH_RELOAD_HH

#include "gadgets/repetition.hh"

namespace hr
{

/** Configuration of the repetition study. */
struct FlushReloadConfig
{
    Addr probeAddr = 0x600'0000;  ///< the shared line being probed
    Addr otherAddr = 0x608'0000;  ///< victim's alternative (kept warm)
    Addr syncAddr = 0x100'0000;   ///< for the racing envelope
    int rounds = 200;
    int envelopeOps = 260;        ///< baseline > worst-case load time
};

/** One experiment outcome: per-stage time stacks for both cases. */
struct FlushReloadOutcome
{
    StageBreakdown sameAddr; ///< victim accessed the probe line
    StageBreakdown diffAddr; ///< victim accessed a different line

    /** Total-time signal (cycles; what a coarse timer accumulates). */
    std::int64_t
    totalSignal() const
    {
        return static_cast<std::int64_t>(diffAddr.total()) -
               static_cast<std::int64_t>(sameAddr.total());
    }
};

/** The flush+reload repetition harness. */
class FlushReloadRepetition
{
  public:
    FlushReloadRepetition(Machine &machine,
                          const FlushReloadConfig &config);

    /** Plain repetition (Fig. 7a): stages timed as-is. */
    FlushReloadOutcome runPlain();

    /**
     * Repetition with the victim-load stage wrapped in a racing
     * envelope (Fig. 7b): its duration becomes constant.
     */
    FlushReloadOutcome runWithRacingGadget();

  private:
    Machine &machine_;
    FlushReloadConfig config_;

    FlushReloadOutcome runVariant(bool racing);
    RepetitionGadget makeGadget(bool same_addr, bool racing);
};

} // namespace hr

#endif // HR_ATTACKS_FLUSH_RELOAD_HH
