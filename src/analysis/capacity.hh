/**
 * @file
 * Capacity analysis drivers: the glue between the QIF partition
 * engine (qif.hh) and the analyzable universe (registered gadgets,
 * registered channels, annotated demo programs).
 *
 * Gadget/channel mode records one steady-state sample() per polarity
 * through the same Machine::beginRecord surface the leakage
 * classifier uses (leakage.hh: recordGadgetFootprints) and bounds
 * the {fast, slow} two-valuation domain — the domain a binary covert
 * channel actually signals over, so the bound is directly comparable
 * to the measured Shannon MI per symbol.
 *
 * Program mode generalizes to N values: when a demo target declares
 * `secretValues`, every secret source in its TaintSpec takes each
 * value (enumerateSpecDomain) and the exact reference interpreter +
 * footprint model runs once per valuation. Targets without a declared
 * domain fall back to their fast/slow assignment pair.
 *
 * All entry points are deterministic pure functions of (target,
 * profile, params): `analyze --capacity --jobs N` is byte-identical
 * for every N because the drivers share no mutable state.
 */

#ifndef HR_ANALYSIS_CAPACITY_HH
#define HR_ANALYSIS_CAPACITY_HH

#include <string>

#include "analysis/leakage.hh"
#include "analysis/qif.hh"

namespace hr
{

/** Capacity verdict for one analyze target. */
struct CapacityReport
{
    std::string target;  ///< gadget/channel/program name
    std::string kind;    ///< "gadget" | "channel" | "program"
    std::string gadget;  ///< underlying gadget (channels)
    std::string profile; ///< machine profile analyzed under
    std::string status = "ok"; ///< ok | incompatible | calib_fail | error:
    std::string detail;
    bool opaque = false; ///< a recording went opaque (approximate)
    /** Labels of the analyzed valuations, domain order. */
    std::vector<std::string> valuationLabels;
    CapacityBound bound;
};

/**
 * Bound a registered gadget's per-trial capacity over the {fast,
 * slow} polarity domain on @p profile (empty = the gadget's default
 * analysis profile). @p params forward to the gadget's configure().
 */
CapacityReport analyzeGadgetCapacity(const std::string &name,
                                     const std::string &profile,
                                     const ParamSet &params);

/**
 * Bound a registered channel: its underlying gadget analyzed exactly
 * as the channel configures it, stamped with the channel's name.
 * This is the number `fig_capacity_bound_vs_measured` compares the
 * channel's measured Shannon MI per symbol against.
 */
CapacityReport analyzeChannelCapacity(const std::string &name,
                                      const std::string &profile,
                                      const ParamSet &params);

/** Bound an annotated demo program over its declared secret domain. */
CapacityReport analyzeProgramCapacity(const ProgramTarget &target,
                                      const std::string &profile);

/**
 * Render a bound for table cells: bits to one decimal, "*" appended
 * when any valuation was widened (the bound is sound but not the
 * model's provable optimum), or the non-ok status verbatim.
 */
std::string formatBound(const CapacityReport &report);

/**
 * Memoized formatted capacity bound for a registered gadget under its
 * default analysis profile. Used by the `hr_bench gadgets`/`channels`
 * listings to stamp every registry entry ("n/a" on analysis error).
 */
std::string capacityBoundFor(const std::string &gadget);

} // namespace hr

#endif // HR_ANALYSIS_CAPACITY_HH
