#include "analysis/capacity.hh"

#include <iomanip>
#include <map>
#include <mutex>
#include <sstream>
#include <utility>

#include "channel/channel_registry.hh"
#include "gadgets/gadget_registry.hh"
#include "sim/profiles.hh"

namespace hr
{

CapacityReport
analyzeGadgetCapacity(const std::string &name, const std::string &profile,
                      const ParamSet &params)
{
    CapacityReport report;
    report.kind = "gadget";
    const GadgetInfo &info = GadgetRegistry::instance().resolve(name);
    report.target = info.name;
    report.gadget = info.name;
    report.profile =
        profile.empty() ? defaultAnalysisProfile(info.name) : profile;
    const MachineConfig config =
        machineConfigForProfile(report.profile);
    try {
        std::unique_ptr<TimingSource> source =
            GadgetRegistry::instance().make(info.name, params);
        MachinePool machines(config);
        GadgetRecording recording =
            recordGadgetFootprints(*source, machines, config);
        if (recording.status != "ok") {
            report.status = recording.status;
            return report;
        }
        report.opaque = recording.opaque;
        for (const SecretValuation &valuation :
             SecretDomain::twoPolarity().valuations)
            report.valuationLabels.push_back(valuation.label);
        std::vector<CacheFootprint> footprints;
        footprints.push_back(std::move(recording.footprint[0]));
        footprints.push_back(std::move(recording.footprint[1]));
        report.bound = boundCapacity(footprints, config);
        report.detail = info.kind;
    } catch (const std::exception &e) {
        report.status = std::string("error: ") + e.what();
    }
    return report;
}

CapacityReport
analyzeChannelCapacity(const std::string &name,
                       const std::string &profile, const ParamSet &params)
{
    const ChannelInfo &info = ChannelRegistry::instance().resolve(name);
    // Analyze the gadget exactly as this channel configures it, the
    // same parameter split analyzeChannel (leakage.cc) applies.
    const ChannelConfig config =
        ChannelRegistry::instance().makeConfig(info.name, params);
    CapacityReport report = analyzeGadgetCapacity(
        config.gadget, profile, config.gadgetParams);
    report.kind = "channel";
    report.target = info.name;
    report.detail = info.modulation + " over " + info.gadget;
    return report;
}

CapacityReport
analyzeProgramCapacity(const ProgramTarget &target,
                       const std::string &profile)
{
    CapacityReport report;
    report.kind = "program";
    report.target = target.name;
    report.profile = profile.empty() ? "default" : profile;
    report.detail = target.description;
    const MachineConfig config =
        machineConfigForProfile(report.profile);
    try {
        const std::shared_ptr<const DecodedProgram> decoded =
            decodeProgram(target.program);

        SecretDomain domain;
        if (!target.secretValues.empty()) {
            // The declared N-valued domain: secrets enumerate over
            // secretValues on top of the fast-polarity public state.
            std::map<Addr, std::int64_t> base = target.pokes;
            for (const auto &[addr, value] : target.fastPokes)
                base[addr] = value;
            domain = enumerateSpecDomain(target.spec,
                                         target.secretValues,
                                         target.fastRegs, base);
        } else {
            // No declared domain: fall back to the classifier's
            // fast/slow assignment pair.
            for (int polarity = 0; polarity < 2; ++polarity) {
                SecretValuation valuation;
                valuation.label = polarity == 0 ? "fast" : "slow";
                valuation.regs = polarity == 0 ? target.fastRegs
                                               : target.slowRegs;
                valuation.pokes = target.pokes;
                const auto &overrides = polarity == 0
                                            ? target.fastPokes
                                            : target.slowPokes;
                for (const auto &[addr, value] : overrides)
                    valuation.pokes[addr] = value;
                domain.valuations.push_back(std::move(valuation));
            }
        }

        // One taint pass supplies the unresolved-address count every
        // valuation's footprint must carry, so capacity exactness
        // matches the classifier's (an unresolvable secret-dependent
        // address widens here exactly when it voids exactness there).
        const TaintReport taint = analyzeTaint(
            *decoded, target.spec, domain.valuations.front().regs,
            domain.valuations.front().pokes);

        std::vector<CacheFootprint> footprints;
        for (const SecretValuation &valuation : domain.valuations) {
            FootprintBuilder builder(config);
            builder.addProgram(interpretProgram(*decoded, valuation.regs,
                                                valuation.pokes));
            builder.addUnresolved(
                static_cast<int>(taint.unresolvedMemPcs.size()));
            footprints.push_back(builder.finish());
            report.valuationLabels.push_back(valuation.label);
        }
        report.bound = boundCapacity(footprints, config);
    } catch (const std::exception &e) {
        report.status = std::string("error: ") + e.what();
    }
    return report;
}

std::string
formatBound(const CapacityReport &report)
{
    if (report.status != "ok")
        return report.status;
    std::ostringstream os;
    os << std::fixed << std::setprecision(1) << report.bound.bits;
    if (!report.bound.exact)
        os << '*';
    return os.str();
}

std::string
capacityBoundFor(const std::string &gadget)
{
    static std::mutex mutex;
    static std::map<std::string, std::string> cache;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(gadget);
    if (it != cache.end())
        return it->second;
    std::string cell;
    try {
        cell = formatBound(analyzeGadgetCapacity(gadget, "", {}));
    } catch (const std::exception &) {
        cell = "n/a";
    }
    cache[gadget] = cell;
    return cell;
}

} // namespace hr
