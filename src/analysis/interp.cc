#include "analysis/interp.hh"

#include <limits>

#include "util/memory_image.hh"

namespace hr
{
namespace
{

std::int64_t
aluOf(Opcode op, std::int64_t v0, std::int64_t rhs)
{
    const auto u0 = static_cast<std::uint64_t>(v0);
    const auto u1 = static_cast<std::uint64_t>(rhs);
    switch (op) {
      case Opcode::MovImm: return rhs;
      case Opcode::Add: return static_cast<std::int64_t>(u0 + u1);
      case Opcode::Sub: return static_cast<std::int64_t>(u0 - u1);
      case Opcode::Mul: return static_cast<std::int64_t>(u0 * u1);
      case Opcode::Div:
        if (rhs == 0)
            return 0;
        if (v0 == std::numeric_limits<std::int64_t>::min() && rhs == -1)
            return v0;
        return v0 / rhs;
      case Opcode::And: return v0 & rhs;
      case Opcode::Or: return v0 | rhs;
      case Opcode::Xor: return v0 ^ rhs;
      case Opcode::Shl:
        return static_cast<std::int64_t>(u0 << (u1 & 63));
      case Opcode::Shr:
        return static_cast<std::int64_t>(u0 >> (u1 & 63));
      default: return 0;
    }
}

Addr
eaOf(const Instruction &inst, const std::vector<std::int64_t> &regs)
{
    std::uint64_t ea = static_cast<std::uint64_t>(inst.imm);
    if (inst.src0 != kNoReg)
        ea += static_cast<std::uint64_t>(regs[inst.src0]) *
              static_cast<std::uint64_t>(
                  static_cast<std::int64_t>(inst.scale0));
    if (inst.src1 != kNoReg)
        ea += static_cast<std::uint64_t>(regs[inst.src1]) *
              static_cast<std::uint64_t>(
                  static_cast<std::int64_t>(inst.scale1));
    return static_cast<Addr>(ea);
}

std::int64_t
readWord(const std::map<Addr, std::int64_t> &overlay,
         const std::map<Addr, std::int64_t> &init, Addr addr)
{
    const Addr word = MemoryImage::wordAddr(addr);
    auto it = overlay.find(word);
    if (it != overlay.end())
        return it->second;
    auto in = init.find(word);
    return in != init.end() ? in->second : 0;
}

/**
 * Walk the squashed side of a branch for up to @p window ops against
 * scratch copies of the registers, recording every memory EA the
 * wrong path would issue before the squash. Nested branches stop the
 * walk (second-level speculation is out of model).
 */
void
transientWalk(const DecodedProgram &program, std::int32_t start,
              std::vector<std::int64_t> regs,
              const std::map<Addr, std::int64_t> &overlay,
              const std::map<Addr, std::int64_t> &init, int window,
              std::set<Addr> &out)
{
    std::map<Addr, std::int64_t> scratch; // wrong-path store forwarding
    std::int32_t pc = start;
    const auto size = static_cast<std::int32_t>(program.size());
    for (int step = 0; step < window && pc >= 0 && pc < size; ++step) {
        const Instruction &inst =
            program.code[static_cast<std::size_t>(pc)];
        const DecodedOp &dop = program.ops[static_cast<std::size_t>(pc)];
        if (dop.next == NextPcKind::Branch || dop.next == NextPcKind::Halt)
            break;
        switch (inst.op) {
          case Opcode::Load: {
            const Addr ea = eaOf(inst, regs);
            out.insert(ea);
            const Addr word = MemoryImage::wordAddr(ea);
            auto it = scratch.find(word);
            regs[inst.dst] = it != scratch.end()
                                 ? it->second
                                 : readWord(overlay, init, ea);
            break;
          }
          case Opcode::Prefetch:
            out.insert(eaOf(inst, regs));
            break;
          case Opcode::Store: {
            const Addr ea = eaOf(inst, regs);
            out.insert(ea);
            scratch[MemoryImage::wordAddr(ea)] = regs[inst.dst];
            break;
          }
          case Opcode::Rdtsc:
            regs[inst.dst] = 0;
            break;
          case Opcode::Lea:
            regs[inst.dst] =
                static_cast<std::int64_t>(eaOf(inst, regs));
            break;
          case Opcode::Nop:
          case Opcode::Jump:
          case Opcode::Halt:
          case Opcode::Branch:
            break;
          default: {
            const std::int64_t v0 =
                inst.src0 != kNoReg ? regs[inst.src0] : 0;
            const std::int64_t rhs = inst.src1 != kNoReg
                                         ? regs[inst.src1]
                                         : inst.imm;
            regs[inst.dst] = aluOf(inst.op, v0, rhs);
            break;
          }
        }
        pc = dop.nextPc;
    }
}

} // namespace

const char *
fuShortName(FuClass fu)
{
    switch (fu) {
      case FuClass::IntAlu: return "alu";
      case FuClass::IntMul: return "mul";
      case FuClass::FpDiv: return "div";
      case FuClass::MemRead: return "ld";
      case FuClass::MemWrite: return "st";
      case FuClass::BranchU: return "br";
    }
    return "?";
}

InterpResult
interpretProgram(const DecodedProgram &program,
                 const std::vector<std::pair<RegId, std::int64_t>>
                     &initial_regs,
                 const std::map<Addr, std::int64_t> &initial_memory,
                 const InterpOptions &options)
{
    InterpResult result;
    std::map<Addr, std::int64_t> init;
    for (const auto &[addr, value] : initial_memory)
        init[MemoryImage::wordAddr(addr)] = value;

    std::vector<std::int64_t> regs(program.numRegs, 0);
    for (const auto &[reg, value] : initial_regs)
        if (reg < program.numRegs)
            regs[reg] = value;

    const auto size = static_cast<std::int32_t>(program.size());
    std::int32_t pc = 0;
    while (pc >= 0 && pc < size) {
        if (result.steps >= options.stepCap) {
            result.capped = true;
            break;
        }
        ++result.steps;
        const Instruction &inst =
            program.code[static_cast<std::size_t>(pc)];
        const DecodedOp &dop = program.ops[static_cast<std::size_t>(pc)];
        ++result.fuCount[static_cast<int>(dop.fu)];
        std::int32_t next = dop.nextPc;
        switch (inst.op) {
          case Opcode::Load: {
            const Addr ea = eaOf(inst, regs);
            result.touchOrder.push_back(ea);
            regs[inst.dst] = readWord(result.memOut, init, ea);
            break;
          }
          case Opcode::Prefetch:
            result.touchOrder.push_back(eaOf(inst, regs));
            break;
          case Opcode::Store: {
            const Addr ea = eaOf(inst, regs);
            result.touchOrder.push_back(ea);
            result.memOut[MemoryImage::wordAddr(ea)] = regs[inst.dst];
            break;
          }
          case Opcode::Branch: {
            const std::int64_t v0 =
                inst.src0 != kNoReg ? regs[inst.src0] : 0;
            const bool taken = (v0 != 0) != inst.invert;
            next = taken ? inst.target : pc + 1;
            if (options.transientWindow > 0) {
                const std::int32_t wrong =
                    taken ? pc + 1 : inst.target;
                if (wrong >= 0 && wrong < size)
                    transientWalk(program, wrong, regs, result.memOut,
                                  init, options.transientWindow,
                                  result.transientEas);
            }
            break;
          }
          case Opcode::Rdtsc:
            result.usedClock = true;
            regs[inst.dst] = 0;
            break;
          case Opcode::Halt:
            result.halted = true;
            return result;
          case Opcode::Nop:
          case Opcode::Jump:
            break;
          case Opcode::Lea:
            regs[inst.dst] =
                static_cast<std::int64_t>(eaOf(inst, regs));
            break;
          default: {
            const std::int64_t v0 =
                inst.src0 != kNoReg ? regs[inst.src0] : 0;
            const std::int64_t rhs = inst.src1 != kNoReg
                                         ? regs[inst.src1]
                                         : inst.imm;
            regs[inst.dst] = aluOf(inst.op, v0, rhs);
            break;
          }
        }
        pc = next;
    }
    return result;
}

} // namespace hr
