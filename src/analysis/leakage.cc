#include "analysis/leakage.hh"

#include <algorithm>
#include <mutex>
#include <sstream>

#include "channel/channel_registry.hh"
#include "gadgets/gadget_registry.hh"
#include "sim/profiles.hh"
#include "util/log.hh"
#include "util/memory_image.hh"

namespace hr
{
namespace
{

/** Interpreter budget for recorded co-runners (endless loops). */
constexpr std::uint64_t kCoRunnerCap = 100'000;

} // namespace

CacheFootprint
foldTrialTrace(const TrialTrace &trace, const MachineConfig &config)
{
    FootprintBuilder builder(config);
    std::map<Addr, std::int64_t> memory;
    for (const TraceOp &op : trace.ops) {
        switch (op.kind) {
          case TraceOp::Kind::Poke:
            memory[MemoryImage::wordAddr(op.addr)] = op.value;
            break;
          case TraceOp::Kind::Warm:
            builder.addWarm(op.addr);
            break;
          case TraceOp::Kind::FlushLine:
            builder.addFlushLine(op.addr);
            break;
          case TraceOp::Kind::FlushAll:
            builder.addFlushAll();
            break;
          case TraceOp::Kind::Run: {
            InterpOptions options;
            InterpResult primary = interpretProgram(
                *op.run.decoded, op.run.initialRegs, memory, options);
            // A primary run the machine cut off at maxCycles executed
            // only a prefix of the interpreter's stream: downgrade it
            // to approximate so no exactness contract cites it.
            if (!op.result.halted)
                primary.capped = true;
            builder.addProgram(primary, /*primary=*/true);
            // Co-runners are abandoned when the primary halts; their
            // architectural stream is a capped approximation.
            InterpOptions extra_options;
            extra_options.stepCap = kCoRunnerCap;
            std::vector<InterpResult> extras;
            for (const TraceOp::Extra &extra : op.run.extras) {
                extras.push_back(interpretProgram(*extra.decoded, {},
                                                  memory,
                                                  extra_options));
                builder.addProgram(extras.back(), /*primary=*/false);
            }
            for (const auto &[addr, value] : primary.memOut)
                memory[addr] = value;
            for (const InterpResult &extra : extras)
                for (const auto &[addr, value] : extra.memOut)
                    memory[addr] = value;
            break;
          }
          default:
            break; // reads and reseeds do not shape the footprint
        }
    }
    return builder.finish();
}

GadgetRecording
recordGadgetFootprints(TimingSource &source, MachinePool &machines,
                       const MachineConfig &config)
{
    GadgetRecording recording;
    {
        MachinePool::Lease lease = machines.lease();
        if (!source.compatible(lease.machine())) {
            recording.status = "incompatible";
            return recording;
        }
        try {
            source.calibrate(lease.machine());
            source.sample(lease.machine(), false);
            source.sample(lease.machine(), true);
        } catch (const std::exception &) {
            recording.status = "calib_fail";
            return recording;
        }
    }
    for (int polarity = 0; polarity < 2; ++polarity) {
        MachinePool::Lease lease = machines.lease();
        Machine &machine = lease.machine();
        TrialTrace trace;
        machine.beginRecord(trace);
        source.sample(machine, polarity == 1);
        machine.endRecord();
        recording.opaque |= trace.opaque;
        recording.footprint[polarity] = foldTrialTrace(trace, config);
    }
    return recording;
}

namespace
{

/** Sum of traced per-context demand observations after a sample. */
struct Observed
{
    std::uint64_t accesses = 0;
    std::uint64_t fills = 0;
    std::uint64_t misses = 0;
};

Observed
observe(const Machine &machine)
{
    Observed out;
    for (int c = 0; c < machine.contexts(); ++c) {
        const ContextAccessStats stats =
            machine.contextStats(static_cast<ContextId>(c));
        out.accesses += stats.hits[0] + stats.misses;
        out.fills += stats.fills;
        out.misses += stats.misses;
    }
    return out;
}

/** Static-vs-dynamic checks shared by gadget and program validation. */
void
checkPolarity(ValidationResult &v, const CacheFootprint &fp,
              const Observed &obs, int polarity)
{
    const char *side = polarity == 0 ? "fast" : "slow";
    if (fp.accessesExact) {
        if (obs.accesses != fp.memOps)
            v.failures.push_back(
                std::string(side) + ": accesses " +
                std::to_string(obs.accesses) + " != static " +
                std::to_string(fp.memOps));
    } else if (obs.accesses < fp.completedMemOps) {
        v.failures.push_back(
            std::string(side) + ": accesses " +
            std::to_string(obs.accesses) + " < static lower bound " +
            std::to_string(fp.completedMemOps));
    }
    if (fp.fillsExact && obs.fills != fp.predictedFills)
        v.failures.push_back(std::string(side) + ": fills " +
                             std::to_string(obs.fills) + " != static " +
                             std::to_string(fp.predictedFills));
}

void
checkDistinguishability(ValidationResult &v, const LeakageReport &report)
{
    const bool same =
        v.observedAccesses[0] == v.observedAccesses[1] &&
        v.observedFills[0] == v.observedFills[1] &&
        v.observedMisses[0] == v.observedMisses[1] &&
        v.observedCycles[0] == v.observedCycles[1];
    if (!report.constantTime && same)
        v.failures.push_back("static verdict is leaky but the two "
                             "polarities were dynamically identical");
    if (report.constantTime && report.footprint[0].accessesExact &&
        report.footprint[1].accessesExact && !same)
        v.failures.push_back("static verdict is constant-time but the "
                             "polarities diverged dynamically");
}

/** Build the final class/observer fields once both footprints exist. */
void
finishReport(LeakageReport &report, const MachineConfig &config)
{
    report.diff = diffFootprints(report.footprint[0], report.footprint[1],
                                 config);
    report.leakClass = classifyLeak(report.diff);
    report.constantTime = report.leakClass == "constant_time" &&
                          report.taintFindings.empty();
    report.observers = predictObservers(report.diff, config);
    // A leaky gadget's own readout observes its own state difference
    // by construction; record that so observer-superset checks against
    // self-measuring channels are explicit rather than implied.
    if (!report.constantTime && report.kind != "program") {
        const std::string self =
            report.gadget.empty() ? report.target : report.gadget;
        if (std::find(report.observers.begin(), report.observers.end(),
                      self) == report.observers.end())
            report.observers.push_back(self);
        std::sort(report.observers.begin(), report.observers.end());
    }
}

} // namespace

std::string
defaultAnalysisProfile(const std::string &gadget)
{
    static const char *kCandidates[] = {"default", "plru", "smt2",
                                        "smt2_plru"};
    std::unique_ptr<TimingSource> source =
        GadgetRegistry::instance().make(gadget);
    for (const char *profile : kCandidates) {
        Machine machine(machineConfigForProfile(profile));
        if (source->compatible(machine))
            return profile;
    }
    return "smt2_plru";
}

LeakageReport
analyzeGadget(const std::string &name, const std::string &profile,
              const ParamSet &params, MachinePool *pool)
{
    LeakageReport report;
    report.kind = "gadget";
    const GadgetInfo &info = GadgetRegistry::instance().resolve(name);
    report.target = info.name;
    report.gadget = info.name;
    report.profile =
        profile.empty() ? defaultAnalysisProfile(info.name) : profile;
    const MachineConfig config =
        machineConfigForProfile(report.profile);

    // Record and validate on the SAME pooled machine: sources bind
    // lazily per machine serial and fold one-time calibration work
    // into their first samples on a new machine, so a priming lease
    // (calibrate + one throwaway sample per polarity) is what makes
    // the recorded traces the source's steady-state behaviour — the
    // behaviour channels actually run.
    std::unique_ptr<MachinePool> own_pool;
    MachinePool *machines = pool;
    if (machines == nullptr) {
        own_pool = std::make_unique<MachinePool>(config);
        machines = own_pool.get();
    }

    std::unique_ptr<TimingSource> source;
    try {
        source = GadgetRegistry::instance().make(info.name, params);
        GadgetRecording recording =
            recordGadgetFootprints(*source, *machines, config);
        if (recording.status != "ok") {
            report.status = recording.status;
            return report;
        }
        report.opaque = recording.opaque;
        report.footprint[0] = std::move(recording.footprint[0]);
        report.footprint[1] = std::move(recording.footprint[1]);
    } catch (const std::exception &e) {
        report.status = std::string("error: ") + e.what();
        return report;
    }
    finishReport(report, config);
    report.detail = info.kind;

    if (pool != nullptr) {
        ValidationResult &v = report.validation;
        v.ran = true;
        try {
            for (int polarity = 0; polarity < 2; ++polarity) {
                MachinePool::Lease lease = pool->lease();
                Machine &machine = lease.machine();
                const Cycle start = machine.now();
                source->sample(machine, polarity == 1);
                machine.settle();
                const Observed obs = observe(machine);
                v.observedAccesses[polarity] = obs.accesses;
                v.observedFills[polarity] = obs.fills;
                v.observedMisses[polarity] = obs.misses;
                v.observedCycles[polarity] = machine.now() - start;
                checkPolarity(v, report.footprint[polarity], obs,
                              polarity);
            }
            checkDistinguishability(v, report);
        } catch (const std::exception &e) {
            v.failures.push_back(std::string("error: ") + e.what());
        }
        v.passed = v.failures.empty();
    }
    return report;
}

LeakageReport
analyzeChannel(const std::string &name, const std::string &profile,
               const ParamSet &params, MachinePool *pool)
{
    const ChannelInfo &info = ChannelRegistry::instance().resolve(name);
    // Analyze the gadget exactly as this channel configures it: the
    // channel's own gadget defaults merged with the caller's params
    // (channel-level keys like frame_bits are split off by makeConfig).
    const ChannelConfig config =
        ChannelRegistry::instance().makeConfig(info.name, params);
    LeakageReport report =
        analyzeGadget(config.gadget, profile, config.gadgetParams, pool);
    report.kind = "channel";
    report.target = info.name;
    report.detail = info.modulation + " over " + info.gadget;
    return report;
}

LeakageReport
analyzeProgramTarget(const ProgramTarget &target,
                     const std::string &profile, MachinePool *pool)
{
    LeakageReport report;
    report.kind = "program";
    report.target = target.name;
    report.profile = profile.empty() ? "default" : profile;
    const MachineConfig config =
        machineConfigForProfile(report.profile);

    const std::shared_ptr<const DecodedProgram> decoded =
        decodeProgram(target.program);

    const auto polarityMemory = [&](int polarity) {
        std::map<Addr, std::int64_t> memory = target.pokes;
        const auto &overrides =
            polarity == 0 ? target.fastPokes : target.slowPokes;
        for (const auto &[addr, value] : overrides)
            memory[addr] = value;
        return memory;
    };

    const TaintReport taint = analyzeTaint(
        *decoded, target.spec, target.fastRegs, polarityMemory(0));
    report.taintFindings = taint.findings;

    for (int polarity = 0; polarity < 2; ++polarity) {
        FootprintBuilder builder(config);
        const auto &regs =
            polarity == 0 ? target.fastRegs : target.slowRegs;
        builder.addProgram(
            interpretProgram(*decoded, regs, polarityMemory(polarity)));
        builder.addUnresolved(
            static_cast<int>(taint.unresolvedMemPcs.size()));
        report.footprint[polarity] = builder.finish();
    }
    finishReport(report, config);
    if (!taint.findings.empty()) {
        std::ostringstream detail;
        detail << taint.findings.size() << " taint finding(s):";
        for (const TaintFinding &finding : taint.findings)
            detail << " pc" << finding.pc << "="
                   << leakKindName(finding.kind);
        report.detail = detail.str();
    } else {
        report.detail = target.description;
    }

    if (pool != nullptr) {
        ValidationResult &v = report.validation;
        v.ran = true;
        // Equal-count leaks (same number of touches to different
        // lines) are invisible in the aggregate counters, so the
        // line-set delta is validated by presence probes instead —
        // exact whenever nothing could evict on either side.
        const bool probe_lines =
            report.diff.cacheDelta() &&
            report.footprint[0].fillsExact &&
            report.footprint[1].fillsExact;
        try {
            for (int polarity = 0; polarity < 2; ++polarity) {
                MachinePool::Lease lease = pool->lease();
                Machine &machine = lease.machine();
                for (const auto &[addr, value] : polarityMemory(polarity))
                    machine.poke(addr, value);
                Program copy = target.program;
                const Cycle start = machine.now();
                machine.run(copy, polarity == 0 ? target.fastRegs
                                                : target.slowRegs);
                machine.settle();
                const Observed obs = observe(machine);
                v.observedAccesses[polarity] = obs.accesses;
                v.observedFills[polarity] = obs.fills;
                v.observedMisses[polarity] = obs.misses;
                v.observedCycles[polarity] = machine.now() - start;
                checkPolarity(v, report.footprint[polarity], obs,
                              polarity);
                if (probe_lines) {
                    const char *side = polarity == 0 ? "fast" : "slow";
                    const auto &mine = polarity == 0
                                           ? report.diff.linesOnlyA
                                           : report.diff.linesOnlyB;
                    const auto &theirs = polarity == 0
                                             ? report.diff.linesOnlyB
                                             : report.diff.linesOnlyA;
                    for (Addr line : mine)
                        if (machine.probeLevel(line) == 0)
                            v.failures.push_back(
                                std::string(side) +
                                ": predicted-touched line absent");
                    for (Addr line : theirs)
                        if (machine.probeLevel(line) != 0)
                            v.failures.push_back(
                                std::string(side) +
                                ": predicted-untouched line present");
                }
            }
            const bool same =
                v.observedAccesses[0] == v.observedAccesses[1] &&
                v.observedFills[0] == v.observedFills[1] &&
                v.observedCycles[0] == v.observedCycles[1];
            if (report.diff.fuDeltaAny() && same)
                v.failures.push_back(
                    "FU-count delta predicted but polarities were "
                    "dynamically identical");
            if (report.leakClass == "constant_time" &&
                report.taintFindings.empty() &&
                report.footprint[0].accessesExact &&
                report.footprint[1].accessesExact && !same)
                v.failures.push_back(
                    "constant-time verdict but polarities diverged");
        } catch (const std::exception &e) {
            v.failures.push_back(std::string("error: ") + e.what());
        }
        v.passed = v.failures.empty();
    }
    return report;
}

const std::vector<ProgramTarget> &
programTargets()
{
    static const std::vector<ProgramTarget> targets = [] {
        std::vector<ProgramTarget> out;

        // Known leak: the secret selects which cache line a load
        // touches (the classic secret-indexed table lookup).
        {
            ProgramTarget t;
            t.name = "secret_indexed_load";
            t.description =
                "load address = base + secret*64: the archetypal "
                "secret-indexed table lookup";
            ProgramBuilder b(t.name);
            const RegId secret = b.newReg();
            Instruction load;
            load.op = Opcode::Load;
            load.dst = b.newReg();
            load.src0 = secret;
            load.scale0 = 64;
            load.imm = 0x6100'0000;
            b.emit(load);
            b.halt();
            t.program = b.take();
            t.spec.regs = {secret};
            t.fastRegs = {{secret, 0}};
            t.slowRegs = {{secret, 1}};
            t.secretValues = {0, 1, 2, 3, 4, 5, 6, 7};
            out.push_back(std::move(t));
        }

        // Known leak: branch on the secret, with a divide and a load
        // on the taken side only (branch + control-flow findings).
        {
            ProgramTarget t;
            t.name = "secret_branch";
            t.description = "if (secret) { div chain; load A } else "
                            "{ load B }";
            ProgramBuilder b(t.name);
            const RegId secret = b.newReg();
            const std::int32_t slow_path = b.newLabel();
            const std::int32_t done = b.newLabel();
            b.branch(secret, slow_path);
            b.loadAbsolute(0x6200'0000);
            b.jump(done);
            b.bind(slow_path);
            const RegId d = b.movImm(1'000'000);
            b.chainOpImm(Opcode::Div, d, 3);
            b.loadAbsolute(0x6200'2000);
            b.bind(done);
            b.halt();
            t.program = b.take();
            t.spec.regs = {secret};
            t.fastRegs = {{secret, 0}};
            t.slowRegs = {{secret, 1}};
            t.secretValues = {0, 1};
            out.push_back(std::move(t));
        }

        // Known clean: the secret flows through arithmetic only and is
        // stored to a fixed address — constant-time by construction.
        {
            ProgramTarget t;
            t.name = "clean_arith";
            t.description = "arithmetic-only mixing of the secret, "
                            "result stored to a fixed address";
            ProgramBuilder b(t.name);
            const RegId secret = b.newReg();
            RegId acc = b.movImm(0x5a5a);
            acc = b.binop(Opcode::Xor, acc, secret);
            acc = b.binop(Opcode::Add, acc, secret);
            b.chainOpImm(Opcode::Mul, acc, 31);
            b.chainOpImm(Opcode::Shr, acc, 7);
            b.storeAbsolute(0x6300'0000, acc);
            b.halt();
            t.program = b.take();
            t.spec.regs = {secret};
            t.fastRegs = {{secret, 17}};
            t.slowRegs = {{secret, 4242}};
            t.secretValues = {1, 5, 17, 4242};
            out.push_back(std::move(t));
        }

        // Known leak via memory taint: the secret lives in memory and
        // a value loaded from it indexes a second load.
        {
            ProgramTarget t;
            t.name = "secret_mem_index";
            t.description = "value loaded from a secret-marked line "
                            "indexes a second load";
            ProgramBuilder b(t.name);
            const RegId key = b.loadAbsolute(0x6400'0000);
            Instruction load;
            load.op = Opcode::Load;
            load.dst = b.newReg();
            load.src0 = key;
            load.scale0 = 64;
            load.imm = 0x6500'0000;
            b.emit(load);
            b.halt();
            t.program = b.take();
            t.spec.addrs = {0x6400'0000};
            t.fastPokes[0x6400'0000] = 2;
            t.slowPokes[0x6400'0000] = 5;
            t.secretValues = {0, 1, 2, 3};
            out.push_back(std::move(t));
        }

        // Known clean: a pointer chase fully resolved by the memory
        // environment — exercises constant propagation through loads.
        {
            ProgramTarget t;
            t.name = "clean_pointer_chase";
            t.description = "4-hop pointer chase over poked pointers; "
                            "no secret involved";
            ProgramBuilder b(t.name);
            RegId p = b.movImm(0x6600'0000);
            for (int hop = 0; hop < 4; ++hop)
                p = b.loadPointer(p);
            b.storeAbsolute(0x6600'8000, p);
            b.halt();
            t.program = b.take();
            t.pokes[0x6600'0000] = 0x6600'1000;
            t.pokes[0x6600'1000] = 0x6600'2000;
            t.pokes[0x6600'2000] = 0x6600'3000;
            t.pokes[0x6600'3000] = 0x6600'4000;
            t.fastRegs = {};
            t.slowRegs = {};
            out.push_back(std::move(t));
        }
        return out;
    }();
    return targets;
}

const ProgramTarget *
findProgramTarget(const std::string &name)
{
    for (const ProgramTarget &target : programTargets())
        if (target.name == name)
            return &target;
    return nullptr;
}

std::string
leakageClassFor(const std::string &gadget)
{
    static std::mutex mutex;
    static std::map<std::string, std::string> cache;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(gadget);
    if (it != cache.end())
        return it->second;
    std::string verdict;
    try {
        const LeakageReport report =
            analyzeGadget(gadget, "", {}, nullptr);
        verdict = report.status == "ok" ? report.leakClass
                                        : report.status;
    } catch (const std::exception &) {
        verdict = "n/a";
    }
    cache[gadget] = verdict;
    return verdict;
}

} // namespace hr
