/**
 * @file
 * Reference interpreter: exact architectural execution of a
 * DecodedProgram with no microarchitecture.
 *
 * The static footprint model needs the precise sequence of memory
 * addresses and functional-unit classes a program commits — for the
 * deterministic gadget programs the registry builds, that sequence is
 * a pure function of the code, the initial registers, and the initial
 * memory words, so a few thousand ISA steps recover it in
 * microseconds where the simulator spends milliseconds per trial.
 * Semantics mirror OooCore::computeAlu / computeEa exactly (wrapping
 * uint64 arithmetic, shift masking, the Div edge cases, word-granular
 * memory reading zero when unwritten).
 *
 * Beyond architectural state, the interpreter models the speculative
 * window: at every executed branch it walks the NOT-taken path for up
 * to `transientWindow` ops against scratch state and records the
 * memory lines that wrong-path execution could transiently install —
 * the mechanism behind the paper's transient-probe gadgets, which an
 * architectural-only model would miss entirely.
 */

#ifndef HR_ANALYSIS_INTERP_HH
#define HR_ANALYSIS_INTERP_HH

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "isa/decoded_program.hh"
#include "util/types.hh"

namespace hr
{

constexpr int kNumFuClasses = 6;

struct InterpOptions
{
    std::uint64_t stepCap = 200'000; ///< endless co-runner guard
    int transientWindow = 64;        ///< wrong-path walk depth (ROB-ish)
};

/** What one architectural execution did. */
struct InterpResult
{
    bool halted = false; ///< committed a Halt within the cap
    bool capped = false; ///< step cap hit (counts are lower bounds)
    bool usedClock = false; ///< executed Rdtsc (value modeled as 0)
    std::uint64_t steps = 0;
    /** Committed ops per functional-unit class. */
    std::array<std::uint64_t, kNumFuClasses> fuCount{};
    /** Committed Load/Store/Prefetch effective addresses, in order. */
    std::vector<Addr> touchOrder;
    /** Mem EAs reachable on squashed wrong paths (transient window). */
    std::set<Addr> transientEas;
    /** Final memory-word writes (overlay over the initial image). */
    std::map<Addr, std::int64_t> memOut;

    std::uint64_t memOps() const
    {
        return fuCount[static_cast<int>(FuClass::MemRead)] +
               fuCount[static_cast<int>(FuClass::MemWrite)];
    }
};

/**
 * Execute @p program architecturally from @p initial_regs and
 * @p initial_memory (word-granular; unwritten words read as zero).
 */
InterpResult
interpretProgram(const DecodedProgram &program,
                 const std::vector<std::pair<RegId, std::int64_t>>
                     &initial_regs = {},
                 const std::map<Addr, std::int64_t> &initial_memory = {},
                 const InterpOptions &options = {});

/** Short name of a functional-unit class ("alu", "mul", ...). */
const char *fuShortName(FuClass fu);

} // namespace hr

#endif // HR_ANALYSIS_INTERP_HH
