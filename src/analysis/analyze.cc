#include "analysis/analyze.hh"

#include <algorithm>
#include <atomic>
#include <iomanip>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

#include "channel/channel_registry.hh"
#include "gadgets/gadget_registry.hh"
#include "sim/profiles.hh"
#include "util/log.hh"
#include "util/table.hh"

namespace hr
{
namespace
{

enum class TargetKind
{
    Gadget,
    Channel,
    Program,
};

struct Task
{
    TargetKind kind;
    std::string name;
};

/** Every analyzable name, for suggestions and prefix resolution. */
std::vector<std::pair<TargetKind, std::string>>
allTargets()
{
    std::vector<std::pair<TargetKind, std::string>> out;
    for (const GadgetInfo *info : GadgetRegistry::instance().all())
        out.emplace_back(TargetKind::Gadget, info->name);
    for (const ChannelInfo *info : ChannelRegistry::instance().all())
        out.emplace_back(TargetKind::Channel, info->name);
    for (const ProgramTarget &target : programTargets())
        out.emplace_back(TargetKind::Program, target.name);
    return out;
}

/**
 * Resolve one CLI name against gadgets, channels, and demo programs:
 * exact match first, then unique prefix, with an edit-distance
 * suggestion on failure — the same contract as the registries' own
 * resolve(), but spanning all three namespaces at once.
 */
Task
resolveTarget(const std::string &name)
{
    const auto universe = allTargets();
    std::vector<const std::pair<TargetKind, std::string> *> prefix;
    for (const auto &entry : universe) {
        if (entry.second == name)
            return {entry.first, entry.second};
        if (entry.second.rfind(name, 0) == 0)
            prefix.push_back(&entry);
    }
    if (prefix.size() == 1)
        return {prefix.front()->first, prefix.front()->second};
    if (prefix.size() > 1) {
        std::string choices;
        for (const auto *entry : prefix)
            choices += (choices.empty() ? "" : ", ") + entry->second;
        fatal("analyze: '" + name + "' is ambiguous (" + choices + ")");
    }
    std::vector<std::string> names;
    for (const auto &entry : universe)
        names.push_back(entry.second);
    const std::string suggestion = closestMatch(name, names);
    fatal("analyze: unknown target '" + name + "'" +
          (suggestion.empty()
               ? ""
               : " (did you mean '" + suggestion + "'?)") +
          "; see `hr_bench gadgets`, `channels`, or the demo programs "
          "in `analyze --list-programs`");
}

LeakageReport
runTask(const Task &task, const AnalyzeOptions &options)
{
    // Pin the profile before building the validation pool so the pool
    // machines match the machines the static pass models.
    std::string profile = options.profile;
    try {
        if (profile.empty()) {
            if (task.kind == TargetKind::Gadget)
                profile = defaultAnalysisProfile(task.name);
            else if (task.kind == TargetKind::Channel)
                profile = defaultAnalysisProfile(
                    ChannelRegistry::instance().resolve(task.name).gadget);
            else
                profile = "default";
        }

        std::unique_ptr<MachinePool> pool;
        if (options.validate)
            pool = std::make_unique<MachinePool>(
                machineConfigForProfile(profile));

        switch (task.kind) {
          case TargetKind::Gadget:
            return analyzeGadget(task.name, profile, options.params,
                                 pool.get());
          case TargetKind::Channel:
            return analyzeChannel(task.name, profile, options.params,
                                  pool.get());
          case TargetKind::Program:
            return analyzeProgramTarget(*findProgramTarget(task.name),
                                        profile, pool.get());
        }
    } catch (const std::exception &e) {
        LeakageReport report;
        report.target = task.name;
        report.profile = profile;
        report.status = std::string("error: ") + e.what();
        return report;
    }
    return {};
}

CapacityReport
runCapacityTask(const Task &task, const AnalyzeOptions &options)
{
    try {
        switch (task.kind) {
          case TargetKind::Gadget:
            return analyzeGadgetCapacity(task.name, options.profile,
                                         options.params);
          case TargetKind::Channel:
            return analyzeChannelCapacity(task.name, options.profile,
                                          options.params);
          case TargetKind::Program:
            return analyzeProgramCapacity(
                *findProgramTarget(task.name), options.profile);
        }
    } catch (const std::exception &e) {
        CapacityReport report;
        report.target = task.name;
        report.profile = options.profile;
        report.status = std::string("error: ") + e.what();
        return report;
    }
    return {};
}

/** The resolved, registry-ordered task list for one invocation. */
std::vector<Task>
resolveTasks(const AnalyzeOptions &options)
{
    std::vector<Task> tasks;
    if (options.all) {
        for (const auto &[kind, name] : allTargets())
            tasks.push_back({kind, name});
    } else {
        fatalIf(options.targets.empty(),
                "analyze: name at least one gadget/channel/program "
                "(or --all)");
        for (const std::string &name : options.targets)
            tasks.push_back(resolveTarget(name));
    }
    return tasks;
}

/**
 * Per-index result slots + a shared work queue: output order is the
 * task order regardless of --jobs, and every task builds its own
 * machines/pool, so workers share nothing mutable.
 */
template <typename Report, typename Run>
std::vector<Report>
runTasks(const std::vector<Task> &tasks, int jobs, Run run)
{
    std::vector<Report> reports(tasks.size());
    const int count = static_cast<int>(tasks.size());
    const int workers = std::max(1, std::min(jobs, count));
    std::atomic<int> next{0};
    auto work = [&]() {
        for (;;) {
            const int i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            reports[static_cast<std::size_t>(i)] =
                run(tasks[static_cast<std::size_t>(i)]);
        }
    };
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(workers - 1));
    for (int t = 1; t < workers; ++t)
        threads.emplace_back(work);
    work();
    for (std::thread &thread : threads)
        thread.join();
    return reports;
}

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (const std::string &name : names)
        out += (out.empty() ? "" : ",") + name;
    return out;
}

std::string
validationCell(const ValidationResult &v)
{
    if (!v.ran)
        return "-";
    return v.passed ? "pass" : "FAIL";
}

} // namespace

std::vector<LeakageReport>
runAnalysis(const AnalyzeOptions &options)
{
    return runTasks<LeakageReport>(
        resolveTasks(options), options.jobs,
        [&](const Task &task) { return runTask(task, options); });
}

std::vector<CapacityReport>
runCapacityAnalysis(const AnalyzeOptions &options)
{
    return runTasks<CapacityReport>(
        resolveTasks(options), options.jobs,
        [&](const Task &task) { return runCapacityTask(task, options); });
}

void
printReportTable(std::ostream &os,
                 const std::vector<LeakageReport> &reports)
{
    Table table({"target", "kind", "profile", "status", "leakage",
                 "validated", "predicted observers"});
    for (const LeakageReport &report : reports)
        table.addRow({report.target, report.kind, report.profile,
                      report.status,
                      report.status == "ok" ? report.leakClass : "-",
                      validationCell(report.validation),
                      joinNames(report.observers)});
    os << table.render();

    // Findings and validation failures do not fit table cells; print
    // them as trailing annotations like the scenario check lines.
    for (const LeakageReport &report : reports) {
        for (const TaintFinding &finding : report.taintFindings)
            os << "  " << report.target << ": pc " << finding.pc << " "
               << leakKindName(finding.kind) << ": " << finding.detail
               << "\n";
        for (const std::string &failure : report.validation.failures)
            os << "  " << report.target
               << ": validation FAIL: " << failure << "\n";
    }
}

void
printReportJson(std::ostream &os,
                const std::vector<LeakageReport> &reports)
{
    os << "[\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const LeakageReport &r = reports[i];
        os << "  {\n";
        os << "    \"target\": " << jsonQuote(r.target) << ",\n";
        os << "    \"kind\": " << jsonQuote(r.kind) << ",\n";
        if (!r.gadget.empty())
            os << "    \"gadget\": " << jsonQuote(r.gadget) << ",\n";
        os << "    \"profile\": " << jsonQuote(r.profile) << ",\n";
        os << "    \"status\": " << jsonQuote(r.status) << ",\n";
        os << "    \"leak_class\": " << jsonQuote(r.leakClass) << ",\n";
        os << "    \"constant_time\": "
           << (r.constantTime ? "true" : "false") << ",\n";
        os << "    \"opaque\": " << (r.opaque ? "true" : "false")
           << ",\n";
        os << "    \"est_cycle_delta\": " << jsonNum(r.diff.estCycleDelta)
           << ",\n";
        os << "    \"observers\": [";
        for (std::size_t j = 0; j < r.observers.size(); ++j)
            os << (j ? ", " : "") << jsonQuote(r.observers[j]);
        os << "],\n";
        os << "    \"taint_findings\": [";
        for (std::size_t j = 0; j < r.taintFindings.size(); ++j) {
            const TaintFinding &finding = r.taintFindings[j];
            os << (j ? ", " : "") << "{\"pc\": " << finding.pc
               << ", \"kind\": "
               << jsonQuote(leakKindName(finding.kind))
               << ", \"detail\": " << jsonQuote(finding.detail) << "}";
        }
        os << "],\n";
        os << "    \"footprint\": [";
        for (int p = 0; p < 2; ++p) {
            const CacheFootprint &fp = r.footprint[p];
            os << (p ? ", " : "") << "{\"lines\": " << fp.lines.size()
               << ", \"transient_lines\": " << fp.transientLines.size()
               << ", \"mem_ops\": " << fp.memOps
               << ", \"predicted_fills\": " << fp.predictedFills
               << ", \"fills_exact\": "
               << (fp.fillsExact ? "true" : "false")
               << ", \"accesses_exact\": "
               << (fp.accessesExact ? "true" : "false") << "}";
        }
        os << "],\n";
        os << "    \"validation\": {\"ran\": "
           << (r.validation.ran ? "true" : "false") << ", \"passed\": "
           << (r.validation.passed ? "true" : "false")
           << ", \"failures\": [";
        for (std::size_t j = 0; j < r.validation.failures.size(); ++j)
            os << (j ? ", " : "")
               << jsonQuote(r.validation.failures[j]);
        os << "]},\n";
        os << "    \"detail\": " << jsonQuote(r.detail) << "\n";
        os << "  }" << (i + 1 < reports.size() ? "," : "") << "\n";
    }
    os << "]\n";
}

namespace
{

/** One bits cell: one decimal, "*" when the partition was widened. */
std::string
bitsCell(double bits, bool exact)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(1) << bits;
    if (!exact)
        os << '*';
    return os.str();
}

} // namespace

void
printCapacityTable(std::ostream &os,
                   const std::vector<CapacityReport> &reports)
{
    Table table({"target", "kind", "profile", "status", "vals",
                 "cap_bound", "l1_fill_set", "probe_sequence",
                 "fu_timing", "transient", "best surface"});
    for (const CapacityReport &report : reports) {
        std::vector<std::string> row = {report.target, report.kind,
                                        report.profile, report.status};
        if (report.status == "ok") {
            row.push_back(std::to_string(report.bound.valuations));
            row.push_back(bitsCell(report.bound.bits,
                                   report.bound.exact));
            for (const FamilyBound &fb : report.bound.families)
                row.push_back(bitsCell(fb.bits, fb.exact));
            row.push_back(report.bound.bestFamily);
        } else {
            while (row.size() < 11)
                row.push_back("-");
        }
        table.addRow(row);
    }
    os << table.render();
}

void
printCapacityJson(std::ostream &os,
                  const std::vector<CapacityReport> &reports)
{
    os << "[\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const CapacityReport &r = reports[i];
        os << "  {\n";
        os << "    \"target\": " << jsonQuote(r.target) << ",\n";
        os << "    \"kind\": " << jsonQuote(r.kind) << ",\n";
        if (!r.gadget.empty())
            os << "    \"gadget\": " << jsonQuote(r.gadget) << ",\n";
        os << "    \"profile\": " << jsonQuote(r.profile) << ",\n";
        os << "    \"status\": " << jsonQuote(r.status) << ",\n";
        os << "    \"opaque\": " << (r.opaque ? "true" : "false")
           << ",\n";
        os << "    \"valuations\": [";
        for (std::size_t j = 0; j < r.valuationLabels.size(); ++j)
            os << (j ? ", " : "") << jsonQuote(r.valuationLabels[j]);
        os << "],\n";
        os << "    \"cap_bound_bits\": " << jsonNum(r.bound.bits)
           << ",\n";
        os << "    \"joint_classes\": " << r.bound.jointClasses
           << ",\n";
        os << "    \"exact\": " << (r.bound.exact ? "true" : "false")
           << ",\n";
        os << "    \"best_family\": " << jsonQuote(r.bound.bestFamily)
           << ",\n";
        os << "    \"families\": [";
        for (std::size_t j = 0; j < r.bound.families.size(); ++j) {
            const FamilyBound &fb = r.bound.families[j];
            os << (j ? ", " : "") << "{\"family\": "
               << jsonQuote(observerFamilyName(fb.family))
               << ", \"classes\": " << fb.classes
               << ", \"widened\": " << fb.widened
               << ", \"bits\": " << jsonNum(fb.bits) << ", \"exact\": "
               << (fb.exact ? "true" : "false") << "}";
        }
        os << "],\n";
        os << "    \"detail\": " << jsonQuote(r.detail) << "\n";
        os << "  }" << (i + 1 < reports.size() ? "," : "") << "\n";
    }
    os << "]\n";
}

} // namespace hr
