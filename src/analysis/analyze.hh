/**
 * @file
 * Driver for `hr_bench analyze`: resolves target names (gadgets,
 * channels, annotated demo programs), runs the static analyzer —
 * optionally cross-validated on pooled machines — across a worker
 * pool, and renders the reports as an aligned table or JSON.
 *
 * Determinism contract: the report list depends only on the target
 * set and profile, never on --jobs. Each target is analyzed on
 * machines of its own (fresh Machine instances and a per-target
 * MachinePool), so workers share no mutable state, and results land
 * in per-index slots joined in registry order.
 */

#ifndef HR_ANALYSIS_ANALYZE_HH
#define HR_ANALYSIS_ANALYZE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/capacity.hh"
#include "analysis/leakage.hh"

namespace hr
{

/** Options for one analyze invocation (CLI or tests). */
struct AnalyzeOptions
{
    /** Gadget/channel/program names; resolved with suggestions. */
    std::vector<std::string> targets;
    bool all = false;       ///< every gadget + channel + demo program
    std::string profile;    ///< empty = per-gadget default profile
    int jobs = 1;
    bool validate = true;   ///< cross-validate on pooled machines
    bool capacity = false;  ///< QIF capacity bounds instead of classes
    ParamSet params;        ///< forwarded to gadget configure()
};

/** Run the analyzer over the resolved target set. Fatal (throws) on
 * an unknown target name, with a closestMatch suggestion. */
std::vector<LeakageReport> runAnalysis(const AnalyzeOptions &options);

/**
 * Run the capacity engine (capacity.hh) over the resolved target set
 * instead of the leak classifier — same resolution, ordering, and
 * --jobs determinism contract as runAnalysis; `validate` is ignored
 * (capacity bounds are checked against measurement by the
 * fig_capacity_bound_vs_measured scenario, not per-run validation).
 */
std::vector<CapacityReport>
runCapacityAnalysis(const AnalyzeOptions &options);

/** Aligned human-readable table of reports. */
void printReportTable(std::ostream &os,
                      const std::vector<LeakageReport> &reports);

/** Machine-readable JSON array of reports. */
void printReportJson(std::ostream &os,
                     const std::vector<LeakageReport> &reports);

/** Aligned capacity table: joint bound + per-family bits columns. */
void printCapacityTable(std::ostream &os,
                        const std::vector<CapacityReport> &reports);

/** Machine-readable JSON array of capacity reports. */
void printCapacityJson(std::ostream &os,
                       const std::vector<CapacityReport> &reports);

} // namespace hr

#endif // HR_ANALYSIS_ANALYZE_HH
