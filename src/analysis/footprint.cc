#include "analysis/footprint.hh"

#include <algorithm>
#include <cmath>

namespace hr
{
namespace
{

/** Issue-latency weight per FU class for the cycle-delta estimate. */
double
fuWeight(const MachineConfig &config, int fu)
{
    switch (static_cast<FuClass>(fu)) {
      case FuClass::IntAlu: return 1.0;
      case FuClass::IntMul: return 3.0;
      case FuClass::FpDiv: return 20.0;
      case FuClass::MemRead:
      case FuClass::MemWrite:
        return static_cast<double>(config.memory.l1Latency);
      case FuClass::BranchU: return 1.0;
    }
    return 1.0;
}

} // namespace

FootprintBuilder::FootprintBuilder(const MachineConfig &config)
    : config_(config)
{
}

Addr
FootprintBuilder::lineOf(Addr addr) const
{
    return addr & ~static_cast<Addr>(config_.memory.l1.lineBytes - 1);
}

void
FootprintBuilder::addProgram(const InterpResult &run, bool primary)
{
    // A clock-reading program can branch on Rdtsc, which the
    // interpreter models as 0 — its trip counts are not trustworthy
    // even as a lower bound.
    if (primary && !run.capped && !run.usedClock)
        fp_.completedMemOps += run.memOps();
    fp_.hasCoRunners |= !primary;
    for (Addr ea : run.touchOrder) {
        const Addr line = lineOf(ea);
        fp_.events.push_back({TouchEvent::Kind::Demand, line});
        fp_.lines.insert(line);
        fp_.demandLines.insert(line);
    }
    for (Addr ea : run.transientEas)
        fp_.transientLines.insert(lineOf(ea));
    for (int fu = 0; fu < kNumFuClasses; ++fu)
        fp_.fuCount[fu] += run.fuCount[fu];
    fp_.memOps += run.memOps();
    fp_.capped |= run.capped;
    fp_.usedClock |= run.usedClock;
    fp_.anyBranches |=
        run.fuCount[static_cast<int>(FuClass::BranchU)] != 0;
}

void
FootprintBuilder::addWarm(Addr addr)
{
    const Addr line = lineOf(addr);
    fp_.events.push_back({TouchEvent::Kind::Warm, line});
    fp_.lines.insert(line);
}

void
FootprintBuilder::addFlushLine(Addr addr)
{
    fp_.events.push_back({TouchEvent::Kind::FlushLine, lineOf(addr)});
}

void
FootprintBuilder::addFlushAll()
{
    fp_.events.push_back({TouchEvent::Kind::FlushAll, 0});
}

void
FootprintBuilder::addUnresolved(int count)
{
    fp_.unresolvedMemOps += count;
}

CacheFootprint
FootprintBuilder::finish()
{
    const CacheConfig &l1 = config_.memory.l1;
    const int shift = __builtin_ctz(l1.lineBytes);
    const auto set_of = [&](Addr line) {
        return static_cast<int>((line >> shift) &
                                static_cast<Addr>(l1.numSets - 1));
    };

    // Per-set pressure over everything that can reach the L1,
    // including speculative touches (they install lines too).
    bool any_excess = false;
    for (const std::set<Addr> *group :
         {&fp_.lines, &fp_.transientLines}) {
        for (Addr line : *group)
            fp_.sets[set_of(line)].lines.insert(line);
    }
    for (auto &[set, pressure] : fp_.sets) {
        (void)set;
        pressure.exceedsAssoc =
            static_cast<int>(pressure.lines.size()) > l1.assoc;
        pressure.plruReach =
            l1.policy == PolicyKind::TreePlru &&
            static_cast<int>(pressure.lines.size()) >= l1.assoc;
        any_excess |= pressure.exceedsAssoc;
    }

    // Presence simulation: an exact L1 demand-fill prediction as long
    // as nothing can evict (no set over associativity) and the touch
    // stream is complete (no cap, no wrong-path accesses, no
    // unresolved addresses). Merged in-flight misses share one fill,
    // so "first touch while absent" counts episodes exactly.
    std::set<Addr> present;
    for (const TouchEvent &ev : fp_.events) {
        switch (ev.kind) {
          case TouchEvent::Kind::Demand:
            if (present.insert(ev.line).second)
                ++fp_.predictedFills;
            break;
          case TouchEvent::Kind::Warm:
            present.insert(ev.line);
            break;
          case TouchEvent::Kind::FlushLine:
            present.erase(ev.line);
            break;
          case TouchEvent::Kind::FlushAll:
            present.clear();
            break;
        }
    }
    const bool complete = !fp_.capped && !fp_.anyBranches &&
                          !fp_.usedClock && !fp_.hasCoRunners &&
                          fp_.unresolvedMemOps == 0;
    fp_.accessesExact = complete;
    fp_.fillsExact =
        complete && !any_excess && fp_.transientLines.empty();
    return std::move(fp_);
}

FootprintDiff
diffFootprints(const CacheFootprint &a, const CacheFootprint &b,
               const MachineConfig &config)
{
    FootprintDiff diff;
    std::set_difference(a.lines.begin(), a.lines.end(), b.lines.begin(),
                        b.lines.end(),
                        std::back_inserter(diff.linesOnlyA));
    std::set_difference(b.lines.begin(), b.lines.end(), a.lines.begin(),
                        a.lines.end(),
                        std::back_inserter(diff.linesOnlyB));
    std::set_difference(a.transientLines.begin(), a.transientLines.end(),
                        b.transientLines.begin(), b.transientLines.end(),
                        std::back_inserter(diff.transientOnlyA));
    std::set_difference(b.transientLines.begin(), b.transientLines.end(),
                        a.transientLines.begin(), a.transientLines.end(),
                        std::back_inserter(diff.transientOnlyB));
    for (int fu = 0; fu < kNumFuClasses; ++fu)
        diff.fuDelta[fu] =
            static_cast<std::int64_t>(a.fuCount[fu]) -
            static_cast<std::int64_t>(b.fuCount[fu]);
    diff.orderDiffers = !diff.cacheDelta() && a.events != b.events;
    for (const auto &[set, pa] : a.sets) {
        auto it = b.sets.find(set);
        diff.pressureDiffers |=
            it == b.sets.end() ||
            pa.exceedsAssoc != it->second.exceedsAssoc;
    }
    for (const auto &[set, pb] : b.sets) {
        (void)pb;
        diff.pressureDiffers |= a.sets.find(set) == a.sets.end();
    }
    diff.approximate = a.capped || b.capped ||
                       a.unresolvedMemOps + b.unresolvedMemOps > 0;

    double est = 0;
    for (int fu = 0; fu < kNumFuClasses; ++fu)
        est += std::abs(static_cast<double>(diff.fuDelta[fu])) *
               fuWeight(config, fu);
    est += static_cast<double>(diff.linesOnlyA.size() +
                               diff.linesOnlyB.size()) *
           static_cast<double>(config.memory.memLatency);
    diff.estCycleDelta = est;
    return diff;
}

std::string
classifyLeak(const FootprintDiff &diff)
{
    std::string base;
    if (diff.cacheDelta())
        base = "cache_footprint";
    else if (diff.transientDelta())
        base = "transient_cache";
    else if (diff.orderDiffers)
        base = "cache_order";
    if (diff.fuDeltaAny())
        return base.empty() ? "fu_timing" : base + "+fu";
    return base.empty() ? "constant_time" : base;
}

std::vector<std::string>
predictObservers(const FootprintDiff &diff, const MachineConfig &config)
{
    const bool plru = config.memory.l1.policy == PolicyKind::TreePlru;
    const bool multi = config.contexts >= 2;
    const bool presence = diff.cacheDelta() || diff.transientDelta();
    std::set<std::string> out;
    if (presence) {
        out.insert("repetition");
        out.insert("arbitrary_magnifier");
        out.insert("arith_magnifier");
        if (plru) {
            out.insert("plru_pa_magnifier");
            out.insert("plru_pin_magnifier");
            out.insert("hacky_timer");
        }
        if (multi)
            out.insert("l1_contention");
    }
    if (diff.orderDiffers && plru)
        out.insert("plru_reorder_magnifier");
    if (diff.estCycleDelta > 0) {
        if (multi)
            out.insert("smt_contention");
        // 5 us coarse-clock resolution in cycles at the profile clock.
        if (diff.estCycleDelta >= 5.0 * config.ghz * 1000.0)
            out.insert("coarse_timer");
    }
    return {out.begin(), out.end()};
}

} // namespace hr
