#include "analysis/taint.hh"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/memory_image.hh"

namespace hr
{
namespace
{

/** One abstract register/memory value: constant lattice + taint bit. */
struct AbsVal
{
    bool known = false;
    std::int64_t value = 0;
    bool tainted = false;

    static AbsVal constant(std::int64_t v) { return {true, v, false}; }
    static AbsVal unknown(bool taint = false) { return {false, 0, taint}; }
};

AbsVal
join(const AbsVal &a, const AbsVal &b)
{
    AbsVal out;
    out.known = a.known && b.known && a.value == b.value;
    out.value = out.known ? a.value : 0;
    out.tainted = a.tainted || b.tainted;
    return out;
}

bool
sameVal(const AbsVal &a, const AbsVal &b)
{
    return a.known == b.known && a.tainted == b.tainted &&
           (!a.known || a.value == b.value);
}

/**
 * Flow-sensitive abstract machine state at one program point:
 * registers plus a word-granular memory environment. Absent memory
 * entries read the caller's initial image unless a store to an
 * unresolvable address havocked the environment.
 */
struct State
{
    bool reachable = false;
    std::vector<AbsVal> regs;
    std::map<Addr, AbsVal> mem; ///< word addr -> abstract value
    bool memHavoc = false;
    bool memHavocTainted = false;
};

bool
joinInto(State &into, const State &from)
{
    if (!from.reachable)
        return false;
    if (!into.reachable) {
        into = from;
        return true;
    }
    bool changed = false;
    for (std::size_t r = 0; r < into.regs.size(); ++r) {
        AbsVal j = join(into.regs[r], from.regs[r]);
        if (!sameVal(j, into.regs[r])) {
            into.regs[r] = j;
            changed = true;
        }
    }
    // Memory: keep only keys both sides track; a key absent on either
    // side falls back to that side's base semantics, which the havoc
    // flags summarize conservatively.
    for (auto it = into.mem.begin(); it != into.mem.end();) {
        auto other = from.mem.find(it->first);
        if (other == from.mem.end()) {
            it = into.mem.erase(it);
            changed = true;
            continue;
        }
        AbsVal j = join(it->second, other->second);
        if (!sameVal(j, it->second)) {
            it->second = j;
            changed = true;
        }
        ++it;
    }
    if (from.memHavoc && !into.memHavoc) {
        into.memHavoc = true;
        changed = true;
    }
    if (from.memHavocTainted && !into.memHavocTainted) {
        into.memHavocTainted = true;
        changed = true;
    }
    return changed;
}

struct EaResult
{
    bool known = false;
    Addr ea = 0;
    bool tainted = false;
};

/**
 * imm + src0*scale0 + src1*scale1 over the abstract state. A zero
 * scale is an ordering-only dependence: the operand never reaches the
 * address, so it contributes neither unknown-ness nor taint.
 */
EaResult
abstractEa(const Instruction &inst, const State &state)
{
    EaResult out;
    out.known = true;
    std::uint64_t ea = static_cast<std::uint64_t>(inst.imm);
    const RegId srcs[2] = {inst.src0, inst.src1};
    const std::int8_t scales[2] = {inst.scale0, inst.scale1};
    for (int i = 0; i < 2; ++i) {
        if (srcs[i] == kNoReg || scales[i] == 0)
            continue;
        const AbsVal &v = state.regs[srcs[i]];
        out.tainted |= v.tainted;
        if (!v.known) {
            out.known = false;
            continue;
        }
        ea += static_cast<std::uint64_t>(v.value) *
              static_cast<std::uint64_t>(
                  static_cast<std::int64_t>(scales[i]));
    }
    out.ea = static_cast<Addr>(ea);
    return out;
}

/** Structural CFG successors (no constant pruning; postdom/regions). */
std::vector<std::int32_t>
structuralSuccs(const DecodedProgram &program, std::int32_t pc)
{
    const DecodedOp &op = program.ops[static_cast<std::size_t>(pc)];
    const auto size = static_cast<std::int32_t>(program.size());
    std::vector<std::int32_t> out;
    switch (op.next) {
      case NextPcKind::Halt:
        break;
      case NextPcKind::Branch: {
        const std::int32_t target =
            program.code[static_cast<std::size_t>(pc)].target;
        if (target >= 0 && target < size)
            out.push_back(target);
        if (pc + 1 < size)
            out.push_back(pc + 1);
        break;
      }
      default:
        if (op.nextPc >= 0 && op.nextPc < size)
            out.push_back(op.nextPc);
        break;
    }
    return out;
}

/** Dense bitset postdominator sets (programs are a few thousand ops). */
class PostDoms
{
  public:
    explicit PostDoms(const DecodedProgram &program)
        : n_(static_cast<std::int32_t>(program.size()))
    {
        // Node n_ is the virtual exit; Halt (and fallthrough off the
        // end) edges lead there.
        const std::size_t words = wordsPerSet();
        sets_.assign(static_cast<std::size_t>(n_ + 1) * words, ~0ULL);
        setOnly(n_, n_);
        bool changed = true;
        while (changed) {
            changed = false;
            for (std::int32_t pc = n_ - 1; pc >= 0; --pc) {
                std::vector<std::int32_t> succs =
                    structuralSuccs(program, pc);
                std::vector<std::uint64_t> acc(words, ~0ULL);
                if (succs.empty()) {
                    std::copy(set(n_), set(n_) + words, acc.begin());
                } else {
                    for (std::int32_t s : succs)
                        for (std::size_t w = 0; w < words; ++w)
                            acc[w] &= set(s)[w];
                }
                acc[static_cast<std::size_t>(pc) / 64] |=
                    1ULL << (static_cast<std::size_t>(pc) % 64);
                if (!std::equal(acc.begin(), acc.end(), set(pc))) {
                    std::copy(acc.begin(), acc.end(), set(pc));
                    changed = true;
                }
            }
        }
    }

    bool
    contains(std::int32_t node, std::int32_t member) const
    {
        return (set(node)[static_cast<std::size_t>(member) / 64] >>
                (static_cast<std::size_t>(member) % 64)) &
               1ULL;
    }

    /**
     * Immediate postdominator of @p pc, or -1 when only the virtual
     * exit postdominates it. Candidates are totally ordered by
     * inclusion of their own postdom sets; the closest has the
     * largest.
     */
    std::int32_t
    ipdom(std::int32_t pc) const
    {
        std::int32_t best = -1;
        std::size_t best_size = 0;
        for (std::int32_t c = 0; c < n_; ++c) {
            if (c == pc || !contains(pc, c))
                continue;
            const std::size_t size = popcount(c);
            if (size > best_size) {
                best_size = size;
                best = c;
            }
        }
        return best;
    }

  private:
    std::size_t wordsPerSet() const
    {
        return static_cast<std::size_t>(n_ + 1 + 63) / 64;
    }
    std::uint64_t *set(std::int32_t node)
    {
        return sets_.data() +
               static_cast<std::size_t>(node) * wordsPerSet();
    }
    const std::uint64_t *set(std::int32_t node) const
    {
        return sets_.data() +
               static_cast<std::size_t>(node) * wordsPerSet();
    }
    void
    setOnly(std::int32_t node, std::int32_t member)
    {
        std::uint64_t *s = set(node);
        std::fill(s, s + wordsPerSet(), 0ULL);
        s[static_cast<std::size_t>(member) / 64] |=
            1ULL << (static_cast<std::size_t>(member) % 64);
    }
    std::size_t
    popcount(std::int32_t node) const
    {
        std::size_t count = 0;
        const std::uint64_t *s = set(node);
        for (std::size_t w = 0; w < wordsPerSet(); ++w)
            count += static_cast<std::size_t>(
                __builtin_popcountll(s[w]));
        return count;
    }

    std::int32_t n_;
    std::vector<std::uint64_t> sets_;
};

/** Max distinct constants collected per mem-op before giving up. */
constexpr std::size_t kMayTouchCap = 8192;

struct FixpointResult
{
    std::set<std::int32_t> taintedBranches;
    std::map<std::int32_t, std::set<Addr>> mayTouch;
    std::set<std::int32_t> unresolved;
    std::set<std::int32_t> taintedAddrPcs;
    std::map<std::int32_t, std::string> addrDetail;
    bool hasLoop = false;
};

class Fixpoint
{
  public:
    Fixpoint(const DecodedProgram &program, const TaintSpec &spec,
             const std::vector<std::pair<RegId, std::int64_t>>
                 &initial_regs,
             const std::map<Addr, std::int64_t> &initial_memory,
             const std::set<std::int32_t> &control_tainted)
        : program_(program), spec_(spec), initialMemory_(initial_memory),
          controlTainted_(control_tainted)
    {
        entry_.reachable = true;
        entry_.regs.assign(program.numRegs, AbsVal::constant(0));
        for (const auto &[reg, value] : initial_regs)
            if (reg < program.numRegs)
                entry_.regs[reg] = AbsVal::constant(value);
        for (RegId reg : spec.regs)
            if (reg < program.numRegs)
                entry_.regs[reg] = AbsVal::unknown(true);
    }

    FixpointResult
    run()
    {
        const auto size = static_cast<std::int32_t>(program_.size());
        std::vector<State> in(static_cast<std::size_t>(size));
        std::deque<std::int32_t> worklist;
        std::vector<bool> queued(static_cast<std::size_t>(size), false);
        if (size > 0) {
            in[0] = entry_;
            worklist.push_back(0);
            queued[0] = true;
        }
        while (!worklist.empty()) {
            const std::int32_t pc = worklist.front();
            worklist.pop_front();
            queued[static_cast<std::size_t>(pc)] = false;
            State out = in[static_cast<std::size_t>(pc)];
            std::vector<std::int32_t> succs = transfer(pc, out);
            for (std::int32_t s : succs) {
                if (s < 0 || s >= size)
                    continue;
                if (s <= pc)
                    result_.hasLoop = true;
                if (joinInto(in[static_cast<std::size_t>(s)], out) &&
                    !queued[static_cast<std::size_t>(s)]) {
                    worklist.push_back(s);
                    queued[static_cast<std::size_t>(s)] = true;
                }
            }
        }
        return std::move(result_);
    }

  private:
    /** Apply pc's semantics to @p state; return feasible successors. */
    std::vector<std::int32_t>
    transfer(std::int32_t pc, State &state)
    {
        const Instruction &inst =
            program_.code[static_cast<std::size_t>(pc)];
        const DecodedOp &dop = program_.ops[static_cast<std::size_t>(pc)];
        const bool implicit = controlTainted_.count(pc) != 0;

        auto src = [&](RegId reg) -> AbsVal {
            return reg == kNoReg || reg >= state.regs.size()
                       ? AbsVal::constant(0)
                       : state.regs[reg];
        };
        auto writeDst = [&](AbsVal value) {
            if (dop.writesDst && inst.dst < state.regs.size()) {
                value.tainted |= implicit;
                state.regs[inst.dst] = value;
            }
        };

        switch (inst.op) {
          case Opcode::Load:
          case Opcode::Prefetch: {
            const AbsVal loaded = memOp(pc, inst, state, AbsVal{});
            if (inst.op == Opcode::Load)
                writeDst(loaded);
            break;
          }
          case Opcode::Store: {
            memOp(pc, inst, state, src(inst.dst));
            break;
          }
          case Opcode::Branch: {
            const AbsVal cond = src(inst.src0);
            if (cond.tainted)
                result_.taintedBranches.insert(pc);
            const auto size = static_cast<std::int32_t>(program_.size());
            const std::int32_t target =
                inst.target >= 0 && inst.target < size ? inst.target
                                                       : size;
            if (cond.known) {
                const bool taken = (cond.value != 0) != inst.invert;
                return {taken ? target : pc + 1};
            }
            return {target, pc + 1};
          }
          case Opcode::Rdtsc:
            writeDst(AbsVal::unknown());
            break;
          case Opcode::Jump:
          case Opcode::Halt:
          case Opcode::Nop:
            break;
          default: { // two-source ALU forms
            const AbsVal v0 = src(inst.src0);
            const AbsVal rhs = inst.src1 != kNoReg
                                   ? src(inst.src1)
                                   : AbsVal::constant(inst.imm);
            AbsVal out;
            out.tainted = v0.tainted || rhs.tainted;
            if (inst.op == Opcode::Lea) {
                const EaResult ea = abstractEa(inst, state);
                out.known = ea.known;
                out.value = static_cast<std::int64_t>(ea.ea);
                out.tainted = ea.tainted;
            } else if (v0.known && rhs.known) {
                out.known = true;
                out.value = concreteAlu(inst.op, v0.value, rhs.value,
                                        inst.imm);
            }
            writeDst(out);
            break;
          }
        }
        return {dop.nextPc};
    }

    /**
     * Shared Load/Store/Prefetch handling: resolve the EA, record the
     * may-touch constant or the unresolved mark, flag tainted
     * addresses, and apply the memory effect. Returns the loaded
     * abstract value (Loads).
     */
    AbsVal
    memOp(std::int32_t pc, const Instruction &inst, State &state,
          AbsVal store_data)
    {
        const EaResult ea = abstractEa(inst, state);
        if (ea.tainted) {
            result_.taintedAddrPcs.insert(pc);
            result_.addrDetail[pc] = inst.toString();
        }
        if (!ea.known) {
            result_.unresolved.insert(pc);
        } else {
            auto &touched = result_.mayTouch[pc];
            if (touched.size() < kMayTouchCap)
                touched.insert(ea.ea);
            else
                result_.unresolved.insert(pc);
        }

        if (inst.op == Opcode::Store) {
            if (ea.known) {
                state.mem[MemoryImage::wordAddr(ea.ea)] = store_data;
            } else {
                state.mem.clear();
                state.memHavoc = true;
                state.memHavocTainted |= store_data.tainted;
            }
            return {};
        }
        if (inst.op == Opcode::Prefetch)
            return {};

        // Load value. A tainted or unresolved address makes the loaded
        // value conservatively secret whenever secret memory exists.
        AbsVal out;
        if (ea.known) {
            const Addr word = MemoryImage::wordAddr(ea.ea);
            auto it = state.mem.find(word);
            if (it != state.mem.end()) {
                out = it->second;
            } else if (state.memHavoc) {
                out = AbsVal::unknown(state.memHavocTainted);
            } else {
                auto init = initialMemory_.find(word);
                out = init != initialMemory_.end()
                          ? AbsVal::constant(init->second)
                          : AbsVal::constant(0);
            }
            if (spec_.coversAddr(ea.ea))
                out = AbsVal::unknown(true);
        } else {
            out = AbsVal::unknown(!spec_.addrs.empty());
        }
        out.tainted |= ea.tainted;
        return out;
    }

    static std::int64_t
    concreteAlu(Opcode op, std::int64_t v0, std::int64_t rhs,
                std::int64_t /*imm*/)
    {
        const auto u0 = static_cast<std::uint64_t>(v0);
        const auto u1 = static_cast<std::uint64_t>(rhs);
        switch (op) {
          case Opcode::MovImm: return rhs;
          case Opcode::Add: return static_cast<std::int64_t>(u0 + u1);
          case Opcode::Sub: return static_cast<std::int64_t>(u0 - u1);
          case Opcode::Mul: return static_cast<std::int64_t>(u0 * u1);
          case Opcode::Div:
            if (rhs == 0)
                return 0;
            if (v0 == std::numeric_limits<std::int64_t>::min() &&
                rhs == -1)
                return v0;
            return v0 / rhs;
          case Opcode::And: return v0 & rhs;
          case Opcode::Or: return v0 | rhs;
          case Opcode::Xor: return v0 ^ rhs;
          case Opcode::Shl:
            return static_cast<std::int64_t>(u0 << (u1 & 63));
          case Opcode::Shr:
            return static_cast<std::int64_t>(u0 >> (u1 & 63));
          default: return 0;
        }
    }

    const DecodedProgram &program_;
    const TaintSpec &spec_;
    const std::map<Addr, std::int64_t> &initialMemory_;
    const std::set<std::int32_t> &controlTainted_;
    State entry_;
    FixpointResult result_;
};

/**
 * pcs controlled by @p branch: everything reachable from its
 * successors before its immediate postdominator (the whole reachable
 * remainder when only the virtual exit postdominates, e.g. a branch
 * guarding an endless loop).
 */
std::set<std::int32_t>
controlRegion(const DecodedProgram &program, const PostDoms &pdoms,
              std::int32_t branch)
{
    const std::int32_t stop = pdoms.ipdom(branch);
    std::set<std::int32_t> region;
    std::deque<std::int32_t> frontier;
    for (std::int32_t s : structuralSuccs(program, branch))
        frontier.push_back(s);
    while (!frontier.empty()) {
        const std::int32_t pc = frontier.front();
        frontier.pop_front();
        if (pc == stop || region.count(pc))
            continue;
        region.insert(pc);
        for (std::int32_t s : structuralSuccs(program, pc))
            frontier.push_back(s);
    }
    return region;
}

} // namespace

bool
TaintSpec::coversAddr(Addr addr) const
{
    const Addr mask = ~static_cast<Addr>(lineBytes - 1);
    for (Addr secret : addrs)
        if ((secret & mask) == (addr & mask))
            return true;
    return false;
}

std::string
leakKindName(LeakKind kind)
{
    switch (kind) {
      case LeakKind::Address: return "secret-addr";
      case LeakKind::Branch: return "secret-branch";
      case LeakKind::ControlMem: return "ctrl-mem";
      case LeakKind::ControlFu: return "ctrl-fu";
    }
    return "?";
}

TaintReport
analyzeTaint(const DecodedProgram &program, const TaintSpec &spec,
             const std::vector<std::pair<RegId, std::int64_t>>
                 &initial_regs,
             const std::map<Addr, std::int64_t> &initial_memory)
{
    // Normalize pokes to word granularity once.
    std::map<Addr, std::int64_t> image;
    for (const auto &[addr, value] : initial_memory)
        image[MemoryImage::wordAddr(addr)] = value;

    // Iterate data taint and control taint (implicit flows) to a
    // combined fixpoint: the control-tainted set only ever grows, and
    // is bounded by the program size.
    PostDoms pdoms(program);
    std::set<std::int32_t> controlTainted;
    FixpointResult fix;
    while (true) {
        fix = Fixpoint(program, spec, initial_regs, image, controlTainted)
                  .run();
        std::set<std::int32_t> next = controlTainted;
        for (std::int32_t branch : fix.taintedBranches) {
            std::set<std::int32_t> region =
                controlRegion(program, pdoms, branch);
            next.insert(region.begin(), region.end());
        }
        if (next == controlTainted)
            break;
        controlTainted = std::move(next);
    }

    TaintReport report;
    report.controlTainted = controlTainted;
    report.mayTouch = std::move(fix.mayTouch);
    report.unresolvedMemPcs = std::move(fix.unresolved);
    report.hasLoop = fix.hasLoop;

    std::set<TaintFinding> findings;
    for (std::int32_t pc : fix.taintedAddrPcs)
        findings.insert({pc, LeakKind::Address, fix.addrDetail[pc]});
    for (std::int32_t pc : fix.taintedBranches)
        findings.insert(
            {pc, LeakKind::Branch,
             program.code[static_cast<std::size_t>(pc)].toString()});
    for (std::int32_t pc : controlTainted) {
        const DecodedOp &op = program.ops[static_cast<std::size_t>(pc)];
        if (op.isMem) {
            findings.insert(
                {pc, LeakKind::ControlMem,
                 program.code[static_cast<std::size_t>(pc)].toString()});
        } else if (op.fu != FuClass::IntAlu && !op.isControl) {
            findings.insert(
                {pc, LeakKind::ControlFu,
                 program.code[static_cast<std::size_t>(pc)].toString()});
        }
    }
    report.findings.assign(findings.begin(), findings.end());
    return report;
}

} // namespace hr
