/**
 * @file
 * Static cache-footprint model: which lines, sets, and
 * replacement-state a program can reach under a MachineConfig, and
 * which registered TimingSources could observe it.
 *
 * Built from the reference interpreter's architectural touch
 * sequences (interp.hh) plus the harness operations around them
 * (warm/flushLine/flushAllCaches), mapped through the profile's L1
 * geometry. The model predicts, per L1 set, the distinct lines
 * touchable (set pressure vs. associativity decides eviction
 * capability) and PLRU-state reachability (>= assoc distinct lines on
 * a tree-PLRU L1 means the program can steer the whole replacement
 * tree — the paper's magnifier precondition). A presence simulation
 * over the ordered touch/warm/flush event stream yields an exact
 * predicted L1 fill count whenever the program is statically fully
 * resolved, which is the hook the dynamic cross-validation harness
 * (leakage.hh) regression-tests against Machine::contextStats.
 *
 * The differential half compares two footprints (a gadget's two
 * secret polarities): line-set deltas, touch-order deltas (the
 * replacement-state channel), per-FU-class op-count deltas, and an
 * estimated cycle delta — then maps the difference onto the observer
 * surface of every registered gadget family.
 */

#ifndef HR_ANALYSIS_FOOTPRINT_HH
#define HR_ANALYSIS_FOOTPRINT_HH

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/interp.hh"
#include "sim/machine.hh"

namespace hr
{

/** One line-granular event in the footprint's ordered state stream. */
struct TouchEvent
{
    enum class Kind : std::uint8_t
    {
        Demand,    ///< committed Load/Store/Prefetch
        Warm,      ///< harness warm()
        FlushLine, ///< harness flushLine()
        FlushAll,  ///< harness flushAllCaches()
    };
    Kind kind = Kind::Demand;
    Addr line = 0;

    bool operator==(const TouchEvent &o) const
    {
        return kind == o.kind && line == o.line;
    }
};

/** Distinct lines mapping to one L1 set. */
struct SetPressure
{
    std::set<Addr> lines;
    bool exceedsAssoc = false; ///< can force evictions in this set
    /** >= assoc lines on a tree-PLRU L1: full replacement-state reach. */
    bool plruReach = false;
};

/** The static cache/FU surface of one execution (one polarity). */
struct CacheFootprint
{
    std::set<Addr> lines;          ///< demand + warm line addresses
    std::set<Addr> demandLines;    ///< committed demand touches only
    std::set<Addr> transientLines; ///< wrong-path (speculative) reach
    std::map<int, SetPressure> sets; ///< L1 set index -> pressure
    std::vector<TouchEvent> events;  ///< ordered state-relevant stream
    std::array<std::uint64_t, kNumFuClasses> fuCount{};
    std::uint64_t memOps = 0; ///< committed demand touches
    /**
     * Demand touches from programs guaranteed to complete on the real
     * machine (non-capped primary runs): a hard lower bound on the
     * observable access count even when co-runners are abandoned
     * mid-flight.
     */
    std::uint64_t completedMemOps = 0;

    bool capped = false;     ///< some program hit the interpreter cap
    bool usedClock = false;  ///< some program read the clock
    bool anyBranches = false;
    bool hasCoRunners = false; ///< co-runners are abandoned, not run out
    int unresolvedMemOps = 0; ///< from the taint pass, when used

    /** Presence-simulation prediction of L1 demand fills. */
    std::uint64_t predictedFills = 0;
    /** predictedFills is provably exact (see fillsExact() docs). */
    bool fillsExact = false;
    /** memOps is provably the exact demand-access count. */
    bool accessesExact = false;
};

/** Accumulates interpreter runs + harness ops into a CacheFootprint. */
class FootprintBuilder
{
  public:
    explicit FootprintBuilder(const MachineConfig &config);

    /** @p primary: a foreground run that completes for real (vs. an
     * abandoned co-runner whose touch stream is approximate). */
    void addProgram(const InterpResult &run, bool primary = true);
    void addWarm(Addr addr);
    void addFlushLine(Addr addr);
    void addFlushAll();
    void addUnresolved(int count);

    CacheFootprint finish();

  private:
    Addr lineOf(Addr addr) const;

    const MachineConfig &config_;
    CacheFootprint fp_;
};

/** Secret-dependent difference between two polarity footprints. */
struct FootprintDiff
{
    std::vector<Addr> linesOnlyA, linesOnlyB; ///< demand+warm deltas
    std::vector<Addr> transientOnlyA, transientOnlyB;
    std::array<std::int64_t, kNumFuClasses> fuDelta{}; ///< A - B
    bool orderDiffers = false; ///< same lines, different event order
    bool pressureDiffers = false; ///< some set's eviction reach differs
    double estCycleDelta = 0;  ///< rough latency-weighted magnitude
    bool approximate = false;  ///< a side was capped or unresolved

    bool cacheDelta() const
    {
        return !linesOnlyA.empty() || !linesOnlyB.empty();
    }
    bool transientDelta() const
    {
        return !transientOnlyA.empty() || !transientOnlyB.empty();
    }
    bool fuDeltaAny() const
    {
        for (std::int64_t d : fuDelta)
            if (d != 0)
                return true;
        return false;
    }
};

FootprintDiff diffFootprints(const CacheFootprint &a,
                             const CacheFootprint &b,
                             const MachineConfig &config);

/**
 * Leakage class of a polarity diff: "constant_time", "fu_timing",
 * "cache_footprint", "transient_cache", or "cache_order", with "+fu"
 * appended when an FU-count delta rides along.
 */
std::string classifyLeak(const FootprintDiff &diff);

/**
 * Registered gadget names whose observation surface intersects the
 * diff under @p config: line-presence readers for footprint deltas,
 * the reorder magnifier for order deltas, contention sources for any
 * cycle-scale delta (contexts permitting), and the coarse timer only
 * when the estimated delta clears its 5 us resolution — the paper's
 * point that raw gadget deltas are sub-resolution without
 * magnification.
 */
std::vector<std::string> predictObservers(const FootprintDiff &diff,
                                          const MachineConfig &config);

} // namespace hr

#endif // HR_ANALYSIS_FOOTPRINT_HH
