/**
 * @file
 * Differential gadget leakage analysis + dynamic cross-validation.
 *
 * Every registered TimingSource is, by the paper's construction, a
 * program whose microarchitectural behaviour differs between the two
 * secret polarities. This module proves that statically, per gadget,
 * without per-gadget hooks: it records one sample() per polarity
 * through Machine::beginRecord (the same surface BatchRunner replays),
 * harvests the captured op stream — every DecodedProgram with its
 * initial registers, every warm/flush/poke — and hands the programs
 * to the reference interpreter (interp.hh) and the footprint model
 * (footprint.hh). The polarity diff yields the gadget's leakage class
 * (constant_time / fu_timing / cache_footprint / cache_order /
 * transient_cache, with "+fu" combinations) and the set of registered
 * sources predicted able to observe it.
 *
 * Cross-validation closes the loop: the same sample() runs for real
 * on a pooled Machine, and the static predictions are checked against
 * the traced observers (Machine::contextStats / cacheMisses) — exact
 * fill/access equality where the model proves exactness, ordering
 * bounds elsewhere, and a polarity-distinguishability check whenever
 * the static verdict says "leaky". The analyzer is thereby
 * regression-tested against the simulator itself.
 *
 * Program mode (analyzeProgramTarget) analyzes a caller-supplied
 * Program with an explicit TaintSpec instead: the taint/dataflow pass
 * (taint.hh) reports secret-dependent addresses/branches/FU choices,
 * and the two caller-given secret assignments drive the same
 * differential + validation machinery. This is the entry point the
 * ROADMAP-5 gadget synthesizer will call per candidate.
 */

#ifndef HR_ANALYSIS_LEAKAGE_HH
#define HR_ANALYSIS_LEAKAGE_HH

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analysis/footprint.hh"
#include "analysis/taint.hh"
#include "exp/machine_pool.hh"
#include "isa/program.hh"
#include "util/params.hh"

namespace hr
{

class TimingSource;
struct TrialTrace;

/**
 * Fold one recorded trial trace into a static footprint: pokes seed
 * the memory environment, warms/flushes become state events, and
 * every Run op's decoded program goes through the reference
 * interpreter with the registers the trial actually passed. Exported
 * for the capacity engine (capacity.hh), which folds per-valuation
 * traces through the same model the classifier uses.
 */
CacheFootprint foldTrialTrace(const TrialTrace &trace,
                              const MachineConfig &config);

/** The two polarity footprints recorded from a live gadget. */
struct GadgetRecording
{
    std::string status = "ok"; ///< ok | incompatible | calib_fail
    bool opaque = false; ///< a recording went opaque (approximate)
    CacheFootprint footprint[2]; ///< [0] = fast, [1] = slow polarity
};

/**
 * Prime @p source on @p machines (calibrate + one throwaway sample
 * per polarity, so lazy rebinding and one-time calibration work are
 * absorbed before recording) and record one steady-state sample()
 * per polarity, folding each trace through foldTrialTrace. Gadget
 * errors beyond incompatibility/calibration propagate as exceptions.
 */
GadgetRecording recordGadgetFootprints(TimingSource &source,
                                       MachinePool &machines,
                                       const MachineConfig &config);

/** Outcome of the dynamic cross-validation of one static report. */
struct ValidationResult
{
    bool ran = false;
    bool passed = false;
    /** Traced per-polarity observations ([0] = fast, [1] = slow). */
    std::uint64_t observedAccesses[2] = {0, 0};
    std::uint64_t observedFills[2] = {0, 0};
    std::uint64_t observedMisses[2] = {0, 0};
    Cycle observedCycles[2] = {0, 0};
    std::vector<std::string> failures; ///< empty when passed
};

/** Full static verdict for one analyze target. */
struct LeakageReport
{
    std::string target;  ///< gadget/channel/program name
    std::string kind;    ///< "gadget" | "channel" | "program"
    std::string gadget;  ///< underlying gadget (channels)
    std::string profile; ///< machine profile analyzed under
    std::string status = "ok"; ///< ok | incompatible | calib_fail | error:
    std::string leakClass;     ///< see classifyLeak()
    bool constantTime = false;
    FootprintDiff diff;
    CacheFootprint footprint[2]; ///< [0] = fast, [1] = slow polarity
    bool opaque = false; ///< a recording went opaque (approximate)
    std::vector<std::string> observers; ///< predicted observing sources
    std::vector<TaintFinding> taintFindings; ///< program mode only
    ValidationResult validation;
    std::string detail;
};

/**
 * Statically analyze a registered gadget on @p profile, optionally
 * cross-validating against real execution on @p pool (pass nullptr to
 * skip validation). @p params are forwarded to the gadget's
 * configure().
 */
LeakageReport analyzeGadget(const std::string &name,
                            const std::string &profile,
                            const ParamSet &params, MachinePool *pool);

/**
 * Analyze a registered channel: the verdict of its underlying gadget,
 * stamped with the channel's name and modulation detail.
 */
LeakageReport analyzeChannel(const std::string &name,
                             const std::string &profile,
                             const ParamSet &params, MachinePool *pool);

/** A secret-annotated guest program for `analyze --program`. */
struct ProgramTarget
{
    std::string name;
    std::string description;
    Program program;
    TaintSpec spec; ///< the taint-source annotation
    std::map<Addr, std::int64_t> pokes; ///< initial memory words
    /** Concrete register assignments for the two polarities. */
    std::vector<std::pair<RegId, std::int64_t>> fastRegs, slowRegs;
    /** Per-polarity overrides of @ref pokes (memory-borne secrets). */
    std::map<Addr, std::int64_t> fastPokes, slowPokes;
    /**
     * N-valued secret domain for the capacity engine: when non-empty,
     * every secret source in @ref spec takes each of these values
     * (cartesian), generalizing the two-polarity pair above. The
     * classifier pipeline keeps using fast/slow; only `analyze
     * --capacity` enumerates this domain.
     */
    std::vector<std::int64_t> secretValues;
};

/** Taint + differential + validation for one annotated program. */
LeakageReport analyzeProgramTarget(const ProgramTarget &target,
                                   const std::string &profile,
                                   MachinePool *pool);

/** The built-in demo program targets (taint round-trip corpus). */
const std::vector<ProgramTarget> &programTargets();

/** Find a demo program by name; nullptr if absent. */
const ProgramTarget *findProgramTarget(const std::string &name);

/**
 * Default profile a target is analyzed under when the caller does not
 * pick one: the first profile in {default, plru, smt2, smt2_plru} the
 * gadget is compatible with.
 */
std::string defaultAnalysisProfile(const std::string &gadget);

/**
 * Memoized leakage class for a registered gadget under its default
 * analysis profile (no validation run). Used by the `hr_bench
 * gadgets`/`channels` listings to stamp every registry entry.
 */
std::string leakageClassFor(const std::string &gadget);

} // namespace hr

#endif // HR_ANALYSIS_LEAKAGE_HH
