/**
 * @file
 * Quantitative information flow: static channel-capacity bounds from
 * observer-equivalence partitions of N-valued secret domains.
 *
 * PR 7's analyzer is a classifier — it proves *whether* a program's
 * microarchitectural behaviour depends on a secret. The co-design
 * loop (ROADMAP open item 5) needs *how much*: a per-gadget,
 * per-defense capacity number comparable against the measured
 * capacity/BER/MI the channel stack produces. This module supplies
 * that number by lifting the two-polarity differential pipeline to
 * arbitrary finite secret domains:
 *
 *   1. Enumerate the secret's valuations (a SecretDomain — every
 *      concrete assignment of the TaintSpec's secret registers and
 *      memory lines the adversary must distinguish among).
 *   2. Run the exact reference interpreter + footprint model once per
 *      valuation (the caller does this; see capacity.hh).
 *   3. Partition the valuations into observer-equivalence classes per
 *      observer family: two valuations are equivalent iff every
 *      observer of that family provably sees the same thing.
 *
 * The static capacity upper bound per trial is log2(#classes) of the
 * joint partition (all families observed at once) — an adversary who
 * runs one trial per secret learns at most that many bits, because
 * valuations in one class produce identical observables. Soundness
 * under approximation comes from the footprint model's exactness
 * bits: a valuation whose prediction is not provably exact
 * (fillsExact / accessesExact false) cannot be proven equivalent to
 * anything, so it is *widened* into a singleton class. Widening can
 * only grow the class count, so the bound stays an upper bound; it
 * just gets looser (and the report says so via `exact`).
 *
 * Observer families (the observation surfaces the registered gadget
 * zoo actually reads):
 *
 *   l1_fill_set          which lines the program leaves resident in
 *                        the L1 (presence probes: pa, repetition, the
 *                        fill-counting contention sources)
 *   probe_sequence       the ordered line-granular touch/warm/flush
 *                        stream (replacement-state readers: the PLRU
 *                        reorder/pin magnifiers observe order, not
 *                        just presence)
 *   fu_timing            committed op counts per functional-unit
 *                        class (port-contention and latency timers)
 *   transient_footprint  lines reachable on squashed wrong paths
 *                        (transient-probe gadgets)
 */

#ifndef HR_ANALYSIS_QIF_HH
#define HR_ANALYSIS_QIF_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analysis/footprint.hh"
#include "analysis/taint.hh"

namespace hr
{

/** One concrete assignment of the secret (plus fixed public state). */
struct SecretValuation
{
    std::string label; ///< e.g. "s=3" or "fast"/"slow"
    /** Full initial-register assignment for this valuation. */
    std::vector<std::pair<RegId, std::int64_t>> regs;
    /** Full initial memory image for this valuation. */
    std::map<Addr, std::int64_t> pokes;
};

/** The secret's value domain: every valuation to distinguish among. */
struct SecretDomain
{
    std::vector<SecretValuation> valuations;

    int size() const { return static_cast<int>(valuations.size()); }
    bool empty() const { return valuations.empty(); }

    /** The generic gadget-mode domain: {fast, slow} polarity inputs. */
    static SecretDomain twoPolarity();
};

/**
 * Enumeration guard: a TaintSpec with many secrets and a wide value
 * list is a combinatorial explosion; enumerateSpecDomain refuses
 * (fatal) past this many valuations rather than silently truncating
 * — a truncated domain would be an *under*-count and hence unsound.
 */
constexpr int kMaxValuations = 256;

/**
 * Cartesian enumeration of @p spec's secret sources: every secret
 * register and every secret memory line independently takes each
 * value in @p values. @p base_regs / @p base_pokes supply the public
 * initial state; enumerated secret values override them. A spec with
 * no secrets yields the single base valuation (capacity 0 by
 * construction). Fatal when the product exceeds kMaxValuations.
 */
SecretDomain enumerateSpecDomain(
    const TaintSpec &spec, const std::vector<std::int64_t> &values,
    const std::vector<std::pair<RegId, std::int64_t>> &base_regs = {},
    const std::map<Addr, std::int64_t> &base_pokes = {});

/** The observation surfaces of the registered gadget families. */
enum class ObserverFamily : std::uint8_t
{
    L1FillSet,         ///< final L1-resident line set (presence probes)
    ProbeSequence,     ///< ordered touch/warm/flush event stream
    FuTiming,          ///< per-FU-class committed op counts
    TransientFootprint ///< wrong-path (speculative) line reach
};

constexpr int kNumObserverFamilies = 4;

const char *observerFamilyName(ObserverFamily family);

/**
 * Canonical serialization of what one observer family sees in a
 * footprint. Two valuations with equal keys (both provably exact for
 * the family) are indistinguishable by every observer of the family.
 */
std::string observationKey(const CacheFootprint &fp,
                           ObserverFamily family,
                           const MachineConfig &config);

/**
 * True iff the footprint's prediction of this family's observation
 * is provably exact (the exactness bits the footprint model derives:
 * fillsExact for the presence surface, accessesExact — a complete,
 * branch-free, clock-free, co-runner-free touch stream — for the
 * sequence/FU/transient surfaces).
 */
bool observationExact(const CacheFootprint &fp, ObserverFamily family);

/** Partition of the domain under one observer family. */
struct FamilyBound
{
    ObserverFamily family = ObserverFamily::L1FillSet;
    int classes = 0; ///< observer-equivalence classes
    int widened = 0; ///< valuations isolated because approximate
    double bits = 0; ///< log2(classes); 0 for <= 1 class
    bool exact = true; ///< widened == 0: the partition is provable
};

/** The full capacity verdict for one secret domain. */
struct CapacityBound
{
    int valuations = 0;
    /** Per-family partitions, in ObserverFamily order. */
    std::vector<FamilyBound> families;
    /**
     * Joint-observation classes (all families read at once): the
     * partition a best-case adversary induces. >= every per-family
     * class count, <= the product.
     */
    int jointClasses = 0;
    /** log2(jointClasses): the per-trial capacity upper bound. */
    double bits = 0;
    /** No valuation was widened: the bound is the provable optimum
     * of the model, not an approximation-inflated ceiling. */
    bool exact = false;
    /** Highest-capacity single family (diagnostic, ties -> first). */
    std::string bestFamily;
};

/**
 * Bound the capacity of a secret domain from its per-valuation
 * footprints (footprints[i] belongs to domain valuation i). An empty
 * or singleton domain bounds at exactly 0 bits.
 */
CapacityBound boundCapacity(const std::vector<CacheFootprint> &footprints,
                            const MachineConfig &config);

} // namespace hr

#endif // HR_ANALYSIS_QIF_HH
