/**
 * @file
 * Forward taint + constant-propagation dataflow over a DecodedProgram.
 *
 * The paper's gadgets all reduce to one static property: a
 * secret-dependent difference in what the program does to the
 * microarchitecture (which lines it touches, which way it branches,
 * which functional units it occupies). This pass proves or refutes
 * that property without running the simulator. Callers mark the
 * secret sources — registers live-in to the program and/or memory
 * lines — and the pass propagates taint through the ISA's dependence
 * links (`srcs[]`/`writesDst`, effective-address scales, store/load
 * aliasing) to a fixpoint over the CFG, reporting every
 * secret-dependent memory address, branch condition, and FU-class
 * choice. A program with no findings is constant-time with respect to
 * the marked secrets: its op stream, footprint, and timing are
 * secret-independent.
 *
 * Alongside taint, the same fixpoint runs a constant-propagation
 * lattice (Known(v) / Unknown per register, plus a flow-sensitive
 * word-granular memory environment seeded from the caller's pokes).
 * Constants are what make the cache-footprint model (footprint.hh)
 * precise: most gadget programs compute every effective address from
 * immediates and poked pointers, so the analyzer can name the exact
 * lines and sets the program may touch.
 *
 * Control taint is handled via post-dominators: a tainted branch
 * control-taints every pc between its successors and its immediate
 * post-dominator, and values written there become tainted (implicit
 * flows). The pass iterates taint + control-taint to a combined
 * fixpoint, so nested implicit flows converge.
 */

#ifndef HR_ANALYSIS_TAINT_HH
#define HR_ANALYSIS_TAINT_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "isa/decoded_program.hh"
#include "util/types.hh"

namespace hr
{

/**
 * The caller's secret-source annotation: which of the program's
 * live-in registers and which memory lines hold secret data. This is
 * the taint-source annotation API: `hr_bench analyze --program` demo
 * programs carry one, and the ROADMAP-5 synthesizer will generate
 * them per candidate.
 */
struct TaintSpec
{
    std::vector<RegId> regs; ///< secret live-in registers
    std::vector<Addr> addrs; ///< secret memory addresses (line-granular)
    int lineBytes = 64;      ///< granularity for addr matching

    bool empty() const { return regs.empty() && addrs.empty(); }
    bool coversAddr(Addr addr) const;
};

/** What kind of secret dependence a finding reports. */
enum class LeakKind : std::uint8_t
{
    Address,    ///< mem-op effective address is data-dependent on secret
    Branch,     ///< branch condition is data-dependent on secret
    ControlMem, ///< mem op executes only on one side of a secret branch
    ControlFu,  ///< non-IntAlu op executes only on one side of a secret branch
};

std::string leakKindName(LeakKind kind);

/** One secret-dependent program point. */
struct TaintFinding
{
    std::int32_t pc = 0;
    LeakKind kind = LeakKind::Address;
    std::string detail; ///< human-readable evidence

    bool operator<(const TaintFinding &o) const
    {
        return pc != o.pc ? pc < o.pc
                          : static_cast<int>(kind) < static_cast<int>(o.kind);
    }
};

/** Result of the taint/constant fixpoint for one program. */
struct TaintReport
{
    std::vector<TaintFinding> findings; ///< sorted by pc
    /** pcs executed under a secret branch (control-taint region). */
    std::set<std::int32_t> controlTainted;
    /** Statically resolved addresses each mem op may touch (by pc). */
    std::map<std::int32_t, std::set<Addr>> mayTouch;
    /** Mem-op pcs whose address never resolved to a constant. */
    std::set<std::int32_t> unresolvedMemPcs;
    bool hasLoop = false; ///< CFG back edge reachable from entry

    /** No secret-dependent address, branch, or FU choice. */
    bool constantTime() const { return findings.empty(); }
};

/**
 * Run the combined taint + constant-propagation fixpoint.
 *
 * @p initial_regs seeds the constant lattice (registers the harness
 * would pass to Machine::run); secret registers from @p spec override
 * them as tainted-unknown. @p initial_memory seeds the memory
 * environment with word-granular known values (the caller's pokes);
 * loads from addresses covered by @p spec.addrs read tainted-unknown.
 */
TaintReport
analyzeTaint(const DecodedProgram &program, const TaintSpec &spec,
             const std::vector<std::pair<RegId, std::int64_t>> &initial_regs =
                 {},
             const std::map<Addr, std::int64_t> &initial_memory = {});

} // namespace hr

#endif // HR_ANALYSIS_TAINT_HH
