#include "analysis/qif.hh"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "util/log.hh"
#include "util/memory_image.hh"

namespace hr
{
namespace
{

/** Hex-serialize a line address compactly into an observation key. */
void
appendAddr(std::ostringstream &os, Addr addr)
{
    os << std::hex << addr << std::dec << ',';
}

/** Final L1-resident line set: the presence simulation's end state
 * (the same ordered walk FootprintBuilder::finish() counts fills
 * with, so prediction and exactness agree). */
std::set<Addr>
finalPresentLines(const CacheFootprint &fp)
{
    std::set<Addr> present;
    for (const TouchEvent &ev : fp.events) {
        switch (ev.kind) {
          case TouchEvent::Kind::Demand:
          case TouchEvent::Kind::Warm:
            present.insert(ev.line);
            break;
          case TouchEvent::Kind::FlushLine:
            present.erase(ev.line);
            break;
          case TouchEvent::Kind::FlushAll:
            present.clear();
            break;
        }
    }
    return present;
}

char
eventTag(TouchEvent::Kind kind)
{
    switch (kind) {
      case TouchEvent::Kind::Demand: return 'd';
      case TouchEvent::Kind::Warm: return 'w';
      case TouchEvent::Kind::FlushLine: return 'f';
      case TouchEvent::Kind::FlushAll: return 'F';
    }
    return '?';
}

/** log2(classes) with the degenerate <= 1 class convention of 0. */
double
classBits(int classes)
{
    return classes > 1 ? std::log2(static_cast<double>(classes)) : 0.0;
}

} // namespace

SecretDomain
SecretDomain::twoPolarity()
{
    SecretDomain domain;
    domain.valuations.push_back({"fast", {}, {}});
    domain.valuations.push_back({"slow", {}, {}});
    return domain;
}

SecretDomain
enumerateSpecDomain(
    const TaintSpec &spec, const std::vector<std::int64_t> &values,
    const std::vector<std::pair<RegId, std::int64_t>> &base_regs,
    const std::map<Addr, std::int64_t> &base_pokes)
{
    const int secrets = static_cast<int>(spec.regs.size()) +
                        static_cast<int>(spec.addrs.size());
    SecretDomain domain;
    if (secrets == 0 || values.empty()) {
        domain.valuations.push_back({"base", base_regs, base_pokes});
        return domain;
    }

    // Overflow-safe cartesian size check before enumerating.
    double total = 1;
    for (int s = 0; s < secrets; ++s)
        total *= static_cast<double>(values.size());
    fatalIf(total > kMaxValuations,
            "qif: secret domain has " + std::to_string(total) +
                " valuations (cap " + std::to_string(kMaxValuations) +
                "); shrink the value list — truncation would be "
                "unsound");

    // Odometer over `secrets` digits, each running over `values`.
    std::vector<std::size_t> digit(static_cast<std::size_t>(secrets), 0);
    for (;;) {
        SecretValuation valuation;
        valuation.regs = base_regs;
        valuation.pokes = base_pokes;
        std::ostringstream label;
        int index = 0;
        for (RegId reg : spec.regs) {
            const std::int64_t value =
                values[digit[static_cast<std::size_t>(index)]];
            bool replaced = false;
            for (auto &[r, v] : valuation.regs) {
                if (r == reg) {
                    v = value;
                    replaced = true;
                }
            }
            if (!replaced)
                valuation.regs.emplace_back(reg, value);
            label << (index ? "," : "") << "r"
                  << static_cast<int>(reg) << "=" << value;
            ++index;
        }
        for (Addr addr : spec.addrs) {
            const std::int64_t value =
                values[digit[static_cast<std::size_t>(index)]];
            valuation.pokes[MemoryImage::wordAddr(addr)] = value;
            label << (index ? "," : "") << "m" << std::hex << addr
                  << std::dec << "=" << value;
            ++index;
        }
        valuation.label = label.str();
        domain.valuations.push_back(std::move(valuation));

        // Advance the odometer; done when it wraps.
        int pos = secrets - 1;
        while (pos >= 0) {
            std::size_t &d = digit[static_cast<std::size_t>(pos)];
            if (++d < values.size())
                break;
            d = 0;
            --pos;
        }
        if (pos < 0)
            break;
    }
    return domain;
}

const char *
observerFamilyName(ObserverFamily family)
{
    switch (family) {
      case ObserverFamily::L1FillSet: return "l1_fill_set";
      case ObserverFamily::ProbeSequence: return "probe_sequence";
      case ObserverFamily::FuTiming: return "fu_timing";
      case ObserverFamily::TransientFootprint:
        return "transient_footprint";
    }
    return "?";
}

std::string
observationKey(const CacheFootprint &fp, ObserverFamily family,
               const MachineConfig &config)
{
    (void)config;
    std::ostringstream os;
    switch (family) {
      case ObserverFamily::L1FillSet:
        for (Addr line : finalPresentLines(fp))
            appendAddr(os, line);
        break;
      case ObserverFamily::ProbeSequence:
        for (const TouchEvent &ev : fp.events) {
            os << eventTag(ev.kind);
            appendAddr(os, ev.line);
        }
        break;
      case ObserverFamily::FuTiming:
        for (std::uint64_t count : fp.fuCount)
            os << count << ',';
        break;
      case ObserverFamily::TransientFootprint:
        for (Addr line : fp.transientLines)
            appendAddr(os, line);
        break;
    }
    return os.str();
}

bool
observationExact(const CacheFootprint &fp, ObserverFamily family)
{
    // accessesExact certifies a complete architectural stream (no
    // cap, branches, clock reads, co-runners, or unresolved
    // addresses); everything but the presence surface reduces to it.
    // Presence additionally needs eviction-freedom, which is exactly
    // fillsExact.
    if (family == ObserverFamily::L1FillSet)
        return fp.fillsExact;
    return fp.accessesExact;
}

CapacityBound
boundCapacity(const std::vector<CacheFootprint> &footprints,
              const MachineConfig &config)
{
    CapacityBound bound;
    bound.valuations = static_cast<int>(footprints.size());

    std::vector<std::string> jointKeys(footprints.size());
    std::vector<bool> jointExact(footprints.size(), true);

    for (int f = 0; f < kNumObserverFamilies; ++f) {
        const auto family = static_cast<ObserverFamily>(f);
        FamilyBound fb;
        fb.family = family;
        std::set<std::string> keys;
        for (std::size_t i = 0; i < footprints.size(); ++i) {
            const std::string key =
                observationKey(footprints[i], family, config);
            jointKeys[i] += key;
            jointKeys[i] += '|';
            if (observationExact(footprints[i], family)) {
                keys.insert(key);
            } else {
                // Unprovable prediction: the valuation cannot be
                // shown equivalent to any other, so it counts as its
                // own class — the bound can only grow (stays sound).
                ++fb.widened;
                jointExact[i] = false;
            }
        }
        fb.classes = static_cast<int>(keys.size()) + fb.widened;
        fb.bits = classBits(fb.classes);
        fb.exact = fb.widened == 0;
        bound.families.push_back(fb);
    }

    // Joint partition: a best-case adversary reads every surface in
    // the same trial, distinguishing two valuations iff any family
    // does. Widened valuations stay singletons here too.
    std::set<std::string> joint;
    int widened = 0;
    for (std::size_t i = 0; i < footprints.size(); ++i) {
        if (jointExact[i])
            joint.insert(jointKeys[i]);
        else
            ++widened;
    }
    bound.jointClasses = static_cast<int>(joint.size()) + widened;
    bound.bits = classBits(bound.jointClasses);
    bound.exact = widened == 0;

    const FamilyBound *best = nullptr;
    for (const FamilyBound &fb : bound.families) {
        if (best == nullptr || fb.bits > best->bits ||
            (fb.bits == best->bits && fb.exact && !best->exact))
            best = &fb;
    }
    bound.bestFamily = best != nullptr
                           ? observerFamilyName(best->family)
                           : "";
    return bound;
}

} // namespace hr
