/**
 * @file
 * Tiny leveled logger behind every stderr diagnostic.
 *
 * HR_LOG(level, fmt, ...) prints the caller's text verbatim (no added
 * prefixes, no reordering) when `level` is at or below the active
 * threshold, so routing an existing fprintf(stderr, ...) through it
 * leaves the default output byte-identical. The threshold comes from
 * `--log-level` (setLogLevel) or the HR_LOG_LEVEL environment variable
 * (error | warn | info | debug); the default is `info`, which keeps
 * every pre-existing diagnostic exactly as it was.
 *
 * The disabled-level cost is one relaxed atomic load and a predictable
 * branch — cheap enough for per-trial call sites.
 */

#ifndef HR_OBS_LOG_HH
#define HR_OBS_LOG_HH

#include <atomic>
#include <string>

namespace hr
{

/** Severity levels, most severe first. */
enum class LogLevel
{
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
};

namespace obs_detail
{
/** Active threshold; -1 = not yet initialized from HR_LOG_LEVEL. */
extern std::atomic<int> gLogLevel;

/** Resolve (and cache) the threshold from HR_LOG_LEVEL. */
int initLogLevel();
} // namespace obs_detail

/** The active threshold (lazy HR_LOG_LEVEL init on first call). */
inline LogLevel
logLevel()
{
    const int level =
        obs_detail::gLogLevel.load(std::memory_order_relaxed);
    return static_cast<LogLevel>(level >= 0
                                     ? level
                                     : obs_detail::initLogLevel());
}

/** Override the threshold (the --log-level flag). */
void setLogLevel(LogLevel level);

/** Parse "error" / "warn" / "info" / "debug" (fatal otherwise). */
LogLevel logLevelFromName(const std::string &name);
std::string logLevelName(LogLevel level);

/** Whether a message at @p level would currently print. */
inline bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) <= static_cast<int>(logLevel());
}

/** printf to stderr, verbatim (never call directly; use HR_LOG). */
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 1, 2)))
#endif
void logPrint(const char *fmt, ...);

/** Lowercase aliases so HR_LOG(warn, ...) reads naturally. */
namespace loglevel
{
constexpr LogLevel error = LogLevel::Error;
constexpr LogLevel warn = LogLevel::Warn;
constexpr LogLevel info = LogLevel::Info;
constexpr LogLevel debug = LogLevel::Debug;
} // namespace loglevel

} // namespace hr

/**
 * Leveled stderr diagnostic: HR_LOG(warn, "warn: %s\n", msg.c_str()).
 * The level is a bare LogLevel enumerator name (error/warn/info/debug);
 * the rest is printf. Output is the caller's formatting, verbatim.
 */
#define HR_LOG(level, ...)                                             \
    do {                                                               \
        if (::hr::logEnabled(::hr::loglevel::level))                   \
            ::hr::logPrint(__VA_ARGS__);                               \
    } while (0)

#endif // HR_OBS_LOG_HH
