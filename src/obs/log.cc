#include "obs/log.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/log.hh"

namespace hr
{

namespace obs_detail
{

std::atomic<int> gLogLevel{-1};

int
initLogLevel()
{
    int resolved = static_cast<int>(LogLevel::Info);
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read once, before workers.
    const char *env = std::getenv("HR_LOG_LEVEL");
    if (env != nullptr && env[0] != '\0') {
        if (std::strcmp(env, "error") == 0)
            resolved = static_cast<int>(LogLevel::Error);
        else if (std::strcmp(env, "warn") == 0)
            resolved = static_cast<int>(LogLevel::Warn);
        else if (std::strcmp(env, "info") == 0)
            resolved = static_cast<int>(LogLevel::Info);
        else if (std::strcmp(env, "debug") == 0)
            resolved = static_cast<int>(LogLevel::Debug);
        // An unknown value keeps the default rather than aborting:
        // the env var must never make a working invocation fatal.
    }

    int expected = -1;
    gLogLevel.compare_exchange_strong(expected, resolved,
                                      std::memory_order_relaxed);
    return gLogLevel.load(std::memory_order_relaxed);
}

} // namespace obs_detail

void
setLogLevel(LogLevel level)
{
    obs_detail::gLogLevel.store(static_cast<int>(level),
                                std::memory_order_relaxed);
}

LogLevel
logLevelFromName(const std::string &name)
{
    if (name == "error")
        return LogLevel::Error;
    if (name == "warn")
        return LogLevel::Warn;
    if (name == "info")
        return LogLevel::Info;
    if (name == "debug")
        return LogLevel::Debug;
    fatal("unknown log level '" + name +
          "' (expected error, warn, info, or debug)");
}

std::string
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Error:
        return "error";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Info:
        return "info";
      case LogLevel::Debug:
        return "debug";
    }
    return "info";
}

void
logPrint(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
}

} // namespace hr
