/**
 * @file
 * Flight recorder: per-thread ring-buffer trace events with Chrome
 * trace-event / Perfetto JSON export.
 *
 * The recorder is off by default and compile-time cheap when off:
 * every macro guards on one relaxed atomic load and a predictable
 * branch, performs zero allocations, and touches no shared state.
 * When enabled, each thread writes fixed-capacity POD rings
 * (overwrite-oldest; overflow is counted, never blocks), registered
 * lazily under a mutex. An epoch counter invalidates the cached
 * thread-local ring pointer whenever enable() recycles the rings, so
 * long-lived worker threads can never write through a stale pointer.
 *
 * Export happens after worker threads have joined (the runner and
 * sweep engines join before returning), so reading the rings races
 * with nothing. Two trace "processes" appear in the output: pid 1 is
 * wall time (one track per recording thread), pid 2 is simulated time
 * (per-context cycle counter tracks fed by HR_TRACE_COUNTER).
 *
 * Event names and categories MUST be string literals (or otherwise
 * outlive the recorder) — the rings store the pointers.
 *
 * Instrumentation contract: never call traced Machine operations
 * (now(), peek(), contextStats(), ...) from instrumentation code —
 * they append TraceOps to recordings and break replay byte-identity.
 * Read raw internal state (RunResult fields, stats members) instead.
 */

#ifndef HR_OBS_TRACE_HH
#define HR_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <string>

namespace hr
{

/** One recorded event; POD so ring writes are a plain struct copy. */
struct TraceEvent
{
    const char *name = nullptr;     //!< string literal
    const char *category = nullptr; //!< string literal
    char phase = 'i';               //!< 'X' complete, 'i' instant, 'C' counter
    std::uint64_t startNs = 0;
    std::uint64_t durNs = 0;
    const char *argName0 = nullptr;
    std::uint64_t arg0 = 0;
    const char *argName1 = nullptr;
    std::uint64_t arg1 = 0;
};

/** Process-wide flight recorder (all static; state lives in .cc). */
class TraceRecorder
{
  public:
    static constexpr std::size_t kDefaultRingCapacity = 1U << 16U;

    /** One relaxed load; the only cost every disabled call site pays. */
    static bool
    enabledFast()
    {
        return gEnabled.load(std::memory_order_relaxed);
    }

    /** Drop any previous rings, reset the clock origin, start recording. */
    static void enable(std::size_t ringCapacity = kDefaultRingCapacity);

    /** Stop recording; rings are kept for export. */
    static void disable();

    /** Free all rings and reset counters (recording must be off). */
    static void clear();

    /** Nanoseconds since the enable() origin (monotonic). */
    static std::uint64_t nowNs();

    /** Events overwritten because a ring wrapped, across all rings. */
    static std::uint64_t droppedEvents();

    /** Events currently held in rings, across all rings. */
    static std::uint64_t bufferedEvents();

    static void emitComplete(const char *category, const char *name,
                             std::uint64_t startNs);
    static void emitInstant(const char *category, const char *name,
                            const char *argName0 = nullptr,
                            std::uint64_t arg0 = 0,
                            const char *argName1 = nullptr,
                            std::uint64_t arg1 = 0);

    /**
     * Simulated-time counter sample: renders on pid 2 as a Perfetto
     * counter track named "<name>.ctx<ctx>" with value @p value.
     */
    static void emitCounter(const char *category, const char *name,
                            std::uint64_t ctx, std::uint64_t value);

    /** Chrome trace-event JSON ({"traceEvents": [...]}). */
    static std::string renderChromeTrace();

    /**
     * Render to @p path; also folds the recorder's dropped-event count
     * into the trace.events_dropped metric.
     */
    static void writeChromeTrace(const std::string &path);

  private:
    static std::atomic<bool> gEnabled;
};

/** RAII wall-time span; emits one 'X' complete event on destruction. */
class TraceScope
{
  public:
    TraceScope(const char *category, const char *name)
    {
        if (TraceRecorder::enabledFast()) {
            category_ = category;
            name_ = name;
            startNs_ = TraceRecorder::nowNs();
            active_ = true;
        }
    }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

    ~TraceScope()
    {
        if (active_)
            TraceRecorder::emitComplete(category_, name_, startNs_);
    }

  private:
    const char *category_ = nullptr;
    const char *name_ = nullptr;
    std::uint64_t startNs_ = 0;
    bool active_ = false;
};

} // namespace hr

#define HR_OBS_CONCAT_INNER(a, b) a##b
#define HR_OBS_CONCAT(a, b) HR_OBS_CONCAT_INNER(a, b)

/** Whether the flight recorder is currently on (one relaxed load). */
#define HR_TRACE_ENABLED() (::hr::TraceRecorder::enabledFast())

/** Wall-time span covering the rest of the enclosing scope. */
#define HR_TRACE_SCOPE(category, name)                                 \
    const ::hr::TraceScope HR_OBS_CONCAT(hrTraceScope_, __LINE__)      \
    {                                                                  \
        (category), (name)                                             \
    }

/** Zero-duration marker. */
#define HR_TRACE_INSTANT(category, name)                               \
    do {                                                               \
        if (::hr::TraceRecorder::enabledFast())                        \
            ::hr::TraceRecorder::emitInstant((category), (name));      \
    } while (0)

/** Marker with one named integer argument. */
#define HR_TRACE_INSTANT1(category, name, k0, v0)                      \
    do {                                                               \
        if (::hr::TraceRecorder::enabledFast())                        \
            ::hr::TraceRecorder::emitInstant(                          \
                (category), (name), (k0),                              \
                static_cast<std::uint64_t>(v0));                       \
    } while (0)

/** Marker with two named integer arguments. */
#define HR_TRACE_INSTANT2(category, name, k0, v0, k1, v1)              \
    do {                                                               \
        if (::hr::TraceRecorder::enabledFast())                        \
            ::hr::TraceRecorder::emitInstant(                          \
                (category), (name), (k0),                              \
                static_cast<std::uint64_t>(v0), (k1),                  \
                static_cast<std::uint64_t>(v1));                       \
    } while (0)

/** Simulated-time counter sample (pid 2 track "<name>.ctx<ctx>"). */
#define HR_TRACE_COUNTER(category, name, ctx, value)                   \
    do {                                                               \
        if (::hr::TraceRecorder::enabledFast())                        \
            ::hr::TraceRecorder::emitCounter(                          \
                (category), (name),                                    \
                static_cast<std::uint64_t>(ctx),                       \
                static_cast<std::uint64_t>(value));                    \
    } while (0)

#endif // HR_OBS_TRACE_HH
