/**
 * @file
 * Streaming run telemetry: an opt-in JSON-lines progress sink.
 *
 * `--progress=stderr|FILE` turns it on; off (the default) every call
 * site pays one relaxed atomic load. Records go to stderr or a file —
 * never stdout — so scenario/sweep stdout stays byte-identical with
 * telemetry on.
 *
 * Heartbeats are milestone-based rather than time-based: a heartbeat
 * is emitted when the completed count first crosses each of 16 evenly
 * spaced milestones, and the `done`/`total` fields are computed from
 * the milestone (not the racy live counter). That makes the number,
 * order, and deterministic fields of the records reproducible at any
 * `--jobs`; only the wall-clock fields (`rate_per_s`, `eta_s`,
 * `wall_s`) vary run to run. Tier-mix fields are deltas of the
 * batch.followers_* metrics since the task began.
 */

#ifndef HR_OBS_PROGRESS_HH
#define HR_OBS_PROGRESS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace hr
{

class ProgressSink
{
  public:
    static constexpr std::uint64_t kMilestones = 16;

    static ProgressSink &instance();

    /**
     * Route records to @p dest: "" disables, "stderr" streams to
     * stderr, anything else is opened as a file (truncated).
     */
    void configure(const std::string &dest);

    bool
    activeFast() const
    {
        return active_.load(std::memory_order_relaxed);
    }

    /** Start a task; emits a task_start record. */
    void beginTask(const char *name, std::uint64_t total, int jobs);

    /** Mark @p n more units done; may emit a heartbeat record. */
    void advance(std::uint64_t n = 1);

    /** Finish the current task; emits a task_end record. */
    void endTask();

  private:
    ProgressSink() = default;

    void writeLine(const std::string &line);
    std::string tierFields() const;

    std::atomic<bool> active_{false};
    std::atomic<std::uint64_t> done_{0};

    std::mutex mutex_;
    std::FILE *out_ = nullptr;
    bool ownsFile_ = false;
    std::string task_;
    std::uint64_t total_ = 0;
    std::uint64_t lastMilestone_ = 0;
    std::uint64_t baseReplayed_ = 0;
    std::uint64_t baseStepped_ = 0;
    std::uint64_t basePeeled_ = 0;
    std::uint64_t baseScalar_ = 0;
    std::chrono::steady_clock::time_point taskStart_;
};

/** Shorthand used by instrumented loops. */
inline void
progressAdvance(std::uint64_t n = 1)
{
    ProgressSink &sink = ProgressSink::instance();
    if (sink.activeFast())
        sink.advance(n);
}

} // namespace hr

#endif // HR_OBS_PROGRESS_HH
