#include "obs/metrics.hh"

#include <algorithm>

namespace hr
{

using obs_detail::MetricEntry;

MetricCounter::MetricCounter(Metrics &registry, const char *name, bool logical)
    : name_(name)
{
    MetricEntry entry;
    entry.kind = MetricEntry::Kind::Counter;
    entry.logical = logical;
    entry.counter = this;
    registry.registerEntry(entry);
}

MetricGauge::MetricGauge(Metrics &registry, const char *name, bool logical)
    : name_(name)
{
    MetricEntry entry;
    entry.kind = MetricEntry::Kind::Gauge;
    entry.logical = logical;
    entry.gauge = this;
    registry.registerEntry(entry);
}

MetricHistogram::MetricHistogram(Metrics &registry, const char *name, bool logical)
    : name_(name)
{
    MetricEntry entry;
    entry.kind = MetricEntry::Kind::Histogram;
    entry.logical = logical;
    entry.histogram = this;
    registry.registerEntry(entry);
}

void
MetricHistogram::reset()
{
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    for (auto &bucket : buckets_)
        bucket.store(0, std::memory_order_relaxed);
}

void
Metrics::registerEntry(const MetricEntry &entry)
{
    entries_.push_back(entry);
}

std::vector<MetricSample>
Metrics::snapshot(bool logicalOnly) const
{
    std::vector<MetricSample> rows;
    rows.reserve(entries_.size());
    for (const auto &entry : entries_) {
        if (logicalOnly && !entry.logical)
            continue;
        MetricSample row;
        row.logical = entry.logical;
        switch (entry.kind) {
          case MetricEntry::Kind::Counter:
            row.name = entry.counter->name();
            row.kind = "counter";
            row.value = entry.counter->value();
            break;
          case MetricEntry::Kind::Gauge:
            row.name = entry.gauge->name();
            row.kind = "gauge";
            row.value = entry.gauge->value();
            break;
          case MetricEntry::Kind::Histogram:
            row.name = entry.histogram->name();
            row.kind = "histogram";
            row.value = entry.histogram->count();
            row.sum = entry.histogram->sum();
            break;
        }
        rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end(),
              [](const MetricSample &a, const MetricSample &b) {
                  return a.name < b.name;
              });
    return rows;
}

void
Metrics::resetAll()
{
    for (const auto &entry : entries_) {
        switch (entry.kind) {
          case MetricEntry::Kind::Counter:
            entry.counter->reset();
            break;
          case MetricEntry::Kind::Gauge:
            entry.gauge->reset();
            break;
          case MetricEntry::Kind::Histogram:
            entry.histogram->reset();
            break;
        }
    }
}

Metrics &
metrics()
{
    static Metrics instance;
    return instance;
}

std::string
renderMetricsJson(const std::vector<MetricSample> &rows)
{
    std::string out = "{";
    bool first = true;
    for (const auto &row : rows) {
        if (!first)
            out += ", ";
        first = false;
        out += "\"" + row.name + "\": ";
        if (row.kind == "histogram") {
            out += "{\"count\": " + std::to_string(row.value) +
                   ", \"sum\": " + std::to_string(row.sum) + "}";
        } else {
            out += std::to_string(row.value);
        }
    }
    out += "}";
    return out;
}

} // namespace hr
