/**
 * @file
 * Unified metrics registry: string-keyed counters, gauges, and
 * histograms behind one deterministic snapshot.
 *
 * Every instrument is a member of the process-wide Metrics singleton
 * and self-registers into its catalog at construction, so the full
 * catalog exists before any experiment runs (`hr_bench metrics` lists
 * every name even in an idle process) and lives in exactly one file —
 * which is what tools/lint_metrics_names.sh lints for the
 * `subsystem.noun_verb` naming convention.
 *
 * Updates are relaxed atomic adds: sums are order-independent, so a
 * metric's final value cannot depend on thread scheduling. Two
 * determinism classes exist, flagged per entry:
 *
 *  - **logical** metrics count logical operations of the workload
 *    (public Machine runs, channel frames, runner trials). They are
 *    byte-identical for a fixed seed at any `--jobs` and any batching
 *    flags, because every execution tier performs the same logical
 *    ops.
 *  - **runtime** metrics describe how the runtime chose to execute
 *    (batch tiers, pool reuse, decode-cache hits, lockstep forwards).
 *    They are deterministic for a fixed (seed, jobs, flags) tuple but
 *    legitimately differ across tiers — same contract as the
 *    `--verbose` batching summary.
 *
 * snapshot() returns name-sorted rows; resetAll() zeroes every value
 * (tests and per-run deltas).
 */

#ifndef HR_OBS_METRICS_HH
#define HR_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace hr
{

class Metrics;

namespace obs_detail
{
/** Catalog row: kind + pointers back into the owning instrument. */
struct MetricEntry;
} // namespace obs_detail

/** Monotonic event count. */
class MetricCounter
{
  public:
    MetricCounter(Metrics &registry, const char *name, bool logical);

    void
    add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        value_.store(0, std::memory_order_relaxed);
    }

    const char *
    name() const
    {
        return name_;
    }

  private:
    const char *name_;
    std::atomic<std::uint64_t> value_{0};
};

/** Last-set value (configuration echoes, current sizes). */
class MetricGauge
{
  public:
    MetricGauge(Metrics &registry, const char *name, bool logical);

    void
    set(std::uint64_t v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        value_.store(0, std::memory_order_relaxed);
    }

    const char *
    name() const
    {
        return name_;
    }

  private:
    const char *name_;
    std::atomic<std::uint64_t> value_{0};
};

/**
 * Power-of-two bucketed histogram: bucket index is the bit width of
 * the observed value (0 lands in bucket 0), clamped to 31. Exposes
 * count/sum plus per-bucket counts; all updates relaxed-atomic, so
 * the aggregate is thread-schedule independent.
 */
class MetricHistogram
{
  public:
    static constexpr std::size_t kBuckets = 32;

    MetricHistogram(Metrics &registry, const char *name, bool logical);

    void
    observe(std::uint64_t v)
    {
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
        buckets_[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    }

    std::uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    bucket(std::size_t i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }

    void reset();

    const char *
    name() const
    {
        return name_;
    }

    static std::size_t
    bucketIndex(std::uint64_t v)
    {
        std::size_t width = 0;
        while (v != 0 && width < kBuckets - 1) {
            v >>= 1;
            ++width;
        }
        return width;
    }

  private:
    const char *name_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/** One name-sorted row of a metrics snapshot. */
struct MetricSample
{
    std::string name;
    std::string kind;   //!< "counter" | "gauge" | "histogram"
    bool logical = false;
    std::uint64_t value = 0; //!< counter/gauge value, histogram count
    std::uint64_t sum = 0;   //!< histogram only: sum of observations
};

namespace obs_detail
{
struct MetricEntry
{
    enum class Kind
    {
        Counter,
        Gauge,
        Histogram,
    };

    Kind kind;
    bool logical;
    MetricCounter *counter = nullptr;
    MetricGauge *gauge = nullptr;
    MetricHistogram *histogram = nullptr;
};
} // namespace obs_detail

/**
 * The process-wide instrument catalog. All instruments are members,
 * declared after `entries_` so construction order guarantees each
 * constructor registers into a live catalog.
 */
class Metrics
{
  public:
    /** Name-sorted snapshot of every instrument. */
    std::vector<MetricSample> snapshot(bool logicalOnly = false) const;

    /** Zero every instrument (tests, per-run deltas). */
    void resetAll();

    void registerEntry(const obs_detail::MetricEntry &entry);

  private:
    std::vector<obs_detail::MetricEntry> entries_;

  public:
    // ---- machine: ops at the public Machine boundary. Counted once
    // per op under every execution tier, but machines built for pool
    // warmup and channel calibration also run ops, and the number of
    // machines built scales with --jobs — so these are runtime-class.
    MetricCounter machineRuns{*this, "machine.runs_total", false};
    MetricHistogram machineRunInstrs{*this, "machine.run_instrs", false};
    MetricCounter machineReseeds{*this, "machine.reseeds_total", false};

    // ---- machine: record/replay runtime tier activity -------------
    MetricCounter machineRecords{*this, "machine.records_total", false};
    MetricCounter machineRecordRngDraws{*this, "machine.record_rng_draws",
                                  false};
    MetricCounter machineReplaysClean{*this, "machine.replays_clean", false};
    MetricCounter machineReplaysDiverged{*this, "machine.replays_diverged",
                                   false};

    // ---- batch: BatchRunner tier decisions ------------------------
    MetricCounter batchTrials{*this, "batch.trials_total", false};
    MetricCounter batchLeaders{*this, "batch.leaders_total", false};
    MetricCounter batchFollowersReplayed{*this, "batch.followers_replayed",
                                   false};
    MetricCounter batchFollowersStepped{*this, "batch.followers_stepped",
                                  false};
    MetricCounter batchFollowersPeeled{*this, "batch.followers_peeled",
                                 false};
    MetricCounter batchFollowersScalar{*this, "batch.followers_scalar",
                                 false};

    // ---- group: MachineGroup lane outcomes ------------------------
    MetricCounter groupLanesReplayed{*this, "group.lanes_replayed", false};
    MetricCounter groupLanesStepped{*this, "group.lanes_stepped", false};
    MetricCounter groupLanesPeeled{*this, "group.lanes_peeled", false};
    MetricCounter groupReseedsSubstituted{*this, "group.reseeds_substituted",
                                    false};

    // ---- decode: shared DecodeCache -------------------------------
    MetricCounter decodeHits{*this, "decode.hits_total", false};
    MetricCounter decodeAliases{*this, "decode.aliases_total", false};
    MetricCounter decodeMisses{*this, "decode.misses_total", false};
    MetricCounter decodeInvalidations{*this, "decode.invalidations_total",
                                false};

    // ---- pool: MachinePool lease lifecycle ------------------------
    MetricCounter poolLeases{*this, "pool.leases_total", false};
    MetricCounter poolLeasesReused{*this, "pool.leases_reused", false};
    MetricCounter poolMachinesBuilt{*this, "pool.machines_built", false};

    // ---- lockstep: periodic-loop forwarding engine ----------------
    MetricCounter lockstepForwards{*this, "lockstep.forwards_total", false};
    MetricCounter lockstepPeriodsSkipped{*this, "lockstep.periods_skipped",
                                   false};
    MetricCounter lockstepCyclesSkipped{*this, "lockstep.cycles_skipped",
                                  false};
    MetricCounter lockstepRefusals{*this, "lockstep.refusals_total", false};

    // ---- channel: logical frame/symbol traffic --------------------
    MetricCounter channelFramesSent{*this, "channel.frames_sent", true};
    MetricCounter channelFramesSynced{*this, "channel.frames_synced", true};
    MetricCounter channelSymbolsSent{*this, "channel.symbols_sent", true};
    MetricCounter channelSymbolErrors{*this, "channel.symbol_errors", true};
    MetricCounter channelEccBitsCorrected{*this,
                                    "channel.ecc_bits_corrected", true};

    // ---- runner / sweep: experiment scheduling --------------------
    MetricCounter runnerScenariosRun{*this, "runner.scenarios_run", true};
    MetricCounter runnerTrialsRequested{*this, "runner.trials_requested",
                                  true};
    MetricGauge runnerJobsConfigured{*this, "runner.jobs_configured", false};
    MetricCounter sweepPointsTotal{*this, "sweep.points_total", true};
    MetricCounter sweepPointsFailed{*this, "sweep.points_failed", true};

    // ---- obs: the observability plane itself ----------------------
    MetricCounter progressHeartbeats{*this, "progress.heartbeats_emitted",
                               false};
    MetricCounter traceEventsDropped{*this, "trace.events_dropped", false};
};

/** The singleton registry. */
Metrics &metrics();

/**
 * Render a snapshot as a JSON object string
 * `{"name": value, ..., "hist.name": {"count": c, "sum": s}, ...}` —
 * name-sorted, no trailing newline. Used by run/sweep metadata and
 * `hr_bench metrics`.
 */
std::string renderMetricsJson(const std::vector<MetricSample> &rows);

} // namespace hr

#endif // HR_OBS_METRICS_HH
