#include "obs/trace.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.hh"
#include "util/log.hh"

namespace hr
{

namespace
{

/** Fixed-capacity overwrite-oldest event buffer, one per thread. */
struct Ring
{
    Ring(std::size_t capacity, std::uint64_t tid)
        : events(capacity), tid(tid)
    {
    }

    std::vector<TraceEvent> events;
    std::uint64_t head = 0; //!< total events ever pushed
    std::uint64_t tid = 0;

    void
    push(const TraceEvent &event)
    {
        events[head % events.size()] = event;
        ++head;
    }

    std::uint64_t
    dropped() const
    {
        return head > events.size() ? head - events.size() : 0;
    }

    std::uint64_t
    buffered() const
    {
        return std::min<std::uint64_t>(head, events.size());
    }
};

struct RecorderState
{
    std::mutex mutex;
    std::vector<std::unique_ptr<Ring>> rings;
    std::atomic<std::uint64_t> epoch{0};
    std::size_t capacity = TraceRecorder::kDefaultRingCapacity;
    std::chrono::steady_clock::time_point origin =
        std::chrono::steady_clock::now();
};

RecorderState &
state()
{
    static RecorderState instance;
    return instance;
}

/**
 * Cached per-thread ring pointer, revalidated against the recorder
 * epoch so enable()/clear() can free rings without leaving a worker
 * thread holding a dangling pointer.
 */
struct ThreadSlot
{
    std::uint64_t epoch = ~std::uint64_t{0};
    Ring *ring = nullptr;
};

thread_local ThreadSlot tSlot; // NOLINT(misc-use-internal-linkage)

Ring &
threadRing()
{
    RecorderState &s = state();
    const std::uint64_t epoch = s.epoch.load(std::memory_order_acquire);
    if (tSlot.epoch != epoch) {
        const std::lock_guard<std::mutex> lock(s.mutex);
        s.rings.push_back(
            std::make_unique<Ring>(s.capacity, s.rings.size()));
        tSlot.ring = s.rings.back().get();
        tSlot.epoch = epoch;
    }
    return *tSlot.ring;
}

void
appendJsonEscaped(std::string &out, const char *text)
{
    for (const char *p = text; *p != '\0'; ++p) {
        const char c = *p;
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else {
            out += c;
        }
    }
}

void
appendMicros(std::string &out, std::uint64_t ns)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    out += buf;
}

} // namespace

std::atomic<bool> TraceRecorder::gEnabled{false};

void
TraceRecorder::enable(std::size_t ringCapacity)
{
    RecorderState &s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    s.rings.clear();
    s.capacity = ringCapacity == 0 ? 1 : ringCapacity;
    s.origin = std::chrono::steady_clock::now();
    s.epoch.fetch_add(1, std::memory_order_release);
    gEnabled.store(true, std::memory_order_relaxed);
}

void
TraceRecorder::disable()
{
    gEnabled.store(false, std::memory_order_relaxed);
}

void
TraceRecorder::clear()
{
    RecorderState &s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    s.rings.clear();
    s.epoch.fetch_add(1, std::memory_order_release);
}

std::uint64_t
TraceRecorder::nowNs()
{
    const auto delta = std::chrono::steady_clock::now() - state().origin;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(delta)
            .count());
}

std::uint64_t
TraceRecorder::droppedEvents()
{
    RecorderState &s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    std::uint64_t total = 0;
    for (const auto &ring : s.rings)
        total += ring->dropped();
    return total;
}

std::uint64_t
TraceRecorder::bufferedEvents()
{
    RecorderState &s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    std::uint64_t total = 0;
    for (const auto &ring : s.rings)
        total += ring->buffered();
    return total;
}

void
TraceRecorder::emitComplete(const char *category, const char *name,
                            std::uint64_t startNs)
{
    TraceEvent event;
    event.name = name;
    event.category = category;
    event.phase = 'X';
    event.startNs = startNs;
    const std::uint64_t end = nowNs();
    event.durNs = end > startNs ? end - startNs : 0;
    threadRing().push(event);
}

void
TraceRecorder::emitInstant(const char *category, const char *name,
                           const char *argName0, std::uint64_t arg0,
                           const char *argName1, std::uint64_t arg1)
{
    TraceEvent event;
    event.name = name;
    event.category = category;
    event.phase = 'i';
    event.startNs = nowNs();
    event.argName0 = argName0;
    event.arg0 = arg0;
    event.argName1 = argName1;
    event.arg1 = arg1;
    threadRing().push(event);
}

void
TraceRecorder::emitCounter(const char *category, const char *name,
                           std::uint64_t ctx, std::uint64_t value)
{
    TraceEvent event;
    event.name = name;
    event.category = category;
    event.phase = 'C';
    event.startNs = nowNs();
    event.argName0 = "ctx";
    event.arg0 = ctx;
    event.argName1 = "cycles";
    event.arg1 = value;
    threadRing().push(event);
}

std::string
TraceRecorder::renderChromeTrace()
{
    struct Row
    {
        TraceEvent event;
        std::uint64_t tid;
    };

    RecorderState &s = state();
    std::vector<Row> rows;
    std::size_t ringCount = 0;
    {
        const std::lock_guard<std::mutex> lock(s.mutex);
        ringCount = s.rings.size();
        for (const auto &ring : s.rings) {
            const std::uint64_t cap = ring->events.size();
            const std::uint64_t count = ring->buffered();
            for (std::uint64_t i = ring->head - count; i < ring->head;
                 ++i)
                rows.push_back({ring->events[i % cap], ring->tid});
        }
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Row &a, const Row &b) {
                         if (a.event.startNs != b.event.startNs)
                             return a.event.startNs < b.event.startNs;
                         return a.tid < b.tid;
                     });

    std::string out = "{\"traceEvents\": [\n";
    bool first = true;
    const auto comma = [&]() {
        if (!first)
            out += ",\n";
        first = false;
    };

    // Process/thread naming metadata so Perfetto labels the tracks.
    comma();
    out += "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
           "\"args\": {\"name\": \"wall\"}}";
    comma();
    out += "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 2, "
           "\"args\": {\"name\": \"simulated\"}}";
    for (std::size_t tid = 0; tid < ringCount; ++tid) {
        comma();
        out += "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
               "\"tid\": " +
               std::to_string(tid) +
               ", \"args\": {\"name\": \"worker " +
               std::to_string(tid) + "\"}}";
    }

    for (const Row &row : rows) {
        const TraceEvent &event = row.event;
        comma();
        out += "{\"name\": \"";
        appendJsonEscaped(out, event.name);
        if (event.phase == 'C') {
            // Counter tracks: one track per simulated context.
            out += ".ctx" + std::to_string(event.arg0);
        }
        out += "\", \"cat\": \"";
        appendJsonEscaped(out, event.category);
        out += "\", \"ph\": \"";
        out += event.phase;
        out += "\", \"ts\": ";
        appendMicros(out, event.startNs);
        if (event.phase == 'X') {
            out += ", \"dur\": ";
            appendMicros(out, event.durNs);
        }
        if (event.phase == 'C') {
            out += ", \"pid\": 2, \"tid\": 0, \"args\": {\"";
            appendJsonEscaped(out, event.argName1);
            out += "\": " + std::to_string(event.arg1) + "}";
        } else {
            out += ", \"pid\": 1, \"tid\": " + std::to_string(row.tid);
            if (event.phase == 'i')
                out += ", \"s\": \"t\"";
            if (event.argName0 != nullptr) {
                out += ", \"args\": {\"";
                appendJsonEscaped(out, event.argName0);
                out += "\": " + std::to_string(event.arg0);
                if (event.argName1 != nullptr) {
                    out += ", \"";
                    appendJsonEscaped(out, event.argName1);
                    out += "\": " + std::to_string(event.arg1);
                }
                out += "}";
            }
        }
        out += "}";
    }
    out += "\n]}\n";
    return out;
}

void
TraceRecorder::writeChromeTrace(const std::string &path)
{
    metrics().traceEventsDropped.add(droppedEvents());
    const std::string json = renderChromeTrace();
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (file == nullptr)
        fatal("cannot open trace output file '" + path + "'");
    std::fwrite(json.data(), 1, json.size(), file);
    std::fclose(file);
}

} // namespace hr
