#include "obs/progress.hh"

#include <algorithm>

#include "obs/metrics.hh"
#include "util/log.hh"

namespace hr
{

ProgressSink &
ProgressSink::instance()
{
    static ProgressSink sink;
    return sink;
}

void
ProgressSink::configure(const std::string &dest)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (ownsFile_ && out_ != nullptr)
        std::fclose(out_);
    out_ = nullptr;
    ownsFile_ = false;
    if (dest.empty()) {
        active_.store(false, std::memory_order_relaxed);
        return;
    }
    if (dest == "stderr") {
        out_ = stderr;
    } else {
        out_ = std::fopen(dest.c_str(), "w");
        if (out_ == nullptr)
            fatal("cannot open progress output file '" + dest + "'");
        ownsFile_ = true;
    }
    active_.store(true, std::memory_order_relaxed);
}

void
ProgressSink::writeLine(const std::string &line)
{
    // Caller holds mutex_.
    std::fwrite(line.data(), 1, line.size(), out_);
    std::fputc('\n', out_);
    std::fflush(out_);
}

std::string
ProgressSink::tierFields() const
{
    // Caller holds mutex_. Tier mix is the delta of the batch
    // follower metrics since beginTask.
    const Metrics &m = metrics();
    return "\"replayed\": " +
           std::to_string(m.batchFollowersReplayed.value() -
                          baseReplayed_) +
           ", \"stepped\": " +
           std::to_string(m.batchFollowersStepped.value() -
                          baseStepped_) +
           ", \"peeled\": " +
           std::to_string(m.batchFollowersPeeled.value() - basePeeled_) +
           ", \"scalar\": " +
           std::to_string(m.batchFollowersScalar.value() - baseScalar_);
}

void
ProgressSink::beginTask(const char *name, std::uint64_t total, int jobs)
{
    if (!activeFast())
        return;
    const std::lock_guard<std::mutex> lock(mutex_);
    task_ = name;
    total_ = total;
    done_.store(0, std::memory_order_relaxed);
    lastMilestone_ = 0;
    const Metrics &m = metrics();
    baseReplayed_ = m.batchFollowersReplayed.value();
    baseStepped_ = m.batchFollowersStepped.value();
    basePeeled_ = m.batchFollowersPeeled.value();
    baseScalar_ = m.batchFollowersScalar.value();
    taskStart_ = std::chrono::steady_clock::now();
    writeLine("{\"type\": \"task_start\", \"task\": \"" + task_ +
              "\", \"total\": " + std::to_string(total_) +
              ", \"jobs\": " + std::to_string(jobs) + "}");
}

void
ProgressSink::advance(std::uint64_t n)
{
    if (!activeFast())
        return;
    const std::uint64_t done =
        done_.fetch_add(n, std::memory_order_relaxed) + n;
    if (total_ == 0)
        return;
    const std::uint64_t milestone =
        std::min<std::uint64_t>(kMilestones, done * kMilestones / total_);
    if (milestone == 0)
        return;

    const std::lock_guard<std::mutex> lock(mutex_);
    if (milestone <= lastMilestone_ || task_.empty())
        return;
    lastMilestone_ = milestone;

    // Deterministic fields come from the milestone, not the racy
    // counter; wall fields (rate, eta) are informational only.
    const std::uint64_t doneAtMilestone =
        milestone * total_ / kMilestones;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      taskStart_)
            .count();
    const double rate = elapsed > 0 ? static_cast<double>(done) / elapsed
                                    : 0.0;
    const double eta =
        rate > 0 ? static_cast<double>(total_ - doneAtMilestone) / rate
                 : 0.0;
    char wall[80];
    std::snprintf(wall, sizeof(wall),
                  "\"rate_per_s\": %.1f, \"eta_s\": %.2f", rate, eta);
    writeLine("{\"type\": \"heartbeat\", \"task\": \"" + task_ +
              "\", \"done\": " + std::to_string(doneAtMilestone) +
              ", \"total\": " + std::to_string(total_) + ", " +
              tierFields() + ", " + wall + "}");
    metrics().progressHeartbeats.add();
}

void
ProgressSink::endTask()
{
    if (!activeFast())
        return;
    const std::lock_guard<std::mutex> lock(mutex_);
    if (task_.empty())
        return;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      taskStart_)
            .count();
    char wall[48];
    std::snprintf(wall, sizeof(wall), "\"wall_s\": %.3f", elapsed);
    writeLine("{\"type\": \"task_end\", \"task\": \"" + task_ +
              "\", \"total\": " + std::to_string(total_) + ", " +
              tierFields() + ", " + wall + "}");
    task_.clear();
    total_ = 0;
    lastMilestone_ = 0;
}

} // namespace hr
