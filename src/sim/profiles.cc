#include "sim/profiles.hh"

#include "util/log.hh"
#include "util/params.hh"

namespace hr
{

namespace
{

MachineConfig
makeNoisy()
{
    return MachineConfig::noisyProfile();
}

MachineConfig
makeRandomL1()
{
    return MachineConfig::randomL1Profile();
}

/**
 * plruProfile with the memory-latency jitter of noisyProfile: the
 * Fig. 10 distribution experiment needs realistic spread on top of the
 * 4-way tree-PLRU L1.
 */
MachineConfig
makeNoisyPlru()
{
    MachineConfig config = MachineConfig::plruProfile();
    config.memory.l3Jitter = 8;
    config.memory.memJitter = 30;
    return config;
}

/** Small LLC for brisk eviction-set generation (section 7.4). */
MachineConfig
makeSmallLlc()
{
    MachineConfig config = MachineConfig::plruProfile();
    config.memory.l3.numSets = 256;
    config.memory.l3.assoc = 16;
    config.memory.l3.policy = PolicyKind::Lru;
    return config;
}

/** Two hardware contexts on the default core (contention timers). */
MachineConfig
makeSmt2()
{
    MachineConfig config;
    config.contexts = 2;
    return config;
}

/**
 * Two hardware contexts over the 4-way tree-PLRU L1: the home of the
 * noisy-neighbor sweeps, where the paper's PLRU gadgets run against a
 * co-resident workload.
 */
MachineConfig
makeSmt2Plru()
{
    MachineConfig config = MachineConfig::plruProfile();
    config.contexts = 2;
    return config;
}

const std::vector<MachineProfile> &
profileTable()
{
    static const std::vector<MachineProfile> kProfiles = {
        {"default", "Coffee-Lake-like baseline core and hierarchy",
         &MachineConfig::defaultProfile},
        {"effective_window",
         "small (64-entry) ROB modelling the JIT-expanded 54-JS-op "
         "window of Fig. 8/9",
         &MachineConfig::effectiveWindowProfile},
        {"noisy", "default profile plus L3/memory latency jitter",
         &makeNoisy},
        {"plru", "4-way tree-PLRU 32KB L1 (the paper's W = 4 example)",
         &MachineConfig::plruProfile},
        {"noisy_plru",
         "plru profile plus memory-latency jitter (Fig. 10 spread)",
         &makeNoisyPlru},
        {"random_l1", "8-way random-replacement L1 (section 6.3)",
         &makeRandomL1},
        {"small_llc",
         "plru profile with a 256-set LRU LLC (section 7.4 evsets)",
         &makeSmallLlc},
        {"smt2",
         "default profile with two SMT hardware contexts (contention "
         "timers)",
         &makeSmt2},
        {"smt2_plru",
         "plru profile with two SMT hardware contexts (noisy-neighbor "
         "sweeps)",
         &makeSmt2Plru},
    };
    return kProfiles;
}

} // namespace

const std::vector<MachineProfile> &
machineProfiles()
{
    return profileTable();
}

bool
hasMachineProfile(const std::string &name)
{
    for (const auto &profile : profileTable())
        if (profile.name == name)
            return true;
    return false;
}

MachineConfig
machineConfigForProfile(const std::string &name)
{
    for (const auto &profile : profileTable())
        if (profile.name == name)
            return profile.make();
    std::vector<std::string> names;
    std::string known;
    for (const auto &profile : profileTable()) {
        names.push_back(profile.name);
        known += (known.empty() ? "" : ", ") + profile.name;
    }
    const std::string suggestion = closestMatch(name, names);
    fatal("unknown machine profile '" + name + "'" +
          (suggestion.empty() ? ""
                              : " (did you mean '" + suggestion + "'?)") +
          "; known: " + known);
}

} // namespace hr
