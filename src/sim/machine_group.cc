#include "sim/machine_group.hh"

#include <limits>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/log.hh"

namespace hr
{

void
MachineGroup::adopt(const TrialTrace *trace,
                    const Machine::Snapshot *base)
{
    panicIf((trace == nullptr) != (base == nullptr),
            "MachineGroup::adopt: trace and base must be adopted (and "
            "detached) together");
    fatalIf(trace != nullptr && trace->opaque,
            "MachineGroup::adopt: opaque traces have no skeleton to "
            "step against (route those followers scalar)");
    trace_ = trace;
    base_ = base;
    traceReseeds_ = false;
    if (trace_ != nullptr) {
        for (const TraceOp &op : trace_->ops) {
            if (op.kind == TraceOp::Kind::Reseed) {
                traceReseeds_ = true;
                break;
            }
        }
    }
    laneOutcome_.clear();
    laneOps_.clear();
    laneSubs_.clear();
}

MachineGroup::Outcome
MachineGroup::record(Outcome outcome, std::size_t matched,
                     std::size_t subs)
{
    constexpr std::uint32_t cap =
        std::numeric_limits<std::uint32_t>::max();
    laneOutcome_.push_back(static_cast<std::uint8_t>(outcome));
    laneOps_.push_back(matched > cap
                           ? cap
                           : static_cast<std::uint32_t>(matched));
    laneSubs_.push_back(subs > cap ? cap
                                   : static_cast<std::uint32_t>(subs));
    switch (outcome) {
      case Outcome::Replayed:
        ++stats_.replayed;
        metrics().groupLanesReplayed.add();
        HR_TRACE_INSTANT1("group", "group.lane_replayed", "matched",
                          matched);
        break;
      case Outcome::Stepped:
        ++stats_.stepped;
        metrics().groupLanesStepped.add();
        HR_TRACE_INSTANT2("group", "group.lane_stepped", "matched",
                          matched, "subs", subs);
        break;
      case Outcome::Peeled:
        ++stats_.peeled;
        metrics().groupLanesPeeled.add();
        HR_TRACE_INSTANT1("group", "group.lane_peeled", "matched",
                          matched);
        break;
      case Outcome::Scalar:
        ++stats_.scalar;
        HR_TRACE_INSTANT("group", "group.lane_scalar");
        break;
    }
    stats_.substitutions += subs;
    if (subs > 0)
        metrics().groupReseedsSubstituted.add(subs);
    return outcome;
}

MachineGroup::Outcome
MachineGroup::step(Machine &machine, bool &dirty, const Trial &trial)
{
    panicIf(trace_ == nullptr,
            "MachineGroup::step: no skeleton adopted");

    // Guided execution is reserved for the one shape replay cannot
    // win: a noise-consuming trace WITH reseed ops, where per-lane
    // mixes make first-reseed divergence certain and substitution
    // unsound. Everything else replays — with dead-reseed tolerance
    // when the zero-draw proof licenses it, strictly otherwise (the
    // plain tier's verbatim win, e.g. noisy traces whose followers
    // never reseed, stays exactly as fast as before).
    const bool substitutable = trace_->rngDraws == 0;
    if (substitutable || !traceReseeds_) {
        // Substituted replay: zero noise draws prove every recorded
        // result independent of the seeds, so reseeds with a lane-own
        // mix substitute freely and the trace still answers the whole
        // trial. A clean (possibly substituted) replay never touches
        // machine state — dirty is left exactly as the strict-replay
        // tier would leave it. A peel restored base and re-executed
        // the prefix (with the lane's mixes), so state is real and
        // dirty.
        Machine::ReplayTolerance tolerance;
        tolerance.substituteDeadReseeds = substitutable;
        machine.beginReplay(*trace_, *base_, tolerance);
        trial(machine);
        const bool clean = machine.endReplay();
        const std::size_t subs = machine.replaySubstitutions();
        if (!clean) {
            dirty = true;
            return record(Outcome::Peeled, machine.replayMatched(),
                          subs);
        }
        return record(subs == 0 ? Outcome::Replayed : Outcome::Stepped,
                      machine.replayMatched(), subs);
    }

    // Guided real execution: the trace's results depend on the noise
    // seeds, so nothing can be answered from it. The lane executes
    // scalar — through the very same code path a plain scalar trial
    // takes — while marching down the leader's op skeleton on the
    // side. Whether it stayed on the skeleton is free information;
    // peeling costs nothing because nothing was skipped.
    if (dirty)
        machine.restore(*base_);
    dirty = true;
    machine.beginGuided(*trace_);
    trial(machine);
    const bool on_skeleton = machine.endGuided();
    return record(on_skeleton ? Outcome::Stepped : Outcome::Peeled,
                  machine.guidedMatched(),
                  machine.guidedSubstitutions());
}

} // namespace hr
