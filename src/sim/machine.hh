/**
 * @file
 * Machine: the persistent attacker-visible execution environment.
 *
 * Owns a core, a cache hierarchy, a memory image, and a branch
 * predictor, all of which keep state across run() calls — which is how
 * successive "JavaScript function invocations" (training, racing,
 * magnifying, probing) interact through the microarchitecture.
 *
 * A machine may expose several SMT-style hardware execution contexts
 * (MachineConfig::contexts): run() executes on context 0 while
 * registered background programs (setBackground) co-run on theirs,
 * and coRun() interleaves explicit co-runners — all deterministically.
 *
 * Programs are executed through a DecodedProgram image resolved by a
 * per-configuration DecodeCache (shareable across a MachinePool), and
 * the whole public harness surface can be recorded into a TrialTrace
 * and replayed — the machinery behind BatchRunner's lockstep trial
 * batching (see exp/batch.hh).
 */

#ifndef HR_SIM_MACHINE_HH
#define HR_SIM_MACHINE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "core/branch_predictor.hh"
#include "core/ooo_core.hh"
#include "isa/program.hh"
#include "sim/decode_cache.hh"
#include "sim/trial_trace.hh"
#include "util/memory_image.hh"
#include "util/types.hh"

namespace hr
{

/** Full machine configuration. */
struct MachineConfig
{
    CoreConfig core;
    HierarchyConfig memory;
    double ghz = 2.0; ///< clock for cycle <-> nanosecond conversion

    /**
     * SMT-style hardware execution contexts sharing the core's issue
     * queue and functional units and the whole cache hierarchy. The
     * ROB is partitioned evenly; fetch/dispatch and commit bandwidth
     * are round-robin arbitrated. A single-context machine (the
     * default) is bit-identical to the pre-multi-context simulator.
     */
    int contexts = 1;

    /**
     * Effective-window profile used by the racing-granularity
     * experiments (Fig. 8/9): a small ROB models the paper's
     * JIT-expanded "54 JS ops" window (see EXPERIMENTS.md).
     */
    static MachineConfig effectiveWindowProfile();

    /** Default Coffee-Lake-like profile. */
    static MachineConfig defaultProfile();

    /** Profile with memory-latency jitter enabled (noisy system). */
    static MachineConfig noisyProfile(std::uint64_t seed = 7);

    /**
     * 4-way tree-PLRU L1 (same 32KB capacity, 128 sets): the paper's
     * W = 4 example configuration for the PLRU magnifier gadgets.
     */
    static MachineConfig plruProfile();

    /** Random-replacement 8-way L1 (section 6.3's configuration). */
    static MachineConfig randomL1Profile(std::uint64_t seed = 5);

    /** Enable periodic timer interrupts (default 4 ms, as in Fig. 12). */
    MachineConfig &withInterrupts(double interval_ms = 4.0);

    /** Set the hardware-context count (fluent helper). */
    MachineConfig &withContexts(int n);
};

/**
 * Deterministic fingerprint over every configuration field that can
 * influence simulated behaviour. Keys DecodeCache sharing: a cache
 * built for one configuration refuses machines of another.
 */
std::uint64_t machineConfigFingerprint(const MachineConfig &config);

/** The simulated machine. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config = {});

    /**
     * Deep copy of everything that persists across run() calls: cache
     * hierarchy (tag arrays, replacement state, in-flight fills,
     * per-context attribution and jitter streams), branch predictor,
     * memory image, and core counters/cycle (whole-core and
     * per-context). Move-only; restore any number of times.
     * Registered background programs are machine configuration, not
     * captured state: restore() neither adds nor removes them.
     *
     * Aliasing caveats (see EXPERIMENTS.md):
     *  - restore() does not change serial(), so TimingSources
     *    calibrated against this machine BEFORE the snapshot remain
     *    valid afterwards (the warm/calibrate-once use case), but a
     *    calibration done AFTER the snapshot also survives a restore
     *    even though the state it measured was rolled back.
     *  - Programs keep their assigned ids across a restore; ids are
     *    allocated from a process-wide counter that never rolls back,
     *    so a program first run after the snapshot keeps one stable
     *    (always initially cold) id across every replay — which is
     *    what makes replays bit-identical without id collisions.
     */
    class Snapshot
    {
      public:
        Snapshot() = default;
        Snapshot(Snapshot &&) = default;
        Snapshot &operator=(Snapshot &&) = default;

      private:
        friend class Machine;
        Hierarchy::Snapshot hierarchy;
        OooCore::Snapshot core;
        BranchPredictor predictor;
        MemoryImage memory;
    };

    /**
     * Capture the current state (between run() calls). Taking or
     * restoring a snapshot while a TrialTrace is being recorded marks
     * the trace opaque (state time-travel cannot be replayed).
     */
    Snapshot snapshot();

    /**
     * Reset to a snapshotted state. The snapshot must come from a
     * machine with an identical configuration — normally this one.
     * Restoring the most recent snapshot of this machine only copies
     * back cache sets touched since (fast); anything else falls back
     * to a full deep copy.
     */
    void restore(const Snapshot &snap);

    const MachineConfig &config() const { return config_; }

    /** Number of hardware execution contexts. */
    int contexts() const { return config_.contexts; }

    /**
     * Process-unique machine identity. Lets components that lazily
     * bind to a machine (TimingSource adapters) detect that a new
     * Machine was constructed at a recycled address and rebuild.
     */
    std::uint64_t serial() const { return serial_; }

    MemoryImage &memory() { return memory_; }
    const MemoryImage &memory() const { return memory_; }
    Hierarchy &hierarchy() { return hierarchy_; }
    const Hierarchy &hierarchy() const { return hierarchy_; }
    OooCore &core() { return *core_; }
    BranchPredictor &predictor() { return predictor_; }

    /** Global cycle count. */
    Cycle now() const;

    /** Convert cycles to nanoseconds at the configured clock. */
    double toNs(Cycle cycles) const;
    double toUs(Cycle cycles) const { return toNs(cycles) / 1e3; }

    // ---- decoded-trace cache -------------------------------------------
    /** Fingerprint of this machine's configuration. */
    std::uint64_t configFingerprint() const { return fingerprint_; }

    /**
     * Resolve the shared decoded image for a program, assigning it a
     * process-unique id if it has none (or a fresh one if it was
     * mutated in place under its old id — see DecodeCache). run()
     * does this implicitly; exposed for cache-behaviour tests and the
     * decode_cache_hit perf suite.
     */
    std::shared_ptr<const DecodedProgram> decodeProgram(Program &program);

    /** The decode cache this machine resolves programs through. */
    const std::shared_ptr<DecodeCache> &decodeCache() const
    {
        return decodeCache_;
    }

    /**
     * Adopt a shared decode cache (MachinePool gives all its machines
     * one). The cache must carry this machine's config fingerprint.
     */
    void shareDecodeCache(const std::shared_ptr<DecodeCache> &cache);

    /**
     * Run a program to completion on context 0. Assigns the program an
     * id on first use (ids key branch-predictor state). If background
     * programs are registered (setBackground), they co-run on their
     * contexts for the duration — restarted fresh each call — and the
     * returned result is the primary context's attribution.
     */
    RunResult run(Program &program,
                  const std::vector<std::pair<RegId, std::int64_t>>
                      &initial_regs = {},
                  Cycle max_cycles = 500'000'000);

    /**
     * Run a program to completion on an arbitrary context. Contexts
     * other than @p ctx stay idle except for registered backgrounds.
     */
    RunResult run(ContextId ctx, Program &program,
                  const std::vector<std::pair<RegId, std::int64_t>>
                      &initial_regs = {},
                  Cycle max_cycles = 500'000'000);

    /**
     * Co-run driver: execute @p program on @p ctx together with
     * explicit per-context co-runners, all interleaved
     * deterministically (plus any registered backgrounds whose
     * contexts are free). Runs until the primary completes; co-runners
     * are then abandoned mid-flight like descheduled neighbors.
     */
    RunResult coRun(ContextId ctx, Program &program,
                    std::vector<std::pair<ContextId, Program *>> extras,
                    const std::vector<std::pair<RegId, std::int64_t>>
                        &initial_regs = {},
                    Cycle max_cycles = 500'000'000);

    // ---- ambient background workloads (noisy neighbors) ---------------
    /**
     * Register a background program on a context (1..contexts-1). Every
     * subsequent run() co-runs a fresh restart of it, so the primary
     * workload always executes against the same co-resident activity.
     * The program is copied and immediately assigned a process-unique
     * id (the same collision-free allocator foreground programs use).
     * Backgrounds are machine configuration, not microarchitectural
     * state: restore() does not add or remove them.
     */
    void setBackground(ContextId ctx, Program program);

    /** Remove one registered background. */
    void clearBackground(ContextId ctx);

    /** Remove all registered backgrounds. */
    void clearBackgrounds();

    // ---- harness conveniences -----------------------------------------
    /** Write a word and (optionally) keep caches unaware (default). */
    void poke(Addr addr, std::int64_t value);
    std::int64_t peek(Addr addr) const;

    /** clflush-like line invalidation across all levels. */
    void flushLine(Addr addr);
    void flushAllCaches();

    /** Instantly install a line (setup helper; no timing). */
    void warm(Addr addr, int upto_level = 1);

    /** Highest cache level holding the line (0 = none). */
    int probeLevel(Addr addr) const;

    /**
     * Let all in-flight memory requests land (models the idle gap
     * between attacker function invocations). Probing cache state right
     * after a run without settling may miss still-pending fills.
     */
    void settle();

    /**
     * Per-context access counters (traced read; prefer this over raw
     * hierarchy().contextStats() in trial code so the value replays
     * correctly under BatchRunner — the raw accessor reads whatever
     * state the machine happens to hold, which during a replay is NOT
     * the trial's logical state).
     */
    ContextAccessStats contextStats(ContextId ctx) const;

    /** Total misses at a cache level (1-3); traced read like above. */
    std::uint64_t cacheMisses(int level) const;

    /**
     * Reseed the hierarchy's jitter/replacement randomness streams with
     * this machine's configured seeds xor @p mix (the per-trial
     * decorrelation scenarios use; see ScenarioContext::reseedMachine).
     * Part of the traceable harness surface, unlike raw
     * hierarchy().reseed().
     */
    void reseedNoise(std::uint64_t mix);

    // ---- trial record/replay (see trial_trace.hh, exp/batch.hh) -------
    /**
     * Start recording every public harness operation (and its result)
     * into @p trace, which the caller owns and must keep alive until
     * endRecord(). The machine still executes everything for real.
     */
    void beginRecord(TrialTrace &trace);

    /** Stop recording (stamps TrialTrace::rngDraws). */
    void endRecord();

    /**
     * What a replay may paper over beyond an exact op-for-op match.
     * The group-stepped batching tier turns on dead-reseed
     * substitution; the plain leader/follower tier replays strict.
     */
    struct ReplayTolerance
    {
        // Constructor instead of a default member initializer: the
        // latter cannot feed beginReplay's default argument below
        // (the enclosing class is still incomplete there).
        ReplayTolerance() : substituteDeadReseeds(false) {}

        /**
         * Treat a reseedNoise whose mix differs from the recorded one
         * as matching, provided the trace consumed zero noise-stream
         * draws (TrialTrace::rngDraws == 0, making every reseed in it
         * behaviorally dead). The substituted mixes are applied — in
         * place of the recorded ones — if the replay later diverges
         * and the prefix is re-materialized.
         */
        bool substituteDeadReseeds;
    };

    /**
     * Start replaying against @p trace: as long as incoming operations
     * match the recorded sequence, they are answered from the recorded
     * results with no simulation and no state change. On the first
     * mismatch the machine transparently re-materializes real state —
     * restore(@p base), re-execute the matched prefix for real — and
     * drops out of replay; the caller's trial continues scalar without
     * noticing. @p base must be the state the trace was recorded from,
     * and both must outlive the replay.
     */
    void beginReplay(const TrialTrace &trace, const Snapshot &base,
                     ReplayTolerance tolerance = {});

    /**
     * Finish a replay. Returns true if every operation was served from
     * the trace (machine state was never touched); false if the trial
     * diverged and finished scalar (state reflects the trial's real
     * execution from @p base).
     */
    bool endReplay();

    /**
     * Reseed substitutions the last finished replay tolerated (0 for
     * a strict replay). A clean replay with substitutions was
     * group-stepped, not answered verbatim — BatchRunner's stats
     * distinguish the two.
     */
    std::size_t replaySubstitutions() const { return lastReplaySubs_; }

    /**
     * Ops the last finished replay matched: the whole trial for a
     * clean replay, the re-materialized prefix for a diverged one.
     */
    std::size_t replayMatched() const { return lastReplayMatched_; }

    /**
     * Start guided execution against @p trace: every operation
     * executes for real on this machine's current state (which the
     * caller has restored to the trace's base), while being matched
     * against the recorded op sequence on the side. Reseed mixes may
     * substitute freely (the op still executes, with the lane's own
     * mix). The first genuinely mismatched op peels the machine off
     * the skeleton — at zero cost, since nothing was skipped — and the
     * trial simply continues scalar. This is the group-stepped path
     * for traces whose results DO depend on the noise seeds
     * (TrialTrace::rngDraws > 0): the trial cannot be answered from
     * the trace, but it can march down the same op skeleton and
     * report, for free, whether it stayed on it.
     */
    void beginGuided(const TrialTrace &trace);

    /**
     * Finish guided execution. Returns true if the trial never peeled
     * off the skeleton (every op it made matched, in order).
     */
    bool endGuided();

    /** Ops matched before the last guided trial ended or peeled. */
    std::size_t guidedMatched() const { return lastGuidedMatched_; }

    /** Reseed-mix substitutions during the last guided trial. */
    std::size_t guidedSubstitutions() const { return lastGuidedSubs_; }

    bool recording() const { return recording_ != nullptr; }
    bool replaying() const { return replayTrace_ != nullptr; }
    bool guiding() const { return guidedTrace_ != nullptr; }

  private:
    MachineConfig config_;
    std::uint64_t serial_;
    std::uint64_t fingerprint_;
    MemoryImage memory_;
    Hierarchy hierarchy_;
    BranchPredictor predictor_;
    std::unique_ptr<OooCore> core_;
    std::shared_ptr<DecodeCache> decodeCache_;

    /** Registered background (noisy-neighbor) programs, by context. */
    struct Background
    {
        Program program;
        std::shared_ptr<const DecodedProgram> decoded;
    };
    std::map<ContextId, Background> backgrounds_;

    // --- record/replay state (mutable: const reads are traced too) ---
    TrialTrace *recording_ = nullptr;
    std::uint64_t recordDraws0_ = 0;
    const TrialTrace *replayTrace_ = nullptr;
    const Snapshot *replayBase_ = nullptr;
    ReplayTolerance replayTolerance_;
    mutable std::size_t replayPos_ = 0;
    mutable bool replayDiverged_ = false;
    /** (op index, substituted mix) pairs of the active replay. */
    mutable std::vector<std::pair<std::size_t, std::uint64_t>>
        replaySubs_;
    std::size_t lastReplaySubs_ = 0;
    std::size_t lastReplayMatched_ = 0;

    // --- guided-execution state (see beginGuided) ---
    mutable const TrialTrace *guidedTrace_ = nullptr;
    mutable std::size_t guidedPos_ = 0;
    mutable bool guidedPeeled_ = false;
    mutable std::size_t guidedSubs_ = 0;
    std::size_t lastGuidedMatched_ = 0;
    std::size_t lastGuidedSubs_ = 0;

    // --- execution internals ---
    RunResult realRun(ContextId ctx, const DecodedProgram &decoded,
                      std::uint64_t program_id,
                      const std::vector<std::pair<RegId, std::int64_t>>
                          &initial_regs,
                      Cycle max_cycles);
    RunResult realCoRun(const TraceOp::RunSpec &spec);
    RunResult replayRun(ContextId ctx, Program &program,
                        std::vector<std::pair<ContextId, Program *>>
                            *extras,
                        const std::vector<std::pair<RegId, std::int64_t>>
                            &initial_regs,
                        Cycle max_cycles);
    void applyReseed(std::uint64_t mix);
    void markOpaque();

    /**
     * Whether two program ids are interchangeable for @p decoded given
     * the replay base state: every branch pc holds the same predictor
     * counter under both ids.
     */
    bool idsEquivalent(const DecodedProgram &decoded, std::uint64_t a,
                       std::uint64_t b) const;

    /**
     * Leave replay mode at the current position: restore the base
     * snapshot, re-execute the matched prefix for real, and continue
     * scalar. Const because divergence can be triggered from const
     * reads (peek/probeLevel/now); the machine is logically mutable
     * here by design.
     */
    void divergeReplay() const;
    void divergeReplayImpl();

    /** Next trace op if it matches @p kind, else diverge and null. */
    const TraceOp *replayExpect(TraceOp::Kind kind) const;

    // --- guided-execution internals ---
    /**
     * Match one executed-for-real op against the skeleton: advance on
     * a hit, peel quietly on a miss. Const for the same reason as
     * divergeReplay: pure reads (peek/now/...) participate too, and
     * peeling only flips bookkeeping — state is already real.
     */
    void guidedObserve(TraceOp::Kind kind, Addr addr, std::int64_t value,
                       int level, std::uint64_t mix) const;

    /**
     * guidedObserve for run/coRun: compares context, decoded image
     * (pointer equality — the shared DecodeCache content-aliases
     * identical programs), initial regs, cycle budget, and co-runners.
     * Program ids are NOT compared: a guided lane executes fresh
     * programs under its own freshly-allocated ids, which are cold
     * exactly like the leader's were, so the id value cannot reach
     * simulated behaviour.
     */
    void guidedObserveRun(ContextId ctx, const DecodedProgram *decoded,
                          const std::vector<std::pair<RegId,
                                                      std::int64_t>>
                              &initial_regs,
                          Cycle max_cycles,
                          const std::vector<TraceOp::Extra> *extras)
        const;

    /** The skeleton op the next real op should match, if any. */
    const TraceOp *guidedExpect(TraceOp::Kind kind) const;

    /** Stop matching against the skeleton (state is already real). */
    void peelGuided() const;
};

} // namespace hr

#endif // HR_SIM_MACHINE_HH
