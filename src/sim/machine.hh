/**
 * @file
 * Machine: the persistent attacker-visible execution environment.
 *
 * Owns a core, a cache hierarchy, a memory image, and a branch
 * predictor, all of which keep state across run() calls — which is how
 * successive "JavaScript function invocations" (training, racing,
 * magnifying, probing) interact through the microarchitecture.
 *
 * A machine may expose several SMT-style hardware execution contexts
 * (MachineConfig::contexts): run() executes on context 0 while
 * registered background programs (setBackground) co-run on theirs,
 * and coRun() interleaves explicit co-runners — all deterministically.
 */

#ifndef HR_SIM_MACHINE_HH
#define HR_SIM_MACHINE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "core/branch_predictor.hh"
#include "core/ooo_core.hh"
#include "isa/program.hh"
#include "util/memory_image.hh"
#include "util/types.hh"

namespace hr
{

/** Full machine configuration. */
struct MachineConfig
{
    CoreConfig core;
    HierarchyConfig memory;
    double ghz = 2.0; ///< clock for cycle <-> nanosecond conversion

    /**
     * SMT-style hardware execution contexts sharing the core's issue
     * queue and functional units and the whole cache hierarchy. The
     * ROB is partitioned evenly; fetch/dispatch and commit bandwidth
     * are round-robin arbitrated. A single-context machine (the
     * default) is bit-identical to the pre-multi-context simulator.
     */
    int contexts = 1;

    /**
     * Effective-window profile used by the racing-granularity
     * experiments (Fig. 8/9): a small ROB models the paper's
     * JIT-expanded "54 JS ops" window (see EXPERIMENTS.md).
     */
    static MachineConfig effectiveWindowProfile();

    /** Default Coffee-Lake-like profile. */
    static MachineConfig defaultProfile();

    /** Profile with memory-latency jitter enabled (noisy system). */
    static MachineConfig noisyProfile(std::uint64_t seed = 7);

    /**
     * 4-way tree-PLRU L1 (same 32KB capacity, 128 sets): the paper's
     * W = 4 example configuration for the PLRU magnifier gadgets.
     */
    static MachineConfig plruProfile();

    /** Random-replacement 8-way L1 (section 6.3's configuration). */
    static MachineConfig randomL1Profile(std::uint64_t seed = 5);

    /** Enable periodic timer interrupts (default 4 ms, as in Fig. 12). */
    MachineConfig &withInterrupts(double interval_ms = 4.0);

    /** Set the hardware-context count (fluent helper). */
    MachineConfig &withContexts(int n);
};

/** The simulated machine. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config = {});

    /**
     * Deep copy of everything that persists across run() calls: cache
     * hierarchy (tag arrays, replacement state, in-flight fills,
     * per-context attribution and jitter streams), branch predictor,
     * memory image, core counters/cycle (whole-core and per-context),
     * and the program-id counter. Move-only; restore any number of
     * times. Registered background programs are machine configuration,
     * not captured state: restore() neither adds nor removes them.
     *
     * Aliasing caveats (see EXPERIMENTS.md):
     *  - restore() does not change serial(), so TimingSources
     *    calibrated against this machine BEFORE the snapshot remain
     *    valid afterwards (the warm/calibrate-once use case), but a
     *    calibration done AFTER the snapshot also survives a restore
     *    even though the state it measured was rolled back.
     *  - Programs keep their assigned ids across a restore while the
     *    id counter rolls back, so a program first run after the
     *    snapshot reuses the same id on every replay — which is what
     *    makes replays bit-identical.
     */
    class Snapshot
    {
      public:
        Snapshot() = default;
        Snapshot(Snapshot &&) = default;
        Snapshot &operator=(Snapshot &&) = default;

      private:
        friend class Machine;
        Hierarchy::Snapshot hierarchy;
        OooCore::Snapshot core;
        BranchPredictor predictor;
        MemoryImage memory;
        std::uint64_t nextProgramId = 1;
    };

    /** Capture the current state (between run() calls). */
    Snapshot snapshot();

    /**
     * Reset to a snapshotted state. The snapshot must come from a
     * machine with an identical configuration — normally this one.
     * Restoring the most recent snapshot of this machine only copies
     * back cache sets touched since (fast); anything else falls back
     * to a full deep copy.
     */
    void restore(const Snapshot &snap);

    const MachineConfig &config() const { return config_; }

    /** Number of hardware execution contexts. */
    int contexts() const { return config_.contexts; }

    /**
     * Process-unique machine identity. Lets components that lazily
     * bind to a machine (TimingSource adapters) detect that a new
     * Machine was constructed at a recycled address and rebuild.
     */
    std::uint64_t serial() const { return serial_; }

    MemoryImage &memory() { return memory_; }
    const MemoryImage &memory() const { return memory_; }
    Hierarchy &hierarchy() { return hierarchy_; }
    const Hierarchy &hierarchy() const { return hierarchy_; }
    OooCore &core() { return *core_; }
    BranchPredictor &predictor() { return predictor_; }

    /** Global cycle count. */
    Cycle now() const { return core_->cycle(); }

    /** Convert cycles to nanoseconds at the configured clock. */
    double toNs(Cycle cycles) const;
    double toUs(Cycle cycles) const { return toNs(cycles) / 1e3; }

    /**
     * Run a program to completion on context 0. Assigns the program an
     * id on first use (ids key branch-predictor state). If background
     * programs are registered (setBackground), they co-run on their
     * contexts for the duration — restarted fresh each call — and the
     * returned result is the primary context's attribution.
     */
    RunResult run(Program &program,
                  const std::vector<std::pair<RegId, std::int64_t>>
                      &initial_regs = {},
                  Cycle max_cycles = 500'000'000);

    /**
     * Run a program to completion on an arbitrary context. Contexts
     * other than @p ctx stay idle except for registered backgrounds.
     */
    RunResult run(ContextId ctx, Program &program,
                  const std::vector<std::pair<RegId, std::int64_t>>
                      &initial_regs = {},
                  Cycle max_cycles = 500'000'000);

    /**
     * Co-run driver: execute @p program on @p ctx together with
     * explicit per-context co-runners, all interleaved
     * deterministically (plus any registered backgrounds whose
     * contexts are free). Runs until the primary completes; co-runners
     * are then abandoned mid-flight like descheduled neighbors.
     */
    RunResult coRun(ContextId ctx, Program &program,
                    std::vector<std::pair<ContextId, Program *>> extras,
                    const std::vector<std::pair<RegId, std::int64_t>>
                        &initial_regs = {},
                    Cycle max_cycles = 500'000'000);

    // ---- ambient background workloads (noisy neighbors) ---------------
    /**
     * Register a background program on a context (1..contexts-1). Every
     * subsequent run() co-runs a fresh restart of it, so the primary
     * workload always executes against the same co-resident activity.
     * The program is copied and immediately assigned an id from a
     * dedicated background namespace that never collides with
     * foreground program ids — even across restore(), which rolls the
     * foreground id counter back. Backgrounds are machine
     * configuration, not microarchitectural state: restore() does not
     * add or remove them.
     */
    void setBackground(ContextId ctx, Program program);

    /** Remove one registered background. */
    void clearBackground(ContextId ctx);

    /** Remove all registered backgrounds. */
    void clearBackgrounds();

    // ---- harness conveniences -----------------------------------------
    /** Write a word and (optionally) keep caches unaware (default). */
    void poke(Addr addr, std::int64_t value) { memory_.write(addr, value); }
    std::int64_t peek(Addr addr) const { return memory_.read(addr); }

    /** clflush-like line invalidation across all levels. */
    void flushLine(Addr addr) { hierarchy_.flushLine(addr); }
    void flushAllCaches() { hierarchy_.flushAll(); }

    /** Instantly install a line (setup helper; no timing). */
    void warm(Addr addr, int upto_level = 1)
    {
        hierarchy_.warm(addr, upto_level);
    }

    /** Highest cache level holding the line (0 = none). */
    int probeLevel(Addr addr) const { return hierarchy_.probeLevel(addr); }

    /**
     * Let all in-flight memory requests land (models the idle gap
     * between attacker function invocations). Probing cache state right
     * after a run without settling may miss still-pending fills.
     */
    void settle() { hierarchy_.drainAllFills(); }

  private:
    MachineConfig config_;
    std::uint64_t serial_;
    MemoryImage memory_;
    Hierarchy hierarchy_;
    BranchPredictor predictor_;
    std::unique_ptr<OooCore> core_;
    std::uint64_t nextProgramId_ = 1;
    /** Id namespace for background programs (see setBackground). */
    static constexpr std::uint64_t kBackgroundIdBase = 1ull << 40;
    std::uint64_t nextBackgroundId_ = 0;
    /** Registered background (noisy-neighbor) programs, by context. */
    std::map<ContextId, Program> backgrounds_;
};

} // namespace hr

#endif // HR_SIM_MACHINE_HH
