#include "sim/decode_cache.hh"

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/log.hh"

namespace hr
{

std::shared_ptr<const DecodedProgram>
DecodeCache::acquire(Program &program)
{
    if (program.id == 0)
        program.id = allocateProgramId();

    std::lock_guard<std::mutex> lock(mutex_);

    auto by_id = byId_.find(program.id);
    if (by_id != byId_.end()) {
        const DecodedProgram &cached = *by_id->second;
        // O(1) verification on the hit path: acquire runs per machine
        // call, so a deep compare here would cost as much as the decode
        // it is meant to avoid. Size-changing mutation is caught right
        // here; size-preserving in-place mutation of Program::code
        // under an unchanged id is a contract violation (reset id to 0
        // after mutating — ProgramBuilder::take always returns id 0)
        // that only debug builds pay to detect.
        if (cached.numRegs == program.numRegs &&
            cached.code.size() == program.code.size()) {
#ifndef NDEBUG
            fatalIf(!sameCode(cached.code, program.code),
                    "DecodeCache: program '" + program.name +
                        "' was mutated in place under a live id; "
                        "reset program.id = 0 after mutating code");
#endif
            ++stats_.hits;
            metrics().decodeHits.add();
            return by_id->second;
        }
        // The program was mutated in place under its old id: the id is
        // the invalidation key, so give it a fresh one (cold predictor
        // state; never perturbs timing) and fall through to re-resolve.
        // The old entry stays — other programs may carry that content.
        ++stats_.invalidations;
        metrics().decodeInvalidations.add();
        HR_TRACE_INSTANT1("decode", "decode.invalidate", "program",
                          program.id);
        program.id = allocateProgramId();
    }

    const std::uint64_t hash =
        hashProgramContent(program.code, program.numRegs);
    auto bucket = byContent_.find(hash);
    if (bucket != byContent_.end()) {
        for (const auto &candidate : bucket->second) {
            if (candidate->numRegs == program.numRegs &&
                sameCode(candidate->code, program.code)) {
                ++stats_.aliased;
                metrics().decodeAliases.add();
                HR_TRACE_INSTANT1("decode", "decode.alias", "program",
                                  program.id);
                byId_.emplace(program.id, candidate);
                return candidate;
            }
        }
    }

    ++stats_.misses;
    metrics().decodeMisses.add();
    HR_TRACE_INSTANT1("decode", "decode.miss", "program", program.id);
    auto decoded = decodeProgram(program);
    byId_.emplace(program.id, decoded);
    byContent_[hash].push_back(decoded);
    return decoded;
}

DecodeCache::Stats
DecodeCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::size_t
DecodeCache::entries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const auto &[hash, bucket] : byContent_)
        n += bucket.size();
    return n;
}

} // namespace hr
