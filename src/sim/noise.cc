#include "sim/noise.hh"

#include "util/log.hh"

namespace hr
{

namespace
{

/**
 * Noise data lives far above the regions the gadget generators use
 * (they sit below ~16 MB), so a neighbor only interacts with the
 * attacker through set conflicts and shared-resource pressure, never
 * through literal address collisions.
 */
constexpr Addr kNoiseBase = 0x4000'0000;

/** In-place pointer-chase step: r = mem[r]. */
void
chaseInto(ProgramBuilder &builder, RegId r)
{
    Instruction inst;
    inst.op = Opcode::Load;
    inst.dst = r;
    inst.src0 = r;
    inst.scale0 = 1;
    builder.emit(inst);
}

Program
makePointerChase(Machine &machine, const ParamSet &params)
{
    const CacheConfig &l1 = machine.hierarchy().l1().config();
    const int default_lines = 2 * l1.numSets * l1.assoc;
    const int lines = static_cast<int>(
        params.getInt("noise_lines", default_lines));
    const int unroll = static_cast<int>(
        params.getInt("noise_unroll", 16));
    fatalIf(lines < 2, "noise_lines must be >= 2");
    fatalIf(unroll < 1, "noise_unroll must be >= 1");

    // A simple ring of consecutive lines covers every L1 set `lines /
    // numSets` deep; poke() keeps the installation timing-invisible.
    const Addr stride = static_cast<Addr>(l1.lineBytes);
    for (int i = 0; i < lines; ++i) {
        const Addr slot = kNoiseBase + static_cast<Addr>(i) * stride;
        const Addr next =
            kNoiseBase + static_cast<Addr>((i + 1) % lines) * stride;
        machine.poke(slot, static_cast<std::int64_t>(next));
    }

    ProgramBuilder builder("noise_pointer_chase");
    const RegId r = builder.movImm(static_cast<std::int64_t>(kNoiseBase));
    const std::int32_t loop = builder.newLabel();
    builder.bind(loop);
    for (int i = 0; i < unroll; ++i)
        chaseInto(builder, r);
    builder.jump(loop);
    return builder.take();
}

Program
makeStreamWriter(Machine &machine, const ParamSet &params)
{
    const CacheConfig &l1 = machine.hierarchy().l1().config();
    const int lines = static_cast<int>(
        params.getInt("noise_lines", 256));
    fatalIf(lines < 1, "noise_lines must be >= 1");

    const Addr stride = static_cast<Addr>(l1.lineBytes);
    ProgramBuilder builder("noise_stream_writer");
    const RegId data = builder.movImm(0x5a);
    const std::int32_t loop = builder.newLabel();
    builder.bind(loop);
    // One full lap over the buffer per loop iteration; consecutive
    // lines touch consecutive sets, write-allocating on every pass.
    for (int i = 0; i < lines; ++i) {
        const Addr addr = kNoiseBase + static_cast<Addr>(i) * stride;
        builder.storeAbsolute(addr, data);
    }
    builder.jump(loop);
    return builder.take();
}

} // namespace

const std::vector<NoiseInfo> &
noiseWorkloads()
{
    static const std::vector<NoiseInfo> kNoise = {
        {"idle", NoiseKind::Idle, "no co-resident activity (control)"},
        {"pointer_chase", NoiseKind::PointerChase,
         "latency-bound L1 evictor: serial chase over 2x-L1 lines"},
        {"stream_writer", NoiseKind::StreamWriter,
         "bandwidth-bound writer: dense stores cycling over a buffer"},
    };
    return kNoise;
}

const NoiseInfo &
noiseWorkload(const std::string &name)
{
    for (const NoiseInfo &info : noiseWorkloads())
        if (info.name == name)
            return info;
    std::string known;
    for (const NoiseInfo &info : noiseWorkloads())
        known += (known.empty() ? "" : ", ") + info.name;
    fatal("unknown noise workload '" + name + "' (known: " + known + ")");
}

Program
makeNoiseProgram(Machine &machine, NoiseKind kind, const ParamSet &params)
{
    switch (kind) {
      case NoiseKind::PointerChase:
        params.requireKeys({"noise_lines", "noise_unroll"},
                           "noise workload 'pointer_chase'");
        return makePointerChase(machine, params);
      case NoiseKind::StreamWriter:
        params.requireKeys({"noise_lines"},
                           "noise workload 'stream_writer'");
        return makeStreamWriter(machine, params);
      case NoiseKind::Idle:
      default: {
        params.requireKeys({}, "noise workload 'idle'");
        ProgramBuilder builder("noise_idle");
        builder.halt();
        return builder.take();
      }
    }
}

void
installNoise(Machine &machine, ContextId ctx, NoiseKind kind,
             const ParamSet &params)
{
    if (kind == NoiseKind::Idle) {
        machine.clearBackground(ctx);
        return;
    }
    machine.setBackground(ctx, makeNoiseProgram(machine, kind, params));
}

void
installNoise(Machine &machine, ContextId ctx, const std::string &name,
             const ParamSet &params)
{
    installNoise(machine, ctx, noiseWorkload(name).kind, params);
}

} // namespace hr
