#include "sim/machine.hh"

#include <atomic>

#include "util/log.hh"

namespace hr
{

namespace
{

std::uint64_t
nextMachineSerial()
{
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

} // namespace

MachineConfig
MachineConfig::defaultProfile()
{
    return MachineConfig{};
}

MachineConfig
MachineConfig::effectiveWindowProfile()
{
    MachineConfig config;
    config.core.robSize = 64;
    return config;
}

MachineConfig
MachineConfig::noisyProfile(std::uint64_t seed)
{
    MachineConfig config;
    config.memory.l3Jitter = 8;
    config.memory.memJitter = 30;
    config.memory.rngSeed = seed;
    return config;
}

MachineConfig
MachineConfig::plruProfile()
{
    MachineConfig config;
    config.memory.l1.numSets = 128;
    config.memory.l1.assoc = 4;
    config.memory.l1.policy = PolicyKind::TreePlru;
    return config;
}

MachineConfig
MachineConfig::randomL1Profile(std::uint64_t seed)
{
    MachineConfig config;
    config.memory.l1.numSets = 64;
    config.memory.l1.assoc = 8;
    config.memory.l1.policy = PolicyKind::Random;
    config.memory.l1.rngSeed = seed;
    config.memory.l1Mshrs = 16;
    return config;
}

MachineConfig &
MachineConfig::withInterrupts(double interval_ms)
{
    core.interruptInterval =
        static_cast<Cycle>(interval_ms * 1e6 * ghz);
    return *this;
}

Machine::Machine(const MachineConfig &config)
    : config_(config), serial_(nextMachineSerial()),
      hierarchy_(config.memory)
{
    core_ = std::make_unique<OooCore>(config_.core, hierarchy_, memory_,
                                      predictor_);
}

double
Machine::toNs(Cycle cycles) const
{
    return static_cast<double>(cycles) / config_.ghz;
}

Machine::Snapshot
Machine::snapshot()
{
    Snapshot snap;
    snap.hierarchy = hierarchy_.snapshot();
    snap.core = core_->snapshot();
    snap.predictor = predictor_;
    snap.memory = memory_;
    snap.nextProgramId = nextProgramId_;
    return snap;
}

void
Machine::restore(const Snapshot &snap)
{
    hierarchy_.restore(snap.hierarchy);
    core_->restore(snap.core);
    predictor_ = snap.predictor;
    memory_ = snap.memory;
    nextProgramId_ = snap.nextProgramId;
}

RunResult
Machine::run(Program &program,
             const std::vector<std::pair<RegId, std::int64_t>>
                 &initial_regs,
             Cycle max_cycles)
{
    if (program.id == 0)
        program.id = nextProgramId_++;
    return core_->run(program, initial_regs, max_cycles);
}

} // namespace hr
