#include "sim/machine.hh"

#include <atomic>

#include "util/log.hh"

namespace hr
{

namespace
{

std::uint64_t
nextMachineSerial()
{
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

} // namespace

MachineConfig
MachineConfig::defaultProfile()
{
    return MachineConfig{};
}

MachineConfig
MachineConfig::effectiveWindowProfile()
{
    MachineConfig config;
    config.core.robSize = 64;
    return config;
}

MachineConfig
MachineConfig::noisyProfile(std::uint64_t seed)
{
    MachineConfig config;
    config.memory.l3Jitter = 8;
    config.memory.memJitter = 30;
    config.memory.rngSeed = seed;
    return config;
}

MachineConfig
MachineConfig::plruProfile()
{
    MachineConfig config;
    config.memory.l1.numSets = 128;
    config.memory.l1.assoc = 4;
    config.memory.l1.policy = PolicyKind::TreePlru;
    return config;
}

MachineConfig
MachineConfig::randomL1Profile(std::uint64_t seed)
{
    MachineConfig config;
    config.memory.l1.numSets = 64;
    config.memory.l1.assoc = 8;
    config.memory.l1.policy = PolicyKind::Random;
    config.memory.l1.rngSeed = seed;
    config.memory.l1Mshrs = 16;
    return config;
}

MachineConfig &
MachineConfig::withInterrupts(double interval_ms)
{
    core.interruptInterval =
        static_cast<Cycle>(interval_ms * 1e6 * ghz);
    return *this;
}

MachineConfig &
MachineConfig::withContexts(int n)
{
    contexts = n;
    return *this;
}

namespace
{

/** Propagate MachineConfig::contexts into the hierarchy's config. */
MachineConfig
normalized(MachineConfig config)
{
    fatalIf(config.contexts < 1, "MachineConfig: contexts must be >= 1");
    config.memory.contexts = config.contexts;
    return config;
}

} // namespace

Machine::Machine(const MachineConfig &config)
    : config_(normalized(config)), serial_(nextMachineSerial()),
      hierarchy_(config_.memory)
{
    core_ = std::make_unique<OooCore>(config_.core, hierarchy_, memory_,
                                      predictor_, config_.contexts);
}

double
Machine::toNs(Cycle cycles) const
{
    return static_cast<double>(cycles) / config_.ghz;
}

Machine::Snapshot
Machine::snapshot()
{
    Snapshot snap;
    snap.hierarchy = hierarchy_.snapshot();
    snap.core = core_->snapshot();
    snap.predictor = predictor_;
    snap.memory = memory_;
    snap.nextProgramId = nextProgramId_;
    return snap;
}

void
Machine::restore(const Snapshot &snap)
{
    hierarchy_.restore(snap.hierarchy);
    core_->restore(snap.core);
    predictor_ = snap.predictor;
    memory_ = snap.memory;
    nextProgramId_ = snap.nextProgramId;
}

RunResult
Machine::run(Program &program,
             const std::vector<std::pair<RegId, std::int64_t>>
                 &initial_regs,
             Cycle max_cycles)
{
    return run(0, program, initial_regs, max_cycles);
}

RunResult
Machine::run(ContextId ctx, Program &program,
             const std::vector<std::pair<RegId, std::int64_t>>
                 &initial_regs,
             Cycle max_cycles)
{
    fatalIf(ctx >= static_cast<ContextId>(config_.contexts),
            "Machine::run: context out of range");
    if (program.id == 0)
        program.id = nextProgramId_++;
    if (backgrounds_.empty()) {
        // Fast path, and the exact legacy single-context code path.
        if (ctx == 0)
            return core_->run(program, initial_regs, max_cycles);
        return core_->runOn(ctx, program, initial_regs, max_cycles);
    }
    return coRun(ctx, program, {}, initial_regs, max_cycles);
}

RunResult
Machine::coRun(ContextId ctx, Program &program,
               std::vector<std::pair<ContextId, Program *>> extras,
               const std::vector<std::pair<RegId, std::int64_t>>
                   &initial_regs,
               Cycle max_cycles)
{
    fatalIf(ctx >= static_cast<ContextId>(config_.contexts),
            "Machine::run: context out of range");
    if (program.id == 0)
        program.id = nextProgramId_++;

    ContextProgram primary;
    primary.ctx = ctx;
    primary.program = &program;
    primary.initialRegs = initial_regs;

    std::vector<ContextProgram> others;
    for (auto &[extra_ctx, extra_prog] : extras) {
        fatalIf(extra_ctx >= static_cast<ContextId>(config_.contexts),
                "Machine::coRun: co-runner context out of range");
        fatalIf(extra_ctx == ctx,
                "Machine::coRun: co-runner on the primary context");
        for (const ContextProgram &other : others)
            fatalIf(other.ctx == extra_ctx,
                    "Machine::coRun: two co-runners on one context");
        if (extra_prog->id == 0)
            extra_prog->id = nextProgramId_++;
        ContextProgram spec;
        spec.ctx = extra_ctx;
        spec.program = extra_prog;
        others.push_back(std::move(spec));
    }
    // Registered backgrounds fill in every context no explicit
    // co-runner claimed; each run restarts them from the top.
    for (auto &[bg_ctx, bg_prog] : backgrounds_) {
        if (bg_ctx == ctx)
            continue;
        bool taken = false;
        for (const ContextProgram &other : others)
            taken |= other.ctx == bg_ctx;
        if (taken)
            continue;
        ContextProgram spec;
        spec.ctx = bg_ctx;
        spec.program = &bg_prog;
        others.push_back(std::move(spec));
    }
    return core_->coRun(primary, others, max_cycles);
}

void
Machine::setBackground(ContextId ctx, Program program)
{
    fatalIf(ctx == 0, "Machine::setBackground: context 0 is the "
                      "primary context");
    fatalIf(ctx >= static_cast<ContextId>(config_.contexts),
            "Machine::setBackground: context out of range (configure "
            "MachineConfig::contexts)");
    // Backgrounds are machine configuration, so their ids come from a
    // dedicated namespace that restore() never rolls back: an id
    // assigned from nextProgramId_ would collide with a foreground
    // program claiming the same id after a restore (the counter rolls
    // back, the background's id does not), aliasing their
    // branch-predictor key spaces.
    program.id = kBackgroundIdBase + nextBackgroundId_++;
    backgrounds_.insert_or_assign(ctx, std::move(program));
}

void
Machine::clearBackground(ContextId ctx)
{
    backgrounds_.erase(ctx);
}

void
Machine::clearBackgrounds()
{
    backgrounds_.clear();
}

} // namespace hr
