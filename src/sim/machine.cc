#include "sim/machine.hh"

#include <atomic>
#include <cstring>
#include <limits>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/log.hh"

namespace hr
{

namespace
{

std::uint64_t
nextMachineSerial()
{
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/**
 * Logical-run bookkeeping at the public run/coRun boundary: every
 * execution tier (real, replayed, guided) funnels through here exactly
 * once per logical run, so these metrics are --jobs/tier invariant.
 * Reads only raw RunResult fields — never traced Machine ops, which
 * would append TraceOps to recordings and break replay byte-identity.
 */
void
noteMachineRun(ContextId ctx, const RunResult &result)
{
    metrics().machineRuns.add();
    metrics().machineRunInstrs.observe(result.counters.committedInstrs);
    HR_TRACE_COUNTER("sim", "sim.cycles", ctx, result.endCycle);
}

} // namespace

MachineConfig
MachineConfig::defaultProfile()
{
    return MachineConfig{};
}

MachineConfig
MachineConfig::effectiveWindowProfile()
{
    MachineConfig config;
    config.core.robSize = 64;
    return config;
}

MachineConfig
MachineConfig::noisyProfile(std::uint64_t seed)
{
    MachineConfig config;
    config.memory.l3Jitter = 8;
    config.memory.memJitter = 30;
    config.memory.rngSeed = seed;
    return config;
}

MachineConfig
MachineConfig::plruProfile()
{
    MachineConfig config;
    config.memory.l1.numSets = 128;
    config.memory.l1.assoc = 4;
    config.memory.l1.policy = PolicyKind::TreePlru;
    return config;
}

MachineConfig
MachineConfig::randomL1Profile(std::uint64_t seed)
{
    MachineConfig config;
    config.memory.l1.numSets = 64;
    config.memory.l1.assoc = 8;
    config.memory.l1.policy = PolicyKind::Random;
    config.memory.l1.rngSeed = seed;
    config.memory.l1Mshrs = 16;
    return config;
}

MachineConfig &
MachineConfig::withInterrupts(double interval_ms)
{
    core.interruptInterval =
        static_cast<Cycle>(interval_ms * 1e6 * ghz);
    return *this;
}

MachineConfig &
MachineConfig::withContexts(int n)
{
    contexts = n;
    return *this;
}

namespace
{

/** Propagate MachineConfig::contexts into the hierarchy's config. */
MachineConfig
normalized(MachineConfig config)
{
    fatalIf(config.contexts < 1, "MachineConfig: contexts must be >= 1");
    config.memory.contexts = config.contexts;
    return config;
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

struct Fingerprinter
{
    std::uint64_t hash = kFnvOffset;

    void
    mix(std::uint64_t value)
    {
        hash ^= value;
        hash *= kFnvPrime;
    }

    void
    mix(double value)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &value, sizeof(bits));
        mix(bits);
    }

    void
    mix(const FuConfig &fu)
    {
        mix(static_cast<std::uint64_t>(fu.count));
        mix(fu.latency);
        mix(fu.initInterval);
    }

    void
    mix(const CacheConfig &cache)
    {
        mix(static_cast<std::uint64_t>(cache.numSets));
        mix(static_cast<std::uint64_t>(cache.assoc));
        mix(static_cast<std::uint64_t>(cache.lineBytes));
        mix(static_cast<std::uint64_t>(cache.policy));
        mix(cache.rngSeed);
    }
};

} // namespace

std::uint64_t
machineConfigFingerprint(const MachineConfig &config)
{
    Fingerprinter fp;
    const CoreConfig &core = config.core;
    fp.mix(static_cast<std::uint64_t>(core.fetchWidth));
    fp.mix(static_cast<std::uint64_t>(core.issueWidth));
    fp.mix(static_cast<std::uint64_t>(core.commitWidth));
    fp.mix(static_cast<std::uint64_t>(core.robSize));
    fp.mix(static_cast<std::uint64_t>(core.iqSize));
    fp.mix(core.intAlu);
    fp.mix(core.intMul);
    fp.mix(core.fpDiv);
    fp.mix(core.memRead);
    fp.mix(core.memWrite);
    fp.mix(core.branchU);
    fp.mix(core.mispredictPenalty);
    fp.mix(std::uint64_t{core.readyOrderIssue ? 1u : 0u});
    fp.mix(std::uint64_t{core.delayOnMiss ? 1u : 0u});
    fp.mix(core.interruptInterval);
    fp.mix(core.interruptOverhead);

    const HierarchyConfig &mem = config.memory;
    fp.mix(mem.l1);
    fp.mix(mem.l2);
    fp.mix(mem.l3);
    fp.mix(mem.l1Latency);
    fp.mix(mem.l2Latency);
    fp.mix(mem.l3Latency);
    fp.mix(mem.memLatency);
    fp.mix(mem.l3Jitter);
    fp.mix(mem.memJitter);
    fp.mix(static_cast<std::uint64_t>(mem.l1Mshrs));
    fp.mix(std::uint64_t{mem.inclusiveL3 ? 1u : 0u});
    fp.mix(mem.rngSeed);
    fp.mix(static_cast<std::uint64_t>(mem.contexts));

    fp.mix(config.ghz);
    fp.mix(static_cast<std::uint64_t>(config.contexts));
    return fp.hash;
}

Machine::Machine(const MachineConfig &config)
    : config_(normalized(config)), serial_(nextMachineSerial()),
      fingerprint_(machineConfigFingerprint(config_)),
      hierarchy_(config_.memory)
{
    core_ = std::make_unique<OooCore>(config_.core, hierarchy_, memory_,
                                      predictor_, config_.contexts);
    decodeCache_ = std::make_shared<DecodeCache>(fingerprint_);
}

double
Machine::toNs(Cycle cycles) const
{
    return static_cast<double>(cycles) / config_.ghz;
}

Machine::Snapshot
Machine::snapshot()
{
    if (replayTrace_)
        divergeReplayImpl();
    if (guidedTrace_)
        peelGuided();
    if (recording_)
        markOpaque();
    Snapshot snap;
    snap.hierarchy = hierarchy_.snapshot();
    snap.core = core_->snapshot();
    snap.predictor = predictor_;
    snap.memory = memory_;
    return snap;
}

void
Machine::restore(const Snapshot &snap)
{
    if (replayTrace_)
        divergeReplayImpl();
    if (guidedTrace_)
        peelGuided();
    if (recording_)
        markOpaque();
    hierarchy_.restore(snap.hierarchy);
    core_->restore(snap.core);
    predictor_ = snap.predictor;
    memory_ = snap.memory;
}

std::shared_ptr<const DecodedProgram>
Machine::decodeProgram(Program &program)
{
    return decodeCache_->acquire(program);
}

void
Machine::shareDecodeCache(const std::shared_ptr<DecodeCache> &cache)
{
    fatalIf(cache == nullptr, "Machine::shareDecodeCache: null cache");
    fatalIf(cache->configFingerprint() != fingerprint_,
            "Machine::shareDecodeCache: cache was built for a machine "
            "with a different configuration fingerprint");
    decodeCache_ = cache;
}

RunResult
Machine::run(Program &program,
             const std::vector<std::pair<RegId, std::int64_t>>
                 &initial_regs,
             Cycle max_cycles)
{
    return run(0, program, initial_regs, max_cycles);
}

RunResult
Machine::run(ContextId ctx, Program &program,
             const std::vector<std::pair<RegId, std::int64_t>>
                 &initial_regs,
             Cycle max_cycles)
{
    fatalIf(ctx >= static_cast<ContextId>(config_.contexts),
            "Machine::run: context out of range");
    if (replayTrace_) {
        const RunResult result =
            replayRun(ctx, program, nullptr, initial_regs, max_cycles);
        noteMachineRun(ctx, result);
        return result;
    }

    auto decoded = decodeCache_->acquire(program);
    if (guidedTrace_)
        guidedObserveRun(ctx, decoded.get(), initial_regs, max_cycles,
                         nullptr);
    RunResult result =
        realRun(ctx, *decoded, program.id, initial_regs, max_cycles);
    if (recording_) {
        TraceOp op;
        op.kind = TraceOp::Kind::Run;
        op.run.ctx = ctx;
        op.run.decoded = std::move(decoded);
        op.run.programId = program.id;
        op.run.initialRegs = initial_regs;
        op.run.maxCycles = max_cycles;
        op.result = result;
        recording_->ops.push_back(std::move(op));
    }
    noteMachineRun(ctx, result);
    return result;
}

RunResult
Machine::realRun(ContextId ctx, const DecodedProgram &decoded,
                 std::uint64_t program_id,
                 const std::vector<std::pair<RegId, std::int64_t>>
                     &initial_regs,
                 Cycle max_cycles)
{
    if (backgrounds_.empty()) {
        // Fast path, and the exact legacy single-context code path.
        if (ctx == 0)
            return core_->run(decoded, program_id, initial_regs,
                              max_cycles);
        return core_->runOn(ctx, decoded, program_id, initial_regs,
                            max_cycles);
    }

    ContextProgram primary;
    primary.ctx = ctx;
    primary.decoded = &decoded;
    primary.programId = program_id;
    primary.initialRegs = initial_regs;

    // Registered backgrounds fill in every other context; each run
    // restarts them from the top.
    std::vector<ContextProgram> others;
    for (auto &[bg_ctx, bg] : backgrounds_) {
        if (bg_ctx == ctx)
            continue;
        ContextProgram spec;
        spec.ctx = bg_ctx;
        spec.decoded = bg.decoded.get();
        spec.programId = bg.program.id;
        others.push_back(std::move(spec));
    }
    return core_->coRun(primary, others, max_cycles);
}

RunResult
Machine::coRun(ContextId ctx, Program &program,
               std::vector<std::pair<ContextId, Program *>> extras,
               const std::vector<std::pair<RegId, std::int64_t>>
                   &initial_regs,
               Cycle max_cycles)
{
    fatalIf(ctx >= static_cast<ContextId>(config_.contexts),
            "Machine::run: context out of range");
    if (replayTrace_) {
        const RunResult result =
            replayRun(ctx, program, &extras, initial_regs, max_cycles);
        noteMachineRun(ctx, result);
        return result;
    }

    TraceOp::RunSpec spec;
    spec.ctx = ctx;
    spec.decoded = decodeCache_->acquire(program);
    spec.programId = program.id;
    spec.initialRegs = initial_regs;
    spec.maxCycles = max_cycles;
    for (auto &[extra_ctx, extra_prog] : extras) {
        fatalIf(extra_ctx >= static_cast<ContextId>(config_.contexts),
                "Machine::coRun: co-runner context out of range");
        fatalIf(extra_ctx == ctx,
                "Machine::coRun: co-runner on the primary context");
        for (const TraceOp::Extra &other : spec.extras)
            fatalIf(other.ctx == extra_ctx,
                    "Machine::coRun: two co-runners on one context");
        TraceOp::Extra extra;
        extra.ctx = extra_ctx;
        extra.decoded = decodeCache_->acquire(*extra_prog);
        extra.programId = extra_prog->id;
        spec.extras.push_back(std::move(extra));
    }

    if (guidedTrace_)
        guidedObserveRun(spec.ctx, spec.decoded.get(), spec.initialRegs,
                         spec.maxCycles, &spec.extras);
    RunResult result = realCoRun(spec);
    if (recording_) {
        TraceOp op;
        op.kind = TraceOp::Kind::Run;
        op.run = std::move(spec);
        op.result = result;
        recording_->ops.push_back(std::move(op));
    }
    noteMachineRun(ctx, result);
    return result;
}

RunResult
Machine::realCoRun(const TraceOp::RunSpec &spec)
{
    ContextProgram primary;
    primary.ctx = spec.ctx;
    primary.decoded = spec.decoded.get();
    primary.programId = spec.programId;
    primary.initialRegs = spec.initialRegs;

    std::vector<ContextProgram> others;
    for (const TraceOp::Extra &extra : spec.extras) {
        ContextProgram cp;
        cp.ctx = extra.ctx;
        cp.decoded = extra.decoded.get();
        cp.programId = extra.programId;
        others.push_back(std::move(cp));
    }
    // Registered backgrounds fill in every context no explicit
    // co-runner claimed; each run restarts them from the top.
    for (auto &[bg_ctx, bg] : backgrounds_) {
        if (bg_ctx == spec.ctx)
            continue;
        bool taken = false;
        for (const ContextProgram &other : others)
            taken |= other.ctx == bg_ctx;
        if (taken)
            continue;
        ContextProgram cp;
        cp.ctx = bg_ctx;
        cp.decoded = bg.decoded.get();
        cp.programId = bg.program.id;
        others.push_back(std::move(cp));
    }
    return core_->coRun(primary, others, spec.maxCycles);
}

RunResult
Machine::replayRun(ContextId ctx, Program &program,
                   std::vector<std::pair<ContextId, Program *>> *extras,
                   const std::vector<std::pair<RegId, std::int64_t>>
                       &initial_regs,
                   Cycle max_cycles)
{
    const TraceOp *op = replayExpect(TraceOp::Kind::Run);
    bool match = op != nullptr;

    // Match one trial program against its recorded counterpart, and on
    // success REBIND it to the recorded id so a later divergence
    // replays the prefix consistently.
    //
    // A program already carrying an id resolves through the cache (the
    // shared cache content-aliases identical programs to one image, so
    // pointer equality is exact content equality). A program built
    // fresh this trial (id 0 — the common rebuild-per-trial gadget
    // pattern) is compared against the recorded image directly, with
    // no cache traffic at all: acquiring it would allocate an id and
    // insert an alias entry per follower trial, growing the cache
    // without bound for entries that are immediately superseded by the
    // rebind. Either way the id swap is only legal when the two ids
    // are interchangeable — same predictor counters on every branch pc
    // in the base state (id 0 stands for "any never-trained id": no
    // program ever executes with id 0).
    auto matchAndRebind =
        [&](Program &prog,
            const std::shared_ptr<const DecodedProgram> &recorded,
            std::uint64_t recorded_id) {
            if (prog.id != 0) {
                auto decoded = decodeCache_->acquire(prog);
                if (decoded.get() != recorded.get())
                    return false;
                if (prog.id == recorded_id)
                    return true;
                if (!idsEquivalent(*decoded, prog.id, recorded_id))
                    return false;
            } else {
                if (prog.numRegs != recorded->numRegs ||
                    !sameCode(recorded->code, prog.code)) {
                    return false;
                }
                if (!idsEquivalent(*recorded, 0, recorded_id))
                    return false;
            }
            prog.id = recorded_id;
            return true;
        };

    if (match) {
        const TraceOp::RunSpec &spec = op->run;
        const std::size_t n_extras = extras ? extras->size() : 0;
        match = spec.ctx == ctx && spec.maxCycles == max_cycles &&
                spec.initialRegs == initial_regs &&
                spec.extras.size() == n_extras &&
                matchAndRebind(program, spec.decoded, spec.programId);
        if (match && extras) {
            for (std::size_t i = 0; match && i < n_extras; ++i) {
                auto &[extra_ctx, extra_prog] = (*extras)[i];
                const TraceOp::Extra &rec = spec.extras[i];
                match = extra_ctx == rec.ctx &&
                        matchAndRebind(*extra_prog, rec.decoded,
                                       rec.programId);
            }
        }
    }
    if (!match) {
        divergeReplayImpl();
        if (extras)
            return coRun(ctx, program, std::move(*extras), initial_regs,
                         max_cycles);
        return run(ctx, program, initial_regs, max_cycles);
    }
    ++replayPos_;
    return op->result;
}

bool
Machine::idsEquivalent(const DecodedProgram &decoded, std::uint64_t a,
                       std::uint64_t b) const
{
    if (a == b)
        return true;
    // Predictor keys are injective per (id, pc) for the id range a
    // process can allocate, so the counters under these keys are the
    // only way an id's value can reach simulated behaviour.
    const BranchPredictor &base = replayBase_->predictor;
    for (std::int32_t pc : decoded.branchPcs) {
        if (base.peek(BranchPredictor::makeKey(a, pc)) !=
            base.peek(BranchPredictor::makeKey(b, pc))) {
            return false;
        }
    }
    return true;
}

void
Machine::setBackground(ContextId ctx, Program program)
{
    fatalIf(ctx == 0, "Machine::setBackground: context 0 is the "
                      "primary context");
    fatalIf(ctx >= static_cast<ContextId>(config_.contexts),
            "Machine::setBackground: context out of range (configure "
            "MachineConfig::contexts)");
    if (replayTrace_)
        divergeReplayImpl();
    if (guidedTrace_)
        peelGuided();
    if (recording_)
        markOpaque();
    // The registered copy gets its own fresh (cold-predictor) id even
    // if the caller's program already ran elsewhere: backgrounds are
    // machine configuration and never share predictor state with the
    // foreground instance of the same code.
    Background bg;
    bg.program = std::move(program);
    bg.program.id = 0;
    bg.decoded = decodeCache_->acquire(bg.program);
    backgrounds_.insert_or_assign(ctx, std::move(bg));
}

void
Machine::clearBackground(ContextId ctx)
{
    if (replayTrace_)
        divergeReplayImpl();
    if (guidedTrace_)
        peelGuided();
    if (recording_)
        markOpaque();
    backgrounds_.erase(ctx);
}

void
Machine::clearBackgrounds()
{
    if (replayTrace_)
        divergeReplayImpl();
    if (guidedTrace_)
        peelGuided();
    if (recording_)
        markOpaque();
    backgrounds_.clear();
}

// ---- traced harness operations ----------------------------------------

void
Machine::poke(Addr addr, std::int64_t value)
{
    if (replayTrace_) {
        const TraceOp *op = replayExpect(TraceOp::Kind::Poke);
        if (op && op->addr == addr && op->value == value) {
            ++replayPos_;
            return;
        }
        divergeReplayImpl();
    }
    if (guidedTrace_)
        guidedObserve(TraceOp::Kind::Poke, addr, value, 0, 0);
    memory_.write(addr, value);
    if (recording_) {
        TraceOp op;
        op.kind = TraceOp::Kind::Poke;
        op.addr = addr;
        op.value = value;
        recording_->ops.push_back(std::move(op));
    }
}

std::int64_t
Machine::peek(Addr addr) const
{
    if (replayTrace_) {
        const TraceOp *op = replayExpect(TraceOp::Kind::Peek);
        if (op && op->addr == addr) {
            ++replayPos_;
            return op->value;
        }
        divergeReplay();
    }
    if (guidedTrace_)
        guidedObserve(TraceOp::Kind::Peek, addr, 0, 0, 0);
    const std::int64_t value = memory_.read(addr);
    if (recording_) {
        TraceOp op;
        op.kind = TraceOp::Kind::Peek;
        op.addr = addr;
        op.value = value;
        recording_->ops.push_back(std::move(op));
    }
    return value;
}

void
Machine::flushLine(Addr addr)
{
    if (replayTrace_) {
        const TraceOp *op = replayExpect(TraceOp::Kind::FlushLine);
        if (op && op->addr == addr) {
            ++replayPos_;
            return;
        }
        divergeReplayImpl();
    }
    if (guidedTrace_)
        guidedObserve(TraceOp::Kind::FlushLine, addr, 0, 0, 0);
    hierarchy_.flushLine(addr);
    if (recording_) {
        TraceOp op;
        op.kind = TraceOp::Kind::FlushLine;
        op.addr = addr;
        recording_->ops.push_back(std::move(op));
    }
}

void
Machine::flushAllCaches()
{
    if (replayTrace_) {
        const TraceOp *op = replayExpect(TraceOp::Kind::FlushAll);
        if (op) {
            ++replayPos_;
            return;
        }
        divergeReplayImpl();
    }
    if (guidedTrace_)
        guidedObserve(TraceOp::Kind::FlushAll, 0, 0, 0, 0);
    hierarchy_.flushAll();
    if (recording_) {
        TraceOp op;
        op.kind = TraceOp::Kind::FlushAll;
        recording_->ops.push_back(std::move(op));
    }
}

void
Machine::warm(Addr addr, int upto_level)
{
    if (replayTrace_) {
        const TraceOp *op = replayExpect(TraceOp::Kind::Warm);
        if (op && op->addr == addr && op->level == upto_level) {
            ++replayPos_;
            return;
        }
        divergeReplayImpl();
    }
    if (guidedTrace_)
        guidedObserve(TraceOp::Kind::Warm, addr, 0, upto_level, 0);
    hierarchy_.warm(addr, upto_level);
    if (recording_) {
        TraceOp op;
        op.kind = TraceOp::Kind::Warm;
        op.addr = addr;
        op.level = upto_level;
        recording_->ops.push_back(std::move(op));
    }
}

int
Machine::probeLevel(Addr addr) const
{
    if (replayTrace_) {
        const TraceOp *op = replayExpect(TraceOp::Kind::ProbeLevel);
        if (op && op->addr == addr) {
            ++replayPos_;
            return op->level;
        }
        divergeReplay();
    }
    if (guidedTrace_)
        guidedObserve(TraceOp::Kind::ProbeLevel, addr, 0, 0, 0);
    const int level = hierarchy_.probeLevel(addr);
    if (recording_) {
        TraceOp op;
        op.kind = TraceOp::Kind::ProbeLevel;
        op.addr = addr;
        op.level = level;
        recording_->ops.push_back(std::move(op));
    }
    return level;
}

void
Machine::settle()
{
    if (replayTrace_) {
        const TraceOp *op = replayExpect(TraceOp::Kind::Settle);
        if (op) {
            ++replayPos_;
            return;
        }
        divergeReplayImpl();
    }
    if (guidedTrace_)
        guidedObserve(TraceOp::Kind::Settle, 0, 0, 0, 0);
    hierarchy_.drainAllFills();
    if (recording_) {
        TraceOp op;
        op.kind = TraceOp::Kind::Settle;
        recording_->ops.push_back(std::move(op));
    }
}

Cycle
Machine::now() const
{
    if (replayTrace_) {
        const TraceOp *op = replayExpect(TraceOp::Kind::Now);
        if (op) {
            ++replayPos_;
            return op->nowCycle;
        }
        divergeReplay();
    }
    if (guidedTrace_)
        guidedObserve(TraceOp::Kind::Now, 0, 0, 0, 0);
    const Cycle cycle = core_->cycle();
    if (recording_) {
        TraceOp op;
        op.kind = TraceOp::Kind::Now;
        op.nowCycle = cycle;
        recording_->ops.push_back(std::move(op));
    }
    return cycle;
}

ContextAccessStats
Machine::contextStats(ContextId ctx) const
{
    if (replayTrace_) {
        const TraceOp *op = replayExpect(TraceOp::Kind::CtxStats);
        if (op && op->level == static_cast<int>(ctx)) {
            ++replayPos_;
            return op->ctxStats;
        }
        divergeReplay();
    }
    if (guidedTrace_)
        guidedObserve(TraceOp::Kind::CtxStats, 0, 0,
                      static_cast<int>(ctx), 0);
    const ContextAccessStats stats = hierarchy_.contextStats(ctx);
    if (recording_) {
        TraceOp op;
        op.kind = TraceOp::Kind::CtxStats;
        op.level = static_cast<int>(ctx);
        op.ctxStats = stats;
        recording_->ops.push_back(std::move(op));
    }
    return stats;
}

std::uint64_t
Machine::cacheMisses(int level) const
{
    if (replayTrace_) {
        const TraceOp *op = replayExpect(TraceOp::Kind::CacheMisses);
        if (op && op->level == level) {
            ++replayPos_;
            return static_cast<std::uint64_t>(op->value);
        }
        divergeReplay();
    }
    if (guidedTrace_)
        guidedObserve(TraceOp::Kind::CacheMisses, 0, 0, level, 0);
    std::uint64_t misses = 0;
    switch (level) {
      case 1:
        misses = hierarchy_.l1().stats().misses;
        break;
      case 2:
        misses = hierarchy_.l2().stats().misses;
        break;
      case 3:
        misses = hierarchy_.l3().stats().misses;
        break;
      default:
        fatal("Machine::cacheMisses: level must be 1-3");
    }
    if (recording_) {
        TraceOp op;
        op.kind = TraceOp::Kind::CacheMisses;
        op.level = level;
        op.value = static_cast<std::int64_t>(misses);
        recording_->ops.push_back(std::move(op));
    }
    return misses;
}

void
Machine::reseedNoise(std::uint64_t mix)
{
    // Logical-op count: once per public reseed under every tier
    // (replay-matched, dead-substituted, diverged, and real).
    metrics().machineReseeds.add();
    if (replayTrace_) {
        const TraceOp *op = replayExpect(TraceOp::Kind::Reseed);
        if (op && op->mix == mix) {
            ++replayPos_;
            return;
        }
        // Dead-reseed substitution (group-stepped tier): the trace
        // consumed zero noise-stream draws, so no recorded result can
        // depend on the seeds this reseed installs — a different mix
        // is behaviorally inert and the replay stays exact. Remember
        // the substitution so a later divergence re-materializes the
        // prefix with THIS lane's mix, not the leader's.
        if (op && replayTolerance_.substituteDeadReseeds &&
            replayTrace_->rngDraws == 0) {
            replaySubs_.emplace_back(replayPos_, mix);
            ++replayPos_;
            return;
        }
        divergeReplayImpl();
    }
    if (guidedTrace_)
        guidedObserve(TraceOp::Kind::Reseed, 0, 0, 0, mix);
    applyReseed(mix);
    if (recording_) {
        TraceOp op;
        op.kind = TraceOp::Kind::Reseed;
        op.mix = mix;
        recording_->ops.push_back(std::move(op));
    }
}

void
Machine::applyReseed(std::uint64_t mix)
{
    hierarchy_.reseed(config_.memory.rngSeed ^ mix,
                      config_.memory.l1.rngSeed ^ mix,
                      config_.memory.l2.rngSeed ^ mix,
                      config_.memory.l3.rngSeed ^ mix);
}

// ---- record/replay ----------------------------------------------------

void
Machine::beginRecord(TrialTrace &trace)
{
    panicIf(recording_ != nullptr || replayTrace_ != nullptr ||
                guidedTrace_ != nullptr,
            "Machine::beginRecord: already tracing");
    recording_ = &trace;
    recordDraws0_ = hierarchy_.rngDraws();
}

void
Machine::endRecord()
{
    panicIf(recording_ == nullptr,
            "Machine::endRecord: not recording");
    // Saturate rather than wrap: restore() rolls the hierarchy's draw
    // counters back (and marks the trace opaque anyway), and a bogus
    // huge count must never read as the zero that licenses dead-reseed
    // substitution.
    const std::uint64_t draws = hierarchy_.rngDraws();
    recording_->rngDraws =
        draws >= recordDraws0_
            ? draws - recordDraws0_
            : std::numeric_limits<std::uint64_t>::max();
    metrics().machineRecords.add();
    if (draws >= recordDraws0_)
        metrics().machineRecordRngDraws.add(draws - recordDraws0_);
    HR_TRACE_INSTANT2("machine", "machine.record", "ops",
                      recording_->ops.size(), "rng_draws",
                      recording_->rngDraws);
    recording_ = nullptr;
}

void
Machine::beginReplay(const TrialTrace &trace, const Snapshot &base,
                     ReplayTolerance tolerance)
{
    panicIf(recording_ != nullptr || replayTrace_ != nullptr ||
                guidedTrace_ != nullptr,
            "Machine::beginReplay: already tracing");
    fatalIf(trace.opaque,
            "Machine::beginReplay: trace is opaque (the leader used "
            "snapshot/restore or changed backgrounds)");
    replayTrace_ = &trace;
    replayBase_ = &base;
    replayTolerance_ = tolerance;
    replayPos_ = 0;
    replayDiverged_ = false;
    replaySubs_.clear();
}

bool
Machine::endReplay()
{
    // Divergence already cleared replayTrace_ mid-trial; a clean
    // replay still holds it here. A trial that made fewer ops than
    // the trace is still clean: every answer it received is what real
    // execution from the base state would have produced.
    panicIf(replayTrace_ == nullptr && !replayDiverged_,
            "Machine::endReplay: not replaying");
    replayTrace_ = nullptr;
    replayBase_ = nullptr;
    lastReplayMatched_ = replayPos_;
    replayPos_ = 0;
    lastReplaySubs_ = replaySubs_.size();
    replaySubs_.clear();
    const bool clean = !replayDiverged_;
    replayDiverged_ = false;
    if (clean)
        metrics().machineReplaysClean.add();
    else
        metrics().machineReplaysDiverged.add();
    HR_TRACE_INSTANT2("machine", "machine.replay_end", "matched",
                      lastReplayMatched_, "clean",
                      static_cast<std::uint64_t>(clean));
    return clean;
}

void
Machine::beginGuided(const TrialTrace &trace)
{
    panicIf(recording_ != nullptr || replayTrace_ != nullptr ||
                guidedTrace_ != nullptr,
            "Machine::beginGuided: already tracing");
    fatalIf(trace.opaque,
            "Machine::beginGuided: trace is opaque (the leader used "
            "snapshot/restore or changed backgrounds)");
    guidedTrace_ = &trace;
    guidedPos_ = 0;
    guidedPeeled_ = false;
    guidedSubs_ = 0;
}

bool
Machine::endGuided()
{
    // A peel already cleared guidedTrace_ mid-trial (state was real
    // throughout, so there was nothing to re-materialize).
    panicIf(guidedTrace_ == nullptr && !guidedPeeled_,
            "Machine::endGuided: not guiding");
    lastGuidedMatched_ = guidedPos_;
    lastGuidedSubs_ = guidedSubs_;
    guidedTrace_ = nullptr;
    guidedPos_ = 0;
    guidedSubs_ = 0;
    const bool on_skeleton = !guidedPeeled_;
    guidedPeeled_ = false;
    return on_skeleton;
}

void
Machine::peelGuided() const
{
    guidedTrace_ = nullptr;
    guidedPeeled_ = true;
}

const TraceOp *
Machine::guidedExpect(TraceOp::Kind kind) const
{
    if (guidedPos_ >= guidedTrace_->ops.size())
        return nullptr;
    const TraceOp &op = guidedTrace_->ops[guidedPos_];
    return op.kind == kind ? &op : nullptr;
}

void
Machine::guidedObserve(TraceOp::Kind kind, Addr addr,
                       std::int64_t value, int level,
                       std::uint64_t mix) const
{
    const TraceOp *op = guidedExpect(kind);
    bool match = op != nullptr;
    if (match) {
        // Inputs only: guided results come from real execution and may
        // legitimately differ from the leader's (the noise streams
        // differ — that is why this lane is guided, not replayed). A
        // result difference that matters surfaces as a later input
        // mismatch, which peels.
        switch (kind) {
          case TraceOp::Kind::Poke:
            match = op->addr == addr && op->value == value;
            break;
          case TraceOp::Kind::Peek:
          case TraceOp::Kind::FlushLine:
          case TraceOp::Kind::ProbeLevel:
            match = op->addr == addr;
            break;
          case TraceOp::Kind::Warm:
            match = op->addr == addr && op->level == level;
            break;
          case TraceOp::Kind::CtxStats:
          case TraceOp::Kind::CacheMisses:
            match = op->level == level;
            break;
          case TraceOp::Kind::Reseed:
            if (op->mix != mix)
                ++guidedSubs_;
            break;
          case TraceOp::Kind::FlushAll:
          case TraceOp::Kind::Settle:
          case TraceOp::Kind::Now:
            break; // the kind is the whole comparison
          case TraceOp::Kind::Run:
            match = false; // Run ops go through guidedObserveRun
            break;
        }
    }
    if (!match) {
        peelGuided();
        return;
    }
    ++guidedPos_;
}

void
Machine::guidedObserveRun(ContextId ctx, const DecodedProgram *decoded,
                          const std::vector<std::pair<RegId,
                                                      std::int64_t>>
                              &initial_regs,
                          Cycle max_cycles,
                          const std::vector<TraceOp::Extra> *extras)
    const
{
    const TraceOp *op = guidedExpect(TraceOp::Kind::Run);
    bool match = op != nullptr;
    if (match) {
        const TraceOp::RunSpec &rec = op->run;
        const std::size_t n_extras = extras ? extras->size() : 0;
        match = rec.ctx == ctx && rec.maxCycles == max_cycles &&
                rec.initialRegs == initial_regs &&
                rec.extras.size() == n_extras &&
                rec.decoded.get() == decoded;
        for (std::size_t i = 0; match && i < n_extras; ++i) {
            match = rec.extras[i].ctx == (*extras)[i].ctx &&
                    rec.extras[i].decoded.get() ==
                        (*extras)[i].decoded.get();
        }
    }
    if (!match) {
        peelGuided();
        return;
    }
    ++guidedPos_;
}

void
Machine::markOpaque()
{
    recording_->opaque = true;
    HR_TRACE_INSTANT("machine", "machine.trace_opaque");
}

const TraceOp *
Machine::replayExpect(TraceOp::Kind kind) const
{
    if (replayPos_ >= replayTrace_->ops.size())
        return nullptr;
    const TraceOp &op = replayTrace_->ops[replayPos_];
    return op.kind == kind ? &op : nullptr;
}

void
Machine::divergeReplay() const
{
    // Divergence can be triggered from const reads (peek, probeLevel,
    // now); re-materializing state is logically a mutation.
    const_cast<Machine *>(this)->divergeReplayImpl();
}

void
Machine::divergeReplayImpl()
{
    if (replayTrace_ == nullptr)
        return;
    const TrialTrace &trace = *replayTrace_;
    const Snapshot &base = *replayBase_;
    const std::size_t prefix = replayPos_;
    const auto subs = std::move(replaySubs_);

    // Leave replay mode before touching state so everything below —
    // and everything the trial does from here on — executes for real.
    replayTrace_ = nullptr;
    replayBase_ = nullptr;
    replayDiverged_ = true;
    replaySubs_.clear();

    HR_TRACE_INSTANT1("machine", "machine.replay_diverge",
                      "prefix_ops", prefix);

    // Re-materialize: the trial logically executed the matched prefix
    // from the base state; do exactly that, for real. Determinism
    // makes the re-execution reproduce every recorded result.
    restore(base);
    std::size_t next_sub = 0;
    for (std::size_t i = 0; i < prefix; ++i) {
        const TraceOp &op = trace.ops[i];
        // A reseed the replay tolerated by substitution re-executes
        // with the substituted (this trial's) mix, not the leader's:
        // the prefix being re-materialized is THIS trial's logical
        // history. (Being dead — zero draws before the divergence
        // point — either mix reproduces the recorded results; the
        // substituted one also leaves the post-divergence noise
        // streams seeded the way this trial asked for.)
        std::uint64_t reseed_mix = op.mix;
        if (next_sub < subs.size() && subs[next_sub].first == i) {
            reseed_mix = subs[next_sub].second;
            ++next_sub;
        }
        switch (op.kind) {
          case TraceOp::Kind::Run:
            realCoRun(op.run);
            break;
          case TraceOp::Kind::Poke:
            memory_.write(op.addr, op.value);
            break;
          case TraceOp::Kind::FlushLine:
            hierarchy_.flushLine(op.addr);
            break;
          case TraceOp::Kind::FlushAll:
            hierarchy_.flushAll();
            break;
          case TraceOp::Kind::Warm:
            hierarchy_.warm(op.addr, op.level);
            break;
          case TraceOp::Kind::Settle:
            hierarchy_.drainAllFills();
            break;
          case TraceOp::Kind::Reseed:
            applyReseed(reseed_mix);
            break;
          case TraceOp::Kind::Peek:
          case TraceOp::Kind::ProbeLevel:
          case TraceOp::Kind::Now:
          case TraceOp::Kind::CtxStats:
          case TraceOp::Kind::CacheMisses:
            break; // pure reads leave no state to re-materialize
        }
    }
}

} // namespace hr
