/**
 * @file
 * Named machine-profile registry.
 *
 * Every MachineConfig preset is reachable by a stable string name, so
 * experiment scenarios and the hr_bench CLI (`--profile=`) can select
 * machine models without compile-time coupling to MachineConfig's
 * factory methods. See EXPERIMENTS.md for which paper experiment uses
 * which profile.
 */

#ifndef HR_SIM_PROFILES_HH
#define HR_SIM_PROFILES_HH

#include <string>
#include <vector>

#include "sim/machine.hh"

namespace hr
{

/** One registered machine profile. */
struct MachineProfile
{
    std::string name;        ///< CLI-stable identifier, e.g. "plru"
    std::string description; ///< one-line human summary
    MachineConfig (*make)(); ///< factory producing a fresh config
};

/** All registered profiles, in registration order. */
const std::vector<MachineProfile> &machineProfiles();

/** True if `name` names a registered profile. */
bool hasMachineProfile(const std::string &name);

/**
 * Build the config for a named profile. fatal()s (throws) on unknown
 * names, listing the valid ones.
 */
MachineConfig machineConfigForProfile(const std::string &name);

} // namespace hr

#endif // HR_SIM_PROFILES_HH
