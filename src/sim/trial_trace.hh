/**
 * @file
 * TrialTrace: a recorded sequence of Machine harness operations.
 *
 * The simulator is deterministic: a machine's evolution (and every
 * value a trial can observe) is a pure function of its starting state
 * and the sequence of public Machine operations applied to it. A
 * trace records that sequence — each op with its inputs and its
 * result — while a leader trial runs for real. A follower trial whose
 * op stream matches the trace op-for-op can then be answered entirely
 * from the recorded results, with zero simulation: that is the
 * lockstep fast path BatchRunner drives.
 *
 * The op surface is exactly Machine's public harness API: run/coRun,
 * poke/peek, flushLine/flushAllCaches, warm, probeLevel, settle, now,
 * reseedNoise, contextStats, and cacheMisses. Anything else a trial
 * does to the machine —
 * snapshot/restore, background registration, raw hierarchy()
 * mutation — is outside the traceable surface; snapshot/restore and
 * background changes during recording mark the trace opaque
 * (followers run scalar), and raw-handle mutation is a documented
 * contract violation (see EXPERIMENTS.md).
 */

#ifndef HR_SIM_TRIAL_TRACE_HH
#define HR_SIM_TRIAL_TRACE_HH

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "cache/hierarchy.hh"
#include "core/ooo_core.hh"
#include "isa/decoded_program.hh"
#include "util/types.hh"

namespace hr
{

/** One recorded Machine operation: inputs and memoized outputs. */
struct TraceOp
{
    enum class Kind : std::uint8_t
    {
        Run,        ///< run()/coRun() (one op per outermost call)
        Poke,       ///< poke(addr, value)
        Peek,       ///< peek(addr) -> value
        FlushLine,  ///< flushLine(addr)
        FlushAll,   ///< flushAllCaches()
        Warm,       ///< warm(addr, level)
        ProbeLevel, ///< probeLevel(addr) -> level
        Settle,     ///< settle()
        Now,        ///< now() -> nowCycle
        Reseed,     ///< reseedNoise(mix)
        CtxStats,   ///< contextStats(ctx) -> ctxStats
        CacheMisses,///< cacheMisses(level) -> value
    };

    /** A coRun co-runner as recorded (no initial regs by contract). */
    struct Extra
    {
        ContextId ctx = 0;
        std::shared_ptr<const DecodedProgram> decoded;
        std::uint64_t programId = 0;
    };

    /** Inputs of a Run op (enough to re-execute it for real). */
    struct RunSpec
    {
        ContextId ctx = 0;
        std::shared_ptr<const DecodedProgram> decoded;
        std::uint64_t programId = 0;
        std::vector<std::pair<RegId, std::int64_t>> initialRegs;
        Cycle maxCycles = 0;
        std::vector<Extra> extras;
    };

    Kind kind = Kind::Settle;
    RunSpec run;             ///< Kind::Run only
    RunResult result;        ///< Kind::Run: memoized outcome
    Addr addr = 0;           ///< Poke/Peek/FlushLine/Warm/ProbeLevel
    std::int64_t value = 0;  ///< Poke input / Peek / CacheMisses result
    int level = 0;           ///< Warm/CacheMisses input, ProbeLevel
                             ///< result, CtxStats context input
    Cycle nowCycle = 0;      ///< Now result
    std::uint64_t mix = 0;   ///< Reseed input
    ContextAccessStats ctxStats; ///< CtxStats result
};

/** A recorded trial: the op sequence one leader execution made. */
struct TrialTrace
{
    std::vector<TraceOp> ops;

    /**
     * The leader used snapshot/restore or changed backgrounds while
     * recording: the trace cannot stand in for real execution, and
     * followers must run scalar.
     */
    bool opaque = false;

    /**
     * Machine noise-stream (jitter + replacement) RNG values the
     * leader consumed while recording. Zero is a proof that every
     * recorded result is independent of the noise seeds: no stream was
     * ever read, so a reseedNoise with a *different* mix is
     * behaviorally dead and a follower differing only in reseed mixes
     * can still be answered from the trace (the dead-reseed fast path
     * of the group-stepped batching tier; see sim/machine_group.hh).
     */
    std::uint64_t rngDraws = 0;
};

} // namespace hr

#endif // HR_SIM_TRIAL_TRACE_HH
