/**
 * @file
 * DecodeCache: decoded-trace cache shared by the machines of a pool.
 *
 * Keyed primarily by Program::id (the fast path: one hash lookup plus
 * an O(1) size/register check — acquire runs per machine call, so the
 * hit path must not scale with program length), with a content-hash
 * alias map behind it so a program rebuilt from scratch every trial —
 * the common gadget pattern — still resolves to the one shared decoded
 * image instead of being re-decoded per trial.
 *
 * Invalidation is keyed off Program::id assignment, as the Machine
 * documents: a program whose code size changed under its old id is
 * detected on acquire and given a fresh process-unique id
 * (allocateProgramId) so the stale entry can never be served again;
 * the sanctioned way to mutate code in place without changing its
 * length is to reset program.id = 0 afterwards (ProgramBuilder::take
 * always returns id 0, so built programs are always safe). Debug
 * builds verify the full instruction stream on every hit and fatal()
 * on a violation. Fresh ids always start with cold branch-predictor
 * state, so re-identification never perturbs simulated timing.
 *
 * A cache instance carries the MachineConfig fingerprint of the
 * machines it serves; Machine::shareDecodeCache refuses a cache built
 * for a different configuration. (Decoding itself is a pure function
 * of the instruction stream, but the fingerprint keeps the sharing
 * discipline honest and the cache per-configuration, per the
 * (Program::id, config fingerprint) keying.)
 *
 * Thread-safe: pool machines on parallelMap workers share one cache.
 */

#ifndef HR_SIM_DECODE_CACHE_HH
#define HR_SIM_DECODE_CACHE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "isa/decoded_program.hh"

namespace hr
{

/** Shared cache of DecodedPrograms (see file comment). */
class DecodeCache
{
  public:
    struct Stats
    {
        std::uint64_t hits = 0;          ///< served by Program::id
        std::uint64_t aliased = 0;       ///< served by content match
        std::uint64_t misses = 0;        ///< decoded fresh
        std::uint64_t invalidations = 0; ///< in-place mutation detected
    };

    explicit DecodeCache(std::uint64_t config_fingerprint)
        : fingerprint_(config_fingerprint)
    {
    }

    /** Fingerprint of the MachineConfig this cache serves. */
    std::uint64_t configFingerprint() const { return fingerprint_; }

    /**
     * Resolve the decoded image for @p program, assigning it a
     * process-unique id if it has none — or a fresh one if its code no
     * longer matches what was cached under its current id (in-place
     * mutation; the old entry stays valid for programs still carrying
     * the old content).
     */
    std::shared_ptr<const DecodedProgram> acquire(Program &program);

    Stats stats() const;

    /** Distinct decoded images held. */
    std::size_t entries() const;

  private:
    const std::uint64_t fingerprint_;
    mutable std::mutex mutex_;
    /** id -> decoded image (several ids may share one image). */
    std::unordered_map<std::uint64_t,
                       std::shared_ptr<const DecodedProgram>>
        byId_;
    /** content hash -> decoded images (hash-collision bucket). */
    std::unordered_map<std::uint64_t,
                       std::vector<std::shared_ptr<const DecodedProgram>>>
        byContent_;
    Stats stats_;
};

} // namespace hr

#endif // HR_SIM_DECODE_CACHE_HH
