/**
 * @file
 * Background noise-workload library for noisy-neighbor experiments.
 *
 * The paper's stealthy timers matter because they survive (or exploit)
 * co-resident activity: every countermeasure and every gadget has to
 * be judged against a neighbor hammering the shared hierarchy. This
 * module packages the canonical neighbors as generated Programs that a
 * Machine co-runs on a secondary hardware context (see
 * Machine::setBackground):
 *
 *   idle           no co-resident activity (the control)
 *   pointer_chase  serial pointer chase over a working set larger than
 *                  the L1 — a latency-bound evictor that continuously
 *                  replaces the attacker's lines
 *   stream_writer  dense independent stores cycling over a buffer — a
 *                  bandwidth-bound writer that pressures the store
 *                  port and fills the MSHRs
 *
 * All noise programs are infinite loops; the co-run driver abandons
 * them when the primary context completes. Generation is fully
 * deterministic (addresses and loop shapes depend only on the machine
 * geometry and the parameters), so noisy co-runs replay bit-identically.
 */

#ifndef HR_SIM_NOISE_HH
#define HR_SIM_NOISE_HH

#include <string>
#include <vector>

#include "sim/machine.hh"
#include "util/params.hh"

namespace hr
{

/** The background workload families. */
enum class NoiseKind { Idle, PointerChase, StreamWriter };

/** One registered noise workload. */
struct NoiseInfo
{
    std::string name; ///< CLI/scenario-stable identifier
    NoiseKind kind;
    std::string description;
};

/** All noise workloads, in stable listed order (idle first). */
const std::vector<NoiseInfo> &noiseWorkloads();

/** Look a workload up by name; fatal (with the known names) if absent. */
const NoiseInfo &noiseWorkload(const std::string &name);

/**
 * Build the noise program for this machine's geometry and write its
 * backing data structures (the pointer ring) into machine memory.
 * Parameters (unknown keys are fatal, with a nearest-match
 * suggestion): `noise_lines` working-set size in cache lines
 * (defaults: 2x the L1 for pointer_chase, 256 for stream_writer);
 * `noise_unroll` chase steps per loop iteration (pointer_chase only).
 * Idle accepts no parameters and returns a program that halts
 * immediately.
 */
Program makeNoiseProgram(Machine &machine, NoiseKind kind,
                         const ParamSet &params = {});

/**
 * Install a noise workload on context @p ctx: generates the program
 * and registers it as the context's background (Idle clears it). The
 * machine must be configured with contexts > ctx.
 */
void installNoise(Machine &machine, ContextId ctx, NoiseKind kind,
                  const ParamSet &params = {});

/** installNoise by registered name. */
void installNoise(Machine &machine, ContextId ctx,
                  const std::string &name, const ParamSet &params = {});

} // namespace hr

#endif // HR_SIM_NOISE_HH
