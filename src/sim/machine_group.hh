/**
 * @file
 * MachineGroup: structure-of-arrays lockstep stepper for the trials a
 * plain trace replay cannot serve.
 *
 * BatchRunner's record/replay tier answers a follower trial from the
 * leader's TrialTrace only when the follower's op stream matches the
 * trace *verbatim*. Two common, cheap-to-classify mismatches defeat it
 * wholesale:
 *
 *  1. Per-trial reseeds. Decorrelation scenarios call
 *     Machine::reseedNoise with a per-trial mix before every trial, so
 *     every follower "diverges" at the very first op — even on fully
 *     deterministic profiles where the reseed is behaviorally dead
 *     (no jitter, no random replacement: the noise streams are never
 *     read). The group stepper replays these with dead-reseed
 *     substitution: TrialTrace::rngDraws == 0 proves no recorded
 *     result can depend on the seeds, so the lane's own mix is
 *     accepted in place of the leader's and the replay stays exact.
 *
 *  2. Genuinely noisy reseeding lanes. When the trace consumed noise
 *     draws AND contains reseed ops, per-trial mixes guarantee every
 *     follower diverges at its first reseed — and no substitution is
 *     sound, because the recorded results depend on the seeds. Those
 *     lanes run *guided*: every op executes for real through the
 *     normal scalar machinery (same DecodeCache, same id allocation —
 *     the execution IS the scalar execution), while being matched
 *     against the leader's op skeleton on the side. A lane whose op
 *     sequence truly diverges peels off to scalar mid-group at zero
 *     cost: nothing was skipped, so there is no prefix to
 *     re-materialize — unlike a replay divergence, which pays restore
 *     + prefix re-execution.
 *
 * A noisy trace with NO reseed ops keeps the strict verbatim replay
 * of the plain tier (the existing clean-replay win: determinism makes
 * a verbatim replay sound regardless of what the results depended on,
 * since the RNG streams are part of the base state). The group never
 * makes that case slower.
 *
 * All lanes of a group share one physical machine and one DecodeCache
 * image of the leader's programs; the "lanes" are the logical trials
 * multiplexed through it in lockstep with the skeleton. The group's
 * hot per-lane state is kept structure-of-arrays (parallel outcome /
 * matched-op / substitution vectors, one slot per lane) so batch-level
 * classification scans touch dense homogeneous arrays rather than
 * per-lane objects.
 *
 * Byte-identity with the scalar restore-per-trial loop at any width is
 * a tested invariant (tests/test_machine_group.cc): substituted
 * replays only ever substitute provably-dead reseeds, and guided lanes
 * are real execution by construction.
 */

#ifndef HR_SIM_MACHINE_GROUP_HH
#define HR_SIM_MACHINE_GROUP_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/machine.hh"
#include "sim/trial_trace.hh"

namespace hr
{

/** Lockstep group stepper over one leader skeleton (see file doc). */
class MachineGroup
{
  public:
    /** How one lane's trial was served. */
    enum class Outcome : std::uint8_t
    {
        Replayed, ///< verbatim from the trace (no substitutions)
        Stepped,  ///< lockstep: substituted replay or full guided march
        Peeled,   ///< left the skeleton mid-trial, finished scalar
        Scalar,   ///< group disabled/skeleton-less: plain scalar trial
    };

    struct Stats
    {
        std::uint64_t replayed = 0;
        std::uint64_t stepped = 0;
        std::uint64_t peeled = 0;
        std::uint64_t scalar = 0;
        std::uint64_t substitutions = 0; ///< dead reseeds substituted
    };

    /** One lane's trial body (the machine is the lane's world). */
    using Trial = std::function<void(Machine &)>;

    /**
     * Adopt a leader skeleton: subsequent step() calls march lanes
     * down @p trace, with @p base as the state it was recorded from.
     * Resets the per-lane SoA bookkeeping (a new group begins); the
     * caller keeps both alive until the next adopt. Pass nullptrs to
     * detach when the skeleton's storage is about to die.
     */
    void adopt(const TrialTrace *trace, const Machine::Snapshot *base);

    /**
     * Step one lane: run @p trial on @p machine against the adopted
     * skeleton, choosing substituted replay (trace consumed zero noise
     * draws) or guided real execution (it did not). @p dirty is the
     * caller's machine-state-differs-from-base flag, updated the same
     * way the scalar loop would: substituted replays never touch state
     * and leave it alone; guided lanes restore first when needed and
     * always leave it set; a peeled replay leaves it set. Appends one
     * SoA lane slot and returns its outcome.
     */
    Outcome step(Machine &machine, bool &dirty, const Trial &trial);

    /** Whether a skeleton is currently adopted. */
    bool adopted() const { return trace_ != nullptr; }

    /** Lifetime outcome counters (across all adopted groups). */
    const Stats &stats() const { return stats_; }

    // ---- SoA lane bookkeeping of the current group -----------------
    std::size_t lanes() const { return laneOutcome_.size(); }
    Outcome laneOutcome(std::size_t lane) const
    {
        return static_cast<Outcome>(laneOutcome_[lane]);
    }
    /** Skeleton ops the lane matched before finishing or peeling. */
    std::uint32_t laneMatchedOps(std::size_t lane) const
    {
        return laneOps_[lane];
    }
    /** Reseed-mix substitutions the lane's trial was served with. */
    std::uint32_t laneSubstitutions(std::size_t lane) const
    {
        return laneSubs_[lane];
    }

  private:
    const TrialTrace *trace_ = nullptr;
    const Machine::Snapshot *base_ = nullptr;
    bool traceReseeds_ = false; ///< skeleton contains Reseed ops
    Stats stats_;

    // Structure-of-arrays per-lane state: parallel vectors, one slot
    // per stepped lane of the current group.
    std::vector<std::uint8_t> laneOutcome_;
    std::vector<std::uint32_t> laneOps_;
    std::vector<std::uint32_t> laneSubs_;

    Outcome record(Outcome outcome, std::size_t matched,
                   std::size_t subs);
};

} // namespace hr

#endif // HR_SIM_MACHINE_GROUP_HH
