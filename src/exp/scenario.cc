#include "exp/scenario.hh"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/progress.hh"
#include "sim/profiles.hh"
#include "util/log.hh"

namespace hr
{

ScenarioContext::ScenarioContext(
    int trials, int jobs, std::uint64_t base_seed, std::string profile_name,
    ParamSet params, std::function<void(const std::string &)> progress,
    bool batch, bool group, bool lockstep)
    : trials_(trials), jobs_(jobs), batch_(batch), group_(group),
      lockstep_(lockstep), baseSeed_(base_seed),
      profileName_(std::move(profile_name)), params_(std::move(params)),
      progress_(std::move(progress))
{
    fatalIf(trials_ < 1, "trial count must be >= 1");
    fatalIf(jobs_ < 1, "job count must be >= 1");
}

MachineConfig
ScenarioContext::machineConfig() const
{
    MachineConfig config = machineConfigForProfile(profileName_);
    // The forwarding engine is a pure-speedup knob, deliberately
    // outside machineConfigFingerprint: flipping it must not split
    // DecodeCache sharing, only bypass the periodic-loop fast path.
    config.core.lockstep = lockstep_;
    return config;
}

MachineConfig
ScenarioContext::machineConfig(int index) const
{
    MachineConfig config = machineConfig();
    const std::uint64_t mix = indexSeed(index);
    config.memory.rngSeed ^= mix;
    config.memory.l1.rngSeed ^= mix;
    config.memory.l2.rngSeed ^= mix;
    config.memory.l3.rngSeed ^= mix;
    return config;
}

void
ScenarioContext::reseedMachine(Machine &machine,
                               const MachineConfig &base,
                               std::uint64_t mix)
{
    // Routed through the traced harness op, not raw
    // hierarchy().reseed(): the lockstep batched trial path must see
    // per-point reseeds so a follower with a different mix diverges
    // instead of silently replaying another point's results. The
    // machine's own configuration supplies the base seeds, so @p base
    // must agree with it (it always has: pools are built from the
    // config passed here).
    const HierarchyConfig &own = machine.config().memory;
    fatalIf(base.memory.rngSeed != own.rngSeed ||
                base.memory.l1.rngSeed != own.l1.rngSeed ||
                base.memory.l2.rngSeed != own.l2.rngSeed ||
                base.memory.l3.rngSeed != own.l3.rngSeed,
            "reseedMachine: base config noise seeds differ from the "
            "machine's own configuration");
    machine.reseedNoise(mix);
}

void
ScenarioContext::reseedMachine(Machine &machine, int index) const
{
    reseedMachine(machine, machineConfig(), indexSeed(index));
}

void
ScenarioContext::note(const std::string &text) const
{
    if (progress_)
        progress_(text);
}

void
ScenarioContext::forEachIndex(int count, const IndexBody &body) const
{
    if (count <= 0)
        return;
    const int workers = std::min(jobs_, count);
    if (workers <= 1) {
        for (int i = 0; i < count; ++i) {
            body(i);
            progressAdvance();
        }
        return;
    }

    std::atomic<int> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;

    auto work = [&]() {
        for (;;) {
            const int i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count || failed.load(std::memory_order_relaxed))
                return;
            try {
                body(i);
                progressAdvance();
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(workers - 1));
    for (int t = 1; t < workers; ++t)
        threads.emplace_back(work);
    work();
    for (auto &thread : threads)
        thread.join();
    if (error)
        std::rethrow_exception(error);
}

} // namespace hr
