#include "exp/registry.hh"

#include <algorithm>

#include "util/log.hh"
#include "util/params.hh"

namespace hr
{

ScenarioRegistry &
ScenarioRegistry::instance()
{
    static ScenarioRegistry registry;
    return registry;
}

void
ScenarioRegistry::add(std::unique_ptr<Scenario> scenario)
{
    fatalIf(find(scenario->name()) != nullptr,
            "duplicate scenario name '" + scenario->name() + "'");
    scenarios_.push_back(std::move(scenario));
}

Scenario *
ScenarioRegistry::find(const std::string &name) const
{
    for (const auto &scenario : scenarios_)
        if (scenario->name() == name)
            return scenario.get();
    return nullptr;
}

Scenario &
ScenarioRegistry::resolve(const std::string &name) const
{
    if (Scenario *exact = find(name))
        return *exact;
    std::vector<Scenario *> matches;
    for (const auto &scenario : scenarios_)
        if (scenario->name().rfind(name, 0) == 0)
            matches.push_back(scenario.get());
    if (matches.size() == 1)
        return *matches.front();
    if (matches.empty()) {
        std::string known;
        std::vector<std::string> names;
        for (Scenario *scenario : all()) {
            known += "\n  " + scenario->name();
            names.push_back(scenario->name());
        }
        const std::string suggestion = closestMatch(name, names);
        fatal("no scenario matches '" + name + "'" +
              (suggestion.empty()
                   ? ""
                   : "; did you mean '" + suggestion + "'?") +
              "; known:" + known);
    }
    std::string candidates;
    for (Scenario *scenario : matches)
        candidates += "\n  " + scenario->name();
    fatal("'" + name + "' is ambiguous; candidates:" + candidates);
}

std::vector<Scenario *>
ScenarioRegistry::all() const
{
    std::vector<Scenario *> out;
    out.reserve(scenarios_.size());
    for (const auto &scenario : scenarios_)
        out.push_back(scenario.get());
    std::sort(out.begin(), out.end(), [](Scenario *a, Scenario *b) {
        return a->name() < b->name();
    });
    return out;
}

ScenarioRegistrar::ScenarioRegistrar(std::unique_ptr<Scenario> scenario)
{
    ScenarioRegistry::instance().add(std::move(scenario));
}

} // namespace hr
