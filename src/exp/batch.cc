#include "exp/batch.hh"

#include <algorithm>
#include <sstream>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/log.hh"

namespace hr
{

void
BatchRunner::Stats::add(const Stats &other)
{
    trials += other.trials;
    leaders += other.leaders;
    replayed += other.replayed;
    groupStepped += other.groupStepped;
    diverged += other.diverged;
    scalar += other.scalar;
}

std::string
BatchRunner::Stats::summary() const
{
    std::ostringstream out;
    out << "trials=" << trials << " leaders=" << leaders
        << " replayed=" << replayed << " group-stepped=" << groupStepped
        << " diverged=" << diverged << " scalar=" << scalar;
    return out.str();
}

BatchRunner::BatchRunner(MachinePool &pool, Setup setup, Options options)
    : lease_(pool.lease()), options_(options)
{
    fatalIf(options_.width < 1, "BatchRunner: width must be >= 1");
    if (setup)
        setup(lease_.machine());
    base_ = lease_.machine().snapshot();
}

void
BatchRunner::forEach(std::size_t count, const TrialFn &fn)
{
    // Tier tallies also feed the global metrics registry directly, so
    // every runner — including Channel::runBatched's private one,
    // whose Stats object is otherwise dropped — shows up in the
    // unified snapshot.
    Metrics &met = metrics();
    Machine &m = lease_.machine();
    const std::size_t width = static_cast<std::size_t>(options_.width);
    std::size_t start = 0;
    while (start < count) {
        const std::size_t end = std::min(count, start + width);

        // Leader: full simulation, recorded.
        TrialTrace trace;
        {
            HR_TRACE_SCOPE("batch", "batch.leader");
            if (dirty_)
                m.restore(base_);
            m.beginRecord(trace);
            fn(m, start);
            m.endRecord();
        }
        dirty_ = true;
        ++stats_.leaders;
        ++stats_.trials;
        met.batchLeaders.add();
        met.batchTrials.add();

        if (trace.opaque) {
            // The leader snapshotted/restored or changed backgrounds;
            // the trace can't stand in for execution, so followers run
            // the plain scalar loop.
            HR_TRACE_INSTANT1("batch", "batch.opaque_fallback",
                              "followers", end - (start + 1));
            for (std::size_t i = start + 1; i < end; ++i) {
                m.restore(base_);
                fn(m, i);
                ++stats_.scalar;
                ++stats_.trials;
                met.batchFollowersScalar.add();
                met.batchTrials.add();
            }
        } else if (options_.group) {
            // Group-stepped tier: lanes march down the leader's
            // skeleton; the group picks substituted/strict replay or
            // guided real execution per trace shape and peels truly
            // divergent lanes to scalar (see sim/machine_group.hh).
            group_.adopt(&trace, &base_);
            for (std::size_t i = start + 1; i < end; ++i) {
                const MachineGroup::Outcome outcome = group_.step(
                    m, dirty_, [&](Machine &lane) { fn(lane, i); });
                switch (outcome) {
                  case MachineGroup::Outcome::Replayed:
                    ++stats_.replayed;
                    met.batchFollowersReplayed.add();
                    break;
                  case MachineGroup::Outcome::Stepped:
                    ++stats_.groupStepped;
                    met.batchFollowersStepped.add();
                    break;
                  case MachineGroup::Outcome::Peeled:
                    ++stats_.diverged;
                    met.batchFollowersPeeled.add();
                    HR_TRACE_INSTANT1("batch", "batch.peel_off",
                                      "trial", i);
                    break;
                  case MachineGroup::Outcome::Scalar:
                    ++stats_.scalar;
                    met.batchFollowersScalar.add();
                    break;
                }
                ++stats_.trials;
                met.batchTrials.add();
            }
            // The trace dies with this loop iteration; detach so the
            // group never holds a dangling skeleton.
            group_.adopt(nullptr, nullptr);
        } else {
            // Followers: replay, falling back to scalar on divergence.
            // Clean replays never touch machine state, so they need no
            // restore — the machine simply stays at the leader's (or
            // last diverged follower's) end state.
            for (std::size_t i = start + 1; i < end; ++i) {
                m.beginReplay(trace, base_);
                fn(m, i);
                if (m.endReplay()) {
                    ++stats_.replayed;
                    met.batchFollowersReplayed.add();
                } else {
                    ++stats_.diverged;
                    met.batchFollowersPeeled.add();
                    HR_TRACE_INSTANT1("batch", "batch.peel_off",
                                      "trial", i);
                }
                ++stats_.trials;
                met.batchTrials.add();
            }
        }
        start = end;
    }
}

} // namespace hr
