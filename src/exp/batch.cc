#include "exp/batch.hh"

#include <algorithm>

#include "util/log.hh"

namespace hr
{

BatchRunner::BatchRunner(MachinePool &pool, Setup setup, Options options)
    : lease_(pool.lease()), options_(options)
{
    fatalIf(options_.width < 1, "BatchRunner: width must be >= 1");
    if (setup)
        setup(lease_.machine());
    base_ = lease_.machine().snapshot();
}

void
BatchRunner::forEach(std::size_t count, const TrialFn &fn)
{
    Machine &m = lease_.machine();
    const std::size_t width = static_cast<std::size_t>(options_.width);
    std::size_t start = 0;
    while (start < count) {
        const std::size_t end = std::min(count, start + width);

        // Leader: full simulation, recorded.
        if (dirty_)
            m.restore(base_);
        TrialTrace trace;
        m.beginRecord(trace);
        fn(m, start);
        m.endRecord();
        dirty_ = true;
        ++stats_.leaders;
        ++stats_.trials;

        if (trace.opaque) {
            // The leader snapshotted/restored or changed backgrounds;
            // the trace can't stand in for execution, so followers run
            // the plain scalar loop.
            for (std::size_t i = start + 1; i < end; ++i) {
                m.restore(base_);
                fn(m, i);
                ++stats_.scalar;
                ++stats_.trials;
            }
        } else {
            // Followers: replay, falling back to scalar on divergence.
            // Clean replays never touch machine state, so they need no
            // restore — the machine simply stays at the leader's (or
            // last diverged follower's) end state.
            for (std::size_t i = start + 1; i < end; ++i) {
                m.beginReplay(trace, base_);
                fn(m, i);
                if (m.endReplay())
                    ++stats_.replayed;
                else
                    ++stats_.diverged;
                ++stats_.trials;
            }
        }
        start = end;
    }
}

} // namespace hr
