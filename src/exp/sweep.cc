#include "exp/sweep.hh"

#include <cstdlib>
#include <stdexcept>

#include "channel/channel_registry.hh"
#include "exp/machine_pool.hh"
#include "exp/scenario.hh"
#include "gadgets/gadget_registry.hh"
#include "obs/metrics.hh"
#include "obs/progress.hh"
#include "obs/trace.hh"
#include "sim/profiles.hh"
#include "util/log.hh"
#include "util/table.hh"

namespace hr
{

namespace
{

/** Parse a whole token as an integer (no trailing junk). */
long long
parseRangeInt(const std::string &text, const std::string &key,
              const std::string &spec)
{
    char *end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    fatalIf(end == text.c_str() || *end != '\0',
            "--grid " + key + ": bad range '" + spec +
                "' (use lo:hi[:step])");
    return v;
}

/** Expand "lo:hi[:step]" into an inclusive integer range. */
std::vector<std::string>
expandRange(const std::string &spec, const std::string &key)
{
    const auto first = spec.find(':');
    const auto second = spec.find(':', first + 1);
    const std::string lo_text = spec.substr(0, first);
    const std::string hi_text =
        spec.substr(first + 1, second == std::string::npos
                                   ? std::string::npos
                                   : second - first - 1);
    const std::string step_text =
        second == std::string::npos ? "1" : spec.substr(second + 1);
    const long long lo = parseRangeInt(lo_text, key, spec);
    const long long hi = parseRangeInt(hi_text, key, spec);
    const long long step = parseRangeInt(step_text, key, spec);
    fatalIf(step <= 0, "--grid " + key + ": step must be positive");
    fatalIf(hi < lo, "--grid " + key + ": empty range '" + spec + "'");
    // Refuse absurd axes before materializing them (the sweep-wide
    // point cap could otherwise only fire after an OOM-sized expand).
    constexpr long long kMaxAxisValues = 1'000'000;
    fatalIf((hi - lo) / step + 1 > kMaxAxisValues,
            "--grid " + key + ": range '" + spec + "' expands to more "
            "than " + std::to_string(kMaxAxisValues) + " values");
    std::vector<std::string> values;
    for (long long v = lo; v <= hi; v += step)
        values.push_back(std::to_string(v));
    return values;
}

/** One grid point's outcome. */
struct SweepRow
{
    std::vector<std::string> axisValues;
    std::string status = "ok";
    double fastCycles = 0;
    double slowCycles = 0;
    double deltaUs = 0;
    double accuracy = 0;
};

/** Validated cartesian grid, expanded lazily (last axis fastest). */
struct Grid
{
    const std::vector<SweepAxis> *axes = nullptr;
    int points = 1;

    std::vector<std::string>
    valuesAt(int index) const
    {
        std::vector<std::string> values(axes->size());
        for (std::size_t a = axes->size(); a-- > 0;) {
            const SweepAxis &axis = (*axes)[a];
            const int n = static_cast<int>(axis.values.size());
            values[a] = axis.values[static_cast<std::size_t>(index % n)];
            index /= n;
        }
        return values;
    }

    std::string
    spec() const
    {
        std::string out;
        for (const SweepAxis &axis : *axes) {
            out += (out.empty() ? "" : " ") + axis.key + "=";
            for (std::size_t v = 0; v < axis.values.size(); ++v)
                out += (v ? "," : "") + axis.values[v];
        }
        return out;
    }
};

Grid
expandGrid(const std::vector<SweepAxis> &axes)
{
    constexpr long long kMaxPoints = 1'000'000;
    Grid grid;
    grid.axes = &axes;
    long long total = 1;
    for (std::size_t a = 0; a < axes.size(); ++a) {
        const SweepAxis &axis = axes[a];
        fatalIf(axis.values.empty(),
                "--grid " + axis.key + ": no values");
        for (std::size_t b = 0; b < a; ++b)
            fatalIf(axes[b].key == axis.key,
                    "--grid " + axis.key + ": duplicate axis (the "
                    "later one would silently win)");
        total *= static_cast<long long>(axis.values.size());
        fatalIf(total > kMaxPoints,
                "sweep: grid expands to more than " +
                    std::to_string(kMaxPoints) + " points");
    }
    grid.points = static_cast<int>(total);
    return grid;
}

/** Keys of the grid axes as a ParamSet, for up-front validation. */
ParamSet
gridKeySet(const std::vector<SweepAxis> &axes)
{
    ParamSet keys;
    for (const SweepAxis &axis : axes)
        keys.set(axis.key, "");
    return keys;
}

/**
 * Per-grid-row work hoisted out of the point loop. With the last axis
 * varying fastest, a "row" is one run of grid.points/lastN consecutive
 * indices sharing every non-last axis value — so the merged ParamSet
 * (fixed params overridden by the non-last axis values) and the
 * axis-value vector are invariant per row, and rebuilding both per
 * point was pure per-point overhead. A point only needs its row's
 * copies plus one set() of the last axis key.
 *
 * Rows are also the sweep's lockstep unit: poolMap sizes batching
 * groups to lastN, so each row gets one recorded leader and steps its
 * remaining points as group lanes (see sim/machine_group.hh).
 */
struct SweepRows
{
    int lastN = 1; ///< points per row (= last axis values, or 1)
    /** Per row: full axis-value vector of its first point. */
    std::vector<std::vector<std::string>> axisValues;
    /** Per row: fixed params overridden by the non-last axes. */
    std::vector<ParamSet> params;

    /**
     * Materialize one point: the row's axis values and params with
     * the last axis entry swapped in.
     */
    void
    pointAt(int index, const std::vector<SweepAxis> &axes,
            std::vector<std::string> &values_out,
            ParamSet &params_out) const
    {
        const int row = index / lastN;
        values_out = axisValues[static_cast<std::size_t>(row)];
        params_out = params[static_cast<std::size_t>(row)];
        if (!axes.empty()) {
            const SweepAxis &last = axes.back();
            const std::string &value = last.values[static_cast<
                std::size_t>(index % lastN)];
            values_out.back() = value;
            params_out.set(last.key, value);
        }
    }
};

SweepRows
hoistSweepRows(const Grid &grid, const std::vector<SweepAxis> &axes,
               const ParamSet &fixed)
{
    SweepRows rows;
    rows.lastN =
        axes.empty() ? 1 : static_cast<int>(axes.back().values.size());
    const int row_count = grid.points / rows.lastN;
    rows.axisValues.reserve(static_cast<std::size_t>(row_count));
    rows.params.reserve(static_cast<std::size_t>(row_count));
    for (int r = 0; r < row_count; ++r) {
        std::vector<std::string> values = grid.valuesAt(r * rows.lastN);
        ParamSet point;
        for (std::size_t a = 0; a + 1 < axes.size(); ++a)
            point.set(axes[a].key, values[a]);
        rows.params.push_back(fixed.overriddenBy(point));
        rows.axisValues.push_back(std::move(values));
    }
    return rows;
}

/** Batching options sizing lockstep groups to grid rows. */
BatchRunner::Options
rowBatchOptions(const SweepOptions &options, const SweepRows &rows)
{
    BatchRunner::Options batch;
    batch.width = rows.lastN > 0 ? rows.lastN : 1;
    batch.group = options.group;
    return batch;
}

} // namespace

SweepAxis
parseSweepAxis(const std::string &arg)
{
    const auto eq = arg.find('=');
    fatalIf(eq == std::string::npos || eq == 0 || eq + 1 >= arg.size(),
            "--grid must be key=v1,v2,... or key=lo:hi[:step], got '" +
                arg + "'");
    SweepAxis axis;
    axis.key = arg.substr(0, eq);
    const std::string spec = arg.substr(eq + 1);
    if (spec.find(':') != std::string::npos) {
        axis.values = expandRange(spec, axis.key);
        return axis;
    }
    std::size_t start = 0;
    while (start <= spec.size()) {
        const auto comma = spec.find(',', start);
        const std::string value =
            spec.substr(start, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - start);
        fatalIf(value.empty(),
                "--grid " + axis.key + ": empty value in '" + spec + "'");
        axis.values.push_back(value);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return axis;
}

ResultTable
runSweep(const SweepOptions &options)
{
    fatalIf(options.trials < 1, "sweep: trials must be >= 1");
    const GadgetInfo &gadget =
        GadgetRegistry::instance().resolve(options.gadget);
    // Validate the profile up front (fatal with the known names).
    machineConfigForProfile(options.profile);

    // Validate grid-axis and fixed parameter keys before expanding
    // anything: a typo'd `--grid` key fails here with the gadget's
    // valid keys and a nearest-match suggestion instead of producing a
    // sweep full of per-point errors.
    const std::vector<std::string> allowed_keys =
        GadgetRegistry::paramKeys(gadget);
    options.params.requireKeys(allowed_keys,
                               "gadget '" + gadget.name + "'");
    gridKeySet(options.grid)
        .requireKeys(allowed_keys, "--grid: gadget '" + gadget.name +
                                       "'");

    const Grid grid = expandGrid(options.grid);
    const int points = grid.points;

    ScenarioContext ctx(options.trials, options.jobs, options.seed,
                        options.profile, options.params,
                        options.progress, options.batch, options.group,
                        options.lockstep);

    // Grid points differ only in their RNG streams, so instead of
    // reconstructing a Machine per point (thousands of per-set
    // replacement allocations), each point runs on a pooled machine
    // restored to the pristine base state and re-seeds the noise
    // streams — bit-identical to a fresh build with the same seeds.
    // At --jobs 1 the points go through the lockstep batched path
    // (see ScenarioContext::poolMap) in groups sized to grid rows:
    // the row's first point leads, the rest step as group lanes, with
    // the per-point reseed substituted on deterministic profiles and
    // truly divergent points peeling to scalar — output is always
    // byte-identical to the lease-per-index path.
    const MachineConfig base_config = ctx.machineConfig();
    MachinePool machine_pool(base_config);
    const SweepRows sweep_rows =
        hoistSweepRows(grid, options.grid, options.params);

    ProgressSink &sink = ProgressSink::instance();
    sink.beginTask(("sweep:" + gadget.name).c_str(),
                   static_cast<std::uint64_t>(points), options.jobs);

    const std::vector<SweepRow> rows = ctx.poolMap(
        machine_pool, points, rowBatchOptions(options, sweep_rows),
        [&](int index, Rng &, Machine &machine) {
            HR_TRACE_SCOPE("sweep", "sweep.point");
            SweepRow row;
            ParamSet params;
            sweep_rows.pointAt(index, options.grid, row.axisValues,
                               params);
            try {
                // --seed drives each point's machine noise streams
                // (latency jitter, random-replacement choices) while
                // staying deterministic per grid index, so repeats
                // with different seeds are independent replicates.
                ScenarioContext::reseedMachine(machine, base_config,
                                               ctx.indexSeed(index));
                auto source =
                    GadgetRegistry::instance().make(gadget.name, params);
                if (!source->compatible(machine)) {
                    row.status = "incompatible";
                    return row;
                }
                source->calibrate(machine);
                const PolarityStats stats = measurePolarities(
                    *source, machine, options.trials);
                row.fastCycles = stats.fastCycles;
                row.slowCycles = stats.slowCycles;
                row.deltaUs = machine.toUs(static_cast<Cycle>(
                    row.slowCycles > row.fastCycles
                        ? row.slowCycles - row.fastCycles
                        : 0));
                row.accuracy = stats.accuracy();
            } catch (const std::exception &e) {
                row.status = std::string("error: ") + e.what();
            }
            return row;
        });

    sink.endTask();

    std::vector<std::string> headers;
    for (const SweepAxis &axis : options.grid)
        headers.push_back(axis.key);
    for (const char *column :
         {"status", "fast cycles", "slow cycles", "delta (us)",
          "bit accuracy"}) {
        headers.push_back(column);
    }
    Table table(headers);
    for (const SweepRow &row : rows) {
        std::vector<std::string> cells = row.axisValues;
        cells.push_back(row.status);
        if (row.status == "ok") {
            cells.push_back(Table::num(row.fastCycles, 1));
            cells.push_back(Table::num(row.slowCycles, 1));
            cells.push_back(Table::num(row.deltaUs, 3));
            cells.push_back(Table::num(row.accuracy, 3));
        } else {
            for (int i = 0; i < 4; ++i)
                cells.push_back("-");
        }
        table.addRow(std::move(cells));
    }

    const std::string grid_spec = grid.spec();

    ResultTable result;
    result.setScenario("sweep_" + gadget.name,
                       "parameter sweep: " + gadget.name + " on " +
                           options.profile,
                       gadget.description);
    result.addMeta("gadget", gadget.name);
    result.addMeta("profile", options.profile);
    result.addMeta("trials", std::to_string(options.trials));
    result.addMeta("seed", std::to_string(options.seed));
    if (!grid_spec.empty())
        result.addMeta("grid", grid_spec);
    if (options.verbose)
        result.addMeta("batching", ctx.batchStats().summary());
    result.addTable("", std::move(table));
    // A sweep where no point ran is a failure (exit nonzero in the
    // driver), not a quietly empty success.
    bool any_ok = false;
    std::uint64_t failed = 0;
    for (const SweepRow &row : rows) {
        any_ok |= row.status == "ok";
        failed += row.status == "ok" ? 0 : 1;
    }
    metrics().sweepPointsTotal.add(static_cast<std::uint64_t>(points));
    metrics().sweepPointsFailed.add(failed);
    result.addCheck("at least one grid point ran", any_ok);
    return result;
}

namespace
{

/** One channel-sweep grid point's outcome. */
struct ChannelSweepRow
{
    std::vector<std::string> axisValues;
    std::string status = "ok";
    ChannelStats stats;
};

} // namespace

ResultTable
runChannelSweep(const SweepOptions &options)
{
    fatalIf(options.trials < 1, "sweep: trials must be >= 1");
    const ChannelInfo &channel_info =
        ChannelRegistry::instance().resolve(options.channel);
    // Validate the profile up front (fatal with the known names).
    machineConfigForProfile(options.profile);

    // Grid-axis and fixed keys validate against the channel's
    // documented keys (channel-level + the gadget's own) before
    // anything runs.
    const std::vector<std::string> allowed_keys =
        ChannelRegistry::paramKeys(channel_info);
    options.params.requireKeys(allowed_keys, "channel '" +
                                                 channel_info.name +
                                                 "'");
    gridKeySet(options.grid)
        .requireKeys(allowed_keys, "--grid: channel '" +
                                       channel_info.name + "'");

    const Grid grid = expandGrid(options.grid);

    ScenarioContext ctx(options.trials, options.jobs, options.seed,
                        options.profile, options.params,
                        options.progress, options.batch, options.group,
                        options.lockstep);

    const MachineConfig base_config = ctx.machineConfig();
    MachinePool machine_pool(base_config);
    const SweepRows sweep_rows =
        hoistSweepRows(grid, options.grid, options.params);

    ProgressSink &sink = ProgressSink::instance();
    sink.beginTask(("sweep:" + channel_info.name).c_str(),
                   static_cast<std::uint64_t>(grid.points),
                   options.jobs);

    const std::vector<ChannelSweepRow> rows = ctx.poolMap(
        machine_pool, grid.points,
        rowBatchOptions(options, sweep_rows),
        [&](int index, Rng &rng, Machine &machine) {
            HR_TRACE_SCOPE("sweep", "sweep.point");
            ChannelSweepRow row;
            ParamSet params;
            sweep_rows.pointAt(index, options.grid, row.axisValues,
                               params);
            try {
                ScenarioContext::reseedMachine(machine, base_config,
                                               ctx.indexSeed(index));
                Channel channel(ChannelRegistry::instance().makeConfig(
                    channel_info.name, params));
                if (!channel.compatible(machine)) {
                    row.status = "incompatible";
                    return row;
                }
                channel.prepare(machine);
                // `trials` transmissions accumulate into one row so
                // BER/sync estimates firm up without a longer frame.
                const ChannelConfig &config = channel.config();
                for (int trial = 0; trial < options.trials; ++trial) {
                    std::vector<bool> payload;
                    const int bits =
                        config.frames * config.frame.payloadBits;
                    for (int i = 0; i < bits; ++i)
                        payload.push_back(rng.chance(0.5));
                    row.stats.accumulate(
                        channel.run(machine, payload));
                }
            } catch (const std::exception &e) {
                row.status = std::string("error: ") + e.what();
            }
            return row;
        });

    sink.endTask();

    std::vector<std::string> headers;
    for (const SweepAxis &axis : options.grid)
        headers.push_back(axis.key);
    for (const char *column :
         {"status", "raw kb/s", "eff kb/s", "BER", "sync fail",
          "shannon kb/s"}) {
        headers.push_back(column);
    }
    Table table(headers);
    for (const ChannelSweepRow &row : rows) {
        std::vector<std::string> cells = row.axisValues;
        cells.push_back(row.status);
        if (row.status == "ok") {
            cells.push_back(
                Table::num(row.stats.rawBitsPerSec() / 1e3, 2));
            cells.push_back(
                Table::num(row.stats.effectiveBitsPerSec() / 1e3, 2));
            cells.push_back(Table::num(row.stats.ber(), 3));
            cells.push_back(
                Table::num(row.stats.syncFailureRate(), 3));
            cells.push_back(
                Table::num(row.stats.shannonBitsPerSec() / 1e3, 2));
        } else {
            for (int i = 0; i < 5; ++i)
                cells.push_back("-");
        }
        table.addRow(std::move(cells));
    }

    ResultTable result;
    result.setScenario("sweep_channel_" + channel_info.name,
                       "channel sweep: " + channel_info.name + " on " +
                           options.profile,
                       channel_info.description);
    result.addMeta("channel", channel_info.name);
    result.addMeta("gadget", channel_info.gadget);
    result.addMeta("modulation", channel_info.modulation);
    result.addMeta("profile", options.profile);
    result.addMeta("trials", std::to_string(options.trials));
    result.addMeta("seed", std::to_string(options.seed));
    const std::string grid_spec = grid.spec();
    if (!grid_spec.empty())
        result.addMeta("grid", grid_spec);
    if (options.verbose)
        result.addMeta("batching", ctx.batchStats().summary());
    result.addTable("", std::move(table));
    bool any_ok = false;
    std::uint64_t failed = 0;
    for (const ChannelSweepRow &row : rows) {
        any_ok |= row.status == "ok";
        failed += row.status == "ok" ? 0 : 1;
    }
    metrics().sweepPointsTotal.add(
        static_cast<std::uint64_t>(grid.points));
    metrics().sweepPointsFailed.add(failed);
    result.addCheck("at least one grid point ran", any_ok);
    return result;
}

} // namespace hr
