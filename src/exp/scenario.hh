/**
 * @file
 * Scenario: one registered experiment (a paper figure/table, an
 * ablation, a new workload) executed by the ExperimentRunner.
 *
 * A scenario declares its identity (name, title, paper claim), its
 * default machine profile and trial count, and a run() that builds a
 * ResultTable. All machine construction, randomness, and parallelism
 * flow through the ScenarioContext so that results are reproducible
 * and independent of the worker-thread count.
 */

#ifndef HR_EXP_SCENARIO_HH
#define HR_EXP_SCENARIO_HH

#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

#include "exp/batch.hh"
#include "exp/machine_pool.hh"
#include "exp/result.hh"
#include "obs/progress.hh"
#include "sim/machine.hh"
#include "util/params.hh"
#include "util/rng.hh"

namespace hr
{

/**
 * Execution context handed to Scenario::run().
 *
 * Deterministic parallelism contract: parallelMap(count, fn) runs
 * fn(index, rng) for every index on the runner's thread pool, where
 * each index gets its own Rng seeded `baseSeed ^ index`. Results come
 * back in index order, so output is bit-identical at any --jobs value.
 */
class ScenarioContext
{
  public:
    using IndexBody = std::function<void(int)>;

    ScenarioContext(int trials, int jobs, std::uint64_t base_seed,
                    std::string profile_name, ParamSet params,
                    std::function<void(const std::string &)> progress,
                    bool batch = true, bool group = true,
                    bool lockstep = true);

    /** Requested trial/sample count (scenario default or --trials). */
    int trials() const { return trials_; }
    int jobs() const { return jobs_; }
    std::uint64_t baseSeed() const { return baseSeed_; }

    /** Deterministic per-index RNG seed (independent of jobs). */
    std::uint64_t indexSeed(int index) const
    {
        return baseSeed_ ^ static_cast<std::uint64_t>(index);
    }

    /** Resolved machine-profile name (scenario default or --profile). */
    const std::string &profileName() const { return profileName_; }

    /** Fresh MachineConfig for the resolved profile. */
    MachineConfig machineConfig() const;

    /**
     * machineConfig() with every machine-noise RNG seed (latency
     * jitter, random-replacement streams) mixed with
     * indexSeed(index): `--seed` reaches the per-trial machine
     * sub-streams, not just the scenario-level Rng, while staying
     * deterministic per trial index (independent of --jobs).
     */
    MachineConfig machineConfig(int index) const;

    /**
     * Re-seed a live (typically pooled) machine's noise streams
     * exactly as a fresh construction from machineConfig(index)
     * would: @p base must be the config the machine was built from.
     */
    static void reseedMachine(Machine &machine, const MachineConfig &base,
                              std::uint64_t mix);

    /** reseedMachine against this context's profile and trial index. */
    void reseedMachine(Machine &machine, int index) const;

    const ParamSet &params() const { return params_; }

    /** Abbreviated run requested (--param quick=1; used by tests). */
    bool quick() const { return params_.getBool("quick", false); }

    /** Progress line (stderr in table mode; never stdout). */
    void note(const std::string &text) const;

    /**
     * Run fn(index, rng) for index in [0, count) across the thread
     * pool; returns results in index order.
     */
    template <typename Fn>
    auto
    parallelMap(int count, Fn &&fn) const
    {
        using T = std::invoke_result_t<Fn &, int, Rng &>;
        // std::vector<bool> packs bits, so concurrent writes to
        // distinct indices would race; return char/int instead.
        static_assert(!std::is_same_v<T, bool>,
                      "parallelMap body must not return bool");
        std::vector<T> out(static_cast<std::size_t>(count > 0 ? count : 0));
        forEachIndex(count, [&](int index) {
            Rng rng(indexSeed(index));
            out[static_cast<std::size_t>(index)] = fn(index, rng);
        });
        return out;
    }

    /** parallelMap over the context's trial count. */
    template <typename Fn>
    auto
    mapTrials(Fn &&fn) const
    {
        return parallelMap(trials_, std::forward<Fn>(fn));
    }

    /** Lockstep batching enabled (--no-batch turns it off). */
    bool batch() const { return batch_; }

    /** Group-stepped batching tier enabled (--no-group opts out). */
    bool group() const { return group_; }

    /** Periodic-loop forwarding engine enabled (--no-lockstep). */
    bool lockstep() const { return lockstep_; }

    /**
     * Accumulated BatchRunner statistics of every poolMap that took
     * the batched path in this context (the `batching` column of
     * `hr_bench run --verbose` and the perf JSON).
     */
    const BatchRunner::Stats &batchStats() const { return batchStats_; }

    /**
     * parallelMap over indices that each need a pooled machine in the
     * warmed base state: fn(index, rng, machine) with the machine
     * restored to the pool's base per index.
     *
     * Single-worker runs drive the indices through a BatchRunner in
     * SPMD lockstep instead of leasing per index — indices whose
     * machine-op streams repeat replay from the leader's trace, and
     * divergent ones (e.g. a per-index reseedNoise) fall back to
     * scalar execution transparently. Results are byte-identical to
     * the lease-per-index path at any --jobs value, which is what the
     * CI jobs-1-vs-jobs-4 sweep diff pins down.
     */
    template <typename Fn>
    auto
    poolMap(MachinePool &pool, int count, Fn &&fn) const
    {
        return poolMap(pool, count, BatchRunner::Options(),
                       std::forward<Fn>(fn));
    }

    /**
     * poolMap with explicit batching options — the sweep engine sizes
     * lockstep groups to its grid rows this way (one leader per row,
     * the row's other points as lanes). Options::group is further
     * gated on the context's own group() flag so --no-group reaches
     * every caller.
     */
    template <typename Fn>
    auto
    poolMap(MachinePool &pool, int count, BatchRunner::Options options,
            Fn &&fn) const
    {
        using T = std::invoke_result_t<Fn &, int, Rng &, Machine &>;
        static_assert(!std::is_same_v<T, bool>,
                      "poolMap body must not return bool");
        std::vector<T> out(
            static_cast<std::size_t>(count > 0 ? count : 0));
        if (batch_ && jobs_ <= 1) {
            options.group = options.group && group_;
            BatchRunner runner(pool, {}, options);
            runner.forEach(
                out.size(), [&](Machine &machine, std::size_t i) {
                    const int index = static_cast<int>(i);
                    Rng rng(indexSeed(index));
                    out[i] = fn(index, rng, machine);
                    progressAdvance();
                });
            batchStats_.add(runner.stats());
            return out;
        }
        forEachIndex(count, [&](int index) {
            Rng rng(indexSeed(index));
            auto lease = pool.lease();
            out[static_cast<std::size_t>(index)] =
                fn(index, rng, lease.machine());
        });
        return out;
    }

  private:
    int trials_;
    int jobs_;
    bool batch_;
    bool group_;
    bool lockstep_;
    std::uint64_t baseSeed_;
    std::string profileName_;
    ParamSet params_;
    std::function<void(const std::string &)> progress_;
    mutable BatchRunner::Stats batchStats_;

    /** Blocking index-parallel dispatch (exceptions propagate). */
    void forEachIndex(int count, const IndexBody &body) const;
};

/** Base class for registered experiments. */
class Scenario
{
  public:
    virtual ~Scenario() = default;

    /** CLI-stable identifier, e.g. "fig04_plru_eviction". */
    virtual std::string name() const = 0;

    /** One-line human title. */
    virtual std::string title() const = 0;

    /** What the paper claims this experiment shows. */
    virtual std::string paperClaim() const = 0;

    /** Default machine profile name (see sim/profiles.hh). */
    virtual std::string defaultProfile() const { return "default"; }

    /** Default trial/sample count when --trials is not given. */
    virtual int defaultTrials() const { return 1; }

    /** Execute and return the structured result. */
    virtual ResultTable run(ScenarioContext &ctx) = 0;
};

} // namespace hr

#endif // HR_EXP_SCENARIO_HH
