#include "exp/perf.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "analysis/capacity.hh"
#include "channel/channel_registry.hh"
#include "exp/batch.hh"
#include "exp/machine_pool.hh"
#include "exp/registry.hh"
#include "exp/runner.hh"
#include "exp/sweep.hh"
#include "gadgets/gadget_registry.hh"
#include "isa/program.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/machine.hh"
#include "sim/profiles.hh"
#include "util/log.hh"
#include "util/rng.hh"
#include "util/table.hh"

namespace hr
{

namespace
{

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * Run batches of work until at least min_wall seconds are spent (one
 * batch minimum). The batch callback returns the number of work items
 * it performed; value = items / wall.
 */
template <typename Batch>
PerfSuite
measureRate(const std::string &name, const std::string &metric,
            double min_wall, Batch &&batch)
{
    PerfSuite suite;
    suite.name = name;
    suite.metric = metric;
    suite.unit = "/s";
    const double start = nowSeconds();
    double wall = 0;
    long long iters = 0;
    do {
        iters += batch();
        wall = nowSeconds() - start;
    } while (wall < min_wall);
    suite.value = static_cast<double>(iters) / wall;
    suite.wallSeconds = wall;
    suite.iterations = iters;
    suite.normalize = true;
    return suite;
}

/** Straight-line ALU/load/branch mix (L1-resident working set). */
Program
makeCoreWorkload()
{
    ProgramBuilder builder("perf_core");
    RegId acc = builder.movImm(1);
    RegId zero = builder.movImm(0);
    for (int rep = 0; rep < 40; ++rep) {
        for (int i = 0; i < 8; ++i) {
            const Addr addr =
                0x10000 + static_cast<Addr>((rep * 8 + i) % 64) * 64;
            RegId v = builder.loadAbsolute(addr);
            acc = builder.binop(Opcode::Add, acc, v);
        }
        acc = builder.binopImm(Opcode::Mul, acc, 3);
        acc = builder.binopImm(Opcode::Xor, acc, rep);
        const std::int32_t next = builder.newLabel();
        builder.branch(zero, next); // never taken, fully predictable
        builder.bind(next);
        builder.storeOrdered(0x20000 +
                                 static_cast<Addr>(rep % 16) * 64,
                             acc, acc);
    }
    builder.halt();
    return builder.take();
}

/** One fig08-style single-shot racing trial through the registry. */
bool
racingObservation(Machine &machine)
{
    ParamSet params;
    params.set("slow_ops", "20");
    params.set("ref_ops", "20");
    auto race = GadgetRegistry::instance().make("pa_race", params);
    return race->sample(machine, true).bit;
}

/** Warm caches and predictor so snapshots carry non-trivial state. */
void
warmMachine(Machine &machine)
{
    for (int i = 0; i < 256; ++i)
        machine.warm(0x10000 + static_cast<Addr>(i) * 64);
    Program prog = makeCoreWorkload();
    machine.run(prog);
    machine.settle();
}

/**
 * Wall time of a quick registered-scenario run (lower is better).
 * Best of several runs: a single millisecond-scale sample on a shared
 * CI runner varies far more than any regression tolerance.
 */
PerfSuite
scenarioWallSuite(const std::string &suite_name,
                  const std::string &scenario, int trials,
                  std::uint64_t seed)
{
    RunOptions options;
    options.trials = trials;
    options.seed = seed;
    options.params.setFromArg("quick=1");
    ExperimentRunner runner(options);
    Scenario &sc = ScenarioRegistry::instance().resolve(scenario);

    constexpr int kRuns = 3;
    double best = 0, total = 0;
    for (int i = 0; i < kRuns; ++i) {
        runner.run(sc);
        const double wall = runner.lastWallSeconds();
        total += wall;
        if (i == 0 || wall < best)
            best = wall;
    }

    PerfSuite suite;
    suite.name = suite_name;
    suite.metric =
        "best-of-" + std::to_string(kRuns) + " wall seconds for a "
        "quick " + scenario + " run";
    suite.unit = "s";
    suite.value = best;
    suite.wallSeconds = total;
    suite.iterations = kRuns;
    suite.higherIsBetter = false;
    suite.normalize = true;
    return suite;
}

} // namespace

std::vector<PerfSuite>
runPerfSuites(const PerfOptions &options)
{
    const double budget = options.quick ? 0.05 : 0.25;
    auto note = [&](const std::string &text) {
        if (options.progress)
            options.progress(text);
    };
    auto wanted = [&](const std::string &name) {
        if (options.only.empty())
            return true;
        return std::find(options.only.begin(), options.only.end(),
                         name) != options.only.end();
    };

    // Reject unknown --suite names up front instead of silently
    // selecting nothing, with the usual edit-distance suggestion.
    static const std::vector<std::string> kSuiteNames = {
        "host_speed",        "core_throughput",
        "cache_access_rate", "machine_construct",
        "snapshot_restore",  "trial_path_fresh",
        "trial_path_scalar", "trial_path_restore",
        "trial_path_speedup", "batch_speedup",
        "batched_trial_path", "divergent_batch_path",
        "group_step_rate",   "decode_cache_hit",
        "trace_overhead",
        "fig08_quick_wall",  "fig10_quick_wall",
        "channel_symbol_rate", "channel_frame_path",
        "sweep_points",       "analyze_capacity"};
    for (const std::string &name : options.only) {
        if (std::find(kSuiteNames.begin(), kSuiteNames.end(), name) !=
            kSuiteNames.end())
            continue;
        const std::string suggestion = closestMatch(name, kSuiteNames);
        fatal("perf: unknown suite '" + name + "'" +
              (suggestion.empty()
                   ? ""
                   : " (did you mean '" + suggestion + "'?)"));
    }

    std::vector<PerfSuite> suites;

    if (wanted("host_speed")) {
        note("host_speed");
        // Fixed pure-CPU spin used to normalize machine-dependent
        // suites across hosts; never compared itself.
        Rng rng(42);
        std::uint64_t sink = 0;
        PerfSuite suite = measureRate(
            "host_speed", "fixed RNG spin (cross-host anchor)", budget,
            [&]() {
                for (int i = 0; i < 1'000'000; ++i)
                    sink ^= rng.next();
                return 1'000'000;
            });
        if (sink == 1) // defeat dead-code elimination
            suite.metric += ".";
        suite.normalize = false;
        suites.push_back(suite);
    }

    if (wanted("core_throughput")) {
        note("core_throughput");
        Machine machine(machineConfigForProfile("default"));
        Program prog = makeCoreWorkload();
        suites.push_back(measureRate(
            "core_throughput", "committed instructions per second",
            budget, [&]() {
                long long committed = 0;
                for (int r = 0; r < 20; ++r) {
                    const RunResult res = machine.run(prog);
                    committed += static_cast<long long>(
                        res.counters.committedInstrs);
                }
                return committed;
            }));
    }

    if (wanted("cache_access_rate")) {
        note("cache_access_rate");
        Hierarchy hierarchy{HierarchyConfig{}};
        Cycle now = 0;
        Addr next = 0;
        suites.push_back(measureRate(
            "cache_access_rate",
            "hierarchy accesses per second (hit/miss/fill mix)", budget,
            [&]() {
                for (int i = 0; i < 20'000; ++i) {
                    const Addr addr = 0x400000 + (next % 1024) * 64;
                    ++next;
                    now += 6;
                    if (!hierarchy.access(addr, now, AccessKind::Load)
                             .accepted) {
                        now += 400; // let fills land, then continue
                    }
                }
                return 20'000;
            }));
    }

    if (wanted("machine_construct")) {
        note("machine_construct");
        const MachineConfig config = machineConfigForProfile("default");
        suites.push_back(measureRate(
            "machine_construct", "Machine constructions per second",
            budget, [&]() {
                for (int i = 0; i < 10; ++i)
                    Machine machine(config);
                return 10;
            }));
    }

    if (wanted("snapshot_restore")) {
        note("snapshot_restore");
        Machine machine(machineConfigForProfile("default"));
        warmMachine(machine);
        const Machine::Snapshot base = machine.snapshot();
        Program prog = makeCoreWorkload();
        suites.push_back(measureRate(
            "snapshot_restore",
            "restores per second of a warmed default machine "
            "(run + restore cycle)",
            budget, [&]() {
                for (int i = 0; i < 20; ++i) {
                    machine.run(prog);
                    machine.restore(base);
                }
                return 20;
            }));
    }

    // The batch-path tolerance: replay regressions are large and
    // low-variance, so these suites gate tighter than the global 25%.
    // Ratio suites are the opposite: they divide two independently
    // noisy measurements and cannot be host-normalized, so they get
    // extra slack — wide enough to ride out scheduler noise, still
    // far tighter than the ~10x collapse a broken replay path causes.
    constexpr double kBatchTolerance = 0.15;
    constexpr double kRatioTolerance = 0.40;

    double fresh_rate = 0, restore_rate = 0, scalar_rate = 0;
    if (wanted("trial_path_fresh") || wanted("trial_path_speedup")) {
        note("trial_path_fresh");
        const MachineConfig config =
            machineConfigForProfile("effective_window");
        PerfSuite suite = measureRate(
            "trial_path_fresh",
            "single-shot racing trials per second, fresh Machine each",
            budget, [&]() {
                for (int i = 0; i < 4; ++i) {
                    Machine machine(config);
                    racingObservation(machine);
                }
                return 4;
            });
        fresh_rate = suite.value;
        if (wanted("trial_path_fresh"))
            suites.push_back(suite);
    }
    if (wanted("trial_path_scalar") || wanted("batch_speedup")) {
        note("trial_path_scalar");
        MachinePool pool(machineConfigForProfile("effective_window"));
        PerfSuite suite = measureRate(
            "trial_path_scalar",
            "single-shot racing trials per second, pooled "
            "snapshot/restore (scalar: every trial fully simulated)",
            budget, [&]() {
                for (int i = 0; i < 16; ++i) {
                    auto lease = pool.lease();
                    racingObservation(lease.machine());
                }
                return 16;
            });
        scalar_rate = suite.value;
        if (wanted("trial_path_scalar"))
            suites.push_back(suite);
    }
    if (wanted("trial_path_restore") || wanted("trial_path_speedup") ||
        wanted("batch_speedup")) {
        note("trial_path_restore");
        MachinePool pool(machineConfigForProfile("effective_window"));
        BatchRunner batch(pool);
        PerfSuite suite = measureRate(
            "trial_path_restore",
            "single-shot racing trials per second, pooled + lockstep "
            "batched (width 32; the default trial path)",
            budget, [&]() {
                batch.forEach(32, [](Machine &machine, std::size_t) {
                    racingObservation(machine);
                });
                return 32;
            });
        suite.tolerance = kBatchTolerance;
        restore_rate = suite.value;
        if (wanted("trial_path_restore"))
            suites.push_back(suite);
    }
    if (wanted("trial_path_speedup") && fresh_rate > 0) {
        PerfSuite suite;
        suite.name = "trial_path_speedup";
        suite.metric =
            "trial_path_restore (batched) over trial_path_fresh";
        suite.unit = "x";
        suite.value = restore_rate / fresh_rate;
        suite.iterations = 1;
        suite.normalize = false;
        suite.tolerance = kRatioTolerance;
        suites.push_back(suite);
    }
    if (wanted("batch_speedup") && scalar_rate > 0) {
        PerfSuite suite;
        suite.name = "batch_speedup";
        suite.metric =
            "trial_path_restore (batched) over trial_path_scalar";
        suite.unit = "x";
        suite.value = restore_rate / scalar_rate;
        suite.iterations = 1;
        suite.normalize = false;
        suite.tolerance = kRatioTolerance;
        suites.push_back(suite);
    }

    if (wanted("batched_trial_path")) {
        note("batched_trial_path");
        MachinePool pool(machineConfigForProfile("effective_window"));
        BatchRunner::Options options;
        options.width = 64;
        BatchRunner batch(pool, {}, options);
        PerfSuite suite = measureRate(
            "batched_trial_path",
            "single-shot racing trials per second, lockstep batched "
            "at width 64",
            budget, [&]() {
                batch.forEach(64, [](Machine &machine, std::size_t) {
                    racingObservation(machine);
                });
                return 64;
            });
        suite.tolerance = kBatchTolerance;
        suites.push_back(suite);
    }

    if (wanted("divergent_batch_path")) {
        note("divergent_batch_path");
        // Every trial reseeds with a lane-distinct mix, so verbatim
        // replay is impossible (the old middle tier peeled every
        // follower to scalar here). The trace draws zero noise-stream
        // samples on this profile, so the group tier's substituted
        // replay keeps followers on the replay fast path anyway.
        MachinePool pool(machineConfigForProfile("effective_window"));
        BatchRunner batch(pool);
        std::uint64_t mix = 0;
        PerfSuite suite = measureRate(
            "divergent_batch_path",
            "racing trials per second with per-trial reseeds "
            "(width 32; dead reseeds substituted in group replay)",
            budget, [&]() {
                batch.forEach(32, [&](Machine &machine, std::size_t i) {
                    machine.reseedNoise(mix + i);
                    racingObservation(machine);
                });
                mix += 32;
                return 32;
            });
        suite.tolerance = kBatchTolerance;
        suite.batching = batch.stats().summary();
        suites.push_back(suite);
    }

    if (wanted("group_step_rate")) {
        note("group_step_rate");
        // Noisy profile + per-trial reseeds: the trace both draws
        // randomness and reseeds, so substitution is unsound and
        // verbatim replay diverges at the first mix. Guided group
        // stepping executes every lane for real against the leader's
        // op skeleton instead of falling all the way back to scalar
        // snapshot/restore per trial.
        MachinePool pool(machineConfigForProfile("noisy"));
        BatchRunner batch(pool);
        std::uint64_t mix = 1;
        PerfSuite suite = measureRate(
            "group_step_rate",
            "racing trials per second on the noisy profile with "
            "per-trial reseeds (width 32; guided group stepping)",
            budget, [&]() {
                batch.forEach(32, [&](Machine &machine, std::size_t i) {
                    machine.reseedNoise(mix + i);
                    racingObservation(machine);
                });
                mix += 32;
                return 32;
            });
        suite.tolerance = kBatchTolerance;
        suite.batching = batch.stats().summary();
        suites.push_back(suite);
    }

    if (wanted("decode_cache_hit")) {
        note("decode_cache_hit");
        Machine machine(machineConfigForProfile("default"));
        Program prog = makeCoreWorkload();
        machine.decodeProgram(prog); // populate
        PerfSuite suite = measureRate(
            "decode_cache_hit",
            "decoded-image acquisitions per second for an already "
            "cached program (verified id hit)",
            budget, [&]() {
                for (int i = 0; i < 5'000; ++i)
                    machine.decodeProgram(prog);
                return 5'000;
            });
        suite.tolerance = kBatchTolerance;
        suites.push_back(suite);
    }

    if (wanted("trace_overhead")) {
        note("trace_overhead");
        // Flight-recorder cost on the default batched trial path:
        // the traced rate over the untraced rate (~1.0x). The
        // disabled-mode cost itself needs no suite of its own —
        // instrumentation is always compiled in, so any disabled-path
        // regression already trips trial_path_restore's 15% gate.
        MachinePool pool(machineConfigForProfile("effective_window"));
        BatchRunner batch(pool);
        auto trial_rate = [&]() {
            return measureRate("trace_overhead", "", budget, [&]() {
                       batch.forEach(
                           32, [](Machine &machine, std::size_t) {
                               racingObservation(machine);
                           });
                       return 32;
                   })
                .value;
        };
        const double off_rate = trial_rate();
        TraceRecorder::enable();
        const double on_rate = trial_rate();
        TraceRecorder::disable();
        TraceRecorder::clear();
        PerfSuite suite;
        suite.name = "trace_overhead";
        suite.metric =
            "batched racing-trial rate with the flight recorder "
            "enabled over the rate with it disabled";
        suite.unit = "x";
        suite.value = off_rate > 0 ? on_rate / off_rate : 1.0;
        suite.iterations = 1;
        suite.normalize = false;
        suite.tolerance = kRatioTolerance;
        suites.push_back(suite);
    }

    if (wanted("fig08_quick_wall")) {
        note("fig08_quick_wall");
        suites.push_back(scenarioWallSuite(
            "fig08_quick_wall", "fig08_granularity_add", 0,
            options.seed));
    }
    if (wanted("fig10_quick_wall")) {
        note("fig10_quick_wall");
        suites.push_back(scenarioWallSuite(
            "fig10_quick_wall", "fig10_reorder_distribution",
            options.quick ? 6 : 24, options.seed));
    }

    if (wanted("channel_symbol_rate")) {
        note("channel_symbol_rate");
        MachinePool pool(machineConfigForProfile("default"));
        ParamSet overrides;
        overrides.set("ecc", "none");
        overrides.set("frame_bits", "8");
        Channel channel(ChannelRegistry::instance().makeConfig(
            "ook_arith", overrides));
        std::vector<bool> payload;
        for (int i = 0; i < 8; ++i)
            payload.push_back(i % 2 == 0);
        // The default channel path: lockstep batching over a pooled
        // machine, prepare() folded into the batch base state. One
        // group of identical payloads per measurement batch — the
        // leader simulates, the rest replay.
        BatchRunner batch(pool, [&](Machine &machine) {
            channel.prepare(machine);
        });
        const std::vector<std::vector<bool>> payloads(32, payload);
        PerfSuite suite = measureRate(
            "channel_symbol_rate",
            "covert-channel symbols per second (ook_arith, uncoded "
            "8-bit frames, lockstep batched width 32)",
            budget, [&]() {
                long long symbols = 0;
                for (const ChannelStats &stats :
                     channel.runBatched(batch, payloads)) {
                    symbols +=
                        static_cast<long long>(stats.symbolsSent);
                }
                return symbols;
            });
        suite.tolerance = kBatchTolerance;
        suites.push_back(suite);
    }

    if (wanted("channel_frame_path")) {
        note("channel_frame_path");
        Machine machine(machineConfigForProfile("plru"));
        ParamSet overrides;
        overrides.set("frame_bits", "16");
        Channel channel(ChannelRegistry::instance().makeConfig(
            "rs2_plru_pa", overrides));
        channel.prepare(machine);
        std::vector<bool> payload;
        for (int i = 0; i < 16; ++i)
            payload.push_back(i % 3 == 0);
        suites.push_back(measureRate(
            "channel_frame_path",
            "end-to-end framed transmissions per second "
            "(rs2_plru_pa, Hamming(7,4), preamble sync)",
            budget, [&]() {
                long long frames = 0;
                for (int i = 0; i < 4; ++i)
                    frames += channel.run(machine, payload).framesSent;
                return frames;
            }));
    }

    if (wanted("sweep_points")) {
        note("sweep_points");
        SweepOptions sweep;
        sweep.gadget = "arith_magnifier";
        sweep.trials = 1;
        sweep.seed = options.seed;
        sweep.grid.push_back(
            parseSweepAxis(options.quick ? "stages=200:400:100"
                                         : "stages=200:800:100"));
        const int points =
            static_cast<int>(sweep.grid.front().values.size());
        suites.push_back(measureRate(
            "sweep_points", "sweep grid points per second", budget,
            [&]() {
                runSweep(sweep);
                return points;
            }));
    }

    if (wanted("analyze_capacity")) {
        note("analyze_capacity");
        // The full QIF pipeline per iteration: priming leases,
        // record, trace fold through the reference interpreter, and
        // the observer-equivalence partition.
        suites.push_back(measureRate(
            "analyze_capacity",
            "gadget capacity analyses per second (repetition, "
            "record + fold + partition)",
            budget, [&]() {
                const CapacityReport report =
                    analyzeGadgetCapacity("repetition", "default", {});
                fatalIf(report.status != "ok",
                        "analyze_capacity: " + report.status);
                return 1;
            }));
    }

    return suites;
}

std::string
renderPerfJson(const std::vector<PerfSuite> &suites, bool quick)
{
    // No timestamps: the committed baseline should diff cleanly
    // between regenerations on the same host.
    std::string out = "{\n  \"schema\": \"hr_perf/v1\",\n";
    out += std::string("  \"quick\": ") + (quick ? "true" : "false") +
           ",\n  \"suites\": [\n";
    for (std::size_t i = 0; i < suites.size(); ++i) {
        const PerfSuite &suite = suites[i];
        out += "    {\"name\": \"" + suite.name + "\", \"metric\": \"" +
               suite.metric + "\", \"unit\": \"" + suite.unit +
               "\", \"value\": " + jsonNum(suite.value) +
               ", \"wall_s\": " + jsonNum(suite.wallSeconds) +
               ", \"iters\": " + std::to_string(suite.iterations) +
               ", \"higher_is_better\": " +
               (suite.higherIsBetter ? "true" : "false") +
               ", \"normalize\": " +
               (suite.normalize ? "true" : "false");
        if (suite.tolerance > 0)
            out += ", \"tolerance\": " + jsonNum(suite.tolerance);
        if (!suite.batching.empty())
            out += ", \"batching\": \"" + suite.batching + "\"";
        out += "}";
        out += i + 1 < suites.size() ? ",\n" : "\n";
    }
    // Registry snapshot of the run that produced these numbers.
    // Placed after the suites array: parsePerfBaseline stops at the
    // array's closing bracket, so committed baselines stay parseable.
    out += "  ],\n  \"metrics\": " +
           renderMetricsJson(metrics().snapshot()) + "\n}\n";
    return out;
}

std::vector<PerfBaselineEntry>
parsePerfBaseline(const std::string &json)
{
    const auto suites_pos = json.find("\"suites\"");
    fatalIf(suites_pos == std::string::npos,
            "perf baseline: no \"suites\" array");
    const auto array_pos = json.find('[', suites_pos);
    fatalIf(array_pos == std::string::npos,
            "perf baseline: malformed suites array");

    auto string_field = [](const std::string &obj, const char *key) {
        const auto key_pos = obj.find(std::string("\"") + key + "\"");
        if (key_pos == std::string::npos)
            return std::string();
        const auto open = obj.find('"', obj.find(':', key_pos));
        const auto close = obj.find('"', open + 1);
        if (open == std::string::npos || close == std::string::npos)
            return std::string();
        return obj.substr(open + 1, close - open - 1);
    };
    auto number_field = [](const std::string &obj, const char *key,
                           double fallback) {
        const auto key_pos = obj.find(std::string("\"") + key + "\"");
        if (key_pos == std::string::npos)
            return fallback;
        const auto colon = obj.find(':', key_pos);
        if (colon == std::string::npos)
            return fallback;
        return std::strtod(obj.c_str() + colon + 1, nullptr);
    };
    auto bool_field = [](const std::string &obj, const char *key,
                         bool fallback) {
        const auto key_pos = obj.find(std::string("\"") + key + "\"");
        if (key_pos == std::string::npos)
            return fallback;
        const auto colon = obj.find(':', key_pos);
        if (colon == std::string::npos)
            return fallback;
        return obj.find("true", colon) == obj.find_first_not_of(
                   " \t\n", colon + 1);
    };

    std::vector<PerfBaselineEntry> out;
    std::size_t pos = array_pos + 1;
    for (;;) {
        const auto open = json.find('{', pos);
        const auto end = json.find(']', pos);
        if (open == std::string::npos ||
            (end != std::string::npos && end < open)) {
            break;
        }
        const auto close = json.find('}', open);
        fatalIf(close == std::string::npos,
                "perf baseline: unterminated suite object");
        const std::string obj = json.substr(open, close - open + 1);
        PerfBaselineEntry entry;
        entry.name = string_field(obj, "name");
        entry.value = number_field(obj, "value", 0.0);
        entry.higherIsBetter = bool_field(obj, "higher_is_better", true);
        entry.normalize = bool_field(obj, "normalize", false);
        entry.tolerance = number_field(obj, "tolerance", 0.0);
        if (!entry.name.empty())
            out.push_back(std::move(entry));
        pos = close + 1;
    }
    return out;
}

PerfComparison
comparePerf(const std::vector<PerfSuite> &current,
            const std::vector<PerfBaselineEntry> &baseline,
            double tolerance)
{
    auto find_baseline =
        [&](const std::string &name) -> const PerfBaselineEntry * {
        for (const PerfBaselineEntry &entry : baseline)
            if (entry.name == name)
                return &entry;
        return nullptr;
    };
    auto find_current = [&](const std::string &name) -> const PerfSuite * {
        for (const PerfSuite &suite : current)
            if (suite.name == name)
                return &suite;
        return nullptr;
    };

    // Host-speed ratio scales machine-dependent suites so a committed
    // baseline from one host compares meaningfully on another.
    double host_ratio = 1.0;
    const PerfSuite *cur_host = find_current("host_speed");
    const PerfBaselineEntry *base_host = find_baseline("host_speed");
    if (cur_host && base_host && base_host->value > 0)
        host_ratio = cur_host->value / base_host->value;

    PerfComparison result;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "host-speed ratio (current/baseline): %.3f\n",
                  host_ratio);
    result.report += line;

    for (const PerfSuite &suite : current) {
        if (suite.name == "host_speed")
            continue;
        const PerfBaselineEntry *base = find_baseline(suite.name);
        if (!base) {
            result.report +=
                "new   " + suite.name + ": no baseline entry\n";
            continue;
        }
        double expected = base->value;
        if (base->normalize) {
            expected *= suite.higherIsBetter ? host_ratio
                                             : 1.0 / host_ratio;
        }
        // Per-suite override: the current measurement's (it travels
        // with the suite code), else the one recorded in the baseline
        // file, else the global --tolerance.
        const double tol = suite.tolerance > 0 ? suite.tolerance
                           : base->tolerance > 0 ? base->tolerance
                                                 : tolerance;
        const bool failed =
            suite.higherIsBetter
                ? suite.value < expected * (1.0 - tol)
                : suite.value > expected * (1.0 + tol);
        std::snprintf(line, sizeof(line),
                      "%s %s: %.4g %s vs expected %.4g (baseline %.4g, "
                      "tolerance %.0f%%)\n",
                      failed ? "FAIL " : "ok   ", suite.name.c_str(),
                      suite.value, suite.unit.c_str(), expected,
                      base->value, tol * 100.0);
        result.report += line;
        result.passed &= !failed;
    }
    return result;
}

} // namespace hr
