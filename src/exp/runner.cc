#include "exp/runner.hh"

#include <chrono>

#include "obs/metrics.hh"
#include "obs/progress.hh"
#include "obs/trace.hh"
#include "sim/profiles.hh"
#include "util/log.hh"

namespace hr
{

ExperimentRunner::ExperimentRunner(RunOptions options)
    : options_(std::move(options))
{
    fatalIf(options_.jobs < 1, "--jobs must be >= 1");
    fatalIf(options_.trials < 0,
            "--trials must be >= 0 (0 = scenario default)");
    if (!options_.profile.empty())
        fatalIf(!hasMachineProfile(options_.profile),
                "unknown machine profile '" + options_.profile + "'");
}

ResultTable
ExperimentRunner::run(Scenario &scenario)
{
    const int trials =
        options_.trials > 0 ? options_.trials : scenario.defaultTrials();
    const std::string profile = !options_.profile.empty()
                                    ? options_.profile
                                    : scenario.defaultProfile();

    ScenarioContext ctx(trials, options_.jobs, options_.seed, profile,
                        options_.params, options_.progress,
                        options_.batch, options_.group,
                        options_.lockstep);

    Metrics &met = metrics();
    met.runnerScenariosRun.add();
    met.runnerTrialsRequested.add(static_cast<std::uint64_t>(trials));
    met.runnerJobsConfigured.set(
        static_cast<std::uint64_t>(options_.jobs));

    // The verbose "batching" summary is the delta of the batch.*
    // registry counters over this run, so it covers every BatchRunner
    // — including Channel::runBatched's private one, whose Stats
    // object the channel scenarios drop.
    BatchRunner::Stats tiers0;
    tiers0.trials = met.batchTrials.value();
    tiers0.leaders = met.batchLeaders.value();
    tiers0.replayed = met.batchFollowersReplayed.value();
    tiers0.groupStepped = met.batchFollowersStepped.value();
    tiers0.diverged = met.batchFollowersPeeled.value();
    tiers0.scalar = met.batchFollowersScalar.value();

    ProgressSink &sink = ProgressSink::instance();
    sink.beginTask(scenario.name().c_str(),
                   static_cast<std::uint64_t>(trials), options_.jobs);

    const auto start = std::chrono::steady_clock::now();
    ResultTable result;
    {
        HR_TRACE_SCOPE("runner", "runner.scenario");
        result = scenario.run(ctx);
    }
    const auto stop = std::chrono::steady_clock::now();
    lastWallSeconds_ =
        std::chrono::duration<double>(stop - start).count();

    sink.endTask();

    result.setScenario(scenario.name(), scenario.title(),
                       scenario.paperClaim());
    result.addMeta("profile", profile);
    result.addMeta("trials", std::to_string(trials));
    result.addMeta("seed", std::to_string(options_.seed));
    if (options_.verbose) {
        BatchRunner::Stats tiers;
        tiers.trials = met.batchTrials.value() - tiers0.trials;
        tiers.leaders = met.batchLeaders.value() - tiers0.leaders;
        tiers.replayed =
            met.batchFollowersReplayed.value() - tiers0.replayed;
        tiers.groupStepped =
            met.batchFollowersStepped.value() - tiers0.groupStepped;
        tiers.diverged =
            met.batchFollowersPeeled.value() - tiers0.diverged;
        tiers.scalar =
            met.batchFollowersScalar.value() - tiers0.scalar;
        result.addMeta("batching", tiers.summary());
    }
    return result;
}

} // namespace hr
