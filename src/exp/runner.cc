#include "exp/runner.hh"

#include <chrono>

#include "sim/profiles.hh"
#include "util/log.hh"

namespace hr
{

ExperimentRunner::ExperimentRunner(RunOptions options)
    : options_(std::move(options))
{
    fatalIf(options_.jobs < 1, "--jobs must be >= 1");
    fatalIf(options_.trials < 0,
            "--trials must be >= 0 (0 = scenario default)");
    if (!options_.profile.empty())
        fatalIf(!hasMachineProfile(options_.profile),
                "unknown machine profile '" + options_.profile + "'");
}

ResultTable
ExperimentRunner::run(Scenario &scenario)
{
    const int trials =
        options_.trials > 0 ? options_.trials : scenario.defaultTrials();
    const std::string profile = !options_.profile.empty()
                                    ? options_.profile
                                    : scenario.defaultProfile();

    ScenarioContext ctx(trials, options_.jobs, options_.seed, profile,
                        options_.params, options_.progress,
                        options_.batch, options_.group,
                        options_.lockstep);

    const auto start = std::chrono::steady_clock::now();
    ResultTable result = scenario.run(ctx);
    const auto stop = std::chrono::steady_clock::now();
    lastWallSeconds_ =
        std::chrono::duration<double>(stop - start).count();

    result.setScenario(scenario.name(), scenario.title(),
                       scenario.paperClaim());
    result.addMeta("profile", profile);
    result.addMeta("trials", std::to_string(trials));
    result.addMeta("seed", std::to_string(options_.seed));
    if (options_.verbose)
        result.addMeta("batching", ctx.batchStats().summary());
    return result;
}

} // namespace hr
