#include "exp/machine_pool.hh"

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace hr
{

MachinePool::MachinePool(MachineConfig config, Warmup warmup)
    : config_(std::move(config)), warmup_(std::move(warmup))
{
}

MachinePool::Lease
MachinePool::lease()
{
    std::unique_ptr<Slot> slot;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!idle_.empty()) {
            slot = std::move(idle_.back());
            idle_.pop_back();
        } else {
            ++built_;
        }
    }
    if (slot) {
        HR_TRACE_SCOPE("pool", "pool.restore");
        metrics().poolLeases.add();
        metrics().poolLeasesReused.add();
        slot->machine->restore(slot->base);
        return Lease(*this, std::move(slot));
    }
    // Construct outside the lock so warmups run concurrently.
    HR_TRACE_SCOPE("pool", "pool.build");
    metrics().poolLeases.add();
    metrics().poolMachinesBuilt.add();
    slot = std::make_unique<Slot>();
    slot->machine = std::make_unique<Machine>(config_);
    {
        // All pooled machines share one decode cache (first builder's
        // cache wins a racing first build; DecodeCache is internally
        // thread-safe).
        std::lock_guard<std::mutex> lock(mutex_);
        if (!sharedCache_)
            sharedCache_ = slot->machine->decodeCache();
        else
            slot->machine->shareDecodeCache(sharedCache_);
    }
    if (warmup_)
        warmup_(*slot->machine);
    slot->base = slot->machine->snapshot();
    return Lease(*this, std::move(slot));
}

std::shared_ptr<DecodeCache>
MachinePool::decodeCache() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sharedCache_;
}

MachinePool::Lease::~Lease()
{
    if (!slot_)
        return; // moved-from
    std::lock_guard<std::mutex> lock(pool_->mutex_);
    pool_->idle_.push_back(std::move(slot_));
}

} // namespace hr
