/**
 * @file
 * BatchRunner: SPMD lockstep trial batching over one pooled machine.
 *
 * The pooled trial loop (restore → run trial → read timings) spends
 * almost all of its time re-simulating instruction streams that are
 * identical from trial to trial — only the trial *inputs* (payload
 * bits, measured addresses) differ, and most trials make exactly the
 * same sequence of Machine calls with exactly the same operands.
 *
 * BatchRunner exploits that: it groups trials into batches of
 * Options::width, runs the first trial of each group as a *leader*
 * with Machine::beginRecord capturing every public Machine operation
 * and its result (a TrialTrace), then runs the remaining trials as
 * *followers* under Machine::beginReplay. A follower's trial lambda
 * executes normally, but each Machine call is matched against the
 * recorded trace and answered from it with zero simulation. Because
 * the simulator is deterministic, a follower whose op stream matches
 * the leader's would have computed byte-identical results — so
 * answering from the trace IS the scalar result, just ~100x cheaper.
 *
 * Divergence is safe, not fatal: the moment a follower issues an op
 * that differs from the trace (different branch-direction payload,
 * different probe address, a reseed with a different mix), the
 * Machine transparently restores the base snapshot, re-executes the
 * matched prefix for real, and the trial continues scalar from there.
 * No prefix work is wasted (replayed ops were never simulated), so a
 * fully divergent batch costs the same as the scalar path.
 *
 * Leaders that snapshot/restore or mutate backgrounds mark the trace
 * opaque; followers of an opaque trace run scalar (restore + execute)
 * and remain byte-identical.
 *
 * Restores are elided wherever possible: a clean replay never touches
 * machine state, so only the trial *after* a leader or a diverged
 * follower pays a restore. That elision — not the replay itself — is
 * what pushes the batched trial path past 10x.
 *
 * Between verbatim replay and the scalar last resort sits the
 * group-stepped tier (Options::group, on by default): followers a
 * strict replay cannot serve — per-trial reseeds, noise-dependent
 * traces — are marched down the leader's op skeleton by a
 * MachineGroup, which picks dead-reseed substituted replay or guided
 * real execution per group and peels truly divergent lanes off to
 * scalar mid-group (see sim/machine_group.hh). The full decision
 * ladder per follower is: verbatim replay → group step → scalar.
 *
 * Byte-identity with the scalar path at any batch width, worker
 * count, and tier opt-out is a tested invariant (tests/test_batch.cc,
 * tests/test_machine_group.cc), not a hope.
 */

#ifndef HR_EXP_BATCH_HH
#define HR_EXP_BATCH_HH

#include <cstdint>
#include <functional>
#include <string>

#include "exp/machine_pool.hh"
#include "sim/machine.hh"
#include "sim/machine_group.hh"

namespace hr
{

/** Lockstep leader/follower batching of pooled trials. */
class BatchRunner
{
  public:
    struct Options
    {
        // Constructor instead of a default member initializer: the
        // latter cannot feed BatchRunner's own default argument below
        // (the enclosing class is still incomplete there).
        Options() : width(32), group(true) {}

        /**
         * Trials per lockstep group. Each group pays one fully
         * simulated leader; wider groups amortize it over more
         * followers but re-lead (and re-adapt to drifted inputs)
         * less often.
         */
        int width;

        /**
         * Route followers through the group-stepped tier (substituted
         * replay / guided execution; see sim/machine_group.hh). Off
         * reproduces the strict verbatim-replay-or-diverge ladder
         * (`hr_bench ... --no-group`). Output is byte-identical either
         * way — this is a performance/observability knob.
         */
        bool group;
    };

    struct Stats
    {
        std::uint64_t trials = 0;   //!< total trials executed
        std::uint64_t leaders = 0;  //!< trials simulated as leaders
        std::uint64_t replayed = 0; //!< followers answered from trace
        std::uint64_t groupStepped = 0; //!< group tier: substituted
                                        //!< replay or guided march
        std::uint64_t diverged = 0; //!< followers that fell back mid-trial
        std::uint64_t scalar = 0;   //!< followers of an opaque trace

        /** Merge (for accumulating across runners/sweep rows). */
        void add(const Stats &other);

        /** One-line human rendering ("trials=... leaders=..."). */
        std::string summary() const;
    };

    /** One-time machine preparation folded into the base snapshot. */
    using Setup = std::function<void(Machine &)>;

    /** Per-trial body; must observe results via Machine calls only. */
    using TrialFn = std::function<void(Machine &, std::size_t)>;

    /**
     * Lease one machine from @p pool, apply @p setup (e.g. a channel's
     * prepare step), and snapshot the result as the per-trial base
     * state. The lease is held for the runner's lifetime.
     */
    explicit BatchRunner(MachinePool &pool, Setup setup = {},
                         Options options = Options());

    /**
     * Run @p fn for trial indices [0, count) in lockstep groups.
     * Every trial observes the machine in the base state, exactly as
     * the scalar restore-per-trial loop would. May be called multiple
     * times; groups never span calls.
     */
    void forEach(std::size_t count, const TrialFn &fn);

    /** The leased machine (tests/diagnostics; state is mid-batch). */
    Machine &machine() { return lease_.machine(); }

    /** The base snapshot every trial starts from. */
    const Machine::Snapshot &base() const { return base_; }

    const Stats &stats() const { return stats_; }

    /** The group stepper (lane-level SoA bookkeeping; tests). */
    const MachineGroup &group() const { return group_; }

  private:
    MachinePool::Lease lease_;
    Machine::Snapshot base_;
    Options options_;
    Stats stats_;
    MachineGroup group_;
    bool dirty_ = false; //!< machine state differs from base_
};

} // namespace hr

#endif // HR_EXP_BATCH_HH
