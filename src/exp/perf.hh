/**
 * @file
 * hr_bench's self-profiling suite (`hr_bench perf`).
 *
 * Times representative simulator workloads — raw core throughput, the
 * cache hot path, machine construction vs snapshot/restore, the
 * pooled trial path, quick runs of representative figures, and sweep
 * point throughput — and emits the BENCH_hr_perf.json trajectory file
 * every future PR's performance answers to.
 *
 * Comparison against a committed baseline is cross-machine tolerant:
 * the `host_speed` suite measures a fixed pure-CPU spin, and suites
 * marked `normalize` are scaled by the host-speed ratio before the
 * regression tolerance applies. Ratio suites (unit "x") compare
 * directly.
 */

#ifndef HR_EXP_PERF_HH
#define HR_EXP_PERF_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace hr
{

/** One measured suite. */
struct PerfSuite
{
    std::string name;   ///< stable identifier, e.g. "core_throughput"
    std::string metric; ///< human description of what value measures
    std::string unit;   ///< "/s", "s", or "x" (dimensionless ratio)
    double value = 0;
    double wallSeconds = 0;   ///< total measurement wall time
    long long iterations = 0; ///< work items timed
    bool higherIsBetter = true;
    bool normalize = false; ///< scale by host-speed ratio when comparing

    /**
     * Per-suite regression tolerance (fraction) overriding the global
     * --tolerance when > 0. The batch suites gate tighter than the
     * default 25%: a lockstep-replay regression shows up as a large,
     * low-variance rate drop, so a loose global tolerance would let
     * most of the win erode silently.
     */
    double tolerance = 0;

    /**
     * Batching-tier breakdown (BatchRunner::Stats::summary()) for the
     * suites that exercise the batch path; empty elsewhere. Recorded
     * in BENCH_hr_perf.json so a routing regression (e.g. group-
     * stepped trials silently falling back to scalar) is visible in
     * the committed trajectory even when the rate still passes.
     */
    std::string batching;
};

/** Knobs for one perf run. */
struct PerfOptions
{
    bool quick = false;      ///< CI-sized measurement budgets
    std::uint64_t seed = 1;  ///< seed for workload construction
    std::vector<std::string> only; ///< suite name filter (empty = all)

    /** Progress sink (stderr in table mode; never stdout). */
    std::function<void(const std::string &)> progress;
};

/** Baseline values parsed back out of a BENCH_hr_perf.json. */
struct PerfBaselineEntry
{
    std::string name;
    double value = 0;
    bool higherIsBetter = true;
    bool normalize = false;
    double tolerance = 0; ///< per-suite override recorded in the file
};

/** Outcome of a baseline comparison. */
struct PerfComparison
{
    bool passed = true;
    std::string report; ///< one line per suite
};

/** Run the (optionally filtered) suites. */
std::vector<PerfSuite> runPerfSuites(const PerfOptions &options);

/** Render the BENCH_hr_perf.json document. */
std::string renderPerfJson(const std::vector<PerfSuite> &suites,
                           bool quick);

/**
 * Parse the suites out of a BENCH_hr_perf.json document (the format
 * renderPerfJson writes). fatal()s on documents without a suites
 * array.
 */
std::vector<PerfBaselineEntry>
parsePerfBaseline(const std::string &json);

/**
 * Compare measured suites against a baseline: a suite fails when it
 * is more than `tolerance` (fraction, e.g. 0.25) worse than the
 * host-speed-normalized baseline value. A per-suite tolerance (from
 * the current measurement, else the baseline file) overrides the
 * global one. Suites missing from the baseline are reported but
 * never fail.
 */
PerfComparison comparePerf(const std::vector<PerfSuite> &current,
                           const std::vector<PerfBaselineEntry> &baseline,
                           double tolerance);

} // namespace hr

#endif // HR_EXP_PERF_HH
