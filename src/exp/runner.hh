/**
 * @file
 * ExperimentRunner: executes a Scenario under RunOptions.
 *
 * The runner resolves the trial count, machine profile, and RNG base
 * seed, builds the ScenarioContext (whose parallelMap fans trials out
 * over `jobs` worker threads with deterministic per-trial RNG
 * sub-streams), invokes the scenario, and stamps reproducibility
 * metadata into the ResultTable. Wall-clock time is reported via
 * lastWallSeconds(), never stored in the ResultTable — rendered results
 * are byte-identical across runs and thread counts.
 */

#ifndef HR_EXP_RUNNER_HH
#define HR_EXP_RUNNER_HH

#include <cstdint>
#include <functional>
#include <string>

#include "exp/registry.hh"
#include "exp/scenario.hh"

namespace hr
{

/** User-facing knobs of one experiment execution. */
struct RunOptions
{
    int trials = 0;     ///< 0 = use the scenario's default
    int jobs = 1;       ///< worker threads for trial fan-out
    std::uint64_t seed = 1; ///< RNG base seed
    Format format = Format::Table;
    std::string profile; ///< empty = scenario's default profile
    ParamSet params;     ///< --param key=value overrides

    /**
     * Allow scenarios to lockstep-batch pooled trials at --jobs 1
     * (ScenarioContext::poolMap); results are byte-identical either
     * way. --no-batch clears it.
     */
    bool batch = true;

    /**
     * Route batched followers through the group-stepped tier
     * (sim/machine_group.hh); byte-identical either way. --no-group
     * clears it (leaving the strict replay-or-scalar ladder).
     */
    bool group = true;

    /**
     * Periodic-loop forwarding engine inside the core
     * (CoreConfig::lockstep); byte-identical either way.
     * --no-lockstep clears it.
     */
    bool lockstep = true;

    /**
     * Stamp execution diagnostics — currently the `batching` tier
     * breakdown — into the result's metadata (--verbose). Off by
     * default so rendered output stays byte-identical across batching
     * configurations.
     */
    bool verbose = false;

    /** Progress sink (defaults to stderr in table mode only). */
    std::function<void(const std::string &)> progress;
};

/** Executes scenarios and assembles their reported results. */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(RunOptions options);

    const RunOptions &options() const { return options_; }

    /** Run one scenario to a finished, metadata-stamped ResultTable. */
    ResultTable run(Scenario &scenario);

    /** Wall-clock duration of the last run() call, in seconds. */
    double lastWallSeconds() const { return lastWallSeconds_; }

  private:
    RunOptions options_;
    double lastWallSeconds_ = 0.0;
};

} // namespace hr

#endif // HR_EXP_RUNNER_HH
