/**
 * @file
 * Self-registering scenario registry.
 *
 * Each scenario translation unit registers itself at static-init time
 * via HR_REGISTER_SCENARIO, so the hr_bench driver discovers every
 * compiled-in experiment without a central list. Adding a workload is
 * one new .cc file — no driver edits.
 */

#ifndef HR_EXP_REGISTRY_HH
#define HR_EXP_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "exp/scenario.hh"

namespace hr
{

/** Global name -> Scenario registry (sorted listing). */
class ScenarioRegistry
{
  public:
    static ScenarioRegistry &instance();

    /** Register a scenario (fatal on duplicate names). */
    void add(std::unique_ptr<Scenario> scenario);

    /** Exact-name lookup; nullptr if absent. */
    Scenario *find(const std::string &name) const;

    /**
     * Exact match, else unique prefix match (so `hr_bench run fig04`
     * resolves fig04_plru_eviction). Fatal on no match or an ambiguous
     * prefix, listing the candidates.
     */
    Scenario &resolve(const std::string &name) const;

    /** All scenarios, sorted by name. */
    std::vector<Scenario *> all() const;

  private:
    std::vector<std::unique_ptr<Scenario>> scenarios_;
};

/** Static-init helper used by HR_REGISTER_SCENARIO. */
struct ScenarioRegistrar
{
    explicit ScenarioRegistrar(std::unique_ptr<Scenario> scenario);
};

#define HR_REGISTER_SCENARIO(Type)                                          \
    static ::hr::ScenarioRegistrar hrScenarioRegistrar_##Type{              \
        std::make_unique<Type>()}

} // namespace hr

#endif // HR_EXP_REGISTRY_HH
