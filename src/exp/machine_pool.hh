/**
 * @file
 * MachinePool: reusable Machines restored to a common warmed base
 * snapshot instead of being reconstructed per trial.
 *
 * Construction of a Machine allocates per-set replacement state for
 * every cache level (thousands of sets), which dominates short trials.
 * A pool builds each machine once, applies an optional warmup
 * (cache/predictor training, gadget calibration, background-noise
 * installation via Machine::setBackground), snapshots it, and hands
 * out leases that start from a bit-identical restore of that base
 * state. Because every lease observes exactly the state a fresh
 * warmed machine would, trial results are byte-identical to the
 * construct-per-trial path at any worker count.
 *
 * Multi-context machines are covered in full: the base snapshot spans
 * every hardware context's counters, cache attribution, and jitter
 * streams, and backgrounds registered by the warmup persist across
 * leases (they are machine configuration, not rolled-back state) —
 * so noisy-neighbor trials lease and replay bit-identically.
 *
 * Leases are thread-safe to take from parallelMap workers; a lease
 * must not outlive its pool.
 */

#ifndef HR_EXP_MACHINE_POOL_HH
#define HR_EXP_MACHINE_POOL_HH

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/machine.hh"

namespace hr
{

/** Pool of Machines restored to a shared warmed base snapshot. */
class MachinePool
{
  private:
    struct Slot
    {
        std::unique_ptr<Machine> machine;
        Machine::Snapshot base;
    };

  public:
    using Warmup = std::function<void(Machine &)>;

    explicit MachinePool(MachineConfig config, Warmup warmup = {});

    /** RAII lease: returns the machine to the pool on destruction. */
    class Lease
    {
      public:
        Machine &machine() const { return *slot_->machine; }
        Machine *operator->() const { return slot_->machine.get(); }

        Lease(Lease &&) = default;
        Lease &operator=(Lease &&) = delete;
        ~Lease();

      private:
        friend class MachinePool;
        Lease(MachinePool &pool, std::unique_ptr<Slot> slot)
            : pool_(&pool), slot_(std::move(slot))
        {
        }

        MachinePool *pool_;
        std::unique_ptr<Slot> slot_;
    };

    /**
     * Take a machine in the warmed base state. Reuses an idle pooled
     * machine (restored to the base snapshot) or, when all are leased,
     * constructs and warms a new one.
     */
    Lease lease();

    /** Machines constructed so far (monitoring/tests). */
    std::size_t machinesBuilt() const { return built_; }

    /**
     * The decode cache shared by every pooled machine (null until the
     * first machine is built). All machines in a pool run the same
     * configuration, so they share one cache: a program decoded by any
     * lease is a hit for every other, and identical programs rebuilt
     * per trial alias to one image — which is what lets the lockstep
     * batch replay compare decoded pointers for exact code equality.
     */
    std::shared_ptr<DecodeCache> decodeCache() const;

  private:
    MachineConfig config_;
    Warmup warmup_;
    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Slot>> idle_;
    std::size_t built_ = 0;
    std::shared_ptr<DecodeCache> sharedCache_;
};

} // namespace hr

#endif // HR_EXP_MACHINE_POOL_HH
