/**
 * @file
 * ResultTable: the structured output of one experiment scenario run.
 *
 * Scenarios never print; they return a ResultTable holding tables,
 * series, histograms, headline metrics, and pass/fail checks. The
 * runner's reporter serializes the whole thing in the selected output
 * format, so a scenario renders identically as an ASCII report, a JSON
 * document, or CSV sections. Content is fully deterministic given the
 * scenario inputs — the determinism tests compare rendered output
 * byte-for-byte across thread counts.
 */

#ifndef HR_EXP_RESULT_HH
#define HR_EXP_RESULT_HH

#include <string>
#include <utility>
#include <vector>

#include "util/stats.hh"
#include "util/table.hh"

namespace hr
{

/** Serialization format for experiment output. */
enum class Format
{
    Table, ///< human-readable ASCII report
    Json,  ///< one JSON document
    Csv,   ///< CSV sections with `#`-prefixed headers
};

/** Parse "table" / "json" / "csv" (fatal on anything else). */
Format formatFromName(const std::string &name);
std::string formatName(Format format);

/** A named acceptance check against the paper's claims. */
struct ResultCheck
{
    std::string name;
    bool passed = false;
};

/** A headline scalar, optionally annotated with the paper's value. */
struct ResultMetric
{
    std::string name;
    double value = 0.0;
    std::string paper; ///< e.g. "~0.96", empty if no paper reference
};

/** Structured result of one scenario run. */
class ResultTable
{
  public:
    /** Identity block (set by the runner before the scenario runs). */
    void setScenario(std::string name, std::string title,
                     std::string paper_claim);

    /** Reproducibility metadata (profile, trials, seed, ...). */
    void addMeta(std::string key, std::string value);

    void addTable(std::string title, Table table);
    void addSeries(Series series);
    void addHistogram(std::string title, Histogram histogram);
    void addMetric(std::string name, double value, std::string paper = "");
    void addCheck(std::string name, bool passed);

    /** Free-form commentary (rendered as prose / JSON notes). */
    void addNote(std::string text);

    /** All checks passed (true when there are no checks). */
    bool passed() const;

    const std::string &scenarioName() const { return name_; }
    const std::vector<ResultCheck> &checks() const { return checks_; }
    const std::vector<ResultMetric> &metrics() const { return metrics_; }

    /** Serialize everything in the requested format. */
    std::string render(Format format) const;

  private:
    std::string name_, title_, paperClaim_;
    std::vector<std::pair<std::string, std::string>> meta_;
    std::vector<std::pair<std::string, Table>> tables_;
    std::vector<Series> series_;
    std::vector<std::pair<std::string, Histogram>> histograms_;
    std::vector<ResultMetric> metrics_;
    std::vector<ResultCheck> checks_;
    std::vector<std::string> notes_;

    std::string renderTable() const;
    std::string renderJson() const;
    std::string renderCsv() const;
};

} // namespace hr

#endif // HR_EXP_RESULT_HH
