#include "exp/result.hh"

#include "util/log.hh"

namespace hr
{

Format
formatFromName(const std::string &name)
{
    if (name == "table")
        return Format::Table;
    if (name == "json")
        return Format::Json;
    if (name == "csv")
        return Format::Csv;
    fatal("unknown output format '" + name + "' (table, json, csv)");
}

std::string
formatName(Format format)
{
    switch (format) {
      case Format::Table: return "table";
      case Format::Json: return "json";
      case Format::Csv: return "csv";
    }
    return "?";
}

void
ResultTable::setScenario(std::string name, std::string title,
                         std::string paper_claim)
{
    name_ = std::move(name);
    title_ = std::move(title);
    paperClaim_ = std::move(paper_claim);
}

void
ResultTable::addMeta(std::string key, std::string value)
{
    meta_.emplace_back(std::move(key), std::move(value));
}

void
ResultTable::addTable(std::string title, Table table)
{
    tables_.emplace_back(std::move(title), std::move(table));
}

void
ResultTable::addSeries(Series series)
{
    series_.push_back(std::move(series));
}

void
ResultTable::addHistogram(std::string title, Histogram histogram)
{
    histograms_.emplace_back(std::move(title), std::move(histogram));
}

void
ResultTable::addMetric(std::string name, double value, std::string paper)
{
    metrics_.push_back({std::move(name), value, std::move(paper)});
}

void
ResultTable::addCheck(std::string name, bool passed)
{
    checks_.push_back({std::move(name), passed});
}

void
ResultTable::addNote(std::string text)
{
    notes_.push_back(std::move(text));
}

bool
ResultTable::passed() const
{
    for (const auto &check : checks_)
        if (!check.passed)
            return false;
    return true;
}

std::string
ResultTable::render(Format format) const
{
    switch (format) {
      case Format::Table: return renderTable();
      case Format::Json: return renderJson();
      case Format::Csv: return renderCsv();
    }
    return "";
}

std::string
ResultTable::renderTable() const
{
    std::string out = "== " + title_ + " ==\n";
    if (!paperClaim_.empty())
        out += "paper: " + paperClaim_ + "\n";
    for (const auto &[key, value] : meta_)
        out += key + ": " + value + "\n";
    out += "\n";
    for (const auto &[title, table] : tables_) {
        if (!title.empty())
            out += title + "\n";
        out += table.render() + "\n";
    }
    for (const auto &series : series_)
        out += series.render() + "\n";
    for (const auto &[title, histogram] : histograms_) {
        if (!title.empty())
            out += title + "\n";
        out += histogram.render(40) + "\n";
    }
    for (const auto &metric : metrics_) {
        out += metric.name + ": " + jsonNum(metric.value);
        if (!metric.paper.empty())
            out += " (paper: " + metric.paper + ")";
        out += "\n";
    }
    for (const auto &note : notes_)
        out += "note: " + note + "\n";
    if (!checks_.empty()) {
        out += "\n";
        for (const auto &check : checks_)
            out += std::string(check.passed ? "[ok]   " : "[FAIL] ") +
                   check.name + "\n";
        out += std::string("result: ") +
               (passed() ? "PASS" : "FAIL") + "\n";
    }
    return out;
}

std::string
ResultTable::renderJson() const
{
    std::string out = "{\n";
    out += "  \"scenario\": " + jsonQuote(name_) + ",\n";
    out += "  \"title\": " + jsonQuote(title_) + ",\n";
    out += "  \"paper_claim\": " + jsonQuote(paperClaim_) + ",\n";
    out += "  \"meta\": {";
    for (std::size_t i = 0; i < meta_.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += jsonQuote(meta_[i].first) + ": " + jsonQuote(meta_[i].second);
    }
    out += "},\n";
    out += "  \"tables\": [";
    for (std::size_t i = 0; i < tables_.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += "{\"title\": " + jsonQuote(tables_[i].first) +
               ", \"rows\": " + tables_[i].second.renderJson() + "}";
    }
    out += "],\n";
    out += "  \"series\": [";
    for (std::size_t i = 0; i < series_.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += series_[i].renderJson();
    }
    out += "],\n";
    out += "  \"histograms\": [";
    for (std::size_t i = 0; i < histograms_.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += "{\"title\": " + jsonQuote(histograms_[i].first) +
               ", \"histogram\": " + histograms_[i].second.renderJson() +
               "}";
    }
    out += "],\n";
    out += "  \"metrics\": [";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += "{\"name\": " + jsonQuote(metrics_[i].name) +
               ", \"value\": " + jsonNum(metrics_[i].value) +
               ", \"paper\": " + jsonQuote(metrics_[i].paper) + "}";
    }
    out += "],\n";
    out += "  \"notes\": [";
    for (std::size_t i = 0; i < notes_.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += jsonQuote(notes_[i]);
    }
    out += "],\n";
    out += "  \"checks\": [";
    for (std::size_t i = 0; i < checks_.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += "{\"name\": " + jsonQuote(checks_[i].name) +
               ", \"passed\": " + (checks_[i].passed ? "true" : "false") +
               "}";
    }
    out += "],\n";
    out += std::string("  \"passed\": ") + (passed() ? "true" : "false") +
           "\n}\n";
    return out;
}

std::string
ResultTable::renderCsv() const
{
    std::string out = "# scenario: " + name_ + "\n";
    for (const auto &[key, value] : meta_)
        out += "# " + key + ": " + value + "\n";
    for (const auto &[title, table] : tables_) {
        out += "# table: " + (title.empty() ? "results" : title) + "\n";
        out += table.renderCsv();
    }
    for (const auto &series : series_) {
        out += "# series: " + series.name() + "\n";
        out += series.renderCsv();
    }
    for (const auto &[title, histogram] : histograms_) {
        out += "# histogram: " + title + "\n";
        out += histogram.renderCsv();
    }
    if (!metrics_.empty()) {
        out += "# table: metrics\nmetric,value,paper\n";
        for (const auto &metric : metrics_)
            out += csvQuote(metric.name) + "," + jsonNum(metric.value) +
                   "," + csvQuote(metric.paper) + "\n";
    }
    if (!checks_.empty()) {
        out += "# table: checks\ncheck,passed\n";
        for (const auto &check : checks_)
            out += csvQuote(check.name) + "," +
                   (check.passed ? "true" : "false") + "\n";
    }
    return out;
}

} // namespace hr
