/**
 * @file
 * Parameter sweeps over registered gadgets: run any gadget on any
 * machine profile across a parameter grid and report slow/fast timing
 * and bit accuracy per grid point (`hr_bench sweep`).
 *
 * Grid axes use the syntax
 *
 *     --grid key=v1,v2,v3      explicit value list
 *     --grid key=lo:hi[:step]  inclusive integer range (step default 1)
 *
 * and repeat for a cartesian product, expanded in argument order with
 * the last axis varying fastest. Each grid point runs on a fresh
 * machine and a fresh gadget instance, and the points fan out over the
 * worker pool with deterministic per-point work, so rendered output is
 * byte-identical at any --jobs value.
 */

#ifndef HR_EXP_SWEEP_HH
#define HR_EXP_SWEEP_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/result.hh"
#include "util/params.hh"

namespace hr
{

/** One sweep grid axis: a parameter key and its values. */
struct SweepAxis
{
    std::string key;
    std::vector<std::string> values;
};

/** Parse a --grid argument ("key=v1,v2" or "key=lo:hi[:step]"). */
SweepAxis parseSweepAxis(const std::string &arg);

/** User-facing knobs of one sweep execution. */
struct SweepOptions
{
    std::string gadget;            ///< registry name (or unique prefix)
    std::string channel;           ///< channel registry name (see
                                   ///< runChannelSweep); exclusive
                                   ///< with `gadget`
    std::string profile = "default"; ///< machine profile per point
    int trials = 4;                ///< samples per polarity per point
    int jobs = 1;                  ///< worker threads for point fan-out
    std::uint64_t seed = 1;        ///< base seed (grid-point RNG streams)
    ParamSet params;               ///< fixed gadget parameters
    std::vector<SweepAxis> grid;   ///< cartesian axes (may be empty)

    /**
     * Lockstep-batch grid points at --jobs 1 (see exp/batch.hh);
     * output is byte-identical either way. --no-batch clears it.
     */
    bool batch = true;

    /**
     * Group-stepped batching tier (sim/machine_group.hh): lockstep
     * groups are sized to grid rows (one leader per row, the row's
     * remaining points as lanes). Output is byte-identical either
     * way. --no-group clears it.
     */
    bool group = true;

    /**
     * Periodic-loop forwarding engine in the simulated core; output is
     * byte-identical either way. --no-lockstep clears it.
     */
    bool lockstep = true;

    /** Stamp the batching-tier breakdown into result metadata. */
    bool verbose = false;

    /** Progress sink (stderr in table mode; never stdout). */
    std::function<void(const std::string &)> progress;
};

/**
 * Run the sweep: one row per grid point with slow/fast mean cycles,
 * the magnification delta, and the decoded-bit accuracy. Incompatible
 * gadget/profile combinations and per-point configuration errors are
 * reported in the row's status column instead of aborting the sweep.
 */
ResultTable runSweep(const SweepOptions &options);

/**
 * Sweep a registered covert channel (`hr_bench sweep --channel=NAME`)
 * over the same grid machinery: one row per grid point with raw and
 * effective capacity, BER, sync-failure rate, and the Shannon
 * estimate. `trials` is the number of transmissions accumulated per
 * point; grid/param keys are validated against the channel's
 * documented keys (channel-level + gadget) up front.
 */
ResultTable runChannelSweep(const SweepOptions &options);

} // namespace hr

#endif // HR_EXP_SWEEP_HH
