#include "channel/channel_registry.hh"

#include <algorithm>

#include "gadgets/gadget_registry.hh"
#include "util/log.hh"

namespace hr
{

namespace
{

/** The channel-level keys every channel accepts (see the header). */
const char *const kChannelKeys =
    "frame_bits,ecc,repeat,frames,calib_rounds,noise,noise_lines,"
    "noise_unroll";

bool
isNoiseKey(const std::string &key)
{
    return key == "noise_lines" || key == "noise_unroll";
}

} // namespace

ChannelRegistry &
ChannelRegistry::instance()
{
    static ChannelRegistry registry;
    // Builtin channels are registered by an explicit call (not static
    // initializers) so a static-archive link cannot drop them.
    static const bool builtins_registered = [] {
        registerBuiltinChannels(registry);
        return true;
    }();
    (void)builtins_registered;
    return registry;
}

void
ChannelRegistry::add(ChannelInfo info)
{
    fatalIf(info.name.empty(), "ChannelRegistry: empty channel name");
    fatalIf(!info.defaults, "ChannelRegistry: channel '" + info.name +
                                "' has no defaults factory");
    fatalIf(find(info.name) != nullptr,
            "ChannelRegistry: duplicate channel '" + info.name + "'");
    channels_.push_back(std::move(info));
}

const ChannelInfo *
ChannelRegistry::find(const std::string &name) const
{
    for (const ChannelInfo &channel : channels_)
        if (channel.name == name)
            return &channel;
    return nullptr;
}

const ChannelInfo &
ChannelRegistry::resolve(const std::string &name) const
{
    if (const ChannelInfo *exact = find(name))
        return *exact;
    std::vector<const ChannelInfo *> matches;
    for (const ChannelInfo &channel : channels_)
        if (channel.name.rfind(name, 0) == 0)
            matches.push_back(&channel);
    if (matches.size() == 1)
        return *matches.front();
    std::string known;
    std::vector<std::string> names;
    for (const ChannelInfo *channel :
         matches.empty() ? all() : matches) {
        known += (known.empty() ? "" : ", ") + channel->name;
        names.push_back(channel->name);
    }
    if (matches.empty()) {
        const std::string suggestion = closestMatch(name, names);
        fatal("unknown channel '" + name + "'" +
              (suggestion.empty()
                   ? ""
                   : " (did you mean '" + suggestion + "'?)") +
              " (known: " + known + ")");
    }
    fatal("ambiguous channel prefix '" + name + "' (matches: " + known +
          ")");
}

std::vector<std::string>
ChannelRegistry::paramKeys(const ChannelInfo &info)
{
    std::vector<std::string> keys;
    std::size_t start = 0;
    while (start <= info.params.size()) {
        const auto comma = info.params.find(',', start);
        const std::string key = info.params.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        if (!key.empty())
            keys.push_back(key);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return keys;
}

ChannelConfig
ChannelRegistry::makeConfig(const std::string &name,
                            const ParamSet &params) const
{
    const ChannelInfo &info = resolve(name);
    params.requireKeys(paramKeys(info), "channel '" + info.name + "'");
    ChannelConfig config = info.defaults();
    for (const auto &[key, value] : params.entries()) {
        if (key == "frame_bits") {
            config.frame.payloadBits =
                static_cast<int>(params.getInt(key, 0));
        } else if (key == "ecc") {
            config.frame.ecc = eccFromName(value);
        } else if (key == "repeat") {
            config.frame.repeat =
                static_cast<int>(params.getInt(key, 0));
        } else if (key == "frames") {
            config.frames = static_cast<int>(params.getInt(key, 0));
        } else if (key == "calib_rounds") {
            config.calibrationRounds =
                static_cast<int>(params.getInt(key, 0));
        } else if (key == "noise") {
            config.noise = value;
        } else if (isNoiseKey(key)) {
            config.noiseParams.set(key, value);
        } else {
            config.gadgetParams.set(key, value);
        }
    }
    return config;
}

std::vector<const ChannelInfo *>
ChannelRegistry::all() const
{
    std::vector<const ChannelInfo *> out;
    out.reserve(channels_.size());
    for (const ChannelInfo &channel : channels_)
        out.push_back(&channel);
    std::sort(out.begin(), out.end(),
              [](const ChannelInfo *a, const ChannelInfo *b) {
                  return a->name < b->name;
              });
    return out;
}

void
registerBuiltinChannels(ChannelRegistry &registry)
{
    auto add = [&](std::string name, std::string gadget,
                   Modulation modulation, std::string description,
                   ParamSet gadget_defaults = {}) {
        const GadgetInfo &info =
            GadgetRegistry::instance().resolve(gadget);
        ChannelInfo channel;
        channel.name = std::move(name);
        channel.gadget = info.name;
        channel.modulation = modulationName(modulation);
        channel.params = std::string(kChannelKeys) +
                         (info.params.empty() ? "" : "," + info.params);
        channel.description = std::move(description);
        const std::string gadget_name = info.name;
        channel.defaults = [gadget_name, modulation, gadget_defaults] {
            ChannelConfig config;
            config.gadget = gadget_name;
            config.modulation = modulation;
            config.gadgetParams = gadget_defaults;
            return config;
        };
        registry.add(std::move(channel));
    };

    ParamSet arbitrary_fit; // fits both the 4-way and 8-way L1s
    arbitrary_fit.set("seq_len", "3");
    arbitrary_fit.set("par_len", "3");

    add("ook_pa_race", "pa_race", Modulation::Ook,
        "on/off keying through the transient P/A race (any profile)");
    add("ook_reorder_race", "reorder_race", Modulation::Ook,
        "on/off keying through the reorder race + PLRU readout");
    add("ook_repetition", "repetition", Modulation::Ook,
        "on/off keying through the racing flush+reload repetition "
        "stack");
    add("ook_arith", "arith_magnifier", Modulation::Ook,
        "on/off keying through the arithmetic-only divider magnifier");
    add("ook_hacky_timer", "hacky_timer", Modulation::Ook,
        "on/off keying read with the paper's composed stealthy timer");
    add("ook_hacky_pipeline", "hacky_pipeline", Modulation::Ook,
        "on/off keying through the full race -> magnifier -> coarse "
        "clock stack");
    add("ook_smt_contention", "smt_contention", Modulation::Ook,
        "on/off keying timed by sibling-context counting progress "
        "(needs an smt profile)");
    add("ook_l1_contention", "l1_contention", Modulation::Ook,
        "on/off keying read as sibling-context attributed L1 misses "
        "(needs an smt profile)");
    add("ook_coarse_timer", "coarse_timer", Modulation::Ook,
        "the baseline: on/off keying against the bare 5 us browser "
        "clock (expected BER ~0.5)");
    add("rs2_plru_pa", "plru_pa_magnifier", Modulation::Rs2,
        "2-ary replacement-state symbols through the W=4 tree-PLRU "
        "P/A magnifier");
    add("rs2_plru_reorder", "plru_reorder_magnifier", Modulation::Rs2,
        "2-ary replacement-state symbols through the order-encoded "
        "tree-PLRU magnifier");
    add("rs2_plru_pin", "plru_pin_magnifier", Modulation::Rs2,
        "2-ary replacement-state symbols through the search-derived "
        "pin-pattern magnifier");
    add("rs2_arbitrary", "arbitrary_magnifier", Modulation::Rs2,
        "2-ary replacement-state symbols through the "
        "policy-agnostic chain-reaction magnifier", arbitrary_fit);
}

} // namespace hr
