#include "channel/channel.hh"

#include <algorithm>
#include <cmath>

#include "exp/batch.hh"
#include "gadgets/gadget_registry.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/noise.hh"
#include "util/log.hh"

namespace hr
{

namespace
{

/** xlog2x with the information-theoretic 0 log 0 = 0 convention. */
double
entropyTerm(double p)
{
    return p > 0 ? -p * std::log2(p) : 0.0;
}

} // namespace

void
ChannelStats::accumulate(const ChannelStats &other)
{
    framesSent += other.framesSent;
    framesSynced += other.framesSynced;
    symbolsSent += other.symbolsSent;
    symbolErrors += other.symbolErrors;
    payloadBitsSent += other.payloadBitsSent;
    payloadBitsSynced += other.payloadBitsSynced;
    payloadErrors += other.payloadErrors;
    for (int s = 0; s < 2; ++s)
        for (int d = 0; d < 2; ++d)
            confusion[s][d] += other.confusion[s][d];
    cycles += other.cycles;
    seconds += other.seconds;
}

double
ChannelStats::rawBitsPerSec() const
{
    return seconds > 0 ? symbolsSent / seconds : 0.0;
}

double
ChannelStats::effectiveBitsPerSec() const
{
    if (seconds <= 0)
        return 0.0;
    const int good = payloadBitsSynced - payloadErrors;
    return good > 0 ? good / seconds : 0.0;
}

double
ChannelStats::ber() const
{
    if (payloadBitsSynced > 0)
        return static_cast<double>(payloadErrors) / payloadBitsSynced;
    // A transmission that never synced delivered nothing: count it as
    // total loss rather than a spuriously clean 0.
    return framesSent > 0 ? 1.0 : 0.0;
}

double
ChannelStats::symbolErrorRate() const
{
    return symbolsSent > 0
               ? static_cast<double>(symbolErrors) / symbolsSent
               : 0.0;
}

double
ChannelStats::syncFailureRate() const
{
    return framesSent > 0
               ? 1.0 - static_cast<double>(framesSynced) / framesSent
               : 0.0;
}

double
ChannelStats::shannonBitsPerSymbol() const
{
    double total = 0;
    for (int s = 0; s < 2; ++s)
        for (int d = 0; d < 2; ++d)
            total += static_cast<double>(confusion[s][d]);
    if (total <= 0)
        return 0.0;
    // I(X;Y) = H(Y) - H(Y|X) over the empirical joint distribution.
    double h_y = 0, h_y_given_x = 0;
    for (int d = 0; d < 2; ++d) {
        const double p_y =
            static_cast<double>(confusion[0][d] + confusion[1][d]) /
            total;
        h_y += entropyTerm(p_y);
    }
    for (int s = 0; s < 2; ++s) {
        const double n_x =
            static_cast<double>(confusion[s][0] + confusion[s][1]);
        if (n_x <= 0)
            continue;
        double h = 0;
        for (int d = 0; d < 2; ++d)
            h += entropyTerm(static_cast<double>(confusion[s][d]) / n_x);
        h_y_given_x += n_x / total * h;
    }
    const double mi = h_y - h_y_given_x;
    return mi > 0 ? mi : 0.0;
}

double
ChannelStats::shannonBitsPerSec() const
{
    return seconds > 0 ? shannonBitsPerSymbol() * symbolsSent / seconds
                       : 0.0;
}

Channel::Channel(ChannelConfig config)
    : config_(std::move(config)),
      modulator_(GadgetRegistry::instance().make(config_.gadget,
                                                 config_.gadgetParams),
                 config_.modulation)
{
    fatalIf(config_.frames < 1, "channel: frames must be >= 1");
    fatalIf(config_.calibrationRounds < 1,
            "channel: calibration rounds must be >= 1");
    (void)frameChannelBits(config_.frame); // validate framing knobs
    (void)noiseWorkload(config_.noise);    // validate the noise name
}

bool
Channel::compatible(const Machine &machine) const
{
    if (config_.noise != "idle" && machine.contexts() < 2)
        return false;
    return modulator_.compatible(machine);
}

void
Channel::prepare(Machine &machine)
{
    if (machine.contexts() >= 2 && config_.noise != "idle") {
        // The neighbor co-runs inside every symbol's machine run, so
        // calibration below sees the same contention transmission
        // will. "idle" leaves any caller-installed background alone
        // (the detector scenario pairs a channel with its own benign
        // sibling workload) instead of clearing context 1.
        installNoise(machine, 1, config_.noise, config_.noiseParams);
    }
    demod_.calibrate(machine, modulator_, config_.calibrationRounds);
}

ChannelStats
Channel::run(Machine &machine, const std::vector<bool> &payload)
{
    HR_TRACE_SCOPE("channel", "channel.run");
    fatalIf(!demod_.calibrated(), "channel: run before prepare");
    const int frame_payload = config_.frame.payloadBits;
    const int frames =
        payload.empty()
            ? 1
            : static_cast<int>((payload.size() +
                                static_cast<std::size_t>(frame_payload) -
                                1) /
                               static_cast<std::size_t>(frame_payload));

    ChannelStats stats;
    std::vector<bool> sent_payload;   // zero-padded to whole frames
    std::vector<bool> received_bits;  // the demodulated symbol stream
    const Cycle t0 = machine.now();
    for (int frame = 0; frame < frames; ++frame) {
        std::vector<bool> chunk(static_cast<std::size_t>(frame_payload),
                                false);
        for (int i = 0; i < frame_payload; ++i) {
            const std::size_t index = static_cast<std::size_t>(
                frame * frame_payload + i);
            if (index < payload.size())
                chunk[static_cast<std::size_t>(i)] = payload[index];
        }
        sent_payload.insert(sent_payload.end(), chunk.begin(),
                            chunk.end());

        // Transmit the frame symbol by symbol; the demodulator's
        // hard decisions are all the receiver keeps.
        for (bool bit : encodeFrame(config_.frame, chunk)) {
            const SymbolReading symbol =
                modulator_.transmit(machine, bit);
            const bool decoded = demod_.decide(symbol.reading);
            received_bits.push_back(decoded);
            ++stats.symbolsSent;
            stats.symbolErrors += decoded != bit ? 1 : 0;
            ++stats.confusion[bit ? 1 : 0][decoded ? 1 : 0];
        }
    }
    stats.cycles = machine.now() - t0;
    stats.seconds = machine.toNs(stats.cycles) / 1e9;

    // Receiver side: re-sync on each preamble and error-correct. The
    // scan may skip a frame whose preamble was destroyed and lock
    // onto the *next* frame, so the decoded payload is compared
    // against the frame the preamble position actually belongs to,
    // not the loop index — a resynced frame that arrived intact must
    // not be scored against its lost predecessor's bits.
    const std::size_t frame_len =
        static_cast<std::size_t>(frameChannelBits(config_.frame));
    std::size_t pos = 0;
    for (int frame = 0; frame < frames; ++frame) {
        stats.framesSent += 1;
        stats.payloadBitsSent += frame_payload;
        const FrameDecode decode =
            decodeFrame(config_.frame, received_bits, pos);
        pos = decode.nextPos;
        if (!decode.synced) {
            HR_TRACE_INSTANT1("channel", "channel.frame_sync_lost",
                              "frame", frame);
            continue;
        }
        HR_TRACE_INSTANT1("channel", "channel.frame_synced", "frame",
                          frame);
        const int src_frame = std::min(
            frames - 1, static_cast<int>(decode.syncPos / frame_len));
        stats.framesSynced += 1;
        stats.payloadBitsSynced += frame_payload;
        for (int i = 0; i < frame_payload; ++i) {
            const bool sent = sent_payload[static_cast<std::size_t>(
                src_frame * frame_payload + i)];
            stats.payloadErrors +=
                decode.payload[static_cast<std::size_t>(i)] != sent ? 1
                                                                    : 0;
        }
    }

    // Logical channel traffic: the run body executes fully under
    // every execution tier, so these are --jobs/batching invariant.
    Metrics &met = metrics();
    met.channelFramesSent.add(
        static_cast<std::uint64_t>(stats.framesSent));
    met.channelFramesSynced.add(
        static_cast<std::uint64_t>(stats.framesSynced));
    met.channelSymbolsSent.add(
        static_cast<std::uint64_t>(stats.symbolsSent));
    met.channelSymbolErrors.add(
        static_cast<std::uint64_t>(stats.symbolErrors));
    return stats;
}

ChannelStats
Channel::measureSymbols(Machine &machine,
                        const std::vector<bool> &symbols)
{
    fatalIf(!demod_.calibrated(),
            "channel: measureSymbols before prepare");
    ChannelStats stats;
    const Cycle t0 = machine.now();
    for (bool bit : symbols) {
        const SymbolReading symbol = modulator_.transmit(machine, bit);
        const bool decoded = demod_.decide(symbol.reading);
        ++stats.symbolsSent;
        stats.symbolErrors += decoded != bit ? 1 : 0;
        ++stats.confusion[bit ? 1 : 0][decoded ? 1 : 0];
    }
    stats.cycles = machine.now() - t0;
    stats.seconds = machine.toNs(stats.cycles) / 1e9;
    Metrics &met = metrics();
    met.channelSymbolsSent.add(
        static_cast<std::uint64_t>(stats.symbolsSent));
    met.channelSymbolErrors.add(
        static_cast<std::uint64_t>(stats.symbolErrors));
    return stats;
}

std::vector<ChannelStats>
Channel::runBatched(BatchRunner &batch,
                    const std::vector<std::vector<bool>> &payloads)
{
    std::vector<ChannelStats> results(payloads.size());
    batch.forEach(payloads.size(),
                  [&](Machine &machine, std::size_t i) {
                      results[i] = run(machine, payloads[i]);
                  });
    return results;
}

std::vector<ChannelStats>
Channel::runBatched(MachinePool &pool,
                    const std::vector<std::vector<bool>> &payloads)
{
    BatchRunner batch(pool,
                      [this](Machine &machine) { prepare(machine); });
    return runBatched(batch, payloads);
}

} // namespace hr
