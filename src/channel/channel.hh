/**
 * @file
 * End-to-end covert channel: transmitter -> medium -> receiver over
 * any registered TimingSource.
 *
 * A Channel composes the modem layer (channel/modem.hh) and the frame
 * layer (channel/frame.hh) into one driver: payload bits are framed,
 * ECC-coded, modulated one symbol per gadget invocation into the
 * shared microarchitecture, threshold-demodulated, re-synchronized on
 * the frame preambles, and error-corrected back to payload bits. The
 * driver runs on a leased/pooled Machine; on a multi-context machine
 * an optional noise workload (sim/noise.hh) co-runs on a sibling
 * hardware context through the Machine::setBackground / coRun driver,
 * so every symbol is transmitted against live neighbor contention.
 *
 * ChannelStats reports what the gadget actually carries: raw and
 * effective capacity in bits per simulated second, bit-error rate,
 * sync-failure rate, and a Shannon capacity estimate computed from
 * the measured symbol confusion matrix.
 */

#ifndef HR_CHANNEL_CHANNEL_HH
#define HR_CHANNEL_CHANNEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "channel/frame.hh"
#include "channel/modem.hh"
#include "util/params.hh"

namespace hr
{

class BatchRunner;
class MachinePool;

/** Full configuration of one channel instance. */
struct ChannelConfig
{
    std::string gadget;      ///< GadgetRegistry name of the source
    ParamSet gadgetParams;   ///< forwarded to TimingSource::configure
    Modulation modulation = Modulation::Ook;
    FrameConfig frame;
    int frames = 2;          ///< frames per run() transmission
    int calibrationRounds = 2;

    /** Noise workload co-run on context 1 ("idle" = none). */
    std::string noise = "idle";
    ParamSet noiseParams;
};

/** Measured outcome of one (or more accumulated) transmissions. */
struct ChannelStats
{
    int framesSent = 0;
    int framesSynced = 0;
    int symbolsSent = 0;
    int symbolErrors = 0;        ///< demodulated bit != transmitted bit
    int payloadBitsSent = 0;     ///< over all frames
    int payloadBitsSynced = 0;   ///< over frames that synced
    int payloadErrors = 0;       ///< post-ECC errors over synced frames
    std::uint64_t confusion[2][2] = {}; ///< [sent][decoded] symbol counts
    Cycle cycles = 0;            ///< simulated cycles of the transmission
    double seconds = 0;          ///< simulated seconds of the transmission

    void accumulate(const ChannelStats &other);

    /** Channel symbols per simulated second (1 bit each, 2-ary). */
    double rawBitsPerSec() const;

    /** Correctly delivered payload bits per simulated second. */
    double effectiveBitsPerSec() const;

    /** Post-ECC payload BER over synced frames (1.0 if nothing synced). */
    double ber() const;

    /** Pre-ECC channel-symbol error rate. */
    double symbolErrorRate() const;

    /** Fraction of frames whose preamble was never found. */
    double syncFailureRate() const;

    /**
     * Shannon estimate: mutual information (bits/symbol) of the
     * empirical symbol confusion matrix.
     */
    double shannonBitsPerSymbol() const;

    /** shannonBitsPerSymbol scaled to the measured symbol rate. */
    double shannonBitsPerSec() const;
};

/** The end-to-end transmitter/receiver stack. */
class Channel
{
  public:
    /** Builds the modulator from the gadget registry. */
    explicit Channel(ChannelConfig config);

    const ChannelConfig &config() const { return config_; }
    const Modulator &modulator() const { return modulator_; }
    const Demodulator &demodulator() const { return demod_; }

    /** True if the gadget/scheme/noise combination runs on @p machine. */
    bool compatible(const Machine &machine) const;

    /**
     * Install the configured noise neighbor (contexts >= 2) and
     * calibrate the demodulator on @p machine. Call once per leased
     * machine before run().
     */
    void prepare(Machine &machine);

    /**
     * Transmit @p payload — zero-padded to a whole number of frames
     * of config().frame.payloadBits each — and return the measured
     * stats. Requires prepare() on the same machine. config().frames
     * is the conventional payload sizing used by the scenarios and
     * the registry, not a limit.
     */
    ChannelStats run(Machine &machine, const std::vector<bool> &payload);

    /**
     * Transmit @p symbols raw — no framing, preamble, or ECC: one
     * modulator invocation and one hard demodulator decision per
     * symbol, accumulated straight into the confusion matrix.
     * Requires prepare() on the same machine. This is the per-symbol
     * measurement the capacity scenarios compare against the static
     * QIF bound: shannonBitsPerSymbol() of the returned stats is the
     * measured MI of the bare physical channel, the quantity the
     * per-trial bound log2(#observer classes) upper-bounds.
     */
    ChannelStats measureSymbols(Machine &machine,
                                const std::vector<bool> &symbols);

    /**
     * Transmit each payload as one lockstep-batched trial on a pooled
     * machine (see exp/batch.hh): prepare() is applied once as the
     * batch base state, the first payload of each group is simulated
     * in full, and payloads whose transmissions make identical machine
     * op sequences are answered from the recorded trace. Results are
     * byte-identical to preparing a leased machine and calling run()
     * per payload from the restored base. Repeated payloads (the
     * symbol-rate measurement loop, BER trials over a fixed pattern)
     * replay at trace speed; differing payloads diverge at the first
     * differing symbol and finish scalar.
     */
    std::vector<ChannelStats>
    runBatched(BatchRunner &batch,
               const std::vector<std::vector<bool>> &payloads);

    /** Convenience: lease from @p pool, prepare, and batch-transmit. */
    std::vector<ChannelStats>
    runBatched(MachinePool &pool,
               const std::vector<std::vector<bool>> &payloads);

  private:
    ChannelConfig config_;
    Modulator modulator_;
    Demodulator demod_;
};

} // namespace hr

#endif // HR_CHANNEL_CHANNEL_HH
