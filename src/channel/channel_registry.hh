/**
 * @file
 * Self-registering string-keyed covert-channel registry.
 *
 * Mirrors GadgetRegistry / ScenarioRegistry / machineProfiles(): every
 * ready-made channel configuration (gadget + modulation + framing
 * defaults) is constructible by a stable string name, so scenarios and
 * the `hr_bench channels` / `hr_bench sweep --channel` commands select
 * complete transmitter/receiver stacks without compile-time coupling.
 *
 * Channel-level parameter keys (every channel accepts them, on top of
 * its gadget's own keys):
 *
 *   frame_bits    payload bits per frame
 *   ecc           none | repetition | hamming74
 *   repeat        repetition factor (ecc=repetition)
 *   frames        frames per transmission
 *   calib_rounds  demodulator calibration rounds per polarity
 *   noise         idle | pointer_chase | stream_writer (contexts >= 2)
 *   noise_lines   noise working-set size in cache lines
 *   noise_unroll  pointer-chase steps per loop iteration
 *
 * Any other key is forwarded to the gadget's configure() and validated
 * against the gadget's documented parameter list.
 */

#ifndef HR_CHANNEL_CHANNEL_REGISTRY_HH
#define HR_CHANNEL_CHANNEL_REGISTRY_HH

#include <functional>
#include <string>
#include <vector>

#include "channel/channel.hh"

namespace hr
{

/** One registered channel configuration. */
struct ChannelInfo
{
    std::string name;        ///< CLI-stable identifier
    std::string gadget;      ///< underlying GadgetRegistry name
    std::string modulation;  ///< "ook" | "rs2"
    std::string params;      ///< documented parameter keys
    std::string description; ///< one-line human summary
    std::function<ChannelConfig()> defaults; ///< base configuration
};

/** Global name -> channel-configuration registry (sorted listing). */
class ChannelRegistry
{
  public:
    static ChannelRegistry &instance();

    /** Register a channel (fatal on duplicate names). */
    void add(ChannelInfo info);

    /** Exact-name lookup; nullptr if absent. */
    const ChannelInfo *find(const std::string &name) const;

    /**
     * Exact match, else unique prefix match (so `--channel=rs2_plru_pa`
     * and `--channel=ook_pa` resolve). Fatal on no match or an
     * ambiguous prefix, with a nearest-match suggestion.
     */
    const ChannelInfo &resolve(const std::string &name) const;

    /**
     * Build a ChannelConfig by name: the channel's defaults with
     * @p params applied — channel-level keys consumed here, noise_*
     * keys routed to the noise workload, everything else forwarded to
     * the gadget.
     */
    ChannelConfig makeConfig(const std::string &name,
                             const ParamSet &params = {}) const;

    /** All registered channels, sorted by name. */
    std::vector<const ChannelInfo *> all() const;

    /** A channel's documented parameter keys (split from info.params). */
    static std::vector<std::string> paramKeys(const ChannelInfo &info);

  private:
    std::vector<ChannelInfo> channels_;
};

/**
 * Register the built-in channels (one per compatible gadget family).
 * Called exactly once from ChannelRegistry::instance() — an explicit
 * anchor, so a static-archive link can never drop the registrations.
 */
void registerBuiltinChannels(ChannelRegistry &registry);

} // namespace hr

#endif // HR_CHANNEL_CHANNEL_REGISTRY_HH
