/**
 * @file
 * Frame sync + coding layer of the covert channel.
 *
 * Payload bits travel in fixed-size frames: an 8-bit preamble
 * (10101011 — alternating bits ending in a double 1, so it cannot
 * match one symbol period early) followed by the ECC-coded payload
 * chunk. The receiver scans the demodulated bit stream for the
 * preamble, consumes one frame, and error-corrects the payload:
 *
 *   none        raw payload bits (the BER-measurement configuration)
 *   repetition  each bit sent `repeat` times, majority decode
 *   hamming74   Hamming(7,4): 4 data bits per 7 channel bits, any
 *               single-bit error per code word corrected
 *
 * A frame whose preamble cannot be found inside its search window is
 * a sync failure; the receiver skips one frame length and tries the
 * next frame, so one corrupted preamble does not desynchronize the
 * rest of the transmission.
 */

#ifndef HR_CHANNEL_FRAME_HH
#define HR_CHANNEL_FRAME_HH

#include <cstddef>
#include <string>
#include <vector>

namespace hr
{

/** Error-correcting code applied to each frame's payload. */
enum class Ecc
{
    None,
    Repetition,
    Hamming74,
};

/** Parse "none" / "repetition" / "hamming74" (fatal otherwise). */
Ecc eccFromName(const std::string &name);
std::string eccName(Ecc ecc);

/** Framing and coding knobs. */
struct FrameConfig
{
    int payloadBits = 16; ///< data bits per frame
    Ecc ecc = Ecc::Hamming74;
    int repeat = 3;       ///< repetition factor (ecc == Repetition)
};

/** The fixed 8-bit sync preamble (10101011). */
const std::vector<bool> &framePreamble();

/** Coded payload length in channel bits (excluding the preamble). */
int codedBits(const FrameConfig &config);

/** Whole-frame length in channel bits (preamble + coded payload). */
int frameChannelBits(const FrameConfig &config);

/** ECC-encode exactly config.payloadBits payload bits. */
std::vector<bool> eccEncode(const FrameConfig &config,
                            const std::vector<bool> &payload);

/**
 * ECC-decode exactly codedBits(config) channel bits back to
 * config.payloadBits payload bits (hard-decision).
 */
std::vector<bool> eccDecode(const FrameConfig &config,
                            const std::vector<bool> &coded);

/** Preamble + ECC(payload): the channel bits of one frame. */
std::vector<bool> encodeFrame(const FrameConfig &config,
                              const std::vector<bool> &payload);

/** Outcome of consuming one frame from the demodulated stream. */
struct FrameDecode
{
    bool synced = false;
    std::size_t syncPos = 0;    ///< preamble start (valid when synced)
    std::size_t nextPos = 0;    ///< stream position after this frame
    std::vector<bool> payload;  ///< decoded bits (empty on sync loss)
};

/**
 * Scan @p bits for the preamble starting at @p pos (at most one frame
 * length of slack) and decode the frame that follows. On sync failure
 * the receiver advances one frame length so the next frame can still
 * lock on.
 */
FrameDecode decodeFrame(const FrameConfig &config,
                        const std::vector<bool> &bits, std::size_t pos);

} // namespace hr

#endif // HR_CHANNEL_FRAME_HH
