#include "channel/frame.hh"

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/log.hh"

namespace hr
{

namespace
{

/** Validate the knobs every entry point depends on. */
void
checkConfig(const FrameConfig &config)
{
    fatalIf(config.payloadBits < 1, "frame: payload_bits must be >= 1");
    fatalIf(config.ecc == Ecc::Repetition && config.repeat < 1,
            "frame: repetition repeat must be >= 1");
}

/**
 * Hamming(7,4) code word: positions 1..7 hold p1 p2 d1 p3 d2 d3 d4,
 * with each parity bit covering the positions whose index has the
 * corresponding bit set — so the syndrome IS the error position.
 */
void
hammingEncodeBlock(const bool d[4], std::vector<bool> &out)
{
    const bool p1 = d[0] ^ d[1] ^ d[3];
    const bool p2 = d[0] ^ d[2] ^ d[3];
    const bool p3 = d[1] ^ d[2] ^ d[3];
    const bool word[7] = {p1, p2, d[0], p3, d[1], d[2], d[3]};
    for (bool bit : word)
        out.push_back(bit);
}

/** Returns whether the syndrome flipped a bit. */
bool
hammingDecodeBlock(const bool w_in[7], bool d[4])
{
    bool w[7];
    for (int i = 0; i < 7; ++i)
        w[i] = w_in[i];
    const int s1 = (w[0] ^ w[2] ^ w[4] ^ w[6]) ? 1 : 0;
    const int s2 = (w[1] ^ w[2] ^ w[5] ^ w[6]) ? 2 : 0;
    const int s3 = (w[3] ^ w[4] ^ w[5] ^ w[6]) ? 4 : 0;
    const int syndrome = s1 | s2 | s3;
    if (syndrome != 0)
        w[syndrome - 1] = !w[syndrome - 1];
    d[0] = w[2];
    d[1] = w[4];
    d[2] = w[5];
    d[3] = w[6];
    return syndrome != 0;
}

} // namespace

Ecc
eccFromName(const std::string &name)
{
    if (name == "none")
        return Ecc::None;
    if (name == "repetition")
        return Ecc::Repetition;
    if (name == "hamming74")
        return Ecc::Hamming74;
    fatal("unknown ecc '" + name + "' (none, repetition, hamming74)");
}

std::string
eccName(Ecc ecc)
{
    switch (ecc) {
      case Ecc::None: return "none";
      case Ecc::Repetition: return "repetition";
      case Ecc::Hamming74: return "hamming74";
    }
    return "?";
}

const std::vector<bool> &
framePreamble()
{
    static const std::vector<bool> kPreamble = {true,  false, true,
                                                false, true,  false,
                                                true,  true};
    return kPreamble;
}

int
codedBits(const FrameConfig &config)
{
    checkConfig(config);
    switch (config.ecc) {
      case Ecc::None:
        return config.payloadBits;
      case Ecc::Repetition:
        return config.payloadBits * config.repeat;
      case Ecc::Hamming74:
        // Payload padded with zeros to a multiple of 4 data bits.
        return (config.payloadBits + 3) / 4 * 7;
    }
    return config.payloadBits;
}

int
frameChannelBits(const FrameConfig &config)
{
    return static_cast<int>(framePreamble().size()) + codedBits(config);
}

std::vector<bool>
eccEncode(const FrameConfig &config, const std::vector<bool> &payload)
{
    checkConfig(config);
    fatalIf(static_cast<int>(payload.size()) != config.payloadBits,
            "eccEncode: payload must be exactly payload_bits long");
    std::vector<bool> coded;
    coded.reserve(static_cast<std::size_t>(codedBits(config)));
    switch (config.ecc) {
      case Ecc::None:
        coded = payload;
        break;
      case Ecc::Repetition:
        for (bool bit : payload)
            for (int r = 0; r < config.repeat; ++r)
                coded.push_back(bit);
        break;
      case Ecc::Hamming74:
        for (int base = 0; base < config.payloadBits; base += 4) {
            bool d[4] = {false, false, false, false};
            for (int i = 0; i < 4 && base + i < config.payloadBits; ++i)
                d[i] = payload[static_cast<std::size_t>(base + i)];
            hammingEncodeBlock(d, coded);
        }
        break;
    }
    return coded;
}

std::vector<bool>
eccDecode(const FrameConfig &config, const std::vector<bool> &coded)
{
    checkConfig(config);
    fatalIf(static_cast<int>(coded.size()) != codedBits(config),
            "eccDecode: coded length must be exactly codedBits()");
    std::vector<bool> payload;
    payload.reserve(static_cast<std::size_t>(config.payloadBits));
    std::uint64_t corrections = 0;
    switch (config.ecc) {
      case Ecc::None:
        payload = coded;
        break;
      case Ecc::Repetition:
        for (int bit = 0; bit < config.payloadBits; ++bit) {
            int ones = 0;
            for (int r = 0; r < config.repeat; ++r)
                ones += coded[static_cast<std::size_t>(
                            bit * config.repeat + r)]
                            ? 1
                            : 0;
            // The copies disagreed: the majority vote corrected at
            // least one flipped symbol for this payload bit.
            if (ones > 0 && ones < config.repeat)
                ++corrections;
            payload.push_back(2 * ones > config.repeat);
        }
        break;
      case Ecc::Hamming74:
        for (int base = 0; base < config.payloadBits; base += 4) {
            bool w[7];
            const std::size_t word =
                static_cast<std::size_t>(base / 4) * 7;
            for (int i = 0; i < 7; ++i)
                w[i] = coded[word + static_cast<std::size_t>(i)];
            bool d[4];
            if (hammingDecodeBlock(w, d))
                ++corrections;
            for (int i = 0; i < 4 && base + i < config.payloadBits; ++i)
                payload.push_back(d[i]);
        }
        break;
    }
    if (corrections > 0) {
        metrics().channelEccBitsCorrected.add(corrections);
        HR_TRACE_INSTANT1("channel", "channel.ecc_corrected", "bits",
                          corrections);
    }
    return payload;
}

std::vector<bool>
encodeFrame(const FrameConfig &config, const std::vector<bool> &payload)
{
    std::vector<bool> bits = framePreamble();
    const std::vector<bool> coded = eccEncode(config, payload);
    bits.insert(bits.end(), coded.begin(), coded.end());
    return bits;
}

FrameDecode
decodeFrame(const FrameConfig &config, const std::vector<bool> &bits,
            std::size_t pos)
{
    const std::vector<bool> &preamble = framePreamble();
    const std::size_t frame_bits =
        static_cast<std::size_t>(frameChannelBits(config));
    const std::size_t coded =
        static_cast<std::size_t>(codedBits(config));

    FrameDecode out;
    // Scan up to one frame length of slack for the preamble; a match
    // must leave a whole coded payload in the stream.
    const std::size_t last_start =
        pos + frame_bits < bits.size() + 1 ? pos + frame_bits : pos;
    for (std::size_t start = pos; start <= last_start; ++start) {
        if (start + preamble.size() + coded > bits.size())
            break;
        bool match = true;
        for (std::size_t i = 0; i < preamble.size() && match; ++i)
            match = bits[start + i] == preamble[i];
        if (!match)
            continue;
        std::vector<bool> coded_bits(
            bits.begin() +
                static_cast<std::ptrdiff_t>(start + preamble.size()),
            bits.begin() + static_cast<std::ptrdiff_t>(
                               start + preamble.size() + coded));
        out.synced = true;
        out.syncPos = start;
        out.nextPos = start + preamble.size() + coded;
        out.payload = eccDecode(config, coded_bits);
        return out;
    }
    out.synced = false;
    out.nextPos = pos + frame_bits; // skip this frame, try the next
    return out;
}

} // namespace hr
