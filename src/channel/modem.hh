/**
 * @file
 * Modulator/Demodulator: bits <-> gadget invocations over any
 * TimingSource.
 *
 * The paper's gadgets are demonstrated as one-shot timing primitives;
 * their real-world payoff is a communication channel. The modem layer
 * is the symbol level of that channel: a Modulator turns one payload
 * bit into one gadget invocation that leaves the bit in the shared
 * microarchitecture (and produces the receiver's raw observable), and
 * a Demodulator turns the observable back into a bit with a two-point
 * threshold, exactly the way every composed timer in the paper ends.
 *
 * Two modulation schemes to start:
 *
 *   ook  on/off keying through TimingSource::sample — the transmitter
 *        selects the slow (bit = 1) or fast (bit = 0) input state and
 *        the symbol is the source's own reading (ns for clock-backed
 *        sources, progress/miss counts for the contention timers).
 *        Works for every registered gadget.
 *
 *   rs2  2-ary replacement-state symbols through the amplifier hooks —
 *        the transmitter writes the bit directly into cache
 *        replacement state (prepare + forceInput) and the receiver
 *        independently stretches that state into a duration (amplify).
 *        This is the real transmitter/receiver split: the bit lives in
 *        the medium (the shared hierarchy) between the two halves.
 *        Requires an amplifier-role source.
 *
 * Polarity is uniform with the rest of the library: bit == 1 is the
 * state that reads slow.
 */

#ifndef HR_CHANNEL_MODEM_HH
#define HR_CHANNEL_MODEM_HH

#include <memory>
#include <string>

#include "gadgets/timing_source.hh"
#include "timer/calibration.hh"

namespace hr
{

/** How a payload bit becomes a gadget invocation. */
enum class Modulation
{
    Ook, ///< on/off keying via TimingSource::sample
    Rs2, ///< 2-ary replacement-state symbols via the amplifier hooks
};

/** Parse "ook" / "rs2" (fatal on anything else). */
Modulation modulationFromName(const std::string &name);
std::string modulationName(Modulation modulation);

/** The receiver-visible outcome of one transmitted symbol. */
struct SymbolReading
{
    double reading = 0.0; ///< raw observable the demodulator decides on
    Cycle cycles = 0;     ///< simulated cycles the symbol occupied
};

/** Drives one TimingSource as the channel's symbol transmitter. */
class Modulator
{
  public:
    Modulator(std::unique_ptr<TimingSource> source, Modulation scheme);

    const TimingSource &source() const { return *source_; }
    Modulation scheme() const { return scheme_; }

    /** True if the scheme/source pair can run on this machine. */
    bool compatible(const Machine &machine) const;

    /**
     * Transmit one symbol: encode @p bit into the machine and return
     * the receiver's raw observable for it.
     */
    SymbolReading transmit(Machine &machine, bool bit);

  private:
    std::unique_ptr<TimingSource> source_;
    Modulation scheme_;
};

/**
 * Threshold receiver: decides each symbol against a midpoint
 * calibrated from the two known input states. Polarity is learned,
 * not assumed: a source whose bit == 1 state reads consistently
 * *faster* (the transient P/A race, whose probe-hit path is the
 * short one) decodes just as well with the decision inverted.
 * Calibration is lenient — a channel over a source that cannot
 * separate its states at all (the bare coarse_timer) still runs and
 * simply fails to carry data.
 */
class Demodulator
{
  public:
    /**
     * Two-point calibration through @p modulator on @p machine:
     * @p rounds observations per polarity, decided against the
     * midpoint of the per-polarity means.
     */
    void calibrate(Machine &machine, Modulator &modulator, int rounds = 2);

    bool calibrated() const { return calibrated_; }

    /** True iff calibration separated the two states (either sign). */
    bool separable() const
    {
        return calibrated_ &&
               calibration_.fastNs != calibration_.slowNs;
    }

    /** True iff the bit == 1 state reads *below* the threshold. */
    bool inverted() const { return inverted_; }

    /** Decide one symbol observable. */
    bool decide(double reading) const;

    const Calibration &calibration() const { return calibration_; }

  private:
    Calibration calibration_;
    bool inverted_ = false;
    bool calibrated_ = false;
};

} // namespace hr

#endif // HR_CHANNEL_MODEM_HH
