#include "channel/modem.hh"

#include "util/log.hh"

namespace hr
{

Modulation
modulationFromName(const std::string &name)
{
    if (name == "ook")
        return Modulation::Ook;
    if (name == "rs2")
        return Modulation::Rs2;
    fatal("unknown modulation '" + name + "' (ook, rs2)");
}

std::string
modulationName(Modulation modulation)
{
    switch (modulation) {
      case Modulation::Ook: return "ook";
      case Modulation::Rs2: return "rs2";
    }
    return "?";
}

Modulator::Modulator(std::unique_ptr<TimingSource> source,
                     Modulation scheme)
    : source_(std::move(source)), scheme_(scheme)
{
    fatalIf(source_ == nullptr, "Modulator: null timing source");
    fatalIf(scheme_ == Modulation::Rs2 && !source_->isAmplifier(),
            "rs2 modulation needs an amplifier-role source; " +
                source_->name() + " is not one");
}

bool
Modulator::compatible(const Machine &machine) const
{
    if (scheme_ == Modulation::Rs2 && !source_->isAmplifier())
        return false;
    return source_->compatible(machine);
}

SymbolReading
Modulator::transmit(Machine &machine, bool bit)
{
    SymbolReading symbol;
    if (scheme_ == Modulation::Ook) {
        // The source performs one complete encode+measure observation;
        // its own reading (ns or a contention count) is the symbol.
        const TimingSample s = source_->sample(machine, bit);
        symbol.reading = s.ns;
        symbol.cycles = s.cycles;
        return symbol;
    }
    // rs2: the transmitter writes the bit into replacement state, the
    // receiver stretches that state into a duration. Between the two
    // halves the bit exists only in the shared hierarchy (the medium).
    const Cycle t0 = machine.now();
    source_->prepare(machine);
    source_->forceInput(machine, /*slow=*/bit);
    const Cycle amplified = source_->amplify(machine);
    symbol.reading = machine.toNs(amplified);
    symbol.cycles = machine.now() - t0;
    return symbol;
}

void
Demodulator::calibrate(Machine &machine, Modulator &modulator, int rounds)
{
    fatalIf(rounds < 1, "Demodulator: calibration rounds must be >= 1");
    // Lenient on purpose: an inseparable channel (the bare coarse
    // clock) is a valid experiment outcome, reported as symbol noise.
    calibration_ = calibrateThresholdLenient([&](bool slow) {
        double total = 0;
        for (int round = 0; round < rounds; ++round)
            total += modulator.transmit(machine, slow).reading;
        return total / rounds;
    });
    // Learn the polarity instead of assuming slow-means-one: some
    // sources' bit == 1 observation is the consistently *short* one.
    inverted_ = calibration_.slowNs < calibration_.fastNs;
    calibrated_ = true;
}

bool
Demodulator::decide(double reading) const
{
    fatalIf(!calibrated_, "Demodulator: decide before calibrate");
    return calibration_.isSlow(reading) != inverted_;
}

} // namespace hr
