/**
 * @file
 * HackyTimer: the end-to-end stealthy fine-grained timer.
 *
 * Composes the full pipeline of the paper: a transient P/A racing
 * gadget (section 5.1) converts "is the expression slower than the
 * reference path?" into presence/absence of one line; the PLRU
 * magnifier (section 6.1) stretches that into a duration readable with
 * a 5 microsecond browser clock. The only primitives used are loads,
 * arithmetic, a branch, and the coarse timer — exactly the threat
 * model's allowance.
 */

#ifndef HR_GADGETS_HACKY_TIMER_HH
#define HR_GADGETS_HACKY_TIMER_HH

#include <memory>

#include "gadgets/plru_magnifier.hh"
#include "gadgets/racing.hh"
#include "timer/coarse_timer.hh"

namespace hr
{

/** HackyTimer configuration. */
struct HackyTimerConfig
{
    TimerConfig timer;          ///< the coarse clock available
    Opcode refOp = Opcode::Mul; ///< reference path operation
    int refOps = 10;            ///< reference path length (threshold)
    int magnifierRepeats = 0;   ///< 0 = auto from timer resolution
    int plruSet = 3;            ///< L1 set used by the magnifier
    int plruTagBase = 600;      ///< tag space for the magnifier lines
    Addr syncAddr = 0x100'0000;
    Addr trainAddr = 0x320'0000; ///< dummy timed address for training
    int trainRounds = 2;
};

/** Statistics a timer accumulates (for bit-rate style reporting). */
struct HackyTimerStats
{
    std::uint64_t queries = 0;
    Cycle cyclesSpent = 0;
};

/**
 * A one-shot comparator: "did this load take longer than the reference
 * path?" — which, with a suitable refOps, distinguishes an L1 hit from
 * an LLC hit or miss. Requires a machine with a 4-way tree-PLRU L1.
 */
class HackyTimer
{
  public:
    HackyTimer(Machine &machine, const HackyTimerConfig &config);

    const HackyTimerConfig &config() const { return config_; }
    const HackyTimerStats &stats() const { return stats_; }

    /**
     * Calibrate the coarse-time decision threshold by timing the
     * magnifier in both known states (attacker-feasible: they control
     * a scratch line's cache state).
     */
    void calibrate();

    /** Threshold (ns of magnifier time) separating slow from fast. */
    double thresholdNs() const { return thresholdNs_; }

    /**
     * Measure: is loading @p target slower than the reference path?
     * Trains, primes, races, magnifies, and reads the coarse clock.
     * The target line is warmed as a side effect (the measurement
     * loads it), as with any timed reload.
     */
    bool loadIsSlow(Addr target);

    /**
     * Same measurement but for an arbitrary expression baked into its
     * own racing program (trains the new program's branch each call).
     */
    bool exprIsSlow(const TargetExpr &expr);

  private:
    Machine &machine_;
    HackyTimerConfig config_;
    CoarseTimer coarse_;
    PlruMagnifierConfig magConfig_;
    std::unique_ptr<PlruMagnifier> magnifier_;
    std::unique_ptr<TransientPaRace> race_;
    double thresholdNs_ = -1.0;
    HackyTimerStats stats_;

    int autoRepeats() const;
    double magnifyAndTime();
    bool decide(double observed_ns);
};

} // namespace hr

#endif // HR_GADGETS_HACKY_TIMER_HH
