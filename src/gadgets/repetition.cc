#include "gadgets/repetition.hh"

#include "util/log.hh"

namespace hr
{

Cycle
StageBreakdown::total() const
{
    Cycle sum = 0;
    for (Cycle c : cycles)
        sum += c;
    return sum;
}

double
StageBreakdown::percent(std::size_t stage) const
{
    const Cycle sum = total();
    if (sum == 0)
        return 0.0;
    return 100.0 * static_cast<double>(cycles.at(stage)) /
           static_cast<double>(sum);
}

RepetitionGadget::RepetitionGadget(Machine &machine,
                                   std::vector<Stage> stages)
    : machine_(machine), stages_(std::move(stages))
{
    fatalIf(stages_.empty(), "RepetitionGadget: no stages");
}

StageBreakdown
RepetitionGadget::run(int rounds)
{
    StageBreakdown breakdown;
    for (const auto &stage : stages_)
        breakdown.names.push_back(stage.name);
    breakdown.cycles.assign(stages_.size(), 0);

    for (int round = 0; round < rounds; ++round) {
        for (std::size_t s = 0; s < stages_.size(); ++s) {
            if (stages_[s].setup)
                stages_[s].setup(machine_);
            RunResult result = machine_.run(stages_[s].program);
            breakdown.cycles[s] += result.cycles();
        }
    }
    return breakdown;
}

Program
makeConstantTimeStage(const TargetExpr &payload, Opcode ref_op,
                      int ref_ops, Addr sync_addr, const std::string &name)
{
    ProgramBuilder builder(name);
    RegId sync = builder.loadAbsolute(sync_addr);

    SeqBuilder measurement(builder);
    embedExpression(measurement, sync, payload);

    SeqBuilder baseline(builder);
    RegId base = baseline.binopImm(Opcode::And, sync, 0);
    baseline.opChain(ref_op, static_cast<std::size_t>(ref_ops), base, 1);

    builder.appendInterleaved({measurement.take(), baseline.take()});
    builder.halt();
    return builder.take();
}

} // namespace hr
