#include "gadgets/repetition.hh"

#include "util/log.hh"

namespace hr
{

Cycle
StageBreakdown::total() const
{
    Cycle sum = 0;
    for (Cycle c : cycles)
        sum += c;
    return sum;
}

double
StageBreakdown::percent(std::size_t stage) const
{
    const Cycle sum = total();
    if (sum == 0)
        return 0.0;
    return 100.0 * static_cast<double>(cycles.at(stage)) /
           static_cast<double>(sum);
}

RepetitionGadget::RepetitionGadget(Machine &machine,
                                   std::vector<Stage> stages)
    : machine_(machine), stages_(std::move(stages))
{
    fatalIf(stages_.empty(), "RepetitionGadget: no stages");
}

StageBreakdown
RepetitionGadget::run(int rounds)
{
    StageBreakdown breakdown;
    for (const auto &stage : stages_)
        breakdown.names.push_back(stage.name);
    breakdown.cycles.assign(stages_.size(), 0);

    for (int round = 0; round < rounds; ++round) {
        for (std::size_t s = 0; s < stages_.size(); ++s) {
            if (stages_[s].setup)
                stages_[s].setup(machine_);
            RunResult result = machine_.run(stages_[s].program);
            breakdown.cycles[s] += result.cycles();
        }
    }
    return breakdown;
}

RepetitionGadget
makeFlushReloadGadget(Machine &machine, const FlushReloadStages &stages,
                      bool same_addr, bool racing)
{
    const Addr victim_addr =
        same_addr ? stages.probeAddr : stages.otherAddr;

    // Stage 1: evict — flush the probe line (an eviction-set traversal
    // in a browser; modelled by the clflush-like harness primitive so
    // the stage itself has constant cost).
    RepetitionGadget::Stage evict;
    evict.name = "evict";
    {
        ProgramBuilder builder("fr_evict");
        RegId r = builder.movImm(0);
        builder.opChain(Opcode::Add, 40, r, 1); // fixed eviction work
        builder.halt();
        evict.program = builder.take();
    }
    evict.setup = [probe = stages.probeAddr](Machine &m) {
        m.flushLine(probe);
    };

    // Stage 2: load — the victim's access (same or different line).
    RepetitionGadget::Stage load;
    load.name = "load";
    if (racing) {
        load.program = makeConstantTimeStage(
            TargetExpr::loadLatency(victim_addr), Opcode::Add,
            stages.envelopeOps, stages.syncAddr, "fr_load_raced");
        load.setup = [sync = stages.syncAddr](Machine &m) {
            m.flushLine(sync);
        };
    } else {
        ProgramBuilder builder("fr_load");
        builder.loadAbsolute(victim_addr);
        builder.halt();
        load.program = builder.take();
    }

    // Stage 3: reload — the attacker's probe access.
    RepetitionGadget::Stage reload;
    reload.name = "reload";
    {
        ProgramBuilder builder("fr_reload");
        builder.loadAbsolute(stages.probeAddr);
        builder.halt();
        reload.program = builder.take();
    }

    return RepetitionGadget(machine, {std::move(evict), std::move(load),
                                      std::move(reload)});
}

Program
makeConstantTimeStage(const TargetExpr &payload, Opcode ref_op,
                      int ref_ops, Addr sync_addr, const std::string &name)
{
    ProgramBuilder builder(name);
    RegId sync = builder.loadAbsolute(sync_addr);

    SeqBuilder measurement(builder);
    embedExpression(measurement, sync, payload);

    SeqBuilder baseline(builder);
    RegId base = baseline.binopImm(Opcode::And, sync, 0);
    baseline.opChain(ref_op, static_cast<std::size_t>(ref_ops), base, 1);

    builder.appendInterleaved({measurement.take(), baseline.take()});
    builder.halt();
    return builder.take();
}

} // namespace hr
