/**
 * @file
 * Tree-PLRU magnifier gadgets (paper sections 6.1 and 6.2).
 *
 * Both exploit the same property of tree-PLRU (Fig. 3): if the line A
 * is resident (P/A variant) or was inserted before B (reorder variant),
 * a fixed cyclic access pattern misses every other access forever while
 * never evicting A; in the opposite state the pattern quickly reaches
 * all-hits. Repeating the pattern converts a one-shot microarchitectural
 * state difference into an arbitrarily large timing difference.
 */

#ifndef HR_GADGETS_PLRU_MAGNIFIER_HH
#define HR_GADGETS_PLRU_MAGNIFIER_HH

#include <vector>

#include "sim/machine.hh"

namespace hr
{

/** Which magnifier input format is being amplified. */
enum class PlruVariant
{
    PresenceAbsence, ///< section 6.1: pattern (B,C,E,C,D,C)
    Reorder,         ///< section 6.2: pattern (C,E,C,D,C,B)
};

/** Configuration: five distinct lines mapping to one L1 set. */
struct PlruMagnifierConfig
{
    Addr a = 0; ///< the transmitted line ("A" in Fig. 3)
    Addr b = 0;
    Addr c = 0;
    Addr d = 0;
    Addr e = 0;
    int repeats = 500; ///< pattern periods per traversal
};

/** Result of one magnified observation. */
struct MagnifierResult
{
    Cycle cycles = 0;          ///< traversal duration
    std::uint64_t l1Misses = 0; ///< L1 misses during the traversal
};

/**
 * The PLRU magnifier. Requires a 4-way L1 (the paper's W = 4 example;
 * use MachineConfig with a 4-way L1, e.g. plruProfile()). For other
 * associativities see PlruPinPatternFinder.
 */
class PlruMagnifier
{
  public:
    PlruMagnifier(Machine &machine, const PlruMagnifierConfig &config,
                  PlruVariant variant);

    const PlruMagnifierConfig &config() const { return config_; }

    /**
     * Establish the Fig. 3(1) initial state: the set holds {B,C,D,E}
     * with the tree pointing at B; A is staged in L2 (so the racing
     * gadget's access to it resolves quickly and deterministically).
     * Uses instant warm() calls — see buildPrimeProgram() for the
     * attacker-realistic equivalent.
     */
    void prime();

    /** Load-based priming program (what real attacker code runs). */
    Program buildPrimeProgram() const;

    /** Run the access pattern `repeats` times and time it. */
    MagnifierResult traverse();

    /** The per-period access pattern (addresses). */
    std::vector<Addr> pattern() const;

    /**
     * Pick `count` distinct line addresses mapping to L1 set
     * `set_index`, with tags starting at `tag_base`.
     */
    static std::vector<Addr> sameSetLines(const Machine &machine,
                                          int set_index, int count,
                                          int tag_base = 16);

    /** Convenience: build a config from consecutive same-set lines. */
    static PlruMagnifierConfig makeConfig(const Machine &machine,
                                          int set_index, int repeats,
                                          int tag_base = 16);

  private:
    Machine &machine_;
    PlruMagnifierConfig config_;
    PlruVariant variant_;
    Program traverseProgram_;

    void buildTraverseProgram();
};

} // namespace hr

#endif // HR_GADGETS_PLRU_MAGNIFIER_HH
