/**
 * @file
 * Self-registering string-keyed gadget registry.
 *
 * Mirrors ScenarioRegistry and machineProfiles(): every TimingSource
 * is constructible by a stable string name, so scenarios, examples,
 * and the `hr_bench gadgets` / `hr_bench sweep` commands select
 * timing primitives without compile-time coupling to their concrete
 * classes. A new timer variant is one registration away:
 *
 *     HR_REGISTER_GADGET(MySource, "my_source", "amplifier",
 *                        "repeats,set", "what it measures");
 *
 * The library's built-in sources register from an explicitly anchored
 * translation unit (see registerBuiltinSources), so they survive
 * static-archive dead stripping; the macro serves out-of-library
 * extensions (benchmark or test translation units that are anchored
 * by other means).
 */

#ifndef HR_GADGETS_GADGET_REGISTRY_HH
#define HR_GADGETS_GADGET_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gadgets/timing_source.hh"

namespace hr
{

/** One registered gadget. */
struct GadgetInfo
{
    std::string name;        ///< CLI-stable identifier
    std::string kind;        ///< encoder | amplifier | timer | composite
    std::string params;      ///< documented parameter keys
    std::string description; ///< one-line human summary
    std::function<std::unique_ptr<TimingSource>()> factory;
};

/** Global name -> TimingSource factory registry (sorted listing). */
class GadgetRegistry
{
  public:
    static GadgetRegistry &instance();

    /** Register a gadget (fatal on duplicate names). */
    void add(GadgetInfo info);

    /** Exact-name lookup; nullptr if absent. */
    const GadgetInfo *find(const std::string &name) const;

    /**
     * Exact match, else unique prefix match (so `--gadget=arith`
     * resolves arith_magnifier). Fatal on no match or an ambiguous
     * prefix, listing the candidates.
     */
    const GadgetInfo &resolve(const std::string &name) const;

    /**
     * Construct and configure a source by name (exact or unique
     * prefix). @p params are applied via TimingSource::configure.
     */
    std::unique_ptr<TimingSource> make(const std::string &name,
                                       const ParamSet &params = {}) const;

    /** All registered gadgets, sorted by name. */
    std::vector<const GadgetInfo *> all() const;

    /** A gadget's documented parameter keys (split from info.params). */
    static std::vector<std::string> paramKeys(const GadgetInfo &info);

  private:
    std::vector<GadgetInfo> gadgets_;
};

/** Static-init helper used by HR_REGISTER_GADGET. */
struct GadgetRegistrar
{
    GadgetRegistrar(std::string name, std::string kind,
                    std::string params, std::string description,
                    std::function<std::unique_ptr<TimingSource>()> factory);
};

#define HR_REGISTER_GADGET(Type, name, kind, params, description)          \
    static ::hr::GadgetRegistrar hrGadgetRegistrar_##Type{                 \
        name, kind, params, description,                                   \
        [] { return std::unique_ptr<::hr::TimingSource>(                   \
                 std::make_unique<Type>()); }}

} // namespace hr

#endif // HR_GADGETS_GADGET_REGISTRY_HH
