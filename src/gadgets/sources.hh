/**
 * @file
 * Built-in TimingSource adapters and the Pipeline composer.
 *
 * Every gadget class in the library is reachable through the unified
 * TimingSource interface and, by string name, through GadgetRegistry:
 *
 *   pa_race                transient presence/absence racing gadget
 *   reorder_race           non-transient reorder racing gadget
 *   plru_pa_magnifier      W=4 tree-PLRU magnifier, P/A input
 *   plru_reorder_magnifier W=4 tree-PLRU magnifier, reorder input
 *   plru_pin_magnifier     search-derived pin pattern, any 2^k ways
 *   arbitrary_magnifier    replacement-policy-agnostic magnifier
 *   arith_magnifier        arithmetic-only (divider) magnifier
 *   repetition             flush+reload repetition harness
 *   hacky_timer            the paper's composed stealthy timer
 *   coarse_timer           the bare 5 us browser clock (the baseline)
 *   smt_contention         SMT port-pressure progress timer (contexts >= 2)
 *   l1_contention          L1 set-occupancy miss-count timer (contexts >= 2)
 *   hacky_pipeline         Pipeline: pa_race -> plru_pa_magnifier
 *   reorder_pipeline       Pipeline: reorder_race -> plru_reorder_magnifier
 *
 * Only Pipeline is exposed as a concrete class here; everything else
 * is constructed through the registry. Compose your own stacks with
 * Pipeline::then() — any encoder source can feed any amplifier source
 * whose input is a cache line.
 */

#ifndef HR_GADGETS_SOURCES_HH
#define HR_GADGETS_SOURCES_HH

#include <memory>
#include <string>
#include <vector>

#include "gadgets/timing_source.hh"
#include "timer/calibration.hh"
#include "timer/coarse_timer.hh"

namespace hr
{

class GadgetRegistry;

/**
 * A composed attack stack: zero or more encoder stages feeding one
 * final amplifier stage, read with the coarse browser clock — the way
 * the paper stacks racing gadgets, repetition, and magnifiers in
 * Figs. 7-11.
 *
 * Parameters (configure): `rounds` repetition count per observation
 * (accumulates the amplified duration across rounds, the repetition
 * composition of section 7.1); `resolution_ns` / `jitter_ns` for the
 * coarse clock. Remaining parameters are forwarded to every stage.
 */
class Pipeline : public TimingSource
{
  public:
    Pipeline() = default;
    explicit Pipeline(std::string name) : name_(std::move(name)) {}

    /** Append a stage; all but the last must be encoders. */
    Pipeline &then(std::unique_ptr<TimingSource> stage);

    std::string name() const override;
    std::string describe() const override;
    void configure(const ParamSet &params) override;
    bool compatible(const Machine &machine) const override;
    void calibrate(Machine &machine) override;
    TimingSample sample(Machine &machine, bool secret) override;
    std::unique_ptr<TimingSource> clone() const override;

  private:
    std::string name_;
    std::vector<std::unique_ptr<TimingSource>> stages_;
    int rounds_ = 1;
    TimerConfig timerConfig_;
    std::unique_ptr<CoarseTimer> clock_;
    Calibration calibration_;
    bool calibrated_ = false;
    std::uint64_t calibratedSerial_ = 0;

    TimingSource &amplifier() const;
    void ensureClock(Machine &machine);
    double observeNs(Machine &machine, bool present);
};

/**
 * Register the built-in sources above. Called exactly once from
 * GadgetRegistry::instance() — an explicit anchor, so a static-archive
 * link can never drop the registrations.
 */
void registerBuiltinSources(GadgetRegistry &registry);

} // namespace hr

#endif // HR_GADGETS_SOURCES_HH
