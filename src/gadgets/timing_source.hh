/**
 * @file
 * TimingSource: the one interface every timing primitive speaks.
 *
 * The paper's contribution is a *family* of interchangeable gadgets —
 * racing gadgets that encode "was this slower than the reference?"
 * into microarchitectural state, magnifiers that stretch that state
 * into coarse-clock-visible durations, repetition harnesses, and the
 * composed hacky timers. TimingSource gives them a common surface:
 *
 *   - configure(params): apply string-keyed construction overrides
 *     (what GadgetRegistry::make and `hr_bench sweep` feed in);
 *   - calibrate(machine): establish decision thresholds from the two
 *     known input states;
 *   - sample(machine, secret): one complete observation of a secret
 *     bit, returning a TimingSample. The polarity convention is
 *     uniform: secret == true is the state that reads *slow*, so a
 *     working source satisfies sample(m, true) slower than
 *     sample(m, false) and, once calibrated, bit == secret;
 *   - clone(): a fresh instance with the same configuration but no
 *     machine binding or calibration (so clones are independent);
 *   - describe(): one line of human documentation.
 *
 * Sources that can participate in composed attack pipelines
 * additionally implement the encoder/amplifier hooks (see Pipeline in
 * gadgets/sources.hh): an encoder writes the bit into cache state as
 * the presence/absence (or insertion order) of the amplifier's input
 * line(s); an amplifier primes its state, amplifies it into a long
 * duration, and can force either input state for calibration.
 */

#ifndef HR_GADGETS_TIMING_SOURCE_HH
#define HR_GADGETS_TIMING_SOURCE_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/machine.hh"
#include "util/params.hh"

namespace hr
{

/** One observation produced by a TimingSource. */
struct TimingSample
{
    Cycle cycles = 0;  ///< raw duration of the observation
    double ns = 0.0;   ///< duration as the source's clock reports it
    bool bit = false;  ///< decoded secret guess (valid after calibrate)

    /** Source-specific extras, e.g. per-stage cycle breakdowns. */
    std::vector<std::pair<std::string, double>> aux;

    double auxValue(const std::string &key, double def = 0.0) const;
};

/** A sequence of observations (one per transmitted bit). */
using Trace = std::vector<TimingSample>;

/**
 * Fast/slow polarity measurement summary (see measurePolarities):
 * per-trial means of the raw cycle cost and of the source's own
 * reading (ns for clock-based sources, counts for contention timers),
 * plus the decoded-bit accuracy over all 2 x trials samples.
 */
struct PolarityStats
{
    double fastCycles = 0;  ///< mean sample cycles, secret == false
    double slowCycles = 0;  ///< mean sample cycles, secret == true
    double fastReading = 0; ///< mean TimingSample::ns, secret == false
    double slowReading = 0; ///< mean TimingSample::ns, secret == true
    int correct = 0;        ///< samples whose bit matched the secret
    int trials = 0;         ///< trials per polarity

    double
    accuracy() const
    {
        return trials > 0
                   ? static_cast<double>(correct) / (2.0 * trials)
                   : 0.0;
    }
};

class TimingSource;

/**
 * The standard accuracy protocol shared by `hr_bench sweep` and the
 * accuracy scenarios: @p trials rounds of one fast (secret == false)
 * then one slow (secret == true) observation on @p machine, against a
 * source that has already been configured and calibrated.
 */
PolarityStats measurePolarities(TimingSource &source, Machine &machine,
                                int trials);

/** The unified gadget abstraction. */
class TimingSource
{
  public:
    virtual ~TimingSource() = default;

    /** Registry-stable identifier, e.g. "plru_pa_magnifier". */
    virtual std::string name() const = 0;

    /** One-line human description of what this source measures. */
    virtual std::string describe() const = 0;

    /** Apply string-keyed parameter overrides (before first use). */
    virtual void configure(const ParamSet &params) { (void)params; }

    /** True if the source can run on this machine's configuration. */
    virtual bool compatible(const Machine &machine) const
    {
        (void)machine;
        return true;
    }

    /** Establish decision thresholds. Default: nothing to calibrate. */
    virtual void calibrate(Machine &machine) { (void)machine; }

    /** One complete observation of @p secret (true = slow state). */
    virtual TimingSample sample(Machine &machine, bool secret) = 0;

    /**
     * Fresh instance with identical configuration and no shared
     * state: clones calibrate and bind to machines independently.
     */
    virtual std::unique_ptr<TimingSource> clone() const = 0;

    /** Observe a whole bit sequence (one sample per element). */
    Trace trace(Machine &machine, const std::vector<bool> &secrets);

    // ---- pipeline composition hooks -------------------------------
    //
    // Defaults refuse: a source advertises a role by overriding the
    // corresponding is*() predicate together with its hooks. One
    // pipeline observation runs, per round:
    //
    //   encoder.primeEncoder()   (training; may pollute the target)
    //   amplifier.prepare()      (prime the magnifier state)
    //   encoder.transmit()       (the attack run: write the bit)
    //   amplifier.amplify()      (stretch the state, read the clock)
    //
    // The bit travels as the presence/absence (or, for order-encoded
    // amplifiers, primary-before-secondary insertion order) of the
    // amplifier's input line(s): transmit(m, true) makes the primary
    // line present / first.

    /** True if this source can encode a bit into cache state. */
    virtual bool isEncoder() const { return false; }

    /** True if this source can amplify cache state into a duration. */
    virtual bool isAmplifier() const { return false; }

    /**
     * Encoder: target the amplifier's input line(s). @p primary is the
     * line whose presence/order carries the bit; @p secondary is the
     * counterpart line for order-encoded amplifiers (0 if unused).
     */
    virtual void bindTarget(Machine &machine, Addr primary,
                            Addr secondary);

    /**
     * Encoder: per-observation training for the @p present polarity
     * (runs before the amplifier primes, because training may pollute
     * the target line).
     */
    virtual void primeEncoder(Machine &machine, bool present);

    /**
     * Encoder: the attack run. @p present selects the target state to
     * write: primary line present (or inserted first).
     */
    virtual void transmit(Machine &machine, bool present);

    /** Amplifier: prime the magnifier state (before each transmit). */
    virtual void prepare(Machine &machine);

    /** Amplifier: the input line(s) an encoder should target. */
    virtual std::pair<Addr, Addr> inputLines(Machine &machine);

    /** Amplifier: does a *present* (or first-inserted) input read slow? */
    virtual bool presentMeansSlow() const { return true; }

    /** Amplifier: directly force the slow/fast input state. */
    virtual void forceInput(Machine &machine, bool slow);

    /** Amplifier: stretch the current state into a duration. */
    virtual Cycle amplify(Machine &machine);
};

} // namespace hr

#endif // HR_GADGETS_TIMING_SOURCE_HH
