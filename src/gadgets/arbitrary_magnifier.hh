/**
 * @file
 * Arbitrary-replacement-policy magnifier gadget (paper section 6.3).
 *
 * Two racing load paths traverse disjoint groups of L1 sets. PathA also
 * fetches eviction-set lines (PAR) into the sets PathB is about to
 * read. When the paths are aligned, PAR fills land after PathB has
 * already read its (cached) SEQ lines — no interference. When PathB
 * starts late (the magnifier's presence/absence input), PAR evictions
 * land first, PathB misses, falls further behind, and the delay
 * cascades. Self-prefetching (section 6.3.1) restores consumed sets a
 * fixed distance ahead so the chain reaction can run indefinitely over
 * a finite cache.
 *
 * Works for any per-set replacement policy — that is the point.
 */

#ifndef HR_GADGETS_ARBITRARY_MAGNIFIER_HH
#define HR_GADGETS_ARBITRARY_MAGNIFIER_HH

#include "sim/machine.hh"

namespace hr
{

/** Configuration of the arbitrary-replacement magnifier. */
struct ArbitraryMagnifierConfig
{
    int numSets = 32;  ///< N: L1 sets used per iteration (even)
    int seqLen = 6;    ///< SEQ lines per set (three quarters of assoc)
    int parLen = 5;    ///< PAR (evicting) lines per set
    int dist = 22;     ///< prefetch distance in set-steps (even)
    int repeats = 100; ///< full iterations over the N sets
    bool prefetch = true;
    /**
     * Chained 1-cycle ops added to both paths per set-step. These keep
     * the dependence chains — not the background PAR/prefetch miss
     * machinery — on the critical path, so a phase offset between the
     * paths persists instead of self-healing (an attacker calibrates
     * this against the target machine).
     */
    int chainPadOps = 6;
    /**
     * Extra 1-cycle ops chained into PathA only. Skews PathA slightly
     * slower so that, when aligned, PathB drifts toward the safe side
     * of the interference threshold.
     */
    int pathASlackOps = 3;

    Addr syncAddr = 0x100'0000;   ///< synchronizing cold line
    Addr inputAddr = 0x300'0000;  ///< PathB's head: present = aligned
    Addr alignAddrA = 0x310'0000; ///< PathA's head: always present
    int seqTagBase = 64;          ///< tag space for SEQ lines
    int parTagBase = 4096;        ///< tag space for PAR lines
};

/** The magnifier. Requires numSets <= the L1 set count. */
class ArbitraryMagnifier
{
  public:
    ArbitraryMagnifier(Machine &machine,
                       const ArbitraryMagnifierConfig &config);

    const ArbitraryMagnifierConfig &config() const { return config_; }
    const Program &program() const { return program_; }

    /**
     * One magnified observation: primes the initial cache state, sets
     * the input line present or absent, runs the traversal.
     * @return traversal duration in cycles.
     */
    Cycle run(bool input_present);

    /** Cycle delta between absent and present inputs. */
    Cycle measureDelta();

    /** Address of SEQ line k of set-step position s. */
    Addr seqAddr(int set, int k) const;

    /** Establish the initial cache state (PAR staged, SEQ resident). */
    void prime();

    /**
     * Run the traversal over the current cache state (prime() and the
     * input line's presence/absence are the caller's business — this
     * is the amplify step of a composed pipeline).
     */
    Cycle traverse();

  private:
    Machine &machine_;
    ArbitraryMagnifierConfig config_;
    Program program_;
    RegId parBaseReg_ = kNoReg;

    Addr parAddrOffset(int set, int j) const;
    void build();
};

} // namespace hr

#endif // HR_GADGETS_ARBITRARY_MAGNIFIER_HH
