/**
 * @file
 * Search-based generalization of the PLRU magnifier pattern.
 *
 * The paper gives the W = 4 pin pattern (B,C,E,C,D,C) by hand. This
 * module derives such patterns automatically for any power-of-two
 * associativity by breadth-first search over (contents, tree-bits)
 * states: find a cyclic access sequence over the non-pinned lines that
 * (a) never evicts the pinned line, (b) returns the set to its starting
 * state, and (c) misses at least once per period. This supports the
 * paper's argument (section 9) that removing W = 4 PLRU caches "will
 * only cause the attacker to change strategy".
 */

#ifndef HR_GADGETS_PLRU_PATTERN_HH
#define HR_GADGETS_PLRU_PATTERN_HH

#include <optional>
#include <string>
#include <vector>

#include "cache/replacement.hh"

namespace hr
{

/**
 * A miniature one-set PLRU cache model used for searching and for the
 * Fig. 3/4 walkthrough benches. Lines are small integer ids; -1 means
 * an invalid way.
 */
class PlruSetModel
{
  public:
    explicit PlruSetModel(int assoc);

    int assoc() const { return assoc_; }

    /** Access a line: touch on hit, victim-fill on miss.
     * @return true if the access missed. */
    bool access(int line);

    /** True if the line is resident. */
    bool contains(int line) const;

    /** Way holding the line, or -1. */
    int wayOf(int line) const;

    /** Line id the tree currently points at (eviction candidate). */
    int evictionCandidate() const;

    /** Contents by way, e.g. "[A C D B]" with ids mapped to letters. */
    std::string render() const;

    const std::vector<int> &contents() const { return contents_; }
    const std::vector<std::uint8_t> &bits() const { return plru_.bits(); }

    bool operator==(const PlruSetModel &other) const;

  private:
    int assoc_;
    std::vector<int> contents_;
    TreePlruPolicy plru_;
};

/** A discovered pin pattern. */
struct PinPattern
{
    /**
     * Accesses bringing the post-insertion state onto the cycle (may be
     * empty). The W = 4 pattern of Fig. 3 needs no lead-in.
     */
    std::vector<int> leadIn;
    /** Line ids to access, in order, per period (pinned line is id 0). */
    std::vector<int> accesses;
    /** Misses per period while the pinned line is resident. */
    int missesPerPeriod = 0;
};

/**
 * Find a cyclic pin pattern for a W-way tree-PLRU set.
 *
 * Starting state: lines 1..W fill the set in way order, line W gets an
 * extra touch, then line 0 (the pinned line, "A") is inserted — the
 * generalization of Fig. 3(1) -> 3(2).
 *
 * @param assoc    power-of-two associativity (>= 2)
 * @param max_len  maximum period length to search
 * @return a pattern, or nullopt if none exists within max_len.
 */
std::optional<PinPattern> findPinPattern(int assoc, int max_len = 16);

/**
 * Validate a pattern: starting from the canonical post-insertion state,
 * repeating it `periods` times must (a) keep the pinned line resident
 * the whole time with >= 1 miss per period, and (b) starting from the
 * counterpart state where the pinned line is absent, reach a state with
 * zero misses per period.
 */
bool validatePinPattern(int assoc, const PinPattern &pattern,
                        int periods = 50);

} // namespace hr

#endif // HR_GADGETS_PLRU_PATTERN_HH
