#include "gadgets/sources.hh"

#include <utility>

#include "gadgets/arbitrary_magnifier.hh"
#include "gadgets/arith_magnifier.hh"
#include "gadgets/gadget_registry.hh"
#include "gadgets/hacky_timer.hh"
#include "gadgets/plru_magnifier.hh"
#include "gadgets/plru_pattern.hh"
#include "gadgets/racing.hh"
#include "gadgets/repetition.hh"
#include "util/log.hh"

namespace hr
{

namespace
{

/** Parse an opcode parameter ("add", "mul", "div", "lea", "sub"). */
Opcode
opcodeParam(const ParamSet &params, const std::string &key, Opcode def)
{
    const std::string v = params.get(key, "");
    if (v.empty())
        return def;
    if (v == "add")
        return Opcode::Add;
    if (v == "sub")
        return Opcode::Sub;
    if (v == "mul")
        return Opcode::Mul;
    if (v == "div")
        return Opcode::Div;
    if (v == "lea")
        return Opcode::Lea;
    fatal("parameter " + key + ": unknown opcode '" + v +
          "' (use add, sub, mul, div, or lea)");
}

/** Which machine a lazily-bound adapter last built its gadget for. */
struct MachineBinding
{
    Machine *machine = nullptr;
    std::uint64_t serial = 0;

    /** @return true if the binding changed (the caller must rebuild). */
    bool
    rebind(Machine &m)
    {
        if (machine == &m && serial == m.serial())
            return false;
        machine = &m;
        serial = m.serial();
        return true;
    }
};

/** True iff the machine has the paper's 4-way tree-PLRU L1. */
bool
hasPlruL1(const Machine &machine)
{
    const auto &l1 = machine.hierarchy().l1().config();
    return l1.assoc == 4 && l1.policy == PolicyKind::TreePlru;
}

// ---------------------------------------------------------------------
// pa_race: the transient presence/absence racing gadget (section 5.1).
// ---------------------------------------------------------------------

class PaRaceSource final : public TimingSource
{
  public:
    std::string name() const override { return "pa_race"; }

    std::string
    describe() const override
    {
        return "transient P/A race: expression vs reference path, "
               "result encoded as presence of the probe line";
    }

    void
    configure(const ParamSet &params) override
    {
        cfg_.refOp = opcodeParam(params, "ref_op", cfg_.refOp);
        cfg_.refOps =
            static_cast<int>(params.getInt("ref_ops", cfg_.refOps));
        cfg_.targetOp = opcodeParam(params, "op", cfg_.targetOp);
        cfg_.slowOps =
            static_cast<int>(params.getInt("slow_ops", cfg_.slowOps));
        cfg_.fastOps =
            static_cast<int>(params.getInt("fast_ops", cfg_.fastOps));
        cfg_.trainRounds = static_cast<int>(
            params.getInt("train_rounds", cfg_.trainRounds));
        // Reconfiguration invalidates anything built from the old
        // parameters.
        slowRace_.reset();
        fastRace_.reset();
        probeAddr_ = 0;
    }

    TimingSample
    sample(Machine &machine, bool secret) override
    {
        TransientPaRace race(
            machine, raceConfig(0),
            TargetExpr::opChain(cfg_.targetOp,
                                secret ? cfg_.slowOps : cfg_.fastOps));
        const Cycle t0 = machine.now();
        race.train();
        const bool present = race.attackAndProbe();
        TimingSample s;
        s.cycles = machine.now() - t0;
        s.ns = machine.toNs(s.cycles);
        s.bit = present; // present == expression outlasted the baseline
        return s;
    }

    std::unique_ptr<TimingSource>
    clone() const override
    {
        auto copy = std::make_unique<PaRaceSource>();
        copy->cfg_ = cfg_;
        return copy;
    }

    // ---- encoder role ------------------------------------------------
    bool isEncoder() const override { return true; }

    void
    bindTarget(Machine &machine, Addr primary, Addr) override
    {
        if (!binding_.rebind(machine) && primary == probeAddr_ &&
            slowRace_) {
            return;
        }
        probeAddr_ = primary;
        slowRace_ = std::make_unique<TransientPaRace>(
            machine, raceConfig(primary),
            TargetExpr::opChain(cfg_.targetOp, cfg_.slowOps));
        fastRace_ = std::make_unique<TransientPaRace>(
            machine, raceConfig(primary),
            TargetExpr::opChain(cfg_.targetOp, cfg_.fastOps));
    }

    void
    primeEncoder(Machine &, bool present) override
    {
        race(present).train();
    }

    void
    transmit(Machine &, bool present) override
    {
        race(present).runAttack();
    }

  private:
    struct Config
    {
        Opcode refOp = Opcode::Add;
        int refOps = 20;
        Opcode targetOp = Opcode::Add;
        int slowOps = 60;
        int fastOps = 5;
        int trainRounds = 4;
    };

    Config cfg_;
    MachineBinding binding_;
    Addr probeAddr_ = 0;
    std::unique_ptr<TransientPaRace> slowRace_;
    std::unique_ptr<TransientPaRace> fastRace_;

    TransientPaRaceConfig
    raceConfig(Addr probe) const
    {
        TransientPaRaceConfig config;
        if (probe != 0)
            config.probeAddr = probe;
        config.refOp = cfg_.refOp;
        config.refOps = cfg_.refOps;
        config.trainRounds = cfg_.trainRounds;
        return config;
    }

    TransientPaRace &
    race(bool present)
    {
        // present: probe fetched, i.e. the slow expression loses.
        fatalIf(!slowRace_ || !fastRace_,
                "pa_race: transmit before bindTarget");
        return present ? *slowRace_ : *fastRace_;
    }
};

// ---------------------------------------------------------------------
// Amplifier base: shared calibrate/sample over the amplifier hooks.
// ---------------------------------------------------------------------

class AmplifierSourceBase : public TimingSource
{
  public:
    bool isAmplifier() const override { return true; }

    void
    calibrate(Machine &machine) override
    {
        calibration_ = calibrateThreshold(
            [&](bool slow) {
                prepare(machine);
                forceInput(machine, slow);
                return machine.toNs(amplify(machine));
            },
            name() + "::calibrate");
        calibrated_ = true;
        calibratedSerial_ = machine.serial();
    }

    TimingSample
    sample(Machine &machine, bool secret) override
    {
        prepare(machine);
        forceInput(machine, secret);
        TimingSample s;
        s.cycles = amplify(machine);
        s.ns = machine.toNs(s.cycles);
        // The threshold only means something on the machine it was
        // calibrated against; on any other machine the bit reads as
        // uncalibrated (false), never as a stale decode.
        s.bit = isCalibratedFor(machine) && calibration_.isSlow(s.ns);
        return s;
    }

  protected:
    Calibration calibration_;
    bool calibrated_ = false;
    std::uint64_t calibratedSerial_ = 0;

    bool
    isCalibratedFor(const Machine &machine) const
    {
        return calibrated_ && calibratedSerial_ == machine.serial();
    }
};

// ---------------------------------------------------------------------
// plru_pa_magnifier / plru_reorder_magnifier (sections 6.1 / 6.2).
// ---------------------------------------------------------------------

class PlruMagnifierSource : public AmplifierSourceBase
{
  public:
    explicit PlruMagnifierSource(PlruVariant variant) : variant_(variant)
    {
    }

    std::string
    name() const override
    {
        return variant_ == PlruVariant::PresenceAbsence
                   ? "plru_pa_magnifier"
                   : "plru_reorder_magnifier";
    }

    std::string
    describe() const override
    {
        return variant_ == PlruVariant::PresenceAbsence
                   ? "W=4 tree-PLRU magnifier: presence of line A "
                     "pins a miss-per-period traversal"
                   : "W=4 tree-PLRU magnifier: A-before-B insertion "
                     "order pins a miss-per-period traversal";
    }

    void
    configure(const ParamSet &params) override
    {
        cfg_.set = static_cast<int>(params.getInt("set", cfg_.set));
        cfg_.repeats =
            static_cast<int>(params.getInt("repeats", cfg_.repeats));
        cfg_.tagBase =
            static_cast<int>(params.getInt("tag_base", cfg_.tagBase));
        magnifier_.reset();
        calibrated_ = false;
    }

    bool
    compatible(const Machine &machine) const override
    {
        return hasPlruL1(machine) &&
               cfg_.set < machine.hierarchy().l1().config().numSets;
    }

    std::unique_ptr<TimingSource>
    clone() const override
    {
        auto copy = std::make_unique<PlruMagnifierSource>(variant_);
        copy->cfg_ = cfg_;
        return copy;
    }

    // ---- amplifier role ----------------------------------------------
    void
    prepare(Machine &machine) override
    {
        ensure(machine);
        magnifier_->prime();
    }

    std::pair<Addr, Addr>
    inputLines(Machine &machine) override
    {
        ensure(machine);
        return {magnifier_->config().a, magnifier_->config().b};
    }

    void
    forceInput(Machine &machine, bool slow) override
    {
        ensure(machine);
        const auto &config = magnifier_->config();
        if (variant_ == PlruVariant::PresenceAbsence) {
            // Slow: A present (fetched into L1). Fast: A stays in L2.
            if (slow)
                machine.warm(config.a, 1);
            return;
        }
        // Reorder: slow iff A is inserted before B.
        machine.warm(slow ? config.a : config.b, 1);
        machine.warm(slow ? config.b : config.a, 1);
    }

    Cycle
    amplify(Machine &machine) override
    {
        ensure(machine);
        return magnifier_->traverse().cycles;
    }

  private:
    struct Config
    {
        int set = 3;
        int repeats = 500;
        int tagBase = 16;
    };

    PlruVariant variant_;
    Config cfg_;
    MachineBinding binding_;
    std::unique_ptr<PlruMagnifier> magnifier_;

    void
    ensure(Machine &machine)
    {
        if (!binding_.rebind(machine) && magnifier_)
            return;
        magnifier_ = std::make_unique<PlruMagnifier>(
            machine,
            PlruMagnifier::makeConfig(machine, cfg_.set, cfg_.repeats,
                                      cfg_.tagBase),
            variant_);
    }
};

// ---------------------------------------------------------------------
// reorder_race (section 5.2): readout through a short reorder traversal.
// ---------------------------------------------------------------------

class ReorderRaceSource final : public TimingSource
{
  public:
    std::string name() const override { return "reorder_race"; }

    std::string
    describe() const override
    {
        return "non-transient reorder race: expression vs reference "
               "path, result encoded as A-before-B insertion order";
    }

    void
    configure(const ParamSet &params) override
    {
        cfg_.refOp = opcodeParam(params, "ref_op", cfg_.refOp);
        cfg_.refOps =
            static_cast<int>(params.getInt("ref_ops", cfg_.refOps));
        cfg_.targetOp = opcodeParam(params, "op", cfg_.targetOp);
        cfg_.slowOps =
            static_cast<int>(params.getInt("slow_ops", cfg_.slowOps));
        cfg_.fastOps =
            static_cast<int>(params.getInt("fast_ops", cfg_.fastOps));
        cfg_.set = static_cast<int>(params.getInt("set", cfg_.set));
        cfg_.tagBase =
            static_cast<int>(params.getInt("tag_base", cfg_.tagBase));
        cfg_.readoutRepeats = static_cast<int>(
            params.getInt("readout_repeats", cfg_.readoutRepeats));
        magnifier_.reset();
        aFirstRace_.reset();
        bFirstRace_.reset();
        addrA_ = addrB_ = 0;
        calibrated_ = false;
    }

    bool
    compatible(const Machine &machine) const override
    {
        // The standalone readout (and the reorder pipeline) decode
        // the order from a W=4 tree-PLRU set.
        return hasPlruL1(machine);
    }

    void
    calibrate(Machine &machine) override
    {
        ensure(machine);
        calibration_ = calibrateThreshold(
            [&](bool slow) {
                magnifier_->prime();
                const auto &config = magnifier_->config();
                machine.warm(slow ? config.a : config.b, 1);
                machine.warm(slow ? config.b : config.a, 1);
                return machine.toNs(magnifier_->traverse().cycles);
            },
            "reorder_race::calibrate");
        calibrated_ = true;
        calibratedSerial_ = machine.serial();
    }

    TimingSample
    sample(Machine &machine, bool secret) override
    {
        ensure(machine);
        magnifier_->prime();
        // secret (slow observable) <=> A inserted first <=> the
        // measurement path wins the race, i.e. the *fast* expression.
        transmit(machine, secret);
        TimingSample s;
        s.cycles = magnifier_->traverse().cycles;
        s.ns = machine.toNs(s.cycles);
        s.bit = calibrated_ && calibratedSerial_ == machine.serial() &&
                calibration_.isSlow(s.ns);
        return s;
    }

    std::unique_ptr<TimingSource>
    clone() const override
    {
        auto copy = std::make_unique<ReorderRaceSource>();
        copy->cfg_ = cfg_;
        return copy;
    }

    // ---- encoder role ------------------------------------------------
    bool isEncoder() const override { return true; }

    void
    bindTarget(Machine &machine, Addr primary, Addr secondary) override
    {
        fatalIf(secondary == 0,
                "reorder_race: needs both input lines (A and B)");
        if (!bindingRaces_.rebind(machine) && primary == addrA_ &&
            secondary == addrB_) {
            return;
        }
        addrA_ = primary;
        addrB_ = secondary;
        ReorderRaceConfig config;
        config.addrA = primary;
        config.addrB = secondary;
        config.refOp = cfg_.refOp;
        config.refOps = cfg_.refOps;
        aFirstRace_ = std::make_unique<ReorderRace>(
            machine, config,
            TargetExpr::opChain(cfg_.targetOp, cfg_.fastOps));
        bFirstRace_ = std::make_unique<ReorderRace>(
            machine, config,
            TargetExpr::opChain(cfg_.targetOp, cfg_.slowOps));
    }

    void
    primeEncoder(Machine &, bool) override
    {
        // No speculation anywhere: nothing to train.
    }

    void
    transmit(Machine &machine, bool present) override
    {
        fatalIf(!aFirstRace_ || !bFirstRace_,
                "reorder_race: transmit before bindTarget");
        (present ? *aFirstRace_ : *bFirstRace_).run();
        machine.settle();
    }

  private:
    struct Config
    {
        Opcode refOp = Opcode::Add;
        int refOps = 60;
        Opcode targetOp = Opcode::Add;
        int slowOps = 150;
        int fastOps = 5;
        int set = 5;
        int tagBase = 700;
        int readoutRepeats = 64;
    };

    Config cfg_;
    MachineBinding binding_;
    MachineBinding bindingRaces_;
    std::unique_ptr<PlruMagnifier> magnifier_;
    Addr addrA_ = 0, addrB_ = 0;
    std::unique_ptr<ReorderRace> aFirstRace_;
    std::unique_ptr<ReorderRace> bFirstRace_;
    Calibration calibration_;
    bool calibrated_ = false;
    std::uint64_t calibratedSerial_ = 0;

    void
    ensure(Machine &machine)
    {
        if (!binding_.rebind(machine) && magnifier_)
            return;
        magnifier_ = std::make_unique<PlruMagnifier>(
            machine,
            PlruMagnifier::makeConfig(machine, cfg_.set,
                                      cfg_.readoutRepeats, cfg_.tagBase),
            PlruVariant::Reorder);
        bindTarget(machine, magnifier_->config().a,
                   magnifier_->config().b);
    }
};

// ---------------------------------------------------------------------
// plru_pin_magnifier: search-derived pin pattern, any 2^k ways.
// ---------------------------------------------------------------------

class PinPatternMagnifierSource final : public AmplifierSourceBase
{
  public:
    std::string name() const override { return "plru_pin_magnifier"; }

    std::string
    describe() const override
    {
        return "tree-PLRU magnifier with a search-derived pin pattern "
               "(works for any power-of-two associativity)";
    }

    void
    configure(const ParamSet &params) override
    {
        cfg_.set = static_cast<int>(params.getInt("set", cfg_.set));
        cfg_.repeats =
            static_cast<int>(params.getInt("repeats", cfg_.repeats));
        cfg_.tagBase =
            static_cast<int>(params.getInt("tag_base", cfg_.tagBase));
        cfg_.maxLen =
            static_cast<int>(params.getInt("max_len", cfg_.maxLen));
        lines_.clear();
        calibrated_ = false;
    }

    bool
    compatible(const Machine &machine) const override
    {
        const auto &l1 = machine.hierarchy().l1().config();
        if (l1.policy != PolicyKind::TreePlru || l1.assoc < 4 ||
            (l1.assoc & (l1.assoc - 1)) != 0 ||
            cfg_.set >= l1.numSets) {
            return false;
        }
        return patternFor(l1.assoc).has_value();
    }

    std::unique_ptr<TimingSource>
    clone() const override
    {
        auto copy = std::make_unique<PinPatternMagnifierSource>();
        copy->cfg_ = cfg_;
        return copy;
    }

    // ---- amplifier role ----------------------------------------------
    void
    prepare(Machine &machine) override
    {
        ensure(machine);
        // The canonical base state of findPinPattern: lines 1..W fill
        // the set in way order, the last-but-one fill gets an extra
        // touch; the pinned line 0 is staged in L2.
        for (Addr addr : lines_)
            machine.flushLine(addr);
        const int assoc = machine.hierarchy().l1().config().assoc;
        for (int line = 1; line <= assoc; ++line)
            machine.warm(lines_[static_cast<std::size_t>(line)], 1);
        machine.warm(lines_[static_cast<std::size_t>(assoc - 1)], 1);
        machine.warm(lines_[0], 2);
    }

    std::pair<Addr, Addr>
    inputLines(Machine &machine) override
    {
        ensure(machine);
        return {lines_[0], 0};
    }

    void
    forceInput(Machine &machine, bool slow) override
    {
        ensure(machine);
        if (slow)
            machine.warm(lines_[0], 1);
    }

    Cycle
    amplify(Machine &machine) override
    {
        ensure(machine);
        return machine.run(program_).cycles();
    }

  private:
    struct Config
    {
        int set = 3;
        int repeats = 500;
        int tagBase = 16;
        int maxLen = 16;
    };

    Config cfg_;
    MachineBinding binding_;
    std::vector<Addr> lines_;
    Program program_;
    // The BFS pattern search depends only on (assoc, maxLen_); cache
    // it so compatible() probes and per-machine rebuilds don't re-run
    // it (mutable: compatible() is const).
    mutable std::optional<PinPattern> pattern_;
    mutable int patternAssoc_ = -1;
    mutable int patternMaxLen_ = -1;

    const std::optional<PinPattern> &
    patternFor(int assoc) const
    {
        if (patternAssoc_ != assoc || patternMaxLen_ != cfg_.maxLen) {
            pattern_ = findPinPattern(assoc, cfg_.maxLen);
            patternAssoc_ = assoc;
            patternMaxLen_ = cfg_.maxLen;
        }
        return pattern_;
    }

    void
    ensure(Machine &machine)
    {
        if (!binding_.rebind(machine) && !lines_.empty())
            return;
        const int assoc = machine.hierarchy().l1().config().assoc;
        const auto &pattern = patternFor(assoc);
        fatalIf(!pattern, "plru_pin_magnifier: no pin pattern for W=" +
                              std::to_string(assoc));
        // Line ids 0 (pinned) .. W+1 (the search alphabet's spare).
        lines_ = PlruMagnifier::sameSetLines(machine, cfg_.set,
                                             assoc + 2, cfg_.tagBase);
        ProgramBuilder builder("plru_pin_magnify");
        RegId r = builder.movImm(0);
        for (int line : pattern->leadIn)
            builder.loadOrderedInto(
                r, lines_[static_cast<std::size_t>(line)]);
        for (int rep = 0; rep < cfg_.repeats; ++rep)
            for (int line : pattern->accesses)
                builder.loadOrderedInto(
                    r, lines_[static_cast<std::size_t>(line)]);
        builder.halt();
        program_ = builder.take();
    }
};

// ---------------------------------------------------------------------
// arbitrary_magnifier (section 6.3).
// ---------------------------------------------------------------------

class ArbitraryMagnifierSource final : public AmplifierSourceBase
{
  public:
    std::string name() const override { return "arbitrary_magnifier"; }

    std::string
    describe() const override
    {
        return "replacement-policy-agnostic magnifier: misaligned "
               "racing paths cascade PAR evictions (chain reaction)";
    }

    void
    configure(const ParamSet &params) override
    {
        config_.numSets = static_cast<int>(
            params.getInt("num_sets", config_.numSets));
        config_.seqLen =
            static_cast<int>(params.getInt("seq_len", config_.seqLen));
        config_.parLen =
            static_cast<int>(params.getInt("par_len", config_.parLen));
        config_.dist = static_cast<int>(params.getInt("dist", config_.dist));
        config_.repeats = static_cast<int>(
            params.getInt("repeats", config_.repeats));
        config_.prefetch = params.getBool("prefetch", config_.prefetch);
        config_.chainPadOps = static_cast<int>(
            params.getInt("chain_pad", config_.chainPadOps));
        config_.pathASlackOps = static_cast<int>(
            params.getInt("slack", config_.pathASlackOps));
        magnifier_.reset();
        calibrated_ = false;
    }

    bool
    compatible(const Machine &machine) const override
    {
        const auto &l1 = machine.hierarchy().l1().config();
        return config_.numSets > 0 && config_.numSets <= l1.numSets &&
               config_.numSets % 2 == 0 && config_.dist % 2 == 0 &&
               config_.seqLen < l1.assoc;
    }

    std::unique_ptr<TimingSource>
    clone() const override
    {
        auto copy = std::make_unique<ArbitraryMagnifierSource>();
        copy->config_ = config_;
        return copy;
    }

    // ---- amplifier role ----------------------------------------------
    bool presentMeansSlow() const override { return false; }

    void
    prepare(Machine &machine) override
    {
        ensure(machine);
        magnifier_->prime();
    }

    std::pair<Addr, Addr>
    inputLines(Machine &machine) override
    {
        ensure(machine);
        return {config_.inputAddr, 0};
    }

    void
    forceInput(Machine &machine, bool slow) override
    {
        // Input present = PathB aligned = no chain reaction = fast.
        if (slow)
            machine.flushLine(config_.inputAddr);
        else
            machine.warm(config_.inputAddr, 1);
    }

    Cycle
    amplify(Machine &machine) override
    {
        ensure(machine);
        // An encoder's racing program may have warmed the sync line.
        machine.flushLine(config_.syncAddr);
        return magnifier_->traverse();
    }

  private:
    ArbitraryMagnifierConfig config_;
    MachineBinding binding_;
    std::unique_ptr<ArbitraryMagnifier> magnifier_;

    void
    ensure(Machine &machine)
    {
        if (!binding_.rebind(machine) && magnifier_)
            return;
        magnifier_ =
            std::make_unique<ArbitraryMagnifier>(machine, config_);
    }
};

// ---------------------------------------------------------------------
// arith_magnifier (section 6.4).
// ---------------------------------------------------------------------

class ArithMagnifierSource final : public AmplifierSourceBase
{
  public:
    std::string name() const override { return "arith_magnifier"; }

    std::string
    describe() const override
    {
        return "arithmetic-only magnifier: divider contention chain "
               "reaction, no cache use beyond two head loads";
    }

    void
    configure(const ParamSet &params) override
    {
        config_.stages =
            static_cast<int>(params.getInt("stages", config_.stages));
        config_.divChain = static_cast<int>(
            params.getInt("div_chain", config_.divChain));
        config_.parDivs = static_cast<int>(
            params.getInt("par_divs", config_.parDivs));
        config_.addBuffer = static_cast<int>(
            params.getInt("add_buffer", config_.addBuffer));
        magnifier_.reset();
        calibrated_ = false;
    }

    std::unique_ptr<TimingSource>
    clone() const override
    {
        auto copy = std::make_unique<ArithMagnifierSource>();
        copy->config_ = config_;
        return copy;
    }

    // ---- amplifier role ----------------------------------------------
    bool presentMeansSlow() const override { return false; }

    void
    prepare(Machine &machine) override
    {
        ensure(machine);
        magnifier_->prepare();
    }

    std::pair<Addr, Addr>
    inputLines(Machine &machine) override
    {
        ensure(machine);
        return {config_.inputAddr, 0};
    }

    void
    forceInput(Machine &machine, bool slow) override
    {
        // Input present = PathB aligned with PathA = fast.
        if (slow)
            machine.flushLine(config_.inputAddr);
        else
            machine.warm(config_.inputAddr, 1);
    }

    Cycle
    amplify(Machine &machine) override
    {
        ensure(machine);
        // Re-chill the sync line in case an encoder's program warmed
        // it (prepare() is idempotent and input-preserving).
        magnifier_->prepare();
        return magnifier_->traverse();
    }

  private:
    ArithMagnifierConfig config_;
    MachineBinding binding_;
    std::unique_ptr<ArithMagnifier> magnifier_;

    void
    ensure(Machine &machine)
    {
        if (!binding_.rebind(machine) && magnifier_)
            return;
        magnifier_ = std::make_unique<ArithMagnifier>(machine, config_);
    }
};

// ---------------------------------------------------------------------
// repetition: the flush+reload repetition harness (section 7.1).
// ---------------------------------------------------------------------

class RepetitionSource final : public TimingSource
{
  public:
    std::string name() const override { return "repetition"; }

    std::string
    describe() const override
    {
        return "flush+reload repetition rounds; racing=0 shows the "
               "paper's cancellation failure, racing=1 the fix";
    }

    void
    configure(const ParamSet &params) override
    {
        rounds_ = static_cast<int>(params.getInt("rounds", rounds_));
        racing_ = params.getBool("racing", racing_);
        stages_.envelopeOps = static_cast<int>(
            params.getInt("envelope_ops", stages_.envelopeOps));
        calibrated_ = false;
    }

    void
    calibrate(Machine &machine) override
    {
        // Lenient: with racing=0 the two states are *designed* to be
        // inseparable (that is the paper's point).
        calibration_ = calibrateThresholdLenient(
            [&](bool slow) { return observe(machine, slow).ns; });
        calibrated_ = true;
        calibratedSerial_ = machine.serial();
    }

    TimingSample
    sample(Machine &machine, bool secret) override
    {
        TimingSample s = observe(machine, secret);
        s.bit = calibrated_ && calibratedSerial_ == machine.serial() &&
                calibration_.isSlow(s.ns);
        return s;
    }

    std::unique_ptr<TimingSource>
    clone() const override
    {
        auto copy = std::make_unique<RepetitionSource>();
        copy->rounds_ = rounds_;
        copy->racing_ = racing_;
        copy->stages_ = stages_;
        return copy;
    }

  private:
    int rounds_ = 200;
    bool racing_ = true;
    FlushReloadStages stages_;
    Calibration calibration_;
    bool calibrated_ = false;
    std::uint64_t calibratedSerial_ = 0;

    TimingSample
    observe(Machine &machine, bool secret)
    {
        // secret (slow observable): the victim touches a *different*
        // line, so every reload stage misses.
        machine.warm(stages_.otherAddr, 1);
        RepetitionGadget gadget = makeFlushReloadGadget(
            machine, stages_, /*same_addr=*/!secret, racing_);
        const StageBreakdown breakdown = gadget.run(rounds_);
        TimingSample s;
        s.cycles = breakdown.total();
        s.ns = machine.toNs(s.cycles);
        for (std::size_t i = 0; i < breakdown.names.size(); ++i)
            s.aux.emplace_back(
                breakdown.names[i],
                static_cast<double>(breakdown.cycles[i]));
        return s;
    }
};

// ---------------------------------------------------------------------
// hacky_timer: the paper's composed stealthy timer (end to end).
// ---------------------------------------------------------------------

class HackyTimerSource final : public TimingSource
{
  public:
    std::string name() const override { return "hacky_timer"; }

    std::string
    describe() const override
    {
        return "the composed stealthy timer (race + PLRU magnifier + "
               "coarse clock): was the scratch load an L1 hit?";
    }

    void
    configure(const ParamSet &params) override
    {
        cfg_.refOps =
            static_cast<int>(params.getInt("ref_ops", cfg_.refOps));
        cfg_.refOp = opcodeParam(params, "ref_op", cfg_.refOp);
        cfg_.repeats =
            static_cast<int>(params.getInt("repeats", cfg_.repeats));
        cfg_.set = static_cast<int>(params.getInt("set", cfg_.set));
        cfg_.tagBase =
            static_cast<int>(params.getInt("tag_base", cfg_.tagBase));
        cfg_.resolutionNs =
            params.getDouble("resolution_ns", cfg_.resolutionNs);
        cfg_.jitterNs = params.getDouble("jitter_ns", cfg_.jitterNs);
        timer_.reset();
        calibrated_ = false;
    }

    bool
    compatible(const Machine &machine) const override
    {
        return hasPlruL1(machine);
    }

    void
    calibrate(Machine &machine) override
    {
        ensure(machine);
        timer_->calibrate();
        calibrated_ = true;
    }

    TimingSample
    sample(Machine &machine, bool secret) override
    {
        ensure(machine);
        if (!calibrated_)
            calibrate(machine);
        // secret (slow observable): the scratch line is cold.
        if (secret)
            machine.flushLine(kScratch);
        else
            machine.warm(kScratch, 1);
        const Cycle t0 = machine.now();
        TimingSample s;
        s.bit = timer_->loadIsSlow(kScratch);
        s.cycles = machine.now() - t0;
        s.ns = machine.toNs(s.cycles);
        return s;
    }

    std::unique_ptr<TimingSource>
    clone() const override
    {
        auto copy = std::make_unique<HackyTimerSource>();
        copy->cfg_ = cfg_;
        return copy;
    }

  private:
    static constexpr Addr kScratch = 0x500'0000;

    struct Config
    {
        int refOps = 12;
        Opcode refOp = Opcode::Mul;
        int repeats = 0; // 0 = auto from the timer resolution
        int set = 3;
        int tagBase = 600;
        double resolutionNs = 5000;
        double jitterNs = 0;
    };

    Config cfg_;
    MachineBinding binding_;
    std::unique_ptr<HackyTimer> timer_;
    bool calibrated_ = false;

    void
    ensure(Machine &machine)
    {
        if (!binding_.rebind(machine) && timer_)
            return;
        HackyTimerConfig config;
        config.timer.ghz = machine.config().ghz;
        config.timer.resolutionNs = cfg_.resolutionNs;
        config.timer.jitterNs = cfg_.jitterNs;
        config.refOp = cfg_.refOp;
        config.refOps = cfg_.refOps;
        config.magnifierRepeats = cfg_.repeats;
        config.plruSet = cfg_.set;
        config.plruTagBase = cfg_.tagBase;
        timer_ = std::make_unique<HackyTimer>(machine, config);
        calibrated_ = false;
    }
};

// ---------------------------------------------------------------------
// coarse_timer: the bare browser clock (why magnification is needed).
// ---------------------------------------------------------------------

class CoarseTimerSource final : public TimingSource
{
  public:
    std::string name() const override { return "coarse_timer"; }

    std::string
    describe() const override
    {
        return "the bare quantized clock timing an op chain directly "
               "— at 5 us resolution the bit is invisible";
    }

    void
    configure(const ParamSet &params) override
    {
        cfg_.resolutionNs =
            params.getDouble("resolution_ns", cfg_.resolutionNs);
        cfg_.jitterNs = params.getDouble("jitter_ns", cfg_.jitterNs);
        cfg_.targetOp = opcodeParam(params, "op", cfg_.targetOp);
        cfg_.slowOps =
            static_cast<int>(params.getInt("slow_ops", cfg_.slowOps));
        cfg_.fastOps =
            static_cast<int>(params.getInt("fast_ops", cfg_.fastOps));
        clock_.reset();
        calibrated_ = false;
    }

    void
    calibrate(Machine &machine) override
    {
        ensure(machine);
        // Lenient: failing to separate the states is this source's
        // expected behaviour at browser resolutions.
        calibration_ = calibrateThresholdLenient(
            [&](bool slow) { return observeNs(machine, slow); });
        calibrated_ = true;
        calibratedSerial_ = machine.serial();
    }

    TimingSample
    sample(Machine &machine, bool secret) override
    {
        ensure(machine);
        const Cycle t0 = machine.now();
        const double ns = observeNs(machine, secret);
        TimingSample s;
        s.cycles = machine.now() - t0;
        s.ns = ns;
        s.bit = calibrated_ && calibratedSerial_ == machine.serial() &&
                calibration_.isSlow(ns);
        return s;
    }

    std::unique_ptr<TimingSource>
    clone() const override
    {
        auto copy = std::make_unique<CoarseTimerSource>();
        copy->cfg_ = cfg_;
        return copy;
    }

  private:
    struct Config
    {
        double resolutionNs = 5000;
        double jitterNs = 0;
        Opcode targetOp = Opcode::Add;
        int slowOps = 400;
        int fastOps = 10;
    };

    Config cfg_;
    MachineBinding binding_;
    std::unique_ptr<CoarseTimer> clock_;
    Calibration calibration_;
    bool calibrated_ = false;
    std::uint64_t calibratedSerial_ = 0;

    void
    ensure(Machine &machine)
    {
        if (!binding_.rebind(machine) && clock_)
            return;
        TimerConfig config;
        config.ghz = machine.config().ghz;
        config.resolutionNs = cfg_.resolutionNs;
        config.jitterNs = cfg_.jitterNs;
        clock_ = std::make_unique<CoarseTimer>(config);
    }

    double
    observeNs(Machine &machine, bool slow)
    {
        ProgramBuilder builder("coarse_probe");
        RegId r = builder.movImm(1);
        builder.opChain(cfg_.targetOp,
                        static_cast<std::size_t>(slow ? cfg_.slowOps
                                                      : cfg_.fastOps),
                        r, 1);
        builder.halt();
        Program program = builder.take();
        const Cycle t0 = machine.now();
        machine.run(program);
        return clock_->elapsedNs(t0, machine.now());
    }
};

} // namespace

// ---------------------------------------------------------------------
// Pipeline.
// ---------------------------------------------------------------------

Pipeline &
Pipeline::then(std::unique_ptr<TimingSource> stage)
{
    stages_.push_back(std::move(stage));
    return *this;
}

std::string
Pipeline::name() const
{
    if (!name_.empty())
        return name_;
    std::string joined;
    for (const auto &stage : stages_)
        joined += (joined.empty() ? "" : "|") + stage->name();
    return "pipeline(" + joined + ")";
}

std::string
Pipeline::describe() const
{
    std::string joined;
    for (const auto &stage : stages_)
        joined += (joined.empty() ? "" : " -> ") + stage->name();
    return "composed stack: " + joined + ", read with the coarse clock";
}

void
Pipeline::configure(const ParamSet &params)
{
    rounds_ = static_cast<int>(params.getInt("rounds", rounds_));
    fatalIf(rounds_ < 1, "pipeline: rounds must be >= 1");
    timerConfig_.resolutionNs =
        params.getDouble("resolution_ns", timerConfig_.resolutionNs);
    timerConfig_.jitterNs =
        params.getDouble("jitter_ns", timerConfig_.jitterNs);
    // Reconfiguration invalidates both the clock and any threshold
    // calibrated against the old configuration.
    clock_.reset();
    calibrated_ = false;
    for (auto &stage : stages_)
        stage->configure(params);
}

bool
Pipeline::compatible(const Machine &machine) const
{
    if (stages_.empty() || !stages_.back()->isAmplifier())
        return false;
    for (std::size_t i = 0; i + 1 < stages_.size(); ++i)
        if (!stages_[i]->isEncoder())
            return false;
    for (const auto &stage : stages_)
        if (!stage->compatible(machine))
            return false;
    return true;
}

TimingSource &
Pipeline::amplifier() const
{
    fatalIf(stages_.empty(), "pipeline: no stages (use then())");
    TimingSource &amp = *stages_.back();
    fatalIf(!amp.isAmplifier(),
            "pipeline: final stage " + amp.name() + " is not an "
            "amplifier");
    return amp;
}

void
Pipeline::ensureClock(Machine &machine)
{
    if (!clock_ || timerConfig_.ghz != machine.config().ghz) {
        timerConfig_.ghz = machine.config().ghz;
        clock_ = std::make_unique<CoarseTimer>(timerConfig_);
    }
}

double
Pipeline::observeNs(Machine &machine, bool present)
{
    ensureClock(machine);
    TimingSource &amp = amplifier();
    const auto lines = amp.inputLines(machine);
    for (std::size_t i = 0; i + 1 < stages_.size(); ++i) {
        TimingSource &encoder = *stages_[i];
        fatalIf(!encoder.isEncoder(), "pipeline: stage " +
                                          encoder.name() +
                                          " is not an encoder");
        encoder.bindTarget(machine, lines.first, lines.second);
        encoder.primeEncoder(machine, present);
    }
    amp.prepare(machine);
    for (std::size_t i = 0; i + 1 < stages_.size(); ++i)
        stages_[i]->transmit(machine, present);
    const Cycle t0 = machine.now();
    const double begin = clock_->nowNs(t0);
    amp.amplify(machine);
    return clock_->nowNs(machine.now()) - begin;
}

void
Pipeline::calibrate(Machine &machine)
{
    TimingSource &amp = amplifier();
    ensureClock(machine);
    calibration_ = calibrateThreshold(
        [&](bool slow) {
            double ns = 0;
            for (int round = 0; round < rounds_; ++round) {
                amp.prepare(machine);
                amp.forceInput(machine, slow);
                const double begin = clock_->nowNs(machine.now());
                amp.amplify(machine);
                ns += clock_->nowNs(machine.now()) - begin;
            }
            return ns;
        },
        name() + "::calibrate");
    calibrated_ = true;
    calibratedSerial_ = machine.serial();
}

TimingSample
Pipeline::sample(Machine &machine, bool secret)
{
    TimingSource &amp = amplifier();
    // Uniform polarity: secret == true must read slow, whatever the
    // amplifier's input convention.
    const bool present = secret == amp.presentMeansSlow();
    TimingSample s;
    const Cycle t0 = machine.now();
    for (int round = 0; round < rounds_; ++round)
        s.ns += observeNs(machine, present);
    s.cycles = machine.now() - t0;
    s.bit = calibrated_ && calibratedSerial_ == machine.serial() &&
            calibration_.isSlow(s.ns);
    return s;
}

std::unique_ptr<TimingSource>
Pipeline::clone() const
{
    auto copy = std::make_unique<Pipeline>(name_);
    for (const auto &stage : stages_)
        copy->then(stage->clone());
    copy->rounds_ = rounds_;
    copy->timerConfig_ = timerConfig_;
    return copy;
}

// ---------------------------------------------------------------------
// smt_contention: SMT port-pressure progress timer. Instead of reading
// any clock, the attacker co-runs a counting thread on a sibling
// hardware context; how far the counter progressed while the measured
// work ran IS the time reading. Needs contexts >= 2.
// ---------------------------------------------------------------------

class SmtContentionSource final : public TimingSource
{
  public:
    std::string name() const override { return "smt_contention"; }

    std::string
    describe() const override
    {
        return "SMT port-pressure timer: a sibling context's counting "
               "progress measures the primary's duration — no clock "
               "API at all";
    }

    void
    configure(const ParamSet &params) override
    {
        cfg_.targetOp = opcodeParam(params, "op", cfg_.targetOp);
        cfg_.slowOps =
            static_cast<int>(params.getInt("slow_ops", cfg_.slowOps));
        cfg_.fastOps =
            static_cast<int>(params.getInt("fast_ops", cfg_.fastOps));
        cfg_.counterUnroll = static_cast<int>(
            params.getInt("counter_unroll", cfg_.counterUnroll));
        fatalIf(cfg_.counterUnroll < 1, "counter_unroll must be >= 1");
        measured_[0].reset();
        measured_[1].reset();
        counter_.reset();
        calibrated_ = false;
    }

    bool
    compatible(const Machine &machine) const override
    {
        return machine.contexts() >= 2;
    }

    void
    calibrate(Machine &machine) override
    {
        ensure(machine);
        calibration_ = calibrateThreshold(
            [&](bool slow) { return observeCount(machine, slow); },
            "smt_contention::calibrate");
        calibrated_ = true;
        calibratedSerial_ = machine.serial();
    }

    TimingSample
    sample(Machine &machine, bool secret) override
    {
        ensure(machine);
        const Cycle t0 = machine.now();
        const double count = observeCount(machine, secret);
        TimingSample s;
        s.cycles = machine.now() - t0;
        s.ns = count; // the attacker's only reading is the count
        s.aux.emplace_back("count", count);
        s.bit = calibrated_ && calibratedSerial_ == machine.serial() &&
                calibration_.isSlow(count);
        return s;
    }

    std::unique_ptr<TimingSource>
    clone() const override
    {
        auto copy = std::make_unique<SmtContentionSource>();
        copy->cfg_ = cfg_;
        return copy;
    }

  private:
    struct Config
    {
        Opcode targetOp = Opcode::Mul;
        int slowOps = 48;
        int fastOps = 16;
        int counterUnroll = 8;
    };

    Config cfg_;
    MachineBinding binding_;
    std::unique_ptr<Program> measured_[2]; ///< [fast, slow]
    std::unique_ptr<Program> counter_;
    Calibration calibration_;
    bool calibrated_ = false;
    std::uint64_t calibratedSerial_ = 0;

    void
    ensure(Machine &machine)
    {
        fatalIf(machine.contexts() < 2,
                "smt_contention needs a machine with >= 2 contexts "
                "(use an smt profile)");
        if (!binding_.rebind(machine) && counter_)
            return;
        for (int slow = 0; slow < 2; ++slow) {
            ProgramBuilder builder(slow ? "smt_measured_slow"
                                        : "smt_measured_fast");
            RegId r = builder.movImm(3);
            builder.opChain(cfg_.targetOp,
                            static_cast<std::size_t>(
                                slow ? cfg_.slowOps : cfg_.fastOps),
                            r, 1);
            builder.halt();
            measured_[slow] =
                std::make_unique<Program>(builder.take());
        }
        // The counter: an endless dependent chain on the same
        // functional-unit class, so its progress rate is set by the
        // shared port the measured chain also occupies.
        ProgramBuilder builder("smt_counter");
        RegId r = builder.movImm(1);
        const std::int32_t loop = builder.newLabel();
        builder.bind(loop);
        for (int i = 0; i < cfg_.counterUnroll; ++i)
            builder.chainOpImm(cfg_.targetOp, r, 1);
        builder.jump(loop);
        counter_ = std::make_unique<Program>(builder.take());
        calibrated_ = false;
    }

    double
    observeCount(Machine &machine, bool slow)
    {
        const ContextId counter_ctx =
            static_cast<ContextId>(machine.contexts() - 1);
        const PerfCounters before =
            machine.core().contextCounters(counter_ctx);
        machine.coRun(0, *measured_[slow ? 1 : 0],
                      {{counter_ctx, counter_.get()}});
        const PerfCounters after =
            machine.core().contextCounters(counter_ctx);
        return static_cast<double>(
            (after - before).committedInstrs);
    }
};

// ---------------------------------------------------------------------
// l1_contention: L1 set-occupancy timer. A sibling context keeps one
// L1 set resident and counts its own (attributed) misses; the primary
// either evicts that set or leaves it alone, so the sibling's miss
// count reads out the secret. Needs contexts >= 2.
// ---------------------------------------------------------------------

class L1ContentionSource final : public TimingSource
{
  public:
    std::string name() const override { return "l1_contention"; }

    std::string
    describe() const override
    {
        return "L1 occupancy timer: a sibling context's attributed "
               "miss count over one co-run reads whether the primary "
               "touched the shared set";
    }

    void
    configure(const ParamSet &params) override
    {
        cfg_.set = static_cast<int>(params.getInt("set", cfg_.set));
        cfg_.evictLines = static_cast<int>(
            params.getInt("evict_lines", cfg_.evictLines));
        cfg_.repeats =
            static_cast<int>(params.getInt("repeats", cfg_.repeats));
        cfg_.windowOps = static_cast<int>(
            params.getInt("window_ops", cfg_.windowOps));
        fatalIf(cfg_.repeats < 1, "repeats must be >= 1");
        fatalIf(cfg_.evictLines < 0,
                "evict_lines must be >= 0 (0 = L1 associativity)");
        primary_[0].reset();
        primary_[1].reset();
        probe_.reset();
        calibrated_ = false;
    }

    bool
    compatible(const Machine &machine) const override
    {
        const auto &l1 = machine.hierarchy().l1().config();
        return machine.contexts() >= 2 && cfg_.set < l1.numSets;
    }

    void
    calibrate(Machine &machine) override
    {
        ensure(machine);
        calibration_ = calibrateThreshold(
            [&](bool slow) { return observeMisses(machine, slow); },
            "l1_contention::calibrate");
        calibrated_ = true;
        calibratedSerial_ = machine.serial();
    }

    TimingSample
    sample(Machine &machine, bool secret) override
    {
        ensure(machine);
        const Cycle t0 = machine.now();
        const double misses = observeMisses(machine, secret);
        TimingSample s;
        s.cycles = machine.now() - t0;
        s.ns = misses; // the attacker's reading is the miss count
        s.aux.emplace_back("count", misses);
        s.bit = calibrated_ && calibratedSerial_ == machine.serial() &&
                calibration_.isSlow(misses);
        return s;
    }

    std::unique_ptr<TimingSource>
    clone() const override
    {
        auto copy = std::make_unique<L1ContentionSource>();
        copy->cfg_ = cfg_;
        return copy;
    }

  private:
    struct Config
    {
        int set = 5;
        int evictLines = 0; ///< 0 = the L1's associativity
        int repeats = 4;
        int windowOps = 200;
    };

    Config cfg_;
    MachineBinding binding_;
    std::unique_ptr<Program> primary_[2]; ///< [fast, slow]
    std::unique_ptr<Program> probe_;
    Calibration calibration_;
    bool calibrated_ = false;
    std::uint64_t calibratedSerial_ = 0;

    /** Line address of (set, tag) in the machine's L1 geometry. */
    static Addr
    lineFor(const Machine &machine, int set, int tag)
    {
        const auto &l1 = machine.hierarchy().l1().config();
        return (static_cast<Addr>(tag) *
                    static_cast<Addr>(l1.numSets) +
                static_cast<Addr>(set)) *
               static_cast<Addr>(l1.lineBytes);
    }

    void
    ensure(Machine &machine)
    {
        fatalIf(machine.contexts() < 2,
                "l1_contention needs a machine with >= 2 contexts "
                "(use an smt profile)");
        const auto &l1 = machine.hierarchy().l1().config();
        fatalIf(cfg_.set >= l1.numSets,
                "l1_contention: set out of range for this L1");
        if (!binding_.rebind(machine) && probe_)
            return;
        const int evict =
            cfg_.evictLines > 0 ? cfg_.evictLines : l1.assoc;

        // The probe: endlessly re-touch the target set `assoc` deep;
        // all hits while the set is undisturbed, misses after the
        // primary evicts it.
        {
            ProgramBuilder builder("l1_probe");
            RegId r = builder.movImm(0);
            const std::int32_t loop = builder.newLabel();
            builder.bind(loop);
            for (int way = 0; way < l1.assoc; ++way)
                builder.loadOrderedInto(
                    r, lineFor(machine, cfg_.set, 100 + way));
            builder.jump(loop);
            probe_ = std::make_unique<Program>(builder.take());
        }

        // Primary variants: identical shape, but the slow one walks
        // conflicting tags in the probe's set while the fast one walks
        // a neighboring set. window_ops of ALU padding per repeat give
        // the probe time to observe the damage.
        for (int slow = 0; slow < 2; ++slow) {
            ProgramBuilder builder(slow ? "l1_evict_slow"
                                        : "l1_evict_fast");
            RegId r = builder.movImm(0);
            RegId pad = builder.movImm(1);
            const int set =
                slow ? cfg_.set : (cfg_.set + 1) % l1.numSets;
            for (int rep = 0; rep < cfg_.repeats; ++rep) {
                for (int i = 0; i < evict; ++i)
                    builder.loadOrderedInto(
                        r, lineFor(machine, set, 300 + i));
                builder.opChain(Opcode::Add,
                                static_cast<std::size_t>(cfg_.windowOps),
                                pad, 1);
            }
            builder.halt();
            primary_[slow] = std::make_unique<Program>(builder.take());
        }

        // First-touch warmup: stage every evictor line in the L2 so
        // the first observation's primary runs at the same speed as
        // every later one (otherwise its cold DRAM misses stretch the
        // window and the probe double-counts during calibration).
        for (int slow = 0; slow < 2; ++slow) {
            const int set =
                slow ? cfg_.set : (cfg_.set + 1) % l1.numSets;
            for (int i = 0; i < evict; ++i)
                machine.warm(lineFor(machine, set, 300 + i), 2);
        }
        calibrated_ = false;
    }

    double
    observeMisses(Machine &machine, bool slow)
    {
        const ContextId probe_ctx =
            static_cast<ContextId>(machine.contexts() - 1);
        // Start each observation with the probe's set resident, so a
        // previous slow observation's evictions cannot bleed into this
        // reading (the real attacker's probe loop has warmed the set
        // long before the measured window opens).
        const int assoc = machine.hierarchy().l1().config().assoc;
        for (int way = 0; way < assoc; ++way)
            machine.warm(lineFor(machine, cfg_.set, 100 + way), 1);
        const ContextAccessStats before = machine.contextStats(probe_ctx);
        machine.coRun(0, *primary_[slow ? 1 : 0],
                      {{probe_ctx, probe_.get()}});
        const ContextAccessStats after = machine.contextStats(probe_ctx);
        return static_cast<double>((after - before).misses);
    }
};

// ---------------------------------------------------------------------
// Registration.
// ---------------------------------------------------------------------

void
registerBuiltinSources(GadgetRegistry &registry)
{
    auto add = [&](std::string name, std::string kind, std::string params,
                   std::string description,
                   std::function<std::unique_ptr<TimingSource>()> make) {
        GadgetInfo info;
        info.name = std::move(name);
        info.kind = std::move(kind);
        info.params = std::move(params);
        info.description = std::move(description);
        info.factory = std::move(make);
        registry.add(std::move(info));
    };

    add("pa_race", "encoder",
        "ref_op,ref_ops,op,slow_ops,fast_ops,train_rounds",
        "transient presence/absence racing gadget (section 5.1)",
        [] { return std::make_unique<PaRaceSource>(); });
    add("reorder_race", "encoder",
        "ref_op,ref_ops,op,slow_ops,fast_ops,set,tag_base,"
        "readout_repeats",
        "non-transient reorder racing gadget (section 5.2)",
        [] { return std::make_unique<ReorderRaceSource>(); });
    add("plru_pa_magnifier", "amplifier", "set,repeats,tag_base",
        "W=4 tree-PLRU magnifier, presence/absence input (section 6.1)",
        [] {
            return std::make_unique<PlruMagnifierSource>(
                PlruVariant::PresenceAbsence);
        });
    add("plru_reorder_magnifier", "amplifier", "set,repeats,tag_base",
        "W=4 tree-PLRU magnifier, reorder input (section 6.2)",
        [] {
            return std::make_unique<PlruMagnifierSource>(
                PlruVariant::Reorder);
        });
    add("plru_pin_magnifier", "amplifier", "set,repeats,tag_base,max_len",
        "search-derived tree-PLRU pin pattern, any 2^k ways (section 9)",
        [] { return std::make_unique<PinPatternMagnifierSource>(); });
    add("arbitrary_magnifier", "amplifier",
        "num_sets,seq_len,par_len,dist,repeats,prefetch,chain_pad,slack",
        "replacement-policy-agnostic chain-reaction magnifier "
        "(section 6.3)",
        [] { return std::make_unique<ArbitraryMagnifierSource>(); });
    add("arith_magnifier", "amplifier",
        "stages,div_chain,par_divs,add_buffer",
        "arithmetic-only divider-contention magnifier (section 6.4)",
        [] { return std::make_unique<ArithMagnifierSource>(); });
    add("repetition", "composite", "rounds,racing,envelope_ops",
        "flush+reload repetition harness (section 7.1, Fig. 7)",
        [] { return std::make_unique<RepetitionSource>(); });
    add("hacky_timer", "composite",
        "ref_op,ref_ops,repeats,set,tag_base,resolution_ns,jitter_ns",
        "the paper's composed stealthy fine-grained timer (section 7)",
        [] { return std::make_unique<HackyTimerSource>(); });
    add("coarse_timer", "timer",
        "resolution_ns,jitter_ns,op,slow_ops,fast_ops",
        "the bare quantized browser clock (the threat-model baseline)",
        [] { return std::make_unique<CoarseTimerSource>(); });
    add("smt_contention", "timer",
        "op,slow_ops,fast_ops,counter_unroll",
        "SMT port-pressure timer: sibling-context counting progress as "
        "the clock (needs an smt profile)",
        [] { return std::make_unique<SmtContentionSource>(); });
    add("l1_contention", "timer",
        "set,evict_lines,repeats,window_ops",
        "L1 occupancy timer: sibling-context attributed misses as the "
        "clock (needs an smt profile)",
        [] { return std::make_unique<L1ContentionSource>(); });
    add("hacky_pipeline", "composite",
        "rounds,resolution_ns,jitter_ns,ref_op,ref_ops,op,slow_ops,"
        "fast_ops,train_rounds,set,repeats,tag_base",
        "Pipeline: pa_race -> plru_pa_magnifier, coarse-clock readout",
        [] {
            auto pipeline =
                std::make_unique<Pipeline>("hacky_pipeline");
            pipeline->then(std::make_unique<PaRaceSource>())
                .then(std::make_unique<PlruMagnifierSource>(
                    PlruVariant::PresenceAbsence));
            // Span several coarse-clock ticks so a tick-boundary
            // phase cannot flip the decision (cf. HackyTimer's
            // autoRepeats sizing).
            ParamSet defaults;
            defaults.set("repeats", "2000");
            pipeline->configure(defaults);
            return pipeline;
        });
    add("reorder_pipeline", "composite",
        "rounds,resolution_ns,jitter_ns,ref_op,ref_ops,op,slow_ops,"
        "fast_ops,set,tag_base,readout_repeats,repeats",
        "Pipeline: reorder_race -> plru_reorder_magnifier, "
        "coarse-clock readout",
        [] {
            auto pipeline =
                std::make_unique<Pipeline>("reorder_pipeline");
            pipeline->then(std::make_unique<ReorderRaceSource>())
                .then(std::make_unique<PlruMagnifierSource>(
                    PlruVariant::Reorder));
            ParamSet defaults;
            defaults.set("repeats", "2000");
            pipeline->configure(defaults);
            return pipeline;
        });
}

} // namespace hr
