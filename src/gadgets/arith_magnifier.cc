#include "gadgets/arith_magnifier.hh"

#include "util/log.hh"

namespace hr
{

ArithMagnifier::ArithMagnifier(Machine &machine,
                               const ArithMagnifierConfig &config)
    : machine_(machine), config_(config)
{
    const auto &core = machine_.config().core;
    fatalIf(config_.divChain <= 0 || config_.parDivs <= 0,
            "ArithMagnifier: bad stage sizing");
    // Racing stages must take the same time on both paths:
    //   mulChain * latMul == divChain * latDiv.
    mulChain_ = static_cast<int>(
        (static_cast<Cycle>(config_.divChain) * core.fpDiv.latency) /
        core.intMul.latency);
    // Aligned case: PathA's burst occupies the divider for
    // parDivs * initInterval cycles after the racing stage; the ADD
    // buffer must outlast that so the next stage starts contention-free.
    addBuffer_ = config_.addBuffer > 0
                     ? config_.addBuffer
                     : static_cast<int>(config_.parDivs *
                                        core.fpDiv.initInterval) +
                           static_cast<int>(core.fpDiv.latency);
    build();
}

void
ArithMagnifier::build()
{
    ProgramBuilder builder("arith_magnify");

    RegId stages = builder.movImm(config_.stages);
    RegId sync = builder.loadAbsolute(config_.syncAddr);
    RegId head_a = builder.loadOrdered(config_.alignAddrA, sync);
    RegId head_b = builder.loadOrdered(config_.inputAddr, sync);

    // Chain registers seeded once outside the loop (non-zero so the
    // div/mul chains are well-behaved); the chains are loop-carried so
    // a delay in one stage propagates into all following stages.
    RegId chain_a = builder.binopImm(Opcode::And, head_a, 0);
    builder.chainOpImm(Opcode::Add, chain_a, 1);
    RegId chain_b = builder.binopImm(Opcode::And, head_b, 0);
    builder.chainOpImm(Opcode::Add, chain_b, 1);

    SeqBuilder path_a(builder);
    for (int m = 0; m < mulChain_; ++m)
        path_a.chainOpImm(Opcode::Mul, chain_a, 1);
    for (int d = 0; d < config_.parDivs; ++d)
        path_a.binopImm(Opcode::Div, chain_a, 1); // independent burst
    for (int a = 0; a < addBuffer_; ++a)
        path_a.chainOpImm(Opcode::Add, chain_a, 0);

    SeqBuilder path_b(builder);
    for (int d = 0; d < config_.divChain; ++d)
        path_b.chainOpImm(Opcode::Div, chain_b, 1);
    for (int a = 0; a < addBuffer_; ++a)
        path_b.chainOpImm(Opcode::Add, chain_b, 0);

    auto top = builder.newLabel();
    builder.bind(top);
    builder.appendInterleaved({path_a.take(), path_b.take()});
    builder.chainOpImm(Opcode::Sub, stages, 1);
    builder.branch(stages, top);
    builder.halt();
    program_ = builder.take();
}

void
ArithMagnifier::prepare()
{
    machine_.warm(config_.alignAddrA, 1);
    machine_.flushLine(config_.syncAddr);
}

Cycle
ArithMagnifier::traverse()
{
    RunResult result = machine_.run(program_);
    return result.cycles();
}

Cycle
ArithMagnifier::run(bool input_present)
{
    prepare();
    if (input_present)
        machine_.warm(config_.inputAddr, 1);
    else
        machine_.flushLine(config_.inputAddr);
    return traverse();
}

Cycle
ArithMagnifier::measureDelta()
{
    const Cycle fast = run(true);
    const Cycle slow = run(false);
    return slow > fast ? slow - fast : 0;
}

} // namespace hr
