/**
 * @file
 * Racing gadgets (paper section 5): differential timing of a
 * measurement path against a constant-time baseline path.
 *
 * Two flavours:
 *  - TransientPaRace (5.1): the baseline path is the body of a
 *    mispredicted branch whose condition is the measurement path's
 *    terminator. If the measurement path outlasts the baseline, a
 *    transient probe access escapes before the squash (presence);
 *    otherwise it does not (absence).
 *  - ReorderRace (5.2): no speculation at all. Both paths end in a
 *    memory access; the completion order of the paths becomes the
 *    relative order of the two accesses, recorded in replacement state.
 */

#ifndef HR_GADGETS_RACING_HH
#define HR_GADGETS_RACING_HH

#include <optional>

#include "gadgets/path.hh"
#include "sim/machine.hh"

namespace hr
{

/** Configuration of the transient presence/absence racing gadget. */
struct TransientPaRaceConfig
{
    Addr syncAddr = 0x100'0000;  ///< synchronizing line (kept cold)
    Addr probeAddr = 0x200'0000; ///< transient probe target "A"
    Opcode refOp = Opcode::Add;  ///< baseline path operation
    int refOps = 20;             ///< baseline path length (threshold T')
    int trainRounds = 4;         ///< predictor training executions
};

/**
 * Transient presence/absence racing gadget.
 *
 * Builds (once) the program
 *     if (path_m(expr, x)) { path_b(); access[probe]; }
 * trained with x = 0 and attacked with x = 1, per section 5.1.
 */
class TransientPaRace
{
  public:
    TransientPaRace(Machine &machine, const TransientPaRaceConfig &config,
                    const TargetExpr &expr);

    const TransientPaRaceConfig &config() const { return config_; }
    const Program &program() const { return program_; }

    /**
     * Register carrying a runtime argument into the target expression
     * (always register 1 of the program; see TargetExpr::loadIndirect).
     * Passing the timed address as *data* lets training runs use a
     * harmless dummy address so they never touch the attack target.
     */
    static constexpr RegId kArgReg = 1;
    RegId argReg() const { return kArgReg; }

    /** Train the branch predictor (x = 0; cleans probe pollution). */
    void train(std::int64_t arg = 0);

    /**
     * One attack execution (x = 1). Leaves the presence/absence state
     * in the cache for a magnifier; does not read it.
     */
    RunResult runAttack(std::int64_t arg = 0);

    /**
     * Attack, then directly inspect the cache (characterization mode —
     * a real attacker would use a magnifier + coarse timer instead).
     * @return true if the probe line was transiently fetched, i.e.
     *         Time(expr) > Time(baseline).
     */
    bool attackAndProbe(std::int64_t arg = 0);

  private:
    Machine &machine_;
    TransientPaRaceConfig config_;
    Program program_;
    RegId xReg_ = kNoReg;
    RegId argReg_ = kNoReg;

    void build(const TargetExpr &expr);
};

/** Configuration of the non-transient reorder racing gadget. */
struct ReorderRaceConfig
{
    Addr syncAddr = 0x100'0000; ///< synchronizing line (kept cold)
    Addr addrA = 0;             ///< measurement path's access (misses L1)
    Addr addrB = 0;             ///< baseline path's access (hits L1)
    Opcode refOp = Opcode::Add; ///< baseline path operation
    int refOps = 20;            ///< baseline path length
};

/**
 * Non-transient reorder racing gadget: no misspeculation anywhere.
 *
 *     path_m(expr) -> access[A];
 *     path_b()     -> access[B];
 *
 * Both paths hang off the same cache-missing load and race; the
 * relative order in which A's fill and B's touch reach the L1
 * replacement state encodes the race result.
 */
class ReorderRace
{
  public:
    ReorderRace(Machine &machine, const ReorderRaceConfig &config,
                const TargetExpr &expr);

    const ReorderRaceConfig &config() const { return config_; }
    const Program &program() const { return program_; }

    /** One race execution; leaves the ordering state in the cache. */
    RunResult run();

  private:
    Machine &machine_;
    ReorderRaceConfig config_;
    Program program_;

    void build(const TargetExpr &expr);
};

} // namespace hr

#endif // HR_GADGETS_RACING_HH
