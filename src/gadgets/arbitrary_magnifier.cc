#include "gadgets/arbitrary_magnifier.hh"

#include "util/log.hh"

namespace hr
{

ArbitraryMagnifier::ArbitraryMagnifier(
    Machine &machine, const ArbitraryMagnifierConfig &config)
    : machine_(machine), config_(config)
{
    const auto &l1 = machine_.hierarchy().l1().config();
    fatalIf(config_.numSets <= 0 || config_.numSets > l1.numSets,
            "ArbitraryMagnifier: numSets exceeds L1 sets");
    fatalIf(config_.numSets % 2 != 0,
            "ArbitraryMagnifier: numSets must be even");
    fatalIf(config_.dist % 2 != 0,
            "ArbitraryMagnifier: dist must be even (odd steps restore "
            "odd steps)");
    fatalIf(config_.seqLen >= l1.assoc,
            "ArbitraryMagnifier: SEQ must fit in a set with room over");
    build();
}

Addr
ArbitraryMagnifier::seqAddr(int set, int k) const
{
    const auto &l1 = machine_.hierarchy().l1().config();
    const Addr stride =
        static_cast<Addr>(l1.numSets) * static_cast<Addr>(l1.lineBytes);
    return static_cast<Addr>(set) * static_cast<Addr>(l1.lineBytes) +
           static_cast<Addr>(config_.seqTagBase + k) * stride;
}

Addr
ArbitraryMagnifier::parAddrOffset(int set, int j) const
{
    // Static part of a PAR address; the per-iteration tag advance is
    // added at run time through parBaseReg_, so each pass uses fresh
    // conflicting lines.
    const auto &l1 = machine_.hierarchy().l1().config();
    const Addr stride =
        static_cast<Addr>(l1.numSets) * static_cast<Addr>(l1.lineBytes);
    return static_cast<Addr>(set) * static_cast<Addr>(l1.lineBytes) +
           static_cast<Addr>(config_.parTagBase + j) * stride;
}

void
ArbitraryMagnifier::build()
{
    const auto &l1 = machine_.hierarchy().l1().config();
    const Addr stride =
        static_cast<Addr>(l1.numSets) * static_cast<Addr>(l1.lineBytes);

    ProgramBuilder builder("arb_magnify");

    // Loop-invariant setup.
    RegId repeats = builder.movImm(config_.repeats);
    parBaseReg_ = builder.movImm(0);
    const std::int64_t par_advance =
        static_cast<std::int64_t>(stride) * config_.parLen;

    // Synchronizing head and the two path heads. The chain registers
    // are seeded once, outside the loop, so the dependence chains are
    // loop-carried: a delay in one pass propagates into the next.
    RegId sync = builder.loadAbsolute(config_.syncAddr);
    RegId chain_a = builder.loadOrdered(config_.alignAddrA, sync);
    RegId chain_b = builder.loadOrdered(config_.inputAddr, sync);

    SeqBuilder path_a(builder);
    for (int i = 0; i < config_.numSets; i += 2) {
        for (int k = 0; k < config_.seqLen; ++k)
            path_a.loadOrderedInto(chain_a, seqAddr(i, k));
        const int pad_a = config_.chainPadOps + config_.pathASlackOps;
        for (int pad = 0; pad < pad_a; ++pad)
            path_a.chainOpImm(Opcode::Add, chain_a, 0);
        // PAR burst into the set PathB reads next (step i + 1):
        // independent loads, ordered only after this SEQ.
        for (int j = 0; j < config_.parLen; ++j) {
            Instruction par;
            par.op = Opcode::Load;
            par.dst = path_a.newReg();
            par.src0 = chain_a;
            par.scale0 = 0;
            par.src1 = parBaseReg_;
            par.scale1 = 1;
            par.imm =
                static_cast<std::int64_t>(parAddrOffset(i + 1, j));
            path_a.append(par);
        }
    }

    SeqBuilder path_b(builder);
    for (int i = 1; i < config_.numSets; i += 2) {
        for (int k = 0; k < config_.seqLen; ++k)
            path_b.loadOrderedInto(chain_b, seqAddr(i, k));
        for (int pad = 0; pad < config_.chainPadOps; ++pad)
            path_b.chainOpImm(Opcode::Add, chain_b, 0);
        if (config_.prefetch) {
            // Restore the set `dist` steps ahead (same parity, so a
            // set PathB will read again next pass. A restoring fill
            // can evict an already-restored line (random policy), so a
            // sweep leaves a casualty or two; those cost both input
            // polarities equally (paper footnote 6).
            const int target = (i + config_.dist) % config_.numSets;
            for (int k = 0; k < config_.seqLen; ++k)
                path_b.prefetchOrdered(seqAddr(target, k), chain_b);
        }
    }

    // The PAR tag advance for the next iteration; a one-add dependence
    // chain of its own.
    SeqBuilder advance(builder);
    advance.chainOpImm(Opcode::Add, parBaseReg_, par_advance);

    auto top = builder.newLabel();
    builder.bind(top);
    builder.appendInterleaved(
        {path_a.take(), path_b.take(), advance.take()});
    builder.chainOpImm(Opcode::Sub, repeats, 1);
    builder.branch(repeats, top);
    builder.halt();
    program_ = builder.take();
}

void
ArbitraryMagnifier::prime()
{
    // Reset to a reproducible state, then establish the initial
    // conditions. PAR conflict lines are staged in L2/L3 *first*: they
    // are numerous enough to cause inclusive-L3 evictions, which would
    // back-invalidate freshly warmed SEQ lines if done after them. SEQ
    // lines then go resident in L1 (attainable with any policy by
    // repeated access; paper footnote 6).
    machine_.flushAllCaches();

    const auto &l1 = machine_.hierarchy().l1().config();
    const Addr stride =
        static_cast<Addr>(l1.numSets) * static_cast<Addr>(l1.lineBytes);
    for (int pass = 0; pass < config_.repeats; ++pass) {
        const Addr pass_offset =
            static_cast<Addr>(pass) * static_cast<Addr>(config_.parLen) *
            stride;
        for (int i = 1; i < config_.numSets; i += 2)
            for (int j = 0; j < config_.parLen; ++j)
                machine_.warm(parAddrOffset(i, j) + pass_offset, 2);
    }

    for (int s = 0; s < config_.numSets; ++s)
        for (int k = 0; k < config_.seqLen; ++k)
            machine_.warm(seqAddr(s, k), 1);
    machine_.warm(config_.alignAddrA, 1);
    machine_.flushLine(config_.syncAddr);
}

Cycle
ArbitraryMagnifier::traverse()
{
    RunResult result = machine_.run(program_);
    return result.cycles();
}

Cycle
ArbitraryMagnifier::run(bool input_present)
{
    prime();
    if (input_present)
        machine_.warm(config_.inputAddr, 1);
    else
        machine_.flushLine(config_.inputAddr);
    return traverse();
}

Cycle
ArbitraryMagnifier::measureDelta()
{
    const Cycle fast = run(true);
    const Cycle slow = run(false);
    return slow > fast ? slow - fast : 0;
}

} // namespace hr
