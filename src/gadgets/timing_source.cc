#include "gadgets/timing_source.hh"

#include "util/log.hh"

namespace hr
{

double
TimingSample::auxValue(const std::string &key, double def) const
{
    for (const auto &[name, value] : aux)
        if (name == key)
            return value;
    return def;
}

Trace
TimingSource::trace(Machine &machine, const std::vector<bool> &secrets)
{
    Trace samples;
    samples.reserve(secrets.size());
    for (bool secret : secrets)
        samples.push_back(sample(machine, secret));
    return samples;
}

void
TimingSource::bindTarget(Machine &, Addr, Addr)
{
    fatal(name() + " is not an encoder (bindTarget unsupported)");
}

void
TimingSource::primeEncoder(Machine &, bool)
{
    fatal(name() + " is not an encoder (primeEncoder unsupported)");
}

void
TimingSource::transmit(Machine &, bool)
{
    fatal(name() + " is not an encoder (transmit unsupported)");
}

void
TimingSource::prepare(Machine &)
{
    fatal(name() + " is not an amplifier (prepare unsupported)");
}

std::pair<Addr, Addr>
TimingSource::inputLines(Machine &)
{
    fatal(name() + " is not an amplifier (inputLines unsupported)");
}

void
TimingSource::forceInput(Machine &, bool)
{
    fatal(name() + " is not an amplifier (forceInput unsupported)");
}

Cycle
TimingSource::amplify(Machine &)
{
    fatal(name() + " is not an amplifier (amplify unsupported)");
}

PolarityStats
measurePolarities(TimingSource &source, Machine &machine, int trials)
{
    PolarityStats stats;
    stats.trials = trials;
    double fast_cycles = 0, slow_cycles = 0;
    double fast_reading = 0, slow_reading = 0;
    for (int t = 0; t < trials; ++t) {
        for (bool secret : {false, true}) {
            const TimingSample s = source.sample(machine, secret);
            (secret ? slow_cycles : fast_cycles) +=
                static_cast<double>(s.cycles);
            (secret ? slow_reading : fast_reading) += s.ns;
            stats.correct += s.bit == secret ? 1 : 0;
        }
    }
    if (trials > 0) {
        stats.fastCycles = fast_cycles / trials;
        stats.slowCycles = slow_cycles / trials;
        stats.fastReading = fast_reading / trials;
        stats.slowReading = slow_reading / trials;
    }
    return stats;
}

} // namespace hr
