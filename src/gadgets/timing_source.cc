#include "gadgets/timing_source.hh"

#include "util/log.hh"

namespace hr
{

double
TimingSample::auxValue(const std::string &key, double def) const
{
    for (const auto &[name, value] : aux)
        if (name == key)
            return value;
    return def;
}

Trace
TimingSource::trace(Machine &machine, const std::vector<bool> &secrets)
{
    Trace samples;
    samples.reserve(secrets.size());
    for (bool secret : secrets)
        samples.push_back(sample(machine, secret));
    return samples;
}

void
TimingSource::bindTarget(Machine &, Addr, Addr)
{
    fatal(name() + " is not an encoder (bindTarget unsupported)");
}

void
TimingSource::primeEncoder(Machine &, bool)
{
    fatal(name() + " is not an encoder (primeEncoder unsupported)");
}

void
TimingSource::transmit(Machine &, bool)
{
    fatal(name() + " is not an encoder (transmit unsupported)");
}

void
TimingSource::prepare(Machine &)
{
    fatal(name() + " is not an amplifier (prepare unsupported)");
}

std::pair<Addr, Addr>
TimingSource::inputLines(Machine &)
{
    fatal(name() + " is not an amplifier (inputLines unsupported)");
}

void
TimingSource::forceInput(Machine &, bool)
{
    fatal(name() + " is not an amplifier (forceInput unsupported)");
}

Cycle
TimingSource::amplify(Machine &)
{
    fatal(name() + " is not an amplifier (amplify unsupported)");
}

} // namespace hr
