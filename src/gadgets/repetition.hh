/**
 * @file
 * Repetition gadgets (paper sections 2.3 and 7.1).
 *
 * A repetition gadget runs a staged attack many times, accumulating the
 * per-stage timing so the total becomes visible to a coarse timer. The
 * paper shows this can fail: a stage whose timing anti-correlates with
 * the signal (e.g. the victim-load stage of flush+reload) cancels the
 * accumulated difference. Wrapping that stage in a racing gadget whose
 * baseline outlasts it makes the stage constant-time and restores the
 * signal (Fig. 7).
 */

#ifndef HR_GADGETS_REPETITION_HH
#define HR_GADGETS_REPETITION_HH

#include <string>
#include <vector>

#include "gadgets/path.hh"
#include "sim/machine.hh"

namespace hr
{

/** Per-stage accumulated cycles over all rounds. */
struct StageBreakdown
{
    std::vector<std::string> names;
    std::vector<Cycle> cycles;

    Cycle total() const;
    /** Stage share of the total, in percent. */
    double percent(std::size_t stage) const;
};

/**
 * Runs a sequence of stage programs round-robin for a number of rounds,
 * accumulating per-stage cycles.
 */
class RepetitionGadget
{
  public:
    /** Stage: a program plus a per-round setup hook (may be empty). */
    struct Stage
    {
        std::string name;
        Program program;
        std::function<void(Machine &)> setup; ///< run before each round
    };

    RepetitionGadget(Machine &machine, std::vector<Stage> stages);

    /** Execute `rounds` rounds; returns accumulated per-stage cycles. */
    StageBreakdown run(int rounds);

  private:
    Machine &machine_;
    std::vector<Stage> stages_;
};

/**
 * Wrap a payload expression in a constant-time racing envelope: the
 * payload races a baseline path longer than the payload's worst case,
 * so the envelope's duration is the baseline's regardless of the
 * payload's cache behaviour (section 7.1's fix).
 */
Program makeConstantTimeStage(const TargetExpr &payload, Opcode ref_op,
                              int ref_ops, Addr sync_addr,
                              const std::string &name = "const_stage");

/** Line layout of the flush+reload round (paper section 7.1, Fig. 7). */
struct FlushReloadStages
{
    Addr probeAddr = 0x600'0000; ///< the shared line being probed
    Addr otherAddr = 0x608'0000; ///< victim's alternative (kept warm)
    Addr syncAddr = 0x100'0000;  ///< for the racing envelope
    int envelopeOps = 260;       ///< baseline > worst-case load time
};

/**
 * Build the evict / victim-load / reload repetition gadget of Fig. 7.
 * @p same_addr selects which line the victim stage touches; @p racing
 * hides the load stage inside a constant-time racing envelope.
 */
RepetitionGadget makeFlushReloadGadget(Machine &machine,
                                       const FlushReloadStages &stages,
                                       bool same_addr, bool racing);

} // namespace hr

#endif // HR_GADGETS_REPETITION_HH
