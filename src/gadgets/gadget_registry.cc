#include "gadgets/gadget_registry.hh"

#include <algorithm>

#include "gadgets/sources.hh"
#include "util/log.hh"

namespace hr
{

GadgetRegistry &
GadgetRegistry::instance()
{
    static GadgetRegistry registry;
    // Builtin sources are registered by an explicit call (not static
    // initializers) so a static-archive link cannot drop them.
    static const bool builtins_registered = [] {
        registerBuiltinSources(registry);
        return true;
    }();
    (void)builtins_registered;
    return registry;
}

void
GadgetRegistry::add(GadgetInfo info)
{
    fatalIf(info.name.empty(), "GadgetRegistry: empty gadget name");
    fatalIf(!info.factory, "GadgetRegistry: gadget '" + info.name +
                               "' has no factory");
    fatalIf(find(info.name) != nullptr,
            "GadgetRegistry: duplicate gadget '" + info.name + "'");
    gadgets_.push_back(std::move(info));
}

const GadgetInfo *
GadgetRegistry::find(const std::string &name) const
{
    for (const GadgetInfo &gadget : gadgets_)
        if (gadget.name == name)
            return &gadget;
    return nullptr;
}

const GadgetInfo &
GadgetRegistry::resolve(const std::string &name) const
{
    if (const GadgetInfo *exact = find(name))
        return *exact;
    std::vector<const GadgetInfo *> matches;
    for (const GadgetInfo &gadget : gadgets_)
        if (gadget.name.rfind(name, 0) == 0)
            matches.push_back(&gadget);
    if (matches.size() == 1)
        return *matches.front();
    std::string known;
    std::vector<std::string> names;
    for (const GadgetInfo *gadget :
         matches.empty() ? all() : matches) {
        known += (known.empty() ? "" : ", ") + gadget->name;
        names.push_back(gadget->name);
    }
    if (matches.empty()) {
        const std::string suggestion = closestMatch(name, names);
        fatal("unknown gadget '" + name + "'" +
              (suggestion.empty()
                   ? ""
                   : " (did you mean '" + suggestion + "'?)") +
              " (known: " + known + ")");
    }
    fatal("ambiguous gadget prefix '" + name + "' (matches: " + known +
          ")");
}

std::vector<std::string>
GadgetRegistry::paramKeys(const GadgetInfo &info)
{
    std::vector<std::string> keys;
    std::size_t start = 0;
    while (start <= info.params.size()) {
        const auto comma = info.params.find(',', start);
        const std::string key = info.params.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        if (!key.empty())
            keys.push_back(key);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return keys;
}

std::unique_ptr<TimingSource>
GadgetRegistry::make(const std::string &name, const ParamSet &params) const
{
    const GadgetInfo &info = resolve(name);
    // Reject keys the gadget does not declare: a typo'd parameter
    // must not silently configure nothing. The error lists the valid
    // keys and suggests the nearest match.
    params.requireKeys(paramKeys(info), "gadget '" + info.name + "'");
    std::unique_ptr<TimingSource> source = info.factory();
    source->configure(params);
    return source;
}

std::vector<const GadgetInfo *>
GadgetRegistry::all() const
{
    std::vector<const GadgetInfo *> out;
    out.reserve(gadgets_.size());
    for (const GadgetInfo &gadget : gadgets_)
        out.push_back(&gadget);
    std::sort(out.begin(), out.end(),
              [](const GadgetInfo *a, const GadgetInfo *b) {
                  return a->name < b->name;
              });
    return out;
}

GadgetRegistrar::GadgetRegistrar(
    std::string name, std::string kind, std::string params,
    std::string description,
    std::function<std::unique_ptr<TimingSource>()> factory)
{
    GadgetInfo info;
    info.name = std::move(name);
    info.kind = std::move(kind);
    info.params = std::move(params);
    info.description = std::move(description);
    info.factory = std::move(factory);
    GadgetRegistry::instance().add(std::move(info));
}

} // namespace hr
