#include "gadgets/path.hh"

#include <utility>

#include "util/log.hh"

namespace hr
{

TargetExpr
TargetExpr::empty()
{
    TargetExpr expr;
    expr.name = "empty";
    expr.emit = [](SeqBuilder &, RegId in) { return in; };
    return expr;
}

TargetExpr
TargetExpr::opChain(Opcode op, int n)
{
    TargetExpr expr;
    expr.name = opcodeName(op) + "x" + std::to_string(n);
    expr.emit = [op, n](SeqBuilder &seq, RegId in) {
        // Seed with a non-zero value so div chains are well-defined;
        // derive it from `in` to keep the data dependence.
        RegId r = seq.binopImm(Opcode::Add, in,
                               op == Opcode::Div ? 1 : 0);
        for (int i = 0; i < n; ++i)
            seq.chainOpImm(op, r, 1);
        return r;
    };
    return expr;
}

TargetExpr
TargetExpr::loadLatency(Addr addr)
{
    TargetExpr expr;
    expr.name = "load@" + std::to_string(addr);
    expr.emit = [addr](SeqBuilder &seq, RegId in) {
        return seq.loadOrdered(addr, in);
    };
    return expr;
}

TargetExpr
TargetExpr::loadChain(std::vector<Addr> addrs)
{
    TargetExpr expr;
    expr.name = "loadchain_x" + std::to_string(addrs.size());
    expr.emit = [addrs = std::move(addrs)](SeqBuilder &seq, RegId in) {
        RegId r = in;
        for (Addr addr : addrs)
            r = seq.loadOrdered(addr, r);
        return r;
    };
    return expr;
}

TargetExpr
TargetExpr::loadIndirect(RegId addr_reg)
{
    TargetExpr expr;
    expr.name = "load[r" + std::to_string(addr_reg) + "]";
    expr.emit = [addr_reg](SeqBuilder &seq, RegId in) {
        Instruction inst;
        inst.op = Opcode::Load;
        inst.dst = seq.newReg();
        inst.src0 = in;
        inst.scale0 = 0;
        inst.src1 = addr_reg;
        inst.scale1 = 1;
        inst.imm = 0;
        seq.append(inst);
        return inst.dst;
    };
    return expr;
}

RegId
embedExpression(SeqBuilder &seq, RegId head, const TargetExpr &expr)
{
    fatalIf(!expr.emit, "TargetExpr has no emit function");
    // Pre-extension: the expression's input is derived from the head
    // (value 0 at run time), so it cannot start before the head.
    RegId input = seq.binopImm(Opcode::And, head, 0);
    RegId output = expr.emit(seq, input);
    // Post-extension: collapse the output to zero while keeping the
    // data dependence, producing the terminator.
    return seq.binopImm(Opcode::And, output, 0);
}

} // namespace hr
