/**
 * @file
 * Arithmetic-operation-only magnifier gadget (paper section 6.4).
 *
 * Uses no memory beyond two head loads: two paths of chained arithmetic
 * race through repeated stages. PathA's racing stage is a chain of MULs
 * sized to take exactly as long as PathB's chain of DIVs; PathA then
 * issues a burst of independent DIVs. Aligned, the burst lands in a gap
 * and nobody waits. Misaligned, the burst occupies the (not fully
 * pipelined) divider exactly when PathB's dependent DIVs need it,
 * pushing PathB later every stage — a cache-free chain reaction that no
 * cache defence can touch.
 */

#ifndef HR_GADGETS_ARITH_MAGNIFIER_HH
#define HR_GADGETS_ARITH_MAGNIFIER_HH

#include "sim/machine.hh"

namespace hr
{

/** Configuration of the arithmetic-only magnifier. */
struct ArithMagnifierConfig
{
    int stages = 1000; ///< racing stages (the gadget's repeat count)
    int divChain = 8;  ///< PathB: dependent DIVs per stage
    int parDivs = 4;   ///< PathA: independent DIV burst per stage
    /**
     * ADD buffer per stage (both paths). 0 = auto: sized so the aligned
     * case has no divider contention (parDivs * initiation interval
     * plus margin).
     */
    int addBuffer = 0;

    Addr syncAddr = 0x100'0000;
    Addr inputAddr = 0x300'0000;  ///< PathB head: present = aligned
    Addr alignAddrA = 0x310'0000; ///< PathA head: always present
};

/** The magnifier. MUL chain length is derived from the FU latencies. */
class ArithMagnifier
{
  public:
    ArithMagnifier(Machine &machine, const ArithMagnifierConfig &config);

    const ArithMagnifierConfig &config() const { return config_; }
    const Program &program() const { return program_; }

    /** MULs per racing stage (divChain * latDiv / latMul). */
    int mulChain() const { return mulChain_; }
    /** Effective ADD buffer length. */
    int addBuffer() const { return addBuffer_; }

    /** One magnified observation. @return duration in cycles. */
    Cycle run(bool input_present);

    /** Cycle delta between absent and present inputs. */
    Cycle measureDelta();

    /** Warm PathA's head, chill the sync line (before each run). */
    void prepare();

    /**
     * Run the racing stages over the current cache state (prepare()
     * and the input line's state are the caller's business — the
     * amplify step of a composed pipeline).
     */
    Cycle traverse();

  private:
    Machine &machine_;
    ArithMagnifierConfig config_;
    int mulChain_;
    int addBuffer_;
    Program program_;

    void build();
};

} // namespace hr

#endif // HR_GADGETS_ARITH_MAGNIFIER_HH
