/**
 * @file
 * Path construction (paper section 4): embedding a target expression
 * into a measurement path with pre- and post-extensions.
 *
 * A TargetExpr is "the thing whose timing the attacker wants". The
 * PathEmbedder wraps it so that (a) all of its inputs depend on a single
 * head register (synchronizing the path's start on one cache-missing
 * load) and (b) all of its outputs funnel into a single terminator
 * register (marking the path's completion), exactly as Fig. 2 / Code
 * Listing 2 describe.
 */

#ifndef HR_GADGETS_PATH_HH
#define HR_GADGETS_PATH_HH

#include <functional>
#include <string>

#include "isa/program.hh"
#include "util/types.hh"

namespace hr
{

/**
 * An attacker-chosen expression to be timed.
 *
 * The emit callback writes the expression into a sequence builder. The
 * input register carries the value 0 at run time (it is derived from
 * the synchronizing load of a zeroed line), so expressions may use it
 * to order themselves after the path head without changing addresses
 * or values. The returned register must be data-dependent on the
 * expression's complete execution.
 */
struct TargetExpr
{
    std::string name = "expr";
    std::function<RegId(SeqBuilder &, RegId)> emit;

    /** Expression that finishes immediately. */
    static TargetExpr empty();

    /** A serial chain of n ops (add/mul/div/lea...), latency n*L_op. */
    static TargetExpr opChain(Opcode op, int n);

    /**
     * A single load of @p addr: the expression whose timing
     * distinguishes cache levels. This is the timer primitive used by
     * the eviction-set generator (section 7.4).
     */
    static TargetExpr loadLatency(Addr addr);

    /** A serial pointer chase over the given addresses. */
    static TargetExpr loadChain(std::vector<Addr> addrs);

    /**
     * A single load whose address arrives in @p addr_reg at run time
     * (see TransientPaRace::kArgReg). Lets the same trained program
     * time different addresses — the timer primitive of section 7.4.
     */
    static TargetExpr loadIndirect(RegId addr_reg);
};

/**
 * Embeds a TargetExpr into a measurement path (pre-extension feeds the
 * expression from the head; post-extension collapses its output).
 *
 * @return the terminator register: zero-valued, data-dependent on the
 *         whole expression.
 */
RegId embedExpression(SeqBuilder &seq, RegId head, const TargetExpr &expr);

} // namespace hr

#endif // HR_GADGETS_PATH_HH
