#include "gadgets/racing.hh"

#include "util/log.hh"

namespace hr
{

TransientPaRace::TransientPaRace(Machine &machine,
                                 const TransientPaRaceConfig &config,
                                 const TargetExpr &expr)
    : machine_(machine), config_(config)
{
    build(expr);
}

void
TransientPaRace::build(const TargetExpr &expr)
{
    ProgramBuilder builder("pa_race[" + expr.name + "]");
    xReg_ = builder.newReg();   // attack input: 0 = train, 1 = attack
    argReg_ = builder.newReg(); // runtime expression argument
    panicIf(argReg_ != kArgReg, "argReg allocation order violated");

    // omx = 1 - x, computed up front (cheap, independent of the race).
    RegId omx = builder.binopImm(Opcode::Sub, xReg_, 1);
    RegId neg_omx = builder.binopImm(Opcode::Mul, omx, -1);

    // Synchronizing head: a load that must miss, on which both paths
    // depend, so they reach the backend long before either can issue.
    RegId sync = builder.loadAbsolute(config_.syncAddr);

    // Measurement path: pre-extension + expression + post-extension.
    SeqBuilder measurement(builder);
    RegId terminator = embedExpression(measurement, sync, expr);
    builder.appendInterleaved({measurement.take()});

    // cond = (terminator & 0) + (1 - x): ready only when the whole
    // measurement path has completed; equals 1 - x.
    RegId cond = builder.binop(Opcode::Add, terminator, neg_omx);

    // if (cond) { baseline(); access[probe]; }
    auto end = builder.newLabel();
    builder.branch(cond, end, /*invert=*/true); // skip body iff cond == 0

    // Baseline path, also synchronized on the head. While this branch
    // is mispredicted (trained not-taken, actually taken), the body
    // executes transiently and races the measurement path above.
    RegId base = builder.binopImm(Opcode::And, sync, 0);
    RegId tail = builder.opChain(config_.refOp, config_.refOps, base, 1);
    RegId zeroed = builder.binopImm(Opcode::And, tail, 0);
    builder.loadOrdered(config_.probeAddr, zeroed);

    builder.bind(end);
    builder.halt();
    program_ = builder.take();
}

void
TransientPaRace::train(std::int64_t arg)
{
    for (int i = 0; i < config_.trainRounds; ++i) {
        machine_.flushLine(config_.syncAddr);
        machine_.run(program_, {{xReg_, 0}, {argReg_, arg}});
        machine_.settle();
        // Training executes the body architecturally (cond = 1), which
        // touches the probe; clean that up (requirement (b) analogue).
        machine_.flushLine(config_.probeAddr);
    }
}

RunResult
TransientPaRace::runAttack(std::int64_t arg)
{
    machine_.flushLine(config_.syncAddr);
    return machine_.run(program_, {{xReg_, 1}, {argReg_, arg}});
}

bool
TransientPaRace::attackAndProbe(std::int64_t arg)
{
    machine_.flushLine(config_.probeAddr);
    runAttack(arg);
    machine_.settle();
    return machine_.probeLevel(config_.probeAddr) != 0;
}

ReorderRace::ReorderRace(Machine &machine, const ReorderRaceConfig &config,
                         const TargetExpr &expr)
    : machine_(machine), config_(config)
{
    fatalIf(config_.addrA == config_.addrB,
            "ReorderRace: A and B must differ");
    build(expr);
}

void
ReorderRace::build(const TargetExpr &expr)
{
    ProgramBuilder builder("reorder_race[" + expr.name + "]");

    RegId sync = builder.loadAbsolute(config_.syncAddr);

    // Measurement path -> access[A].
    SeqBuilder measurement(builder);
    RegId terminator = embedExpression(measurement, sync, expr);
    measurement.loadOrdered(config_.addrA, terminator);

    // Baseline path -> access[B].
    SeqBuilder baseline(builder);
    RegId base = baseline.binopImm(Opcode::And, sync, 0);
    RegId tail = baseline.opChain(config_.refOp, config_.refOps, base, 1);
    RegId zeroed = baseline.binopImm(Opcode::And, tail, 0);
    baseline.loadOrdered(config_.addrB, zeroed);

    builder.appendInterleaved({measurement.take(), baseline.take()});
    builder.halt();
    program_ = builder.take();
}

RunResult
ReorderRace::run()
{
    machine_.flushLine(config_.syncAddr);
    return machine_.run(program_);
}

} // namespace hr
