#include "gadgets/hacky_timer.hh"

#include "timer/calibration.hh"
#include "util/log.hh"

namespace hr
{

HackyTimer::HackyTimer(Machine &machine, const HackyTimerConfig &config)
    : machine_(machine), config_(config), coarse_(config.timer)
{
    fatalIf(config_.timer.ghz != machine_.config().ghz,
            "HackyTimer: timer clock must match the machine clock");

    magConfig_ = PlruMagnifier::makeConfig(
        machine_, config_.plruSet,
        config_.magnifierRepeats > 0 ? config_.magnifierRepeats
                                     : autoRepeats(),
        config_.plruTagBase);
    magnifier_ = std::make_unique<PlruMagnifier>(
        machine_, magConfig_, PlruVariant::PresenceAbsence);

    TransientPaRaceConfig race_config;
    race_config.syncAddr = config_.syncAddr;
    race_config.probeAddr = magConfig_.a; // probe is the magnified line
    race_config.refOp = config_.refOp;
    race_config.refOps = config_.refOps;
    race_config.trainRounds = config_.trainRounds;
    race_ = std::make_unique<TransientPaRace>(
        machine_, race_config,
        TargetExpr::loadIndirect(TransientPaRace::kArgReg));
}

int
HackyTimer::autoRepeats() const
{
    // Each pattern period contributes roughly three L1 misses versus
    // six hits; size the traversal so the slow/fast gap spans several
    // timer ticks.
    const auto &mem = machine_.config().memory;
    const double per_period =
        3.0 * static_cast<double>(mem.l2Latency - mem.l1Latency);
    const double target_cycles =
        4.0 * config_.timer.resolutionNs * machine_.config().ghz;
    const int repeats = static_cast<int>(target_cycles / per_period) + 1;
    return std::max(repeats, 16);
}

double
HackyTimer::magnifyAndTime()
{
    const Cycle t0 = machine_.now();
    const double begin = coarse_.nowNs(t0);
    magnifier_->traverse();
    const double end = coarse_.nowNs(machine_.now());
    stats_.cyclesSpent += machine_.now() - t0;
    return end - begin;
}

void
HackyTimer::calibrate()
{
    // Known-fast: probe absent. Known-slow: probe present (inserted the
    // same way the racing gadget would insert it).
    thresholdNs_ = calibrateThreshold(
                       [&](bool slow) {
                           magnifier_->prime();
                           if (slow)
                               machine_.warm(magConfig_.a, 1);
                           return magnifyAndTime();
                       },
                       "HackyTimer::calibrate")
                       .thresholdNs;
}

bool
HackyTimer::decide(double observed_ns)
{
    panicIf(thresholdNs_ < 0, "HackyTimer used before calibrate()");
    return observed_ns > thresholdNs_;
}

bool
HackyTimer::loadIsSlow(Addr target)
{
    ++stats_.queries;
    const Cycle t0 = machine_.now();
    race_->train(static_cast<std::int64_t>(config_.trainAddr));
    magnifier_->prime();
    race_->runAttack(static_cast<std::int64_t>(target));
    stats_.cyclesSpent += machine_.now() - t0;
    return decide(magnifyAndTime());
}

bool
HackyTimer::exprIsSlow(const TargetExpr &expr)
{
    ++stats_.queries;
    TransientPaRaceConfig race_config;
    race_config.syncAddr = config_.syncAddr;
    race_config.probeAddr = magConfig_.a;
    race_config.refOp = config_.refOp;
    race_config.refOps = config_.refOps;
    race_config.trainRounds = config_.trainRounds;
    TransientPaRace race(machine_, race_config, expr);

    const Cycle t0 = machine_.now();
    race.train();
    magnifier_->prime();
    race.runAttack();
    stats_.cyclesSpent += machine_.now() - t0;
    return decide(magnifyAndTime());
}

} // namespace hr
