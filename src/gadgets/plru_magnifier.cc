#include "gadgets/plru_magnifier.hh"

#include "util/log.hh"

namespace hr
{

PlruMagnifier::PlruMagnifier(Machine &machine,
                             const PlruMagnifierConfig &config,
                             PlruVariant variant)
    : machine_(machine), config_(config), variant_(variant)
{
    const auto &l1 = machine_.hierarchy().l1().config();
    fatalIf(l1.assoc != 4,
            "PlruMagnifier implements the paper's W=4 pattern; "
            "configure a 4-way L1 (see MachineConfig) or use "
            "PlruPinPatternFinder for other associativities");
    fatalIf(l1.policy != PolicyKind::TreePlru,
            "PlruMagnifier requires a tree-PLRU L1");
    const Addr line = ~static_cast<Addr>(l1.lineBytes - 1);
    const int set = machine_.hierarchy().l1().setIndex(config_.a);
    for (Addr addr : {config_.b, config_.c, config_.d, config_.e}) {
        fatalIf(machine_.hierarchy().l1().setIndex(addr) != set,
                "PlruMagnifier: lines must map to one L1 set");
        fatalIf((addr & line) == (config_.a & line),
                "PlruMagnifier: lines must be distinct");
    }
    buildTraverseProgram();
}

std::vector<Addr>
PlruMagnifier::sameSetLines(const Machine &machine, int set_index,
                            int count, int tag_base)
{
    const auto &l1 = machine.hierarchy().l1().config();
    fatalIf(set_index < 0 || set_index >= l1.numSets,
            "sameSetLines: bad set index");
    const Addr stride =
        static_cast<Addr>(l1.numSets) * static_cast<Addr>(l1.lineBytes);
    std::vector<Addr> out;
    out.reserve(static_cast<std::size_t>(count));
    for (int k = 0; k < count; ++k) {
        out.push_back(static_cast<Addr>(set_index) *
                          static_cast<Addr>(l1.lineBytes) +
                      static_cast<Addr>(tag_base + k) * stride);
    }
    return out;
}

PlruMagnifierConfig
PlruMagnifier::makeConfig(const Machine &machine, int set_index,
                          int repeats, int tag_base)
{
    auto lines = sameSetLines(machine, set_index, 5, tag_base);
    PlruMagnifierConfig config;
    config.a = lines[0];
    config.b = lines[1];
    config.c = lines[2];
    config.d = lines[3];
    config.e = lines[4];
    config.repeats = repeats;
    return config;
}

std::vector<Addr>
PlruMagnifier::pattern() const
{
    if (variant_ == PlruVariant::PresenceAbsence) {
        return {config_.b, config_.c, config_.e,
                config_.c, config_.d, config_.c};
    }
    return {config_.c, config_.e, config_.c,
            config_.d, config_.c, config_.b};
}

void
PlruMagnifier::prime()
{
    // Clear the five lines everywhere, then establish Fig. 3(1):
    // ways [B,C,D,E], tree = (0,0,1) => eviction candidate B.
    for (Addr addr : {config_.a, config_.b, config_.c, config_.d,
                      config_.e}) {
        machine_.flushLine(addr);
    }
    machine_.warm(config_.b, 1);
    machine_.warm(config_.c, 1);
    machine_.warm(config_.d, 1);
    machine_.warm(config_.e, 1);
    machine_.warm(config_.d, 1); // extra touch flips the right subtree
    // Stage A in L2 so the racing access fills L1 quickly.
    machine_.warm(config_.a, 2);
}

Program
PlruMagnifier::buildPrimeProgram() const
{
    // The attacker-realistic version of prime(): a serial load chain
    // B, C, D, E, D (order guarantees the fills land in way order and
    // the final D touch sets the right-subtree pointer).
    ProgramBuilder builder("plru_prime");
    RegId r = builder.movImm(0);
    for (Addr addr : {config_.b, config_.c, config_.d, config_.e,
                      config_.d}) {
        r = builder.loadOrdered(addr, r);
    }
    builder.halt();
    return builder.take();
}

void
PlruMagnifier::buildTraverseProgram()
{
    ProgramBuilder builder(variant_ == PlruVariant::PresenceAbsence
                               ? "plru_magnify_pa"
                               : "plru_magnify_reorder");
    RegId r = builder.movImm(0);
    const auto period = pattern();
    for (int rep = 0; rep < config_.repeats; ++rep)
        for (Addr addr : period)
            builder.loadOrderedInto(r, addr);
    builder.halt();
    traverseProgram_ = builder.take();
}

MagnifierResult
PlruMagnifier::traverse()
{
    const std::uint64_t misses_before = machine_.cacheMisses(1);
    RunResult run = machine_.run(traverseProgram_);
    MagnifierResult result;
    result.cycles = run.cycles();
    result.l1Misses = machine_.cacheMisses(1) - misses_before;
    return result;
}

} // namespace hr
