#include "gadgets/plru_pattern.hh"

#include <algorithm>
#include <map>
#include <optional>
#include <queue>

#include "util/log.hh"

namespace hr
{

PlruSetModel::PlruSetModel(int assoc)
    : assoc_(assoc), contents_(static_cast<std::size_t>(assoc), -1),
      plru_(assoc)
{
}

int
PlruSetModel::wayOf(int line) const
{
    for (int w = 0; w < assoc_; ++w)
        if (contents_[static_cast<std::size_t>(w)] == line)
            return w;
    return -1;
}

bool
PlruSetModel::contains(int line) const
{
    return wayOf(line) >= 0;
}

bool
PlruSetModel::access(int line)
{
    int way = wayOf(line);
    if (way >= 0) {
        plru_.touch(way);
        return false;
    }
    // Prefer an invalid way; otherwise evict the candidate.
    way = -1;
    for (int w = 0; w < assoc_; ++w) {
        if (contents_[static_cast<std::size_t>(w)] == -1) {
            way = w;
            break;
        }
    }
    if (way < 0)
        way = plru_.victim();
    contents_[static_cast<std::size_t>(way)] = line;
    plru_.touch(way);
    return true;
}

int
PlruSetModel::evictionCandidate() const
{
    TreePlruPolicy copy = plru_;
    return contents_[static_cast<std::size_t>(copy.victim())];
}

std::string
PlruSetModel::render() const
{
    std::string out = "[";
    for (int w = 0; w < assoc_; ++w) {
        if (w)
            out += ' ';
        const int line = contents_[static_cast<std::size_t>(w)];
        if (line < 0)
            out += '-';
        else if (line < 26)
            out += static_cast<char>('A' + line);
        else
            out += std::to_string(line);
    }
    out += "]";
    return out;
}

bool
PlruSetModel::operator==(const PlruSetModel &other) const
{
    return contents_ == other.contents_ && bits() == other.bits();
}

namespace
{

/** Canonical pre-race state: lines 1..W resident, tree as in Fig 3(1). */
PlruSetModel
canonicalBaseState(int assoc)
{
    PlruSetModel model(assoc);
    for (int line = 1; line <= assoc; ++line)
        model.access(line);
    // Extra touch on the last-but-one fill to move the candidate to
    // way 0 while leaving an interior pointer set (W=4: state (0,0,1)).
    model.access(assoc - 1);
    return model;
}

/** Serializable key for visited-state tracking. */
std::string
stateKey(const PlruSetModel &model)
{
    std::string key;
    for (int line : model.contents())
        key += static_cast<char>(line + 2);
    key += '|';
    for (auto bit : model.bits())
        key += static_cast<char>('0' + bit);
    return key;
}

} // namespace

std::optional<PinPattern>
findPinPattern(int assoc, int max_len)
{
    fatalIf(assoc < 2 || (assoc & (assoc - 1)) != 0,
            "findPinPattern: associativity must be a power of two");

    // Post-race state: pinned line 0 inserted over the candidate.
    PlruSetModel start = canonicalBaseState(assoc);
    start.access(0);

    // Build the reachable state graph over accesses that never evict
    // the pinned line. Fig. 3's own cycle returns to a way-permuted
    // equivalent of its start, so we search for *any* cycle containing
    // a miss edge, plus a lead-in path from the start state.
    struct EdgeRec
    {
        int line;
        int to; // node index
        bool miss;
    };
    std::vector<PlruSetModel> nodes;
    std::vector<std::vector<EdgeRec>> edges;
    std::vector<int> parent, parent_line; // BFS tree for lead-ins
    std::map<std::string, int> index;

    std::vector<int> alphabet;
    for (int line = 1; line <= assoc + 1; ++line)
        alphabet.push_back(line);

    nodes.push_back(start);
    edges.emplace_back();
    parent.push_back(-1);
    parent_line.push_back(-1);
    index[stateKey(start)] = 0;

    constexpr std::size_t kMaxNodes = 200'000;
    for (std::size_t at = 0; at < nodes.size() && at < kMaxNodes; ++at) {
        for (int line : alphabet) {
            PlruSetModel next = nodes[at];
            const bool miss = next.access(line);
            if (!next.contains(0))
                continue; // pinned line evicted: dead edge
            const std::string key = stateKey(next);
            auto [it, inserted] =
                index.try_emplace(key, static_cast<int>(nodes.size()));
            if (inserted) {
                nodes.push_back(next);
                edges.emplace_back();
                parent.push_back(static_cast<int>(at));
                parent_line.push_back(line);
            }
            edges[at].push_back({line, it->second, miss});
        }
    }

    // Find the shortest cycle through some miss edge (u -> v): BFS from
    // v back to u inside the graph, then stitch the edge labels.
    auto bfs_path = [&](int from, int to) -> std::optional<std::vector<int>> {
        std::vector<int> prev(nodes.size(), -2), prev_line(nodes.size());
        std::queue<int> frontier;
        frontier.push(from);
        prev[static_cast<std::size_t>(from)] = -1;
        while (!frontier.empty()) {
            const int at = frontier.front();
            frontier.pop();
            if (at == to)
                break;
            for (const auto &edge : edges[static_cast<std::size_t>(at)]) {
                if (prev[static_cast<std::size_t>(edge.to)] != -2)
                    continue;
                prev[static_cast<std::size_t>(edge.to)] = at;
                prev_line[static_cast<std::size_t>(edge.to)] = edge.line;
                frontier.push(edge.to);
            }
        }
        if (prev[static_cast<std::size_t>(to)] == -2 && from != to)
            return std::nullopt;
        std::vector<int> labels;
        for (int at = to; at != from || labels.empty();) {
            if (at == from)
                break;
            labels.push_back(prev_line[static_cast<std::size_t>(at)]);
            at = prev[static_cast<std::size_t>(at)];
        }
        std::reverse(labels.begin(), labels.end());
        return labels;
    };

    std::optional<PinPattern> best;
    int attempts = 0;
    for (std::size_t u = 0; u < nodes.size() && attempts < 400; ++u) {
        for (const auto &edge : edges[u]) {
            if (!edge.miss)
                continue;
            ++attempts;
            auto back = bfs_path(edge.to, static_cast<int>(u));
            if (!back)
                continue;
            std::vector<int> cycle{edge.line};
            cycle.insert(cycle.end(), back->begin(), back->end());
            if (static_cast<int>(cycle.size()) > max_len)
                continue;
            if (best && best->accesses.size() <= cycle.size())
                continue;
            PinPattern pattern;
            pattern.accesses = cycle;
            // Lead-in: BFS-tree path from the start to u.
            std::vector<int> lead;
            for (int at = static_cast<int>(u); parent[static_cast<
                     std::size_t>(at)] != -1 || at != 0;) {
                if (at == 0)
                    break;
                lead.push_back(parent_line[static_cast<std::size_t>(at)]);
                at = parent[static_cast<std::size_t>(at)];
            }
            std::reverse(lead.begin(), lead.end());
            pattern.leadIn = lead;
            // Count misses per period by simulation from u.
            PlruSetModel sim = nodes[u];
            int misses = 0;
            for (int line : cycle)
                misses += sim.access(line) ? 1 : 0;
            pattern.missesPerPeriod = misses;
            best = pattern;
        }
        if (best && best->accesses.size() <= 2)
            break;
    }
    return best;
}

bool
validatePinPattern(int assoc, const PinPattern &pattern, int periods)
{
    // (a) pinned line stays resident and every period misses.
    PlruSetModel with_a = canonicalBaseState(assoc);
    with_a.access(0);
    for (int line : pattern.leadIn) {
        with_a.access(line);
        if (!with_a.contains(0))
            return false;
    }
    for (int p = 0; p < periods; ++p) {
        int misses = 0;
        for (int line : pattern.accesses) {
            misses += with_a.access(line) ? 1 : 0;
            if (!with_a.contains(0))
                return false;
        }
        if (misses == 0)
            return false;
    }

    // (b) without the pinned line, misses must die out.
    PlruSetModel without_a = canonicalBaseState(assoc);
    for (int line : pattern.leadIn)
        without_a.access(line);
    int last_period_misses = -1;
    for (int p = 0; p < periods; ++p) {
        last_period_misses = 0;
        for (int line : pattern.accesses)
            last_period_misses += without_a.access(line) ? 1 : 0;
    }
    return last_period_misses == 0;
}

} // namespace hr
