/**
 * @file
 * Cycle-level out-of-order core model with SMT-style hardware contexts.
 *
 * Models exactly the mechanisms Hacky Racers exploits:
 *  - instruction-level parallelism between data-independent paths;
 *  - a finite reorder buffer whose capacity bounds the race window;
 *  - transient execution past predicted branches, with squash on
 *    mispredict — but cache fills of squashed loads persist;
 *  - functional units with latency and initiation-interval contention;
 *  - MSHR-limited memory-level parallelism;
 *  - periodic timer interrupts that drain the pipeline (the mechanism
 *    behind Fig. 12's saturation);
 *  - N hardware execution contexts sharing the issue queue, functional
 *    units, and memory hierarchy, with round-robin fetch/dispatch and
 *    commit arbitration and statically partitioned ROB capacity — the
 *    environment the paper's contention timing sources and
 *    noisy-neighbor sweeps run in.
 *
 * A single-context core (the default) behaves bit-identically to the
 * pre-multi-context model: every arbitration loop degenerates to the
 * legacy single-stream order.
 *
 * The cycle loop is event-skipping: idle stretches (e.g. a 200-cycle
 * memory stall) are jumped over, so cost scales with instruction count.
 */

#ifndef HR_CORE_OOO_CORE_HH
#define HR_CORE_OOO_CORE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <vector>

#include "cache/hierarchy.hh"
#include "core/branch_predictor.hh"
#include "core/func_unit.hh"
#include "isa/decoded_program.hh"
#include "isa/program.hh"
#include "util/memory_image.hh"
#include "util/types.hh"

namespace hr
{

/** Core microarchitectural parameters (defaults: Coffee-Lake-like). */
struct CoreConfig
{
    int fetchWidth = 4;
    int issueWidth = 8;
    int commitWidth = 4;
    int robSize = 224;
    /**
     * Issue-queue (scheduler) capacity. 0 means "same as robSize" —
     * the model's default simplification; set explicitly to study
     * scheduler-bound behaviour. The IQ is shared between hardware
     * contexts (the ROB is partitioned).
     */
    int iqSize = 0;

    FuConfig intAlu{4, 1, 1};
    FuConfig intMul{1, 3, 1};
    FuConfig fpDiv{1, 12, 4};   ///< not fully pipelined (DIVSD-like)
    FuConfig memRead{2, 1, 1};  ///< load ports; latency from hierarchy
    FuConfig memWrite{1, 1, 1};
    FuConfig branchU{2, 1, 1};

    Cycle mispredictPenalty = 12; ///< redirect bubble after resolution

    /**
     * Issue arbitration within a functional-unit class:
     * true  = first-come-first-served by wakeup order (select-on-wakeup
     *         schedulers; the model under which section 6.4's divider
     *         chain reaction operates),
     * false = strict oldest-first by program order.
     */
    bool readyOrderIssue = true;

    /**
     * Delay-on-miss Spectre defence (Sakalis et al., modelled per the
     * paper's section 8 discussion): a load that would miss the L1 is
     * held until it is no longer speculative (no unresolved older
     * branch). Defeats the transient P/A racing gadget; the
     * non-transient reorder gadget is untouched — the paper's point.
     */
    bool delayOnMiss = false;

    /** Timer-interrupt interval in cycles; 0 disables. */
    Cycle interruptInterval = 0;
    /** Cycles consumed servicing an interrupt after the drain. */
    Cycle interruptOverhead = 2000;

    /**
     * Lockstep steady-state fast-forward: when a single-context run
     * settles into a provably periodic loop (same committed anchor
     * branch, byte-equivalent pipeline state at consecutive loop tops
     * modulo learned affine deltas, no randomness consumed), the
     * remaining iterations are applied in closed form instead of being
     * simulated cycle by cycle. Bit-identical to scalar execution by
     * construction — the engine refuses whenever it cannot prove the
     * extrapolation exact — so this is a pure speed knob and is
     * deliberately EXCLUDED from machineConfigFingerprint (machines
     * with either setting share pool snapshots and decode caches).
     */
    bool lockstep = true;

    int effectiveIqSize() const { return iqSize > 0 ? iqSize : robSize; }
};

/** Counters observable by experiments and the detector (section 8). */
struct PerfCounters
{
    std::uint64_t cycles = 0;
    std::uint64_t committedInstrs = 0;
    std::uint64_t committedLoads = 0;
    std::uint64_t committedStores = 0;
    std::uint64_t squashedInstrs = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t interrupts = 0;
    std::uint64_t issuedByClass[6] = {};
    std::uint64_t noCommitCycles = 0; ///< busy cycles with no commit
    std::uint64_t robFullStalls = 0;  ///< dispatch cycles lost to ROB-full

    PerfCounters operator-(const PerfCounters &o) const;
    double ipc() const;
};

/** Outcome of one Program execution. */
struct RunResult
{
    Cycle startCycle = 0;
    Cycle endCycle = 0;
    bool halted = false;
    /**
     * Counter delta attributed to the executed program's own context.
     * For a single-context run this equals the whole-core delta; in a
     * co-run it excludes the co-runners' work (cycles still measure
     * elapsed core time).
     */
    PerfCounters counters;

    Cycle cycles() const { return endCycle - startCycle; }
};

/**
 * One (context, program) pairing handed to OooCore::coRun. The core
 * executes from the decoded image (see isa/decoded_program.hh); the
 * program id travels separately because content-identical programs
 * share one decoded image while keeping distinct predictor state.
 */
struct ContextProgram
{
    ContextId ctx = 0;
    const DecodedProgram *decoded = nullptr;
    std::uint64_t programId = 0;
    std::vector<std::pair<RegId, std::int64_t>> initialRegs;
};

/**
 * The out-of-order core. Owns pipeline state; borrows the memory
 * hierarchy, memory image, and branch predictor from the Machine so
 * microarchitectural state persists across program executions (which is
 * how training and attack phases interact).
 */
class OooCore
{
  public:
    OooCore(const CoreConfig &config, Hierarchy &hierarchy,
            MemoryImage &memory, BranchPredictor &predictor,
            int contexts = 1);
    ~OooCore(); // out of line: LockstepEngine is incomplete here

    /**
     * The core state that persists across run() calls: global time,
     * cumulative whole-core and per-context counters, the instruction
     * sequence stream, and functional-unit reservations (which can
     * extend past a run's end). Per-run pipeline state (ROBs, queues)
     * is rebuilt by the run entry points and never needs capturing —
     * snapshots are taken between runs by construction (run() and
     * coRun() are synchronous).
     */
    struct Snapshot
    {
        Cycle cycle = 0;
        Cycle nextInterrupt = 0;
        PerfCounters counters;
        std::vector<PerfCounters> ctxCounters;
        std::uint64_t nextSeq = 0;
        std::uint64_t readyStamp = 0;
        std::vector<Cycle> reservations[6];
    };

    Snapshot snapshot() const;
    void restore(const Snapshot &snap);

    const CoreConfig &config() const { return config_; }

    /** Number of hardware contexts. */
    int contexts() const { return static_cast<int>(ctxs_.size()); }

    /** ROB entries statically reserved for each context. */
    int robPartition() const { return robPartition_; }

    /** Global cycle counter (monotonic across runs). */
    Cycle cycle() const { return cycle_; }

    /** Cumulative whole-core counters (monotonic across runs). */
    const PerfCounters &counters() const { return counters_; }

    /** Cumulative counters attributed to one context. */
    const PerfCounters &contextCounters(ContextId ctx) const;

    /** Lockstep fast-forward accounting, cumulative across runs. */
    struct LockstepSummary
    {
        std::uint64_t forwards = 0;       ///< successful fast-forwards
        std::uint64_t skippedPeriods = 0; ///< loop periods applied closed-form
        std::uint64_t skippedCycles = 0;  ///< cycles applied closed-form
        std::uint64_t refusals = 0;       ///< failed window verifications
    };

    /** All zeros until the first eligible run constructs the engine. */
    LockstepSummary lockstepSummary() const;

    /**
     * Execute a decoded program to completion (Halt commit or natural
     * end) on context 0, with every other context idle.
     *
     * @param decoded    decoded code to run (see Machine::decodeProgram)
     * @param program_id  assigned Program::id (keys predictor state)
     * @param initial_regs  values for registers before the first
     *                      instruction; all others start at zero
     * @param max_cycles    safety limit for this run
     */
    RunResult run(const DecodedProgram &decoded, std::uint64_t program_id,
                  const std::vector<std::pair<RegId, std::int64_t>>
                      &initial_regs = {},
                  Cycle max_cycles = 500'000'000);

    /** run() on an arbitrary context (the others stay idle). */
    RunResult runOn(ContextId ctx, const DecodedProgram &decoded,
                    std::uint64_t program_id,
                    const std::vector<std::pair<RegId, std::int64_t>>
                        &initial_regs = {},
                    Cycle max_cycles = 500'000'000);

    /**
     * Co-run: execute @p primary together with @p backgrounds, each on
     * its own hardware context, interleaved deterministically through
     * the shared pipeline. Runs until the primary program completes;
     * background contexts are then abandoned mid-flight (their
     * committed architectural effects and any in-flight cache fills
     * persist — a descheduled noisy neighbor, not a rollback).
     * Background programs that finish early simply leave their context
     * idle. Returns the primary's per-context result.
     */
    RunResult coRun(const ContextProgram &primary,
                    const std::vector<ContextProgram> &backgrounds,
                    Cycle max_cycles = 500'000'000);

  private:
    enum class Status : std::uint8_t { Waiting, Ready, Issued, Completed };

    struct RobEntry
    {
        std::uint64_t seq = 0;
        std::int32_t pc = 0;
        ContextId ctx = 0;
        /**
         * Into the owning context's DecodedProgram (which the Machine
         * keeps alive for the duration of the run). Entries are
         * recycled at run end, so neither pointer outlives the image.
         */
        const Instruction *inst = nullptr;
        const DecodedOp *dop = nullptr;
        Status status = Status::Waiting;
        int pendingSrcs = 0;
        std::int64_t srcVal[3] = {0, 0, 0};
        std::uint64_t srcProducer[3]; ///< kNoSeq when value captured
        std::int64_t value = 0;
        Addr ea = 0;
        bool eaValid = false;
        bool predictedTaken = false;
        bool forwarded = false;
        /**
         * Waiting dependents as (entry, seq-at-registration) pairs.
         * Entries are pool-recycled, never freed, so the pointer is
         * always dereferenceable; a seq mismatch means the consumer
         * was squashed (and possibly reused) — skip it.
         */
        std::vector<std::pair<RobEntry *, std::uint64_t>> consumers;
    };

    static constexpr std::uint64_t kNoSeq = ~std::uint64_t{0};

    struct Event
    {
        Cycle cycle;
        std::uint64_t seq;
        RobEntry *entry;
        bool operator>(const Event &o) const
        {
            if (cycle != o.cycle)
                return cycle > o.cycle;
            return seq > o.seq;
        }
    };

    /**
     * Architectural and pipeline-front-end state of one hardware
     * context. The cumulative counters persist across runs (and are
     * snapshotted); everything else is per-run and rebuilt by
     * startContext.
     */
    struct CtxState
    {
        PerfCounters counters; ///< cumulative, persists across runs

        // --- per-run state ---
        const DecodedProgram *decoded = nullptr;
        std::uint64_t programId = 0;
        bool active = false; ///< started and not yet finished/aborted
        bool halted = false;
        std::vector<std::int64_t> regfile;
        std::vector<RobEntry *> renameTable;
        /**
         * This context's reorder-buffer partition. Entries hold an
         * increasing (globally interleaved) seq sequence: dispatch
         * appends, commit pops the front, squash pops the back.
         */
        std::deque<std::unique_ptr<RobEntry>> rob;
        std::int32_t fetchPc = 0;
        Cycle fetchStallUntil = 0;
        int inflightStores = 0;
        int inflightBranches = 0;
        bool robFullCounted = false; ///< per-dispatch-call stall latch
    };

    // --- configuration and borrowed machine state ---
    CoreConfig config_;
    Hierarchy &hierarchy_;
    MemoryImage &memory_;
    BranchPredictor &predictor_;

    // --- global time ---
    Cycle cycle_ = 0;
    Cycle nextInterrupt_ = 0;
    PerfCounters counters_;

    // --- shared pipeline state ---
    std::vector<CtxState> ctxs_;
    int robPartition_ = 0; ///< robSize / contexts
    /** Recycled RobEntry storage (bounded by robSize). */
    std::vector<std::unique_ptr<RobEntry>> entryPool_;
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        events_;
    /** Ready instructions per class, keyed by arbitration priority. */
    struct ReadyItem
    {
        std::uint64_t key;
        std::uint64_t seq;
        RobEntry *entry;
        bool operator>(const ReadyItem &o) const
        {
            if (key != o.key)
                return key > o.key;
            return seq > o.seq;
        }
    };
    std::priority_queue<ReadyItem, std::vector<ReadyItem>,
                        std::greater<ReadyItem>>
        readyQueue_[6];
    std::uint64_t readyStamp_ = 0;
    /** Memory-op retries as (entry, seq) pairs (see consumers). */
    std::vector<std::pair<RobEntry *, std::uint64_t>> replayQueue_;
    FuncUnitPool *pools_[6] = {};
    std::unique_ptr<FuncUnitPool> poolStorage_[6];
    std::uint64_t nextSeq_ = 0;
    bool draining_ = false;
    int iqOccupancy_ = 0;
    /** Round-robin arbitration cursors (reset at each run start). */
    std::uint32_t dispatchRotate_ = 0;
    std::uint32_t commitRotate_ = 0;

    /**
     * Steady-state loop fast-forward engine (see core/lockstep.hh).
     * Lazily constructed on the first eligible run; the two bools are
     * the hot-path guards so disabled runs pay one branch per hook.
     * lockstepWatch_: engine active this run (anchor detection on
     * committed backward taken branches). lockstepRec_: an anchor is
     * established and per-period records/boundary captures are live.
     */
    std::unique_ptr<class LockstepEngine> lockstep_;
    bool lockstepWatch_ = false;
    bool lockstepRec_ = false;
    friend class LockstepEngine;

    // --- pipeline stages (each returns true if it did work) ---
    bool processCompletions();
    bool issueStage();
    bool dispatchStage();
    bool commitStage();
    void serviceInterrupt();

    // --- helpers ---
    CtxState &ctxOf(const RobEntry &entry) { return ctxs_[entry.ctx]; }

    bool
    allRobsEmpty() const
    {
        for (const CtxState &c : ctxs_)
            if (!c.rob.empty())
                return false;
        return true;
    }

    bool anyRobNonEmpty() const { return !allRobsEmpty(); }

    bool
    fetchExhausted(const CtxState &c) const
    {
        return c.decoded == nullptr ||
               c.fetchPc >=
                   static_cast<std::int32_t>(c.decoded->size());
    }

    bool
    ctxDone(const CtxState &c) const
    {
        return c.halted || (c.rob.empty() && fetchExhausted(c));
    }
    std::unique_ptr<RobEntry> takeEntry();
    void recycleEntry(std::unique_ptr<RobEntry> entry);
    void markReady(RobEntry &entry);
    void resolveEaIfReady(RobEntry &entry);
    void wakeConsumers(RobEntry &producer);
    void resolveBranch(RobEntry &entry);
    void squashAfter(CtxState &c, std::uint64_t seq, std::int32_t new_pc);
    bool tryIssueMemOp(RobEntry &entry);
    bool fetchOne(CtxState &c);
    std::int64_t computeAlu(const RobEntry &entry) const;
    Addr computeEa(const RobEntry &entry) const;
    void resetPipeline();
    void startContext(ContextId ctx, const DecodedProgram &decoded,
                      std::uint64_t program_id,
                      const std::vector<std::pair<RegId, std::int64_t>>
                          &initial_regs);
    void abortContext(CtxState &c);
    void advanceTime(Cycle target);
    RunResult runLoop(ContextId primary, Cycle max_cycles);
    Cycle nextWakeCycle() const;
};

} // namespace hr

#endif // HR_CORE_OOO_CORE_HH
