#include "core/func_unit.hh"

#include <algorithm>

#include "util/log.hh"

namespace hr
{

FuncUnitPool::FuncUnitPool(const FuConfig &config)
    : config_(config),
      freeAt_(static_cast<std::size_t>(config.count), 0)
{
    fatalIf(config_.count <= 0, "FuncUnitPool: count must be positive");
    fatalIf(config_.initInterval == 0,
            "FuncUnitPool: initiation interval must be >= 1");
}

std::optional<Cycle>
FuncUnitPool::tryIssue(Cycle now)
{
    for (auto &free_at : freeAt_) {
        if (free_at <= now) {
            free_at = now + config_.initInterval;
            return now + config_.latency;
        }
    }
    return std::nullopt;
}

Cycle
FuncUnitPool::nextFree() const
{
    return *std::min_element(freeAt_.begin(), freeAt_.end());
}

void
FuncUnitPool::reset()
{
    std::fill(freeAt_.begin(), freeAt_.end(), 0);
}

void
FuncUnitPool::setReservations(const std::vector<Cycle> &busy_until)
{
    panicIf(busy_until.size() != freeAt_.size(),
            "FuncUnitPool::setReservations: unit count mismatch");
    freeAt_ = busy_until;
}

} // namespace hr
