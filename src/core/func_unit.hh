/**
 * @file
 * Functional-unit pools with latency and initiation-interval modelling.
 *
 * The initiation interval (reciprocal throughput) is what makes the
 * divider "not fully pipelined" — the resource the paper's
 * arithmetic-operation-only magnifier gadget (section 6.4) contends on.
 */

#ifndef HR_CORE_FUNC_UNIT_HH
#define HR_CORE_FUNC_UNIT_HH

#include <optional>
#include <vector>

#include "util/types.hh"

namespace hr
{

/** Static description of one functional-unit class. */
struct FuConfig
{
    int count = 1;     ///< number of identical units
    Cycle latency = 1; ///< result latency
    Cycle initInterval = 1; ///< cycles before a unit accepts the next op
};

/**
 * A pool of identical units. tryIssue() finds a free unit, reserves it
 * for the initiation interval, and returns the completion cycle.
 */
class FuncUnitPool
{
  public:
    explicit FuncUnitPool(const FuConfig &config);

    const FuConfig &config() const { return config_; }

    /**
     * Attempt to start an operation now.
     * @return completion cycle, or nullopt if every unit is busy.
     */
    std::optional<Cycle> tryIssue(Cycle now);

    /** Earliest cycle at which some unit will be free. */
    Cycle nextFree() const;

    /** Forget reservations (pipeline flush/drain). */
    void reset();

    /** Per-unit busy-until cycles (snapshot support). */
    const std::vector<Cycle> &reservations() const { return freeAt_; }

    /** Reinstate saved reservations (must match the unit count). */
    void setReservations(const std::vector<Cycle> &busy_until);

  private:
    FuConfig config_;
    std::vector<Cycle> freeAt_; // per unit
};

} // namespace hr

#endif // HR_CORE_FUNC_UNIT_HH
