#include "core/ooo_core.hh"

#include <algorithm>

#include "util/log.hh"

namespace hr
{

PerfCounters
PerfCounters::operator-(const PerfCounters &o) const
{
    PerfCounters d;
    d.cycles = cycles - o.cycles;
    d.committedInstrs = committedInstrs - o.committedInstrs;
    d.committedLoads = committedLoads - o.committedLoads;
    d.committedStores = committedStores - o.committedStores;
    d.squashedInstrs = squashedInstrs - o.squashedInstrs;
    d.branches = branches - o.branches;
    d.mispredicts = mispredicts - o.mispredicts;
    d.interrupts = interrupts - o.interrupts;
    for (int i = 0; i < 6; ++i)
        d.issuedByClass[i] = issuedByClass[i] - o.issuedByClass[i];
    d.noCommitCycles = noCommitCycles - o.noCommitCycles;
    d.robFullStalls = robFullStalls - o.robFullStalls;
    return d;
}

double
PerfCounters::ipc() const
{
    if (cycles == 0)
        return 0.0;
    return static_cast<double>(committedInstrs) /
           static_cast<double>(cycles);
}

namespace
{

/** True if the op architecturally writes its dst register. */
bool
writesReg(const Instruction &inst)
{
    if (inst.dst == kNoReg)
        return false;
    switch (inst.op) {
      case Opcode::Store:
      case Opcode::Prefetch:
      case Opcode::Branch:
      case Opcode::Jump:
      case Opcode::Halt:
      case Opcode::Nop:
        return false;
      default:
        return true;
    }
}

} // namespace

OooCore::OooCore(const CoreConfig &config, Hierarchy &hierarchy,
                 MemoryImage &memory, BranchPredictor &predictor)
    : config_(config), hierarchy_(hierarchy), memory_(memory),
      predictor_(predictor)
{
    fatalIf(config_.robSize < 4, "OooCore: robSize too small");
    const FuConfig *fu_configs[6] = {
        &config_.intAlu, &config_.intMul, &config_.fpDiv,
        &config_.memRead, &config_.memWrite, &config_.branchU};
    for (int i = 0; i < 6; ++i) {
        poolStorage_[i] = std::make_unique<FuncUnitPool>(*fu_configs[i]);
        pools_[i] = poolStorage_[i].get();
    }
    if (config_.interruptInterval > 0)
        nextInterrupt_ = config_.interruptInterval;
}

OooCore::Snapshot
OooCore::snapshot() const
{
    Snapshot snap;
    snap.cycle = cycle_;
    snap.nextInterrupt = nextInterrupt_;
    snap.counters = counters_;
    snap.nextSeq = nextSeq_;
    snap.readyStamp = readyStamp_;
    for (int i = 0; i < 6; ++i)
        snap.reservations[i] = pools_[i]->reservations();
    return snap;
}

void
OooCore::restore(const Snapshot &snap)
{
    cycle_ = snap.cycle;
    nextInterrupt_ = snap.nextInterrupt;
    counters_ = snap.counters;
    nextSeq_ = snap.nextSeq;
    readyStamp_ = snap.readyStamp;
    for (int i = 0; i < 6; ++i)
        pools_[i]->setReservations(snap.reservations[i]);

    // Drop any leftover pipeline state from a halted run so the core
    // is idle, exactly as it is right after a completed run.
    for (auto &entry : rob_)
        recycleEntry(std::move(entry));
    rob_.clear();
    events_ = {};
    for (auto &q : readyQueue_)
        q = {};
    replayQueue_.clear();
    renameTable_.assign(renameTable_.size(), nullptr);
    halted_ = false;
    draining_ = false;
    inflightStores_ = 0;
    inflightBranches_ = 0;
    iqOccupancy_ = 0;
}

std::unique_ptr<OooCore::RobEntry>
OooCore::takeEntry()
{
    if (entryPool_.empty())
        return std::make_unique<RobEntry>();
    auto entry = std::move(entryPool_.back());
    entryPool_.pop_back();
    entry->status = Status::Waiting;
    entry->pendingSrcs = 0;
    entry->srcVal[0] = entry->srcVal[1] = entry->srcVal[2] = 0;
    entry->value = 0;
    entry->ea = 0;
    entry->eaValid = false;
    entry->predictedTaken = false;
    entry->forwarded = false;
    entry->consumers.clear();
    return entry;
}

void
OooCore::recycleEntry(std::unique_ptr<RobEntry> entry)
{
    // Kill any stale (entry, seq) references still sitting in events,
    // ready/replay queues, or consumer lists: seqs are never reused,
    // so no future seq can match kNoSeq or this entry's old seq.
    entry->seq = kNoSeq;
    entryPool_.push_back(std::move(entry));
}

std::int64_t
OooCore::srcValue(const RobEntry &entry, int slot) const
{
    return entry.srcVal[slot];
}

std::int64_t
OooCore::computeAlu(const RobEntry &entry) const
{
    const Instruction &inst = entry.inst;
    const std::int64_t v0 = entry.srcVal[0];
    const std::int64_t rhs =
        inst.src1 != kNoReg ? entry.srcVal[1] : inst.imm;
    switch (inst.op) {
      case Opcode::MovImm: return inst.imm;
      case Opcode::Add: return v0 + rhs;
      case Opcode::Sub: return v0 - rhs;
      case Opcode::Mul: return v0 * rhs;
      case Opcode::Div: return rhs == 0 ? 0 : v0 / rhs;
      case Opcode::And: return v0 & rhs;
      case Opcode::Or: return v0 | rhs;
      case Opcode::Xor: return v0 ^ rhs;
      case Opcode::Shl: return v0 << (rhs & 63);
      case Opcode::Shr:
        return static_cast<std::int64_t>(
            static_cast<std::uint64_t>(v0) >> (rhs & 63));
      case Opcode::Lea:
        return static_cast<std::int64_t>(computeEa(entry));
      case Opcode::Branch:
        return ((v0 != 0) != inst.invert) ? 1 : 0;
      case Opcode::Rdtsc:
        return static_cast<std::int64_t>(cycle_);
      default:
        return 0;
    }
}

Addr
OooCore::computeEa(const RobEntry &entry) const
{
    const Instruction &inst = entry.inst;
    std::int64_t ea = inst.imm;
    if (inst.src0 != kNoReg)
        ea += entry.srcVal[0] * inst.scale0;
    if (inst.src1 != kNoReg)
        ea += entry.srcVal[1] * inst.scale1;
    return static_cast<Addr>(ea);
}

void
OooCore::setupRun(const Program &program,
                  const std::vector<std::pair<RegId, std::int64_t>>
                      &initial_regs)
{
    fatalIf(program.id == 0,
            "OooCore::run: program has no id (run it via a Machine)");
    program_ = &program;

    const std::size_t nregs = std::max<std::size_t>(program.numRegs, 1);
    regfile_.assign(nregs, 0);
    for (const auto &[reg, value] : initial_regs) {
        fatalIf(reg >= nregs, "initial reg out of range");
        regfile_[reg] = value;
    }
    renameTable_.assign(nregs, nullptr);

    for (auto &entry : rob_)
        recycleEntry(std::move(entry));
    rob_.clear();
    events_ = {};
    for (auto &q : readyQueue_)
        q = {};
    replayQueue_.clear();
    fetchPc_ = 0;
    fetchStallUntil_ = cycle_;
    halted_ = false;
    draining_ = false;
    inflightStores_ = 0;
    inflightBranches_ = 0;
    iqOccupancy_ = 0;

    if (config_.interruptInterval > 0 && nextInterrupt_ <= cycle_)
        nextInterrupt_ = cycle_ + config_.interruptInterval;
}

void
OooCore::markReady(RobEntry &entry)
{
    entry.status = Status::Ready;
    const std::uint64_t key =
        config_.readyOrderIssue ? readyStamp_++ : entry.seq;
    readyQueue_[static_cast<int>(entry.inst.fuClass())].push(
        {key, entry.seq, &entry});
}

void
OooCore::resolveEaIfReady(RobEntry &entry)
{
    // Address generation is decoupled from data (STA/STD split): a
    // store's EA resolves as soon as its address sources are ready,
    // even if the store data is still pending, so younger loads are
    // not conservatively blocked on store data.
    if (entry.eaValid || !isMemOp(entry.inst.op))
        return;
    // A source with scale 0 is an ordering-only dependence: it gates
    // issue but contributes nothing to the address.
    const bool src0_ok =
        entry.srcProducer[0] == kNoSeq || entry.inst.scale0 == 0;
    const bool src1_ok =
        entry.srcProducer[1] == kNoSeq || entry.inst.scale1 == 0;
    if (src0_ok && src1_ok) {
        entry.ea = computeEa(entry);
        entry.eaValid = true;
    }
}

void
OooCore::wakeConsumers(RobEntry &producer)
{
    for (const auto &[consumer, consumer_seq] : producer.consumers) {
        if (consumer->seq != consumer_seq)
            continue; // squashed
        for (int slot = 0; slot < 3; ++slot) {
            if (consumer->srcProducer[slot] == producer.seq) {
                consumer->srcVal[slot] = producer.value;
                consumer->srcProducer[slot] = kNoSeq;
                --consumer->pendingSrcs;
            }
        }
        resolveEaIfReady(*consumer);
        if (consumer->pendingSrcs == 0 &&
            consumer->status == Status::Waiting) {
            markReady(*consumer);
        }
    }
    producer.consumers.clear();
}

void
OooCore::resolveBranch(RobEntry &entry)
{
    const bool taken = entry.value != 0;
    const auto key =
        BranchPredictor::makeKey(program_->id, entry.pc);
    predictor_.update(key, taken);
    if (taken != entry.predictedTaken) {
        ++counters_.mispredicts;
        const std::int32_t correct_pc =
            taken ? entry.inst.target : entry.pc + 1;
        squashAfter(entry.seq, correct_pc);
    }
}

void
OooCore::squashAfter(std::uint64_t seq, std::int32_t new_pc)
{
    while (!rob_.empty() && rob_.back()->seq > seq) {
        RobEntry &victim = *rob_.back();
        ++counters_.squashedInstrs;
        if (victim.inst.op == Opcode::Store)
            --inflightStores_;
        if (victim.inst.op == Opcode::Branch &&
            victim.status != Status::Completed) {
            --inflightBranches_;
        }
        if (victim.status == Status::Waiting ||
            victim.status == Status::Ready) {
            --iqOccupancy_;
        }
        recycleEntry(std::move(rob_.back()));
        rob_.pop_back();
        // Events, ready-queue entries, and in-flight cache fills for the
        // squashed instruction are removed lazily (seq lookups fail) —
        // crucially, the cache fill itself still completes: transient
        // fills persist, the property the P/A racing gadget relies on.
    }

    // Rebuild the rename table from the surviving entries.
    std::fill(renameTable_.begin(), renameTable_.end(), nullptr);
    for (auto &entry : rob_) {
        if (writesReg(entry->inst))
            renameTable_[entry->inst.dst] = entry.get();
    }

    fetchPc_ = new_pc;
    fetchStallUntil_ = cycle_ + config_.mispredictPenalty;
}

bool
OooCore::processCompletions()
{
    bool work = false;
    while (!events_.empty() && events_.top().cycle <= cycle_) {
        const Event ev = events_.top();
        events_.pop();
        RobEntry *entry = ev.entry;
        if (entry->seq != ev.seq || entry->status != Status::Issued)
            continue; // squashed (or stale)
        if (entry->inst.op == Opcode::Load && !entry->forwarded)
            entry->value = memory_.read(entry->ea);
        entry->status = Status::Completed;
        wakeConsumers(*entry);
        if (entry->inst.op == Opcode::Branch) {
            --inflightBranches_;
            resolveBranch(*entry);
        }
        work = true;
    }
    return work;
}

bool
OooCore::tryIssueMemOp(RobEntry &entry)
{
    if (!entry.eaValid) {
        entry.ea = computeEa(entry);
        entry.eaValid = true;
    }
    const Opcode op = entry.inst.op;

    if (op == Opcode::Store) {
        auto done = pools_[static_cast<int>(FuClass::MemWrite)]->tryIssue(
            cycle_);
        if (!done)
            return false;
        entry.value = entry.srcVal[2]; // store data travels in slot 2
        events_.push({*done, entry.seq, &entry});
        ++counters_.issuedByClass[static_cast<int>(FuClass::MemWrite)];
        return true;
    }

    // Loads must respect older stores (conservative disambiguation).
    if (op == Opcode::Load && inflightStores_ > 0) {
        const RobEntry *forward_from = nullptr;
        for (const auto &older : rob_) {
            if (older->seq >= entry.seq)
                break;
            if (older->inst.op != Opcode::Store)
                continue;
            if (!older->eaValid)
                return false; // unresolved older store: wait
            if (MemoryImage::wordAddr(older->ea) ==
                MemoryImage::wordAddr(entry.ea)) {
                forward_from = older.get();
            }
        }
        if (forward_from) {
            if (forward_from->status != Status::Completed)
                return false; // store data not ready yet
            entry.forwarded = true;
            entry.value = forward_from->value;
            events_.push({cycle_ + 1, entry.seq, &entry});
            ++counters_.issuedByClass[static_cast<int>(FuClass::MemRead)];
            return true;
        }
    }

    // Delay-on-miss: speculative loads (an unresolved older branch
    // exists) that would miss the L1 are held until non-speculative.
    if (config_.delayOnMiss && op == Opcode::Load &&
        inflightBranches_ > 0) {
        bool older_branch = false;
        for (const auto &other : rob_) {
            if (other->seq >= entry.seq)
                break;
            if (other->inst.op == Opcode::Branch &&
                other->status != Status::Completed) {
                older_branch = true;
                break;
            }
        }
        if (older_branch &&
            !hierarchy_.l1().contains(hierarchy_.l1().lineAddr(
                entry.ea))) {
            return false; // replay until the branch resolves
        }
    }

    auto port = pools_[static_cast<int>(FuClass::MemRead)]->tryIssue(
        cycle_);
    if (!port)
        return false;

    const AccessKind kind =
        op == Opcode::Prefetch ? AccessKind::Prefetch : AccessKind::Load;
    const AccessOutcome outcome = hierarchy_.access(entry.ea, cycle_, kind);
    if (!outcome.accepted)
        return false; // out of MSHRs, retry

    // Software prefetches retire without waiting for data (section
    // 6.3.1: they never block the pipeline).
    const Cycle done =
        op == Opcode::Prefetch ? cycle_ + 1 : outcome.readyCycle;
    events_.push({done, entry.seq, &entry});
    ++counters_.issuedByClass[static_cast<int>(FuClass::MemRead)];
    return true;
}

bool
OooCore::issueStage()
{
    int issued = 0;
    bool work = false;

    // Memory-op replays first (they are the oldest waiters).
    if (!replayQueue_.empty()) {
        std::vector<std::pair<RobEntry *, std::uint64_t>> retry;
        retry.swap(replayQueue_);
        for (const auto &[entry, seq] : retry) {
            if (entry->seq != seq || entry->status != Status::Ready)
                continue; // squashed
            if (issued < config_.issueWidth && tryIssueMemOp(*entry)) {
                entry->status = Status::Issued;
                --iqOccupancy_;
                ++issued;
                work = true;
            } else {
                replayQueue_.emplace_back(entry, seq);
            }
        }
    }

    static constexpr FuClass kOrder[6] = {
        FuClass::BranchU, FuClass::MemRead, FuClass::MemWrite,
        FuClass::IntAlu, FuClass::IntMul, FuClass::FpDiv};

    for (FuClass cls : kOrder) {
        auto &queue = readyQueue_[static_cast<int>(cls)];
        while (issued < config_.issueWidth && !queue.empty()) {
            const std::uint64_t seq = queue.top().seq;
            RobEntry *entry = queue.top().entry;
            if (entry->seq != seq || entry->status != Status::Ready) {
                queue.pop(); // stale (squashed or re-routed)
                continue;
            }
            if (isMemOp(entry->inst.op)) {
                queue.pop();
                if (tryIssueMemOp(*entry)) {
                    entry->status = Status::Issued;
                    --iqOccupancy_;
                    ++issued;
                    work = true;
                } else {
                    replayQueue_.emplace_back(entry, seq);
                }
                continue;
            }
            auto done = pools_[static_cast<int>(cls)]->tryIssue(cycle_);
            if (!done)
                break; // no unit free in this class this cycle
            queue.pop();
            entry->value = computeAlu(*entry);
            entry->status = Status::Issued;
            --iqOccupancy_;
            events_.push({*done, entry->seq, entry});
            ++counters_.issuedByClass[static_cast<int>(cls)];
            ++issued;
            work = true;
        }
    }
    return work;
}

bool
OooCore::dispatchStage()
{
    if (draining_ || cycle_ < fetchStallUntil_)
        return false;

    bool work = false;
    const auto code_size =
        static_cast<std::int32_t>(program_->code.size());

    for (int n = 0; n < config_.fetchWidth; ++n) {
        if (fetchPc_ >= code_size)
            break;
        if (static_cast<int>(rob_.size()) >= config_.robSize) {
            ++counters_.robFullStalls;
            break;
        }
        if (iqOccupancy_ >= config_.effectiveIqSize())
            break;

        const Instruction &inst = program_->code[fetchPc_];
        auto entry = takeEntry();
        entry->seq = nextSeq_++;
        entry->pc = fetchPc_;
        entry->inst = inst;
        entry->srcProducer[0] = kNoSeq;
        entry->srcProducer[1] = kNoSeq;
        entry->srcProducer[2] = kNoSeq;

        // Next fetch pc (possibly speculative).
        switch (inst.op) {
          case Opcode::Branch: {
            const auto key = BranchPredictor::makeKey(program_->id,
                                                      fetchPc_);
            entry->predictedTaken = predictor_.predict(key);
            fetchPc_ = entry->predictedTaken ? inst.target : fetchPc_ + 1;
            break;
          }
          case Opcode::Jump:
            fetchPc_ = inst.target;
            break;
          case Opcode::Halt:
            fetchPc_ = code_size; // stop fetching
            break;
          default:
            ++fetchPc_;
        }

        // Rename: capture sources. Stores read their data via slot 2.
        RegId srcs[3] = {inst.src0, inst.src1, kNoReg};
        if (inst.op == Opcode::Store)
            srcs[2] = inst.dst;
        for (int slot = 0; slot < 3; ++slot) {
            const RegId reg = srcs[slot];
            if (reg == kNoReg)
                continue;
            RobEntry *producer = renameTable_[reg];
            if (!producer) {
                entry->srcVal[slot] = regfile_[reg];
            } else if (producer->status == Status::Completed) {
                entry->srcVal[slot] = producer->value;
            } else {
                entry->srcProducer[slot] = producer->seq;
                producer->consumers.emplace_back(entry.get(),
                                                 entry->seq);
                ++entry->pendingSrcs;
            }
        }

        if (writesReg(inst))
            renameTable_[inst.dst] = entry.get();
        if (inst.op == Opcode::Store)
            ++inflightStores_;
        if (inst.op == Opcode::Branch)
            ++inflightBranches_;

        resolveEaIfReady(*entry);
        if (entry->pendingSrcs == 0)
            markReady(*entry);
        ++iqOccupancy_;

        rob_.push_back(std::move(entry));
        work = true;
    }
    return work;
}

bool
OooCore::commitStage()
{
    bool committed_any = false;
    for (int n = 0; n < config_.commitWidth && !rob_.empty(); ++n) {
        RobEntry &head = *rob_.front();
        if (head.status != Status::Completed)
            break;

        const Instruction &inst = head.inst;
        if (writesReg(inst)) {
            regfile_[inst.dst] = head.value;
            if (renameTable_[inst.dst] == &head)
                renameTable_[inst.dst] = nullptr;
        }
        switch (inst.op) {
          case Opcode::Store:
            memory_.write(head.ea, head.value);
            hierarchy_.access(head.ea, cycle_, AccessKind::Store);
            --inflightStores_;
            ++counters_.committedStores;
            break;
          case Opcode::Load:
            ++counters_.committedLoads;
            break;
          case Opcode::Branch:
          case Opcode::Jump:
            ++counters_.branches;
            break;
          case Opcode::Halt:
            halted_ = true;
            break;
          default:
            break;
        }
        ++counters_.committedInstrs;
        recycleEntry(std::move(rob_.front()));
        rob_.pop_front();
        committed_any = true;
        if (halted_)
            break;
    }
    if (!committed_any && !rob_.empty())
        ++counters_.noCommitCycles;
    return committed_any;
}

void
OooCore::serviceInterrupt()
{
    counters_.cycles += config_.interruptOverhead;
    cycle_ += config_.interruptOverhead;
    ++counters_.interrupts;
    nextInterrupt_ = cycle_ + config_.interruptInterval;
    draining_ = false;
    fetchStallUntil_ = std::max(fetchStallUntil_, cycle_);
}

Cycle
OooCore::nextWakeCycle() const
{
    Cycle next = ~Cycle{0};
    if (!events_.empty())
        next = std::min(next, events_.top().cycle);
    if (!replayQueue_.empty()) {
        if (auto fill = hierarchy_.nextFillCycle())
            next = std::min(next, *fill);
    }
    const bool fetch_pending =
        !draining_ &&
        fetchPc_ < static_cast<std::int32_t>(program_->code.size());
    if (fetch_pending && fetchStallUntil_ > cycle_)
        next = std::min(next, fetchStallUntil_);
    return next;
}

RunResult
OooCore::run(const Program &program,
             const std::vector<std::pair<RegId, std::int64_t>>
                 &initial_regs,
             Cycle max_cycles)
{
    setupRun(program, initial_regs);

    RunResult result;
    result.startCycle = cycle_;
    const PerfCounters before = counters_;
    const Cycle deadline = cycle_ + max_cycles;

    for (;;) {
        if (draining_ && rob_.empty())
            serviceInterrupt();

        bool work = false;
        work |= processCompletions();
        work |= issueStage();
        work |= dispatchStage();
        work |= commitStage();

        if (halted_)
            break;

        if (config_.interruptInterval > 0 && !draining_ &&
            cycle_ >= nextInterrupt_) {
            draining_ = true;
        }

        const bool fetch_exhausted =
            fetchPc_ >= static_cast<std::int32_t>(program.code.size());
        if (rob_.empty() && fetch_exhausted && !draining_)
            break;

        // Advance time, skipping idle stretches.
        Cycle target = cycle_ + 1;
        if (!work && !(draining_ && rob_.empty())) {
            const Cycle wake = nextWakeCycle();
            if (wake == ~Cycle{0}) {
                if (rob_.empty() && !fetch_exhausted &&
                    fetchStallUntil_ <= cycle_) {
                    // Fetch can proceed next cycle.
                } else if (rob_.empty()) {
                    // Only a fetch stall remains; handled above via
                    // nextWakeCycle, so reaching here means done.
                } else {
                    panic("OooCore: deadlock (ROB stuck with no events)");
                }
            } else {
                target = std::max(target, wake);
            }
        }
        if (!rob_.empty())
            counters_.noCommitCycles += target - cycle_ - 1;
        counters_.cycles += target - cycle_;
        cycle_ = target;

        fatalIf(cycle_ > deadline, "OooCore::run: cycle limit exceeded");
    }

    hierarchy_.applyFillsUpTo(cycle_);
    result.endCycle = cycle_;
    result.halted = halted_;
    result.counters = counters_ - before;
    return result;
}

} // namespace hr
