#include "core/ooo_core.hh"

#include <algorithm>
#include <limits>

#include "core/lockstep.hh"
#include "util/log.hh"

namespace hr
{

OooCore::~OooCore() = default;

OooCore::LockstepSummary
OooCore::lockstepSummary() const
{
    LockstepSummary s;
    if (lockstep_) {
        const LockstepEngine::Stats &stats = lockstep_->stats();
        s.forwards = stats.forwards;
        s.skippedPeriods = stats.skippedPeriods;
        s.skippedCycles = stats.skippedCycles;
        s.refusals = stats.refusals;
    }
    return s;
}

PerfCounters
PerfCounters::operator-(const PerfCounters &o) const
{
    PerfCounters d;
    d.cycles = cycles - o.cycles;
    d.committedInstrs = committedInstrs - o.committedInstrs;
    d.committedLoads = committedLoads - o.committedLoads;
    d.committedStores = committedStores - o.committedStores;
    d.squashedInstrs = squashedInstrs - o.squashedInstrs;
    d.branches = branches - o.branches;
    d.mispredicts = mispredicts - o.mispredicts;
    d.interrupts = interrupts - o.interrupts;
    for (int i = 0; i < 6; ++i)
        d.issuedByClass[i] = issuedByClass[i] - o.issuedByClass[i];
    d.noCommitCycles = noCommitCycles - o.noCommitCycles;
    d.robFullStalls = robFullStalls - o.robFullStalls;
    return d;
}

double
PerfCounters::ipc() const
{
    if (cycles == 0)
        return 0.0;
    return static_cast<double>(committedInstrs) /
           static_cast<double>(cycles);
}

OooCore::OooCore(const CoreConfig &config, Hierarchy &hierarchy,
                 MemoryImage &memory, BranchPredictor &predictor,
                 int contexts)
    : config_(config), hierarchy_(hierarchy), memory_(memory),
      predictor_(predictor),
      ctxs_(contexts > 0 ? static_cast<std::size_t>(contexts) : 1)
{
    fatalIf(contexts < 1, "OooCore: need at least one context");
    robPartition_ = config_.robSize / contexts;
    fatalIf(robPartition_ < 4,
            "OooCore: robSize too small for the context count");
    const FuConfig *fu_configs[6] = {
        &config_.intAlu, &config_.intMul, &config_.fpDiv,
        &config_.memRead, &config_.memWrite, &config_.branchU};
    for (int i = 0; i < 6; ++i) {
        poolStorage_[i] = std::make_unique<FuncUnitPool>(*fu_configs[i]);
        pools_[i] = poolStorage_[i].get();
    }
    if (config_.interruptInterval > 0)
        nextInterrupt_ = config_.interruptInterval;
}

const PerfCounters &
OooCore::contextCounters(ContextId ctx) const
{
    panicIf(ctx >= ctxs_.size(), "OooCore: context out of range");
    return ctxs_[ctx].counters;
}

OooCore::Snapshot
OooCore::snapshot() const
{
    Snapshot snap;
    snap.cycle = cycle_;
    snap.nextInterrupt = nextInterrupt_;
    snap.counters = counters_;
    snap.ctxCounters.reserve(ctxs_.size());
    for (const CtxState &c : ctxs_)
        snap.ctxCounters.push_back(c.counters);
    snap.nextSeq = nextSeq_;
    snap.readyStamp = readyStamp_;
    for (int i = 0; i < 6; ++i)
        snap.reservations[i] = pools_[i]->reservations();
    return snap;
}

void
OooCore::restore(const Snapshot &snap)
{
    cycle_ = snap.cycle;
    nextInterrupt_ = snap.nextInterrupt;
    counters_ = snap.counters;
    panicIf(snap.ctxCounters.size() != ctxs_.size(),
            "OooCore::restore: context count mismatch");
    for (std::size_t i = 0; i < ctxs_.size(); ++i)
        ctxs_[i].counters = snap.ctxCounters[i];
    nextSeq_ = snap.nextSeq;
    readyStamp_ = snap.readyStamp;
    for (int i = 0; i < 6; ++i)
        pools_[i]->setReservations(snap.reservations[i]);

    // Drop any leftover pipeline state from a halted run so the core
    // is idle, exactly as it is right after a completed run.
    resetPipeline();
}

void
OooCore::resetPipeline()
{
    for (CtxState &c : ctxs_) {
        for (auto &entry : c.rob)
            recycleEntry(std::move(entry));
        c.rob.clear();
        c.renameTable.assign(c.renameTable.size(), nullptr);
        c.decoded = nullptr;
        c.programId = 0;
        c.active = false;
        c.halted = false;
        c.inflightStores = 0;
        c.inflightBranches = 0;
        c.robFullCounted = false;
    }
    events_ = {};
    for (auto &q : readyQueue_)
        q = {};
    replayQueue_.clear();
    draining_ = false;
    iqOccupancy_ = 0;
    dispatchRotate_ = 0;
    commitRotate_ = 0;
}

std::unique_ptr<OooCore::RobEntry>
OooCore::takeEntry()
{
    if (entryPool_.empty())
        return std::make_unique<RobEntry>();
    auto entry = std::move(entryPool_.back());
    entryPool_.pop_back();
    entry->status = Status::Waiting;
    entry->pendingSrcs = 0;
    entry->srcVal[0] = entry->srcVal[1] = entry->srcVal[2] = 0;
    entry->value = 0;
    entry->ea = 0;
    entry->eaValid = false;
    entry->predictedTaken = false;
    entry->forwarded = false;
    entry->consumers.clear();
    return entry;
}

void
OooCore::recycleEntry(std::unique_ptr<RobEntry> entry)
{
    // Kill any stale (entry, seq) references still sitting in events,
    // ready/replay queues, or consumer lists: seqs are never reused,
    // so no future seq can match kNoSeq or this entry's old seq.
    entry->seq = kNoSeq;
    entryPool_.push_back(std::move(entry));
}

std::int64_t
OooCore::computeAlu(const RobEntry &entry) const
{
    const Instruction &inst = *entry.inst;
    const std::int64_t v0 = entry.srcVal[0];
    const std::int64_t rhs =
        inst.src1 != kNoReg ? entry.srcVal[1] : inst.imm;
    // Register arithmetic wraps (two's complement), like the hardware
    // it models: compute in uint64 so the wraparound is well-defined
    // (gadget op chains overflow constantly by design).
    const auto u0 = static_cast<std::uint64_t>(v0);
    const auto u1 = static_cast<std::uint64_t>(rhs);
    switch (inst.op) {
      case Opcode::MovImm: return inst.imm;
      case Opcode::Add: return static_cast<std::int64_t>(u0 + u1);
      case Opcode::Sub: return static_cast<std::int64_t>(u0 - u1);
      case Opcode::Mul: return static_cast<std::int64_t>(u0 * u1);
      case Opcode::Div:
        if (rhs == 0)
            return 0;
        if (v0 == std::numeric_limits<std::int64_t>::min() && rhs == -1)
            return v0; // the one remaining overflow case wraps too
        return v0 / rhs;
      case Opcode::And: return v0 & rhs;
      case Opcode::Or: return v0 | rhs;
      case Opcode::Xor: return v0 ^ rhs;
      case Opcode::Shl:
        return static_cast<std::int64_t>(u0 << (rhs & 63));
      case Opcode::Shr:
        return static_cast<std::int64_t>(u0 >> (rhs & 63));
      case Opcode::Lea:
        return static_cast<std::int64_t>(computeEa(entry));
      case Opcode::Branch:
        return ((v0 != 0) != inst.invert) ? 1 : 0;
      case Opcode::Rdtsc:
        return static_cast<std::int64_t>(cycle_);
      default:
        return 0;
    }
}

Addr
OooCore::computeEa(const RobEntry &entry) const
{
    // Address arithmetic wraps modulo 2^64 (uint64), like computeAlu.
    const Instruction &inst = *entry.inst;
    std::uint64_t ea = static_cast<std::uint64_t>(inst.imm);
    if (inst.src0 != kNoReg)
        ea += static_cast<std::uint64_t>(entry.srcVal[0]) *
              static_cast<std::uint64_t>(
                  static_cast<std::int64_t>(inst.scale0));
    if (inst.src1 != kNoReg)
        ea += static_cast<std::uint64_t>(entry.srcVal[1]) *
              static_cast<std::uint64_t>(
                  static_cast<std::int64_t>(inst.scale1));
    return static_cast<Addr>(ea);
}

void
OooCore::startContext(ContextId ctx, const DecodedProgram &decoded,
                      std::uint64_t program_id,
                      const std::vector<std::pair<RegId, std::int64_t>>
                          &initial_regs)
{
    fatalIf(program_id == 0,
            "OooCore::run: program has no id (run it via a Machine)");
    panicIf(ctx >= ctxs_.size(), "OooCore: context out of range");
    CtxState &c = ctxs_[ctx];
    panicIf(c.active, "OooCore: context started twice");
    c.decoded = &decoded;
    c.programId = program_id;
    c.active = true;
    c.halted = false;

    const std::size_t nregs = std::max<std::size_t>(decoded.numRegs, 1);
    c.regfile.assign(nregs, 0);
    for (const auto &[reg, value] : initial_regs) {
        fatalIf(reg >= nregs, "initial reg out of range");
        c.regfile[reg] = value;
    }
    c.renameTable.assign(nregs, nullptr);

    c.fetchPc = 0;
    c.fetchStallUntil = cycle_;
    c.inflightStores = 0;
    c.inflightBranches = 0;
    c.robFullCounted = false;
}

void
OooCore::abortContext(CtxState &c)
{
    // A context abandoned mid-flight (a descheduled noisy neighbor,
    // or a halted run's younger speculative leftovers): uncommitted
    // work is dropped without counting as squashed — exactly as the
    // single-context model dropped post-Halt leftovers — while
    // committed effects and in-flight cache fills persist.
    while (!c.rob.empty()) {
        RobEntry &victim = *c.rob.back();
        if (victim.status == Status::Waiting ||
            victim.status == Status::Ready) {
            --iqOccupancy_;
        }
        recycleEntry(std::move(c.rob.back()));
        c.rob.pop_back();
    }
    c.renameTable.assign(c.renameTable.size(), nullptr);
    c.decoded = nullptr;
    c.programId = 0;
    c.active = false;
    c.halted = false;
    c.inflightStores = 0;
    c.inflightBranches = 0;
}

void
OooCore::markReady(RobEntry &entry)
{
    entry.status = Status::Ready;
    const std::uint64_t key =
        config_.readyOrderIssue ? readyStamp_++ : entry.seq;
    readyQueue_[static_cast<int>(entry.dop->fu)].push(
        {key, entry.seq, &entry});
}

void
OooCore::resolveEaIfReady(RobEntry &entry)
{
    // Address generation is decoupled from data (STA/STD split): a
    // store's EA resolves as soon as its address sources are ready,
    // even if the store data is still pending, so younger loads are
    // not conservatively blocked on store data.
    if (entry.eaValid || !entry.dop->isMem)
        return;
    // A source with scale 0 is an ordering-only dependence: it gates
    // issue but contributes nothing to the address.
    const bool src0_ok =
        entry.srcProducer[0] == kNoSeq || entry.inst->scale0 == 0;
    const bool src1_ok =
        entry.srcProducer[1] == kNoSeq || entry.inst->scale1 == 0;
    if (src0_ok && src1_ok) {
        entry.ea = computeEa(entry);
        entry.eaValid = true;
    }
}

void
OooCore::wakeConsumers(RobEntry &producer)
{
    for (const auto &[consumer, consumer_seq] : producer.consumers) {
        if (consumer->seq != consumer_seq)
            continue; // squashed
        for (int slot = 0; slot < 3; ++slot) {
            if (consumer->srcProducer[slot] == producer.seq) {
                consumer->srcVal[slot] = producer.value;
                consumer->srcProducer[slot] = kNoSeq;
                --consumer->pendingSrcs;
            }
        }
        resolveEaIfReady(*consumer);
        if (consumer->pendingSrcs == 0 &&
            consumer->status == Status::Waiting) {
            markReady(*consumer);
        }
    }
    producer.consumers.clear();
}

void
OooCore::resolveBranch(RobEntry &entry)
{
    CtxState &c = ctxOf(entry);
    const bool taken = entry.value != 0;
    const auto key =
        BranchPredictor::makeKey(c.programId, entry.pc);
    predictor_.update(key, taken);
    if (taken != entry.predictedTaken) {
        ++counters_.mispredicts;
        ++c.counters.mispredicts;
        const std::int32_t correct_pc =
            taken ? entry.inst->target : entry.pc + 1;
        squashAfter(c, entry.seq, correct_pc);
    }
}

void
OooCore::squashAfter(CtxState &c, std::uint64_t seq, std::int32_t new_pc)
{
    while (!c.rob.empty() && c.rob.back()->seq > seq) {
        RobEntry &victim = *c.rob.back();
        ++counters_.squashedInstrs;
        ++c.counters.squashedInstrs;
        if (victim.inst->op == Opcode::Store)
            --c.inflightStores;
        if (victim.inst->op == Opcode::Branch &&
            victim.status != Status::Completed) {
            --c.inflightBranches;
        }
        if (victim.status == Status::Waiting ||
            victim.status == Status::Ready) {
            --iqOccupancy_;
        }
        recycleEntry(std::move(c.rob.back()));
        c.rob.pop_back();
        // Events, ready-queue entries, and in-flight cache fills for the
        // squashed instruction are removed lazily (seq lookups fail) —
        // crucially, the cache fill itself still completes: transient
        // fills persist, the property the P/A racing gadget relies on.
    }

    // Rebuild the rename table from the surviving entries.
    std::fill(c.renameTable.begin(), c.renameTable.end(), nullptr);
    for (auto &entry : c.rob) {
        if (entry->dop->writesDst)
            c.renameTable[entry->inst->dst] = entry.get();
    }

    c.fetchPc = new_pc;
    c.fetchStallUntil = cycle_ + config_.mispredictPenalty;
}

bool
OooCore::processCompletions()
{
    bool work = false;
    while (!events_.empty() && events_.top().cycle <= cycle_) {
        const Event ev = events_.top();
        events_.pop();
        RobEntry *entry = ev.entry;
        if (entry->seq != ev.seq || entry->status != Status::Issued)
            continue; // squashed (or stale)
        if (entry->inst->op == Opcode::Load && !entry->forwarded)
            entry->value = memory_.read(entry->ea);
        entry->status = Status::Completed;
        if (lockstepRec_ && entry->inst->op == Opcode::Load)
            lockstep_->recordLoadComplete(*entry);
        wakeConsumers(*entry);
        if (entry->inst->op == Opcode::Branch) {
            --ctxOf(*entry).inflightBranches;
            resolveBranch(*entry);
        }
        work = true;
    }
    return work;
}

bool
OooCore::tryIssueMemOp(RobEntry &entry)
{
    if (!entry.eaValid) {
        entry.ea = computeEa(entry);
        entry.eaValid = true;
    }
    const Opcode op = entry.inst->op;
    CtxState &c = ctxOf(entry);

    if (op == Opcode::Store) {
        auto done = pools_[static_cast<int>(FuClass::MemWrite)]->tryIssue(
            cycle_);
        if (!done)
            return false;
        entry.value = entry.srcVal[2]; // store data travels in slot 2
        events_.push({*done, entry.seq, &entry});
        if (lockstepRec_)
            lockstep_->recordIssue(entry);
        ++counters_.issuedByClass[static_cast<int>(FuClass::MemWrite)];
        ++c.counters.issuedByClass[static_cast<int>(FuClass::MemWrite)];
        return true;
    }

    // Loads must respect older stores of their own context
    // (conservative disambiguation; contexts have no architectural
    // ordering against each other).
    if (op == Opcode::Load && c.inflightStores > 0) {
        const RobEntry *forward_from = nullptr;
        for (const auto &older : c.rob) {
            if (older->seq >= entry.seq)
                break;
            if (older->inst->op != Opcode::Store)
                continue;
            if (!older->eaValid)
                return false; // unresolved older store: wait
            if (MemoryImage::wordAddr(older->ea) ==
                MemoryImage::wordAddr(entry.ea)) {
                forward_from = older.get();
            }
        }
        if (forward_from) {
            if (forward_from->status != Status::Completed)
                return false; // store data not ready yet
            entry.forwarded = true;
            entry.value = forward_from->value;
            events_.push({cycle_ + 1, entry.seq, &entry});
            if (lockstepRec_)
                lockstep_->recordIssue(entry);
            ++counters_.issuedByClass[static_cast<int>(FuClass::MemRead)];
            ++c.counters.issuedByClass[static_cast<int>(FuClass::MemRead)];
            return true;
        }
    }

    // Delay-on-miss: speculative loads (an unresolved older branch
    // exists) that would miss the L1 are held until non-speculative.
    if (config_.delayOnMiss && op == Opcode::Load &&
        c.inflightBranches > 0) {
        bool older_branch = false;
        for (const auto &other : c.rob) {
            if (other->seq >= entry.seq)
                break;
            if (other->inst->op == Opcode::Branch &&
                other->status != Status::Completed) {
                older_branch = true;
                break;
            }
        }
        if (older_branch &&
            !hierarchy_.l1().contains(hierarchy_.l1().lineAddr(
                entry.ea))) {
            return false; // replay until the branch resolves
        }
    }

    auto port = pools_[static_cast<int>(FuClass::MemRead)]->tryIssue(
        cycle_);
    if (!port)
        return false;

    const AccessKind kind =
        op == Opcode::Prefetch ? AccessKind::Prefetch : AccessKind::Load;
    const AccessOutcome outcome =
        hierarchy_.access(entry.ea, cycle_, kind, entry.ctx);
    if (!outcome.accepted)
        return false; // out of MSHRs, retry

    // Software prefetches retire without waiting for data (section
    // 6.3.1: they never block the pipeline).
    const Cycle done =
        op == Opcode::Prefetch ? cycle_ + 1 : outcome.readyCycle;
    events_.push({done, entry.seq, &entry});
    if (lockstepRec_) {
        lockstep_->recordIssue(entry);
        lockstep_->recordAccess(entry.ea);
    }
    ++counters_.issuedByClass[static_cast<int>(FuClass::MemRead)];
    ++c.counters.issuedByClass[static_cast<int>(FuClass::MemRead)];
    return true;
}

bool
OooCore::issueStage()
{
    int issued = 0;
    bool work = false;

    // Memory-op replays first (they are the oldest waiters).
    if (!replayQueue_.empty()) {
        std::vector<std::pair<RobEntry *, std::uint64_t>> retry;
        retry.swap(replayQueue_);
        for (const auto &[entry, seq] : retry) {
            if (entry->seq != seq || entry->status != Status::Ready)
                continue; // squashed
            if (issued < config_.issueWidth && tryIssueMemOp(*entry)) {
                entry->status = Status::Issued;
                --iqOccupancy_;
                ++issued;
                work = true;
            } else {
                replayQueue_.emplace_back(entry, seq);
            }
        }
    }

    static constexpr FuClass kOrder[6] = {
        FuClass::BranchU, FuClass::MemRead, FuClass::MemWrite,
        FuClass::IntAlu, FuClass::IntMul, FuClass::FpDiv};

    for (FuClass cls : kOrder) {
        auto &queue = readyQueue_[static_cast<int>(cls)];
        while (issued < config_.issueWidth && !queue.empty()) {
            const std::uint64_t seq = queue.top().seq;
            RobEntry *entry = queue.top().entry;
            if (entry->seq != seq || entry->status != Status::Ready) {
                queue.pop(); // stale (squashed or re-routed)
                continue;
            }
            if (entry->dop->isMem) {
                queue.pop();
                if (tryIssueMemOp(*entry)) {
                    entry->status = Status::Issued;
                    --iqOccupancy_;
                    ++issued;
                    work = true;
                } else {
                    replayQueue_.emplace_back(entry, seq);
                }
                continue;
            }
            auto done = pools_[static_cast<int>(cls)]->tryIssue(cycle_);
            if (!done)
                break; // no unit free in this class this cycle
            queue.pop();
            entry->value = computeAlu(*entry);
            entry->status = Status::Issued;
            --iqOccupancy_;
            events_.push({*done, entry->seq, entry});
            if (lockstepRec_)
                lockstep_->recordIssue(*entry);
            ++counters_.issuedByClass[static_cast<int>(cls)];
            ++ctxOf(*entry).counters.issuedByClass[static_cast<int>(cls)];
            ++issued;
            work = true;
        }
    }
    return work;
}

bool
OooCore::fetchOne(CtxState &c)
{
    const Instruction &inst = c.decoded->code[c.fetchPc];
    const DecodedOp &dop = c.decoded->ops[c.fetchPc];
    auto entry = takeEntry();
    entry->seq = nextSeq_++;
    entry->pc = c.fetchPc;
    entry->ctx = static_cast<ContextId>(&c - ctxs_.data());
    entry->inst = &inst;
    entry->dop = &dop;
    entry->srcProducer[0] = kNoSeq;
    entry->srcProducer[1] = kNoSeq;
    entry->srcProducer[2] = kNoSeq;

    // Next fetch pc (possibly speculative); precomputed except for the
    // predicted direction of a conditional branch.
    if (dop.next == NextPcKind::Branch) {
        const auto key = BranchPredictor::makeKey(c.programId,
                                                  c.fetchPc);
        entry->predictedTaken = predictor_.predict(key);
        c.fetchPc = entry->predictedTaken ? dop.nextPc : c.fetchPc + 1;
    } else {
        c.fetchPc = dop.nextPc;
    }

    // Rename: capture sources (slot layout predecoded; stores read
    // their data via slot 2).
    for (int slot = 0; slot < 3; ++slot) {
        const RegId reg = dop.srcs[slot];
        if (reg == kNoReg)
            continue;
        RobEntry *producer = c.renameTable[reg];
        if (!producer) {
            entry->srcVal[slot] = c.regfile[reg];
        } else if (producer->status == Status::Completed) {
            entry->srcVal[slot] = producer->value;
        } else {
            entry->srcProducer[slot] = producer->seq;
            producer->consumers.emplace_back(entry.get(),
                                             entry->seq);
            ++entry->pendingSrcs;
        }
    }

    if (dop.writesDst)
        c.renameTable[inst.dst] = entry.get();
    if (inst.op == Opcode::Store)
        ++c.inflightStores;
    if (inst.op == Opcode::Branch)
        ++c.inflightBranches;

    resolveEaIfReady(*entry);
    if (entry->pendingSrcs == 0)
        markReady(*entry);
    ++iqOccupancy_;

    c.rob.push_back(std::move(entry));
    return true;
}

bool
OooCore::dispatchStage()
{
    if (draining_)
        return false;

    const int n = static_cast<int>(ctxs_.size());

    // A context can dispatch when it has code left, is past any
    // redirect stall, and finds room in its ROB partition and the
    // shared issue queue. ROB-full counts one stall per context per
    // dispatch opportunity, matching the single-context model.
    auto can_fetch = [&](CtxState &c) {
        if (!c.active || c.halted)
            return false;
        if (cycle_ < c.fetchStallUntil)
            return false;
        if (fetchExhausted(c))
            return false;
        if (static_cast<int>(c.rob.size()) >= robPartition_) {
            if (!c.robFullCounted) {
                c.robFullCounted = true;
                ++counters_.robFullStalls;
                ++c.counters.robFullStalls;
            }
            return false;
        }
        if (iqOccupancy_ >= config_.effectiveIqSize())
            return false;
        return true;
    };

    // Single-context fast path: the legacy dispatch loop, no
    // arbitration arithmetic on the hot path.
    if (n == 1) {
        CtxState &c = ctxs_[0];
        c.robFullCounted = false;
        bool work = false;
        for (int budget = config_.fetchWidth; budget > 0; --budget) {
            if (!can_fetch(c))
                break;
            fetchOne(c);
            work = true;
        }
        return work;
    }

    for (CtxState &c : ctxs_)
        c.robFullCounted = false;

    // Shared fetch bandwidth, round-robin per instruction across the
    // contexts; the rotation cursor advances every dispatch call so no
    // context is structurally favoured.
    bool work = false;
    std::uint32_t rotate = dispatchRotate_++;
    for (int budget = config_.fetchWidth; budget > 0; --budget) {
        bool fetched = false;
        for (int k = 0; k < n; ++k) {
            CtxState &c =
                ctxs_[(rotate + static_cast<std::uint32_t>(k)) %
                      static_cast<std::uint32_t>(n)];
            if (!can_fetch(c))
                continue;
            fetchOne(c);
            rotate += static_cast<std::uint32_t>(k) + 1;
            fetched = true;
            work = true;
            break;
        }
        if (!fetched)
            break;
    }
    return work;
}

bool
OooCore::commitStage()
{
    const int n = static_cast<int>(ctxs_.size());
    int budget = config_.commitWidth;
    bool committed_any = false;

    for (int k = 0; k < n && budget > 0; ++k) {
        // n == 1 avoids the rotation arithmetic (the common case).
        CtxState &c =
            n == 1 ? ctxs_[0]
                   : ctxs_[(commitRotate_ +
                            static_cast<std::uint32_t>(k)) %
                           static_cast<std::uint32_t>(n)];
        if (!c.active)
            continue;
        bool committed_here = false;
        while (budget > 0 && !c.rob.empty()) {
            RobEntry &head = *c.rob.front();
            if (head.status != Status::Completed)
                break;

            const Instruction &inst = *head.inst;
            if (lockstepRec_)
                lockstep_->recordCommit(head);
            if (head.dop->writesDst) {
                c.regfile[inst.dst] = head.value;
                if (c.renameTable[inst.dst] == &head)
                    c.renameTable[inst.dst] = nullptr;
            }
            switch (inst.op) {
              case Opcode::Store:
                memory_.write(head.ea, head.value);
                hierarchy_.access(head.ea, cycle_, AccessKind::Store,
                                  head.ctx);
                if (lockstepRec_)
                    lockstep_->recordAccess(head.ea);
                --c.inflightStores;
                ++counters_.committedStores;
                ++c.counters.committedStores;
                break;
              case Opcode::Load:
                ++counters_.committedLoads;
                ++c.counters.committedLoads;
                break;
              case Opcode::Branch:
              case Opcode::Jump:
                ++counters_.branches;
                ++c.counters.branches;
                if (lockstepWatch_ && inst.op == Opcode::Branch &&
                    head.value != 0 && inst.target <= head.pc)
                    lockstep_->onAnchor(head.pc);
                break;
              case Opcode::Halt:
                c.halted = true;
                break;
              default:
                break;
            }
            ++counters_.committedInstrs;
            ++c.counters.committedInstrs;
            recycleEntry(std::move(c.rob.front()));
            c.rob.pop_front();
            --budget;
            committed_here = true;
            committed_any = true;
            if (c.halted)
                break;
        }
        if (!committed_here && !c.rob.empty()) {
            ++c.counters.noCommitCycles;
            if (n == 1)
                ++counters_.noCommitCycles;
        }
    }
    if (n > 1) {
        commitRotate_ = static_cast<std::uint32_t>(
            (commitRotate_ + 1) % static_cast<std::uint32_t>(n));
        if (!committed_any && anyRobNonEmpty())
            ++counters_.noCommitCycles;
    }
    return committed_any;
}

void
OooCore::serviceInterrupt()
{
    counters_.cycles += config_.interruptOverhead;
    for (CtxState &c : ctxs_) {
        if (!c.active)
            continue;
        c.counters.cycles += config_.interruptOverhead;
        ++c.counters.interrupts;
    }
    cycle_ += config_.interruptOverhead;
    ++counters_.interrupts;
    nextInterrupt_ = cycle_ + config_.interruptInterval;
    draining_ = false;
    for (CtxState &c : ctxs_)
        c.fetchStallUntil = std::max(c.fetchStallUntil, cycle_);
}

Cycle
OooCore::nextWakeCycle() const
{
    Cycle next = ~Cycle{0};
    if (!events_.empty())
        next = std::min(next, events_.top().cycle);
    if (!replayQueue_.empty()) {
        if (auto fill = hierarchy_.nextFillCycle())
            next = std::min(next, *fill);
    }
    if (!draining_) {
        for (const CtxState &c : ctxs_) {
            const bool fetch_pending =
                c.active && !c.halted && !fetchExhausted(c);
            if (fetch_pending && c.fetchStallUntil > cycle_)
                next = std::min(next, c.fetchStallUntil);
        }
    }
    return next;
}

void
OooCore::advanceTime(Cycle target)
{
    const Cycle delta = target - cycle_;
    if (ctxs_.size() == 1) {
        // Hot path: the whole-core and per-context accounting agree.
        CtxState &c = ctxs_[0];
        if (!c.rob.empty()) {
            counters_.noCommitCycles += delta - 1;
            c.counters.noCommitCycles += delta - 1;
        }
        counters_.cycles += delta;
        c.counters.cycles += delta;
        cycle_ = target;
        return;
    }
    if (anyRobNonEmpty())
        counters_.noCommitCycles += delta - 1;
    counters_.cycles += delta;
    for (CtxState &c : ctxs_) {
        if (!c.active)
            continue;
        if (!c.rob.empty())
            c.counters.noCommitCycles += delta - 1;
        c.counters.cycles += delta;
    }
    cycle_ = target;
}

RunResult
OooCore::run(const DecodedProgram &decoded, std::uint64_t program_id,
             const std::vector<std::pair<RegId, std::int64_t>>
                 &initial_regs,
             Cycle max_cycles)
{
    return runOn(0, decoded, program_id, initial_regs, max_cycles);
}

RunResult
OooCore::runOn(ContextId ctx, const DecodedProgram &decoded,
               std::uint64_t program_id,
               const std::vector<std::pair<RegId, std::int64_t>>
                   &initial_regs,
               Cycle max_cycles)
{
    ContextProgram primary;
    primary.ctx = ctx;
    primary.decoded = &decoded;
    primary.programId = program_id;
    primary.initialRegs = initial_regs;
    return coRun(primary, {}, max_cycles);
}

RunResult
OooCore::coRun(const ContextProgram &primary,
               const std::vector<ContextProgram> &backgrounds,
               Cycle max_cycles)
{
    panicIf(primary.decoded == nullptr, "coRun: no primary program");
    resetPipeline();
    startContext(primary.ctx, *primary.decoded, primary.programId,
                 primary.initialRegs);
    for (const ContextProgram &bg : backgrounds) {
        fatalIf(bg.ctx == primary.ctx,
                "coRun: background on the primary context");
        panicIf(bg.decoded == nullptr, "coRun: no background program");
        startContext(bg.ctx, *bg.decoded, bg.programId, bg.initialRegs);
    }

    if (config_.interruptInterval > 0 && nextInterrupt_ <= cycle_)
        nextInterrupt_ = cycle_ + config_.interruptInterval;

    return runLoop(primary.ctx, max_cycles);
}

RunResult
OooCore::runLoop(ContextId primary, Cycle max_cycles)
{
    CtxState &prim = ctxs_[primary];

    RunResult result;
    result.startCycle = cycle_;
    const PerfCounters before = prim.counters;
    const Cycle deadline = cycle_ + max_cycles;

    if (config_.lockstep && config_.interruptInterval == 0) {
        if (!lockstep_)
            lockstep_ = std::make_unique<LockstepEngine>(*this);
        lockstep_->beginRun(primary, deadline);
    } else {
        lockstepWatch_ = false;
        lockstepRec_ = false;
    }

    for (;;) {
        if (draining_ && allRobsEmpty())
            serviceInterrupt();
        if (lockstepRec_)
            lockstep_->onLoopTop();

        bool work = false;
        work |= processCompletions();
        work |= issueStage();
        work |= dispatchStage();
        work |= commitStage();

        if (prim.halted)
            break;

        // A background context that ran its program to completion goes
        // idle (stops accumulating busy cycles); one that committed a
        // Halt is drained immediately so it stops holding IQ slots.
        if (ctxs_.size() > 1) {
            for (CtxState &c : ctxs_) {
                if (&c == &prim || !c.active)
                    continue;
                if (ctxDone(c))
                    abortContext(c);
            }
        }

        if (config_.interruptInterval > 0 && !draining_ &&
            cycle_ >= nextInterrupt_) {
            draining_ = true;
        }

        if (ctxDone(prim) && !draining_)
            break;

        // Advance time, skipping idle stretches.
        Cycle target = cycle_ + 1;
        if (!work && !(draining_ && allRobsEmpty())) {
            const Cycle wake = nextWakeCycle();
            if (wake == ~Cycle{0}) {
                bool fetch_ready = false;
                for (const CtxState &c : ctxs_) {
                    if (c.active && !c.halted && !fetchExhausted(c) &&
                        c.fetchStallUntil <= cycle_) {
                        fetch_ready = true;
                        break;
                    }
                }
                if (allRobsEmpty() && fetch_ready) {
                    // Fetch can proceed next cycle.
                } else if (allRobsEmpty()) {
                    // Only a fetch stall remains; handled above via
                    // nextWakeCycle, so reaching here means done.
                } else {
                    panic("OooCore: deadlock (ROB stuck with no events)");
                }
            } else {
                target = std::max(target, wake);
            }
        }
        advanceTime(target);

        fatalIf(cycle_ > deadline, "OooCore::run: cycle limit exceeded");
    }

    if (lockstep_)
        lockstep_->endRun();
    hierarchy_.applyFillsUpTo(cycle_);
    result.endCycle = cycle_;
    result.halted = prim.halted;
    result.counters = prim.counters - before;

    // Deschedule whatever is still in flight: the primary's own
    // leftover state (a halted run with younger speculative work) and
    // any still-running background neighbors.
    for (CtxState &c : ctxs_)
        if (c.active)
            abortContext(c);

    return result;
}

} // namespace hr
