/**
 * @file
 * Direction predictor for conditional branches.
 *
 * A table of 2-bit saturating counters keyed by (program id, pc), so
 * running the same Program repeatedly trains its branches — which is how
 * the paper's transient P/A racing gadget sets up its misprediction
 * (train with x = 0, attack with x = 1).
 */

#ifndef HR_CORE_BRANCH_PREDICTOR_HH
#define HR_CORE_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <unordered_map>

namespace hr
{

/** 2-bit-counter branch direction predictor. */
class BranchPredictor
{
  public:
    /** Predict taken/not-taken for a static branch. */
    bool predict(std::uint64_t key) const;

    /** Train with the resolved direction. */
    void update(std::uint64_t key, bool taken);

    /** Forget everything (fresh browser tab). */
    void reset() { counters_.clear(); }

    /** Number of static branches seen. */
    std::size_t tableSize() const { return counters_.size(); }

    /**
     * Current counter value for a key without training it (kInit for a
     * branch never seen). Lets the replay machinery prove two program
     * ids are interchangeable: if every branch pc of a program holds
     * the same counter under both ids, execution under either id is
     * bit-identical (keys are injective per (id, pc) for the id ranges
     * in use, so there is no cross-program aliasing to disturb).
     */
    std::uint8_t
    peek(std::uint64_t key) const
    {
        auto it = counters_.find(key);
        return it == counters_.end() ? kInit : it->second;
    }

    /** Build the lookup key for a branch. */
    static std::uint64_t
    makeKey(std::uint64_t program_id, std::int32_t pc)
    {
        return (program_id << 20) ^ static_cast<std::uint64_t>(pc);
    }

    /**
     * Monotone mutation version: bumped by update() only when the
     * table observably changes (a counter moves or a key is first
     * seen). An unchanged version across a stretch of execution proves
     * the predictor was a fixed point over it — saturated counters
     * re-trained with their own direction do not bump it.
     */
    std::uint64_t version() const { return version_; }

  private:
    static constexpr std::uint8_t kInit = 1; // weakly not-taken
    std::unordered_map<std::uint64_t, std::uint8_t> counters_;
    std::uint64_t version_ = 0;
};

} // namespace hr

#endif // HR_CORE_BRANCH_PREDICTOR_HH
