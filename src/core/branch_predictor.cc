#include "core/branch_predictor.hh"

namespace hr
{

bool
BranchPredictor::predict(std::uint64_t key) const
{
    auto it = counters_.find(key);
    const std::uint8_t c = it == counters_.end() ? kInit : it->second;
    return c >= 2;
}

void
BranchPredictor::update(std::uint64_t key, bool taken)
{
    auto [it, inserted] = counters_.try_emplace(key, kInit);
    std::uint8_t &c = it->second;
    const std::uint8_t before = c;
    if (taken) {
        if (c < 3)
            ++c;
    } else {
        if (c > 0)
            --c;
    }
    if (inserted || c != before)
        ++version_;
}

} // namespace hr
