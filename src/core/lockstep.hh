/**
 * @file
 * Lockstep steady-state fast-forward for the out-of-order core.
 *
 * The batched experiment paths spend almost all their cycles inside
 * gadget loops whose pipeline behaviour settles into an exact period:
 * every loop iteration issues the same ops on the same relative cycles,
 * touching the same cache sets, with only a handful of values (the
 * induction registers) sliding by a constant per iteration. This engine
 * detects that situation *provably* and then applies the remaining
 * iterations in closed form — counters, register file, ROB payloads,
 * event/ready queues, functional-unit reservations, in-flight fills and
 * memory words are all shifted by k times their learned per-period
 * deltas — instead of simulating them cycle by cycle.
 *
 * Soundness contract (bit-identity with scalar execution):
 *  - An anchor is a committed backward taken branch pc seen on several
 *    consecutive backward-taken-branch commits. Loop tops following an
 *    anchor commit are period boundaries.
 *  - Three consecutive boundary captures must be structurally equal and
 *    equal modulo one learned affine delta per numeric field (two
 *    independent delta observations must agree).
 *  - The two full periods between them must replay the same op
 *    sequence, and every issued op (including transient ones) must be
 *    of a shape whose outputs provably shift by the observed deltas
 *    when its inputs do (see opRuleOk) — so the extrapolation is an
 *    exact fixed point of the step function, not a statistical guess.
 *  - Nothing in the period may consume randomness, train the branch
 *    predictor, or evict from the (inclusive) L3 — each would let state
 *    escape the captured signature. The engine refuses otherwise.
 *  - Conditional branches bound the skip: the smallest number of
 *    periods after which any branch input reaches zero (computed in
 *    closed form modulo 2^64) caps k strictly below the first flip.
 *
 * The engine is a pure speed knob: CoreConfig::lockstep only gates it,
 * and every refusal path falls back to ordinary simulation.
 */

#ifndef HR_CORE_LOCKSTEP_HH
#define HR_CORE_LOCKSTEP_HH

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "core/ooo_core.hh"

namespace hr
{

class LockstepEngine
{
  public:
    explicit LockstepEngine(OooCore &core);

    /**
     * Decide eligibility for the run that is about to enter runLoop
     * (single active context, interrupts disabled) and arm the
     * watch/record flags on the core accordingly.
     */
    void beginRun(ContextId primary, Cycle deadline);

    /** Disarm and release per-run record storage. */
    void endRun();

    /** Cumulative accounting across runs (introspection/tests). */
    struct Stats
    {
        std::uint64_t forwards = 0;       ///< successful fast-forwards
        std::uint64_t skippedPeriods = 0; ///< loop periods applied closed-form
        std::uint64_t skippedCycles = 0;  ///< cycles applied closed-form
        std::uint64_t refusals = 0;       ///< failed verifications
    };
    const Stats &stats() const { return stats_; }

    // ---- hooks (call sites in ooo_core.cc, guarded by the core's
    // lockstepWatch_/lockstepRec_ bools so disabled runs pay one
    // branch per hook) ----

    /** Committed backward taken branch at @p pc (anchor detection). */
    void onAnchor(std::int32_t pc);

    /** Top of the runLoop iteration; may fast-forward cycle_ et al. */
    void onLoopTop();

    /** Any instruction committing (records the period's commit tape). */
    void recordCommit(const OooCore::RobEntry &head);

    /** Any instruction issuing, transient ones included. */
    void recordIssue(const OooCore::RobEntry &entry);

    /** A load completing with its final value bound. */
    void recordLoadComplete(const OooCore::RobEntry &entry);

    /** A hierarchy access was accepted at the current cycle. */
    void recordAccess(Addr addr);

  private:
    // ---- period records ----
    struct IssueRec
    {
        std::int32_t pc;
        Opcode op;
        std::uint64_t value;
        std::uint64_t src0, src1;
        Addr ea;
        std::uint8_t eaValid;
    };
    struct LoadRec
    {
        std::int32_t pc;
        Addr ea;
        std::uint64_t value;
    };
    struct CommitRec
    {
        std::int32_t pc;
        Opcode op;
        Addr ea;            ///< stores only
        std::uint64_t value; ///< stores only
    };
    struct AccessRec
    {
        Addr addr;
        Cycle rel; ///< cycles since the period boundary
    };
    struct PeriodRec
    {
        std::vector<IssueRec> issues;
        std::vector<LoadRec> loads;
        std::vector<CommitRec> commits;
        std::vector<AccessRec> accesses;
        std::uint64_t loopIters = 0;
        void clear();
    };

    /**
     * Canonical loop-top capture: structural fields must match exactly
     * between boundaries; numeric fields may differ by one learned
     * affine delta each. ROB entries are addressed by partition index,
     * queue contents are canonicalized (sorted, dead references
     * dropped where provably inert), and all times/sequence numbers
     * are taken relative to the boundary's own clock/allocators.
     */
    struct Boundary
    {
        Cycle cycle = 0;
        std::uint64_t nextSeq = 0, readyStamp = 0;
        std::uint32_t dispatchRotate = 0, commitRotate = 0;
        std::vector<std::int64_t> regfile;
        // ROB structure-of-arrays, indexed by position in the deque.
        std::vector<std::int32_t> robPc;
        std::vector<std::uint8_t> robMeta; ///< status|eaValid|pred|fwd|pend
        std::vector<std::uint64_t> robSeqRel;
        std::array<std::vector<std::uint64_t>, 3> robSrc;
        std::array<std::vector<std::uint64_t>, 3> robProdRel;
        std::vector<std::uint64_t> robValue;
        std::vector<Addr> robEa;
        std::vector<std::vector<std::pair<std::int32_t, std::uint64_t>>>
            robConsumers; ///< live (consumer rob index, seqRel), in order
        std::vector<std::int32_t> rename; ///< rob index or -1
        std::int32_t fetchPc = 0;
        Cycle fetchStallRel = 0; ///< saturated at 0 (past == now)
        std::int32_t inflightStores = 0, inflightBranches = 0,
                     iqOccupancy = 0;
        std::uint8_t robFullCounted = 0;
        /** Sorted (cycleRel, seqRel, robIdx). Any stale queue entry
         *  (squashed producer) aborts the capture: staleness is not
         *  stable under the seq shift a fast-forward applies. */
        std::vector<std::array<std::uint64_t, 3>> events;
        /** Sorted (keyRel, seqRel, robIdx) per FU class. */
        std::array<std::vector<std::array<std::uint64_t, 3>>, 6> ready;
        std::vector<std::pair<std::int32_t, std::uint64_t>> replay;
        std::array<std::vector<Cycle>, 6> fuRel; ///< saturated at 0
        std::uint64_t inflightSig = 0;
        std::uint64_t cacheSig = 0; ///< over the ended period's sets
        std::uint64_t rngDraws = 0;
        std::uint64_t predVersion = 0;
        bool hasCancelledFills = false;
        Hierarchy::CountersSample hier;
        PerfCounters counters, ctxCounters;
    };

    static constexpr int kAnchorStreak = 4;
    static constexpr int kMaxFailures = 12;
    static constexpr std::size_t kMaxPeriodOps = 4096;
    static constexpr std::uint64_t kUnbounded = ~std::uint64_t{0};

    void giveUp();
    void startPeriod();
    void finalizeBoundary();
    std::optional<Boundary> capture() const;
    static bool structuralEqual(const Boundary &a, const Boundary &b);
    std::uint64_t cacheSigOver(const PeriodRec &rec) const;
    bool recordsEqual(const PeriodRec &a, const PeriodRec &b) const;
    /** Verify the 3-capture window; on success returns the skip count. */
    std::optional<std::uint64_t> verify() const;
    void applyForward(std::uint64_t k);
    /** Periods until this branch record's input first hits zero. */
    static std::uint64_t branchFlipBound(std::uint64_t v, std::uint64_t d);

    OooCore &core_;
    Stats stats_;

    // ---- per-run state ----
    ContextId primary_ = 0;
    Cycle deadline_ = 0;
    std::int32_t anchorPc_ = -1;
    std::int32_t streakPc_ = -1;
    int streak_ = 0;
    int failures_ = 0;
    bool boundaryPending_ = false;
    bool recording_ = false; ///< records span full periods (post-anchor)
    Cycle periodStart_ = 0;
    PeriodRec cur_;
    /** (boundary, the period record that ENDED at it), oldest first. */
    std::deque<std::pair<Boundary, PeriodRec>> window_;
};

} // namespace hr

#endif // HR_CORE_LOCKSTEP_HH
