#include "core/lockstep.hh"

#include <algorithm>
#include <unordered_map>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/log.hh"
#include "util/memory_image.hh"

namespace hr
{

namespace
{

/** Access a priority_queue's underlying container (capture/shift). */
template <class Q>
const typename Q::container_type &
queueContainer(const Q &queue)
{
    struct Expose : Q
    {
        using Q::c;
    };
    return queue.*&Expose::c;
}

template <class Q>
typename Q::container_type &
mutableQueueContainer(Q &queue)
{
    struct Expose : Q
    {
        using Q::c;
    };
    return queue.*&Expose::c;
}

std::uint64_t
sigMix(std::uint64_t hash, std::uint64_t value)
{
    hash ^= value;
    return hash * 0x100000001b3ull;
}

/** Multiplicative inverse of an odd value modulo 2^64 (Newton). */
std::uint64_t
oddInverse(std::uint64_t d)
{
    std::uint64_t x = d; // correct to 3 bits
    for (int i = 0; i < 5; ++i)
        x *= 2 - d * x; // doubles correct bits each round
    return x;
}

int
countTrailingZeros(std::uint64_t v)
{
    int n = 0;
    while ((v & 1) == 0) {
        v >>= 1;
        ++n;
    }
    return n;
}

bool
countersSame(const PerfCounters &a, const PerfCounters &b)
{
    for (int i = 0; i < 6; ++i)
        if (a.issuedByClass[i] != b.issuedByClass[i])
            return false;
    return a.cycles == b.cycles &&
           a.committedInstrs == b.committedInstrs &&
           a.committedLoads == b.committedLoads &&
           a.committedStores == b.committedStores &&
           a.squashedInstrs == b.squashedInstrs &&
           a.branches == b.branches && a.mispredicts == b.mispredicts &&
           a.interrupts == b.interrupts &&
           a.noCommitCycles == b.noCommitCycles &&
           a.robFullStalls == b.robFullStalls;
}

void
addScaledCounters(PerfCounters &out, const PerfCounters &delta,
                  std::uint64_t k)
{
    out.cycles += k * delta.cycles;
    out.committedInstrs += k * delta.committedInstrs;
    out.committedLoads += k * delta.committedLoads;
    out.committedStores += k * delta.committedStores;
    out.squashedInstrs += k * delta.squashedInstrs;
    out.branches += k * delta.branches;
    out.mispredicts += k * delta.mispredicts;
    out.interrupts += k * delta.interrupts;
    for (int i = 0; i < 6; ++i)
        out.issuedByClass[i] += k * delta.issuedByClass[i];
    out.noCommitCycles += k * delta.noCommitCycles;
    out.robFullStalls += k * delta.robFullStalls;
}

bool
cacheStatsDeltaSame(const CacheStats &a0, const CacheStats &a1,
                    const CacheStats &b0, const CacheStats &b1)
{
    return a1.hits - a0.hits == b1.hits - b0.hits &&
           a1.misses - a0.misses == b1.misses - b0.misses &&
           a1.fills - a0.fills == b1.fills - b0.fills &&
           a1.evictions - a0.evictions == b1.evictions - b0.evictions;
}

bool
ctxStatsDeltaSame(const ContextAccessStats &da,
                  const ContextAccessStats &db)
{
    for (int i = 0; i < 3; ++i)
        if (da.hits[i] != db.hits[i])
            return false;
    return da.misses == db.misses && da.fills == db.fills &&
           da.memAccesses == db.memAccesses;
}

/** (b1 - b0) == (b2 - b1) elementwise, in wrapping uint64 space. */
template <typename T>
bool
vectorDeltaSame(const std::vector<T> &v0, const std::vector<T> &v1,
                const std::vector<T> &v2)
{
    if (v0.size() != v1.size() || v1.size() != v2.size())
        return false;
    for (std::size_t i = 0; i < v0.size(); ++i) {
        const auto a = static_cast<std::uint64_t>(v1[i]) -
                       static_cast<std::uint64_t>(v0[i]);
        const auto b = static_cast<std::uint64_t>(v2[i]) -
                       static_cast<std::uint64_t>(v1[i]);
        if (a != b)
            return false;
    }
    return true;
}

} // namespace

void
LockstepEngine::PeriodRec::clear()
{
    issues.clear();
    loads.clear();
    commits.clear();
    accesses.clear();
    loopIters = 0;
}

LockstepEngine::LockstepEngine(OooCore &core) : core_(core)
{
}

void
LockstepEngine::beginRun(ContextId primary, Cycle deadline)
{
    primary_ = primary;
    deadline_ = deadline;
    anchorPc_ = -1;
    streakPc_ = -1;
    streak_ = 0;
    failures_ = 0;
    boundaryPending_ = false;
    recording_ = false;
    cur_.clear();
    window_.clear();

    int active = 0;
    for (const OooCore::CtxState &c : core_.ctxs_)
        if (c.active)
            ++active;
    const bool eligible =
        active == 1 && core_.ctxs_[primary].active &&
        core_.config_.interruptInterval == 0;
    core_.lockstepWatch_ = eligible;
    core_.lockstepRec_ = false;
}

void
LockstepEngine::endRun()
{
    core_.lockstepWatch_ = false;
    core_.lockstepRec_ = false;
    cur_ = PeriodRec();
    window_.clear();
    window_.shrink_to_fit();
}

void
LockstepEngine::giveUp()
{
    core_.lockstepWatch_ = false;
    core_.lockstepRec_ = false;
    recording_ = false;
    boundaryPending_ = false;
    cur_ = PeriodRec();
    window_.clear();
}

void
LockstepEngine::onAnchor(std::int32_t pc)
{
    if (core_.lockstepRec_) {
        if (pc == anchorPc_)
            boundaryPending_ = true;
        return;
    }
    if (pc == streakPc_) {
        if (++streak_ >= kAnchorStreak) {
            anchorPc_ = pc;
            core_.lockstepRec_ = true;
            boundaryPending_ = true; // align records at the next loop top
        }
    } else {
        streakPc_ = pc;
        streak_ = 1;
    }
}

void
LockstepEngine::startPeriod()
{
    cur_.clear();
    periodStart_ = core_.cycle_;
}

void
LockstepEngine::onLoopTop()
{
    if (boundaryPending_) {
        boundaryPending_ = false;
        finalizeBoundary();
        if (!core_.lockstepRec_)
            return; // gave up inside
    }
    ++cur_.loopIters;
}

void
LockstepEngine::recordCommit(const OooCore::RobEntry &head)
{
    if (cur_.commits.size() >= kMaxPeriodOps) {
        giveUp();
        return;
    }
    CommitRec rec;
    rec.pc = head.pc;
    rec.op = head.inst->op;
    const bool is_store = head.inst->op == Opcode::Store;
    rec.ea = is_store ? head.ea : 0;
    rec.value = is_store ? static_cast<std::uint64_t>(head.value) : 0;
    cur_.commits.push_back(rec);
}

void
LockstepEngine::recordIssue(const OooCore::RobEntry &entry)
{
    if (cur_.issues.size() >= kMaxPeriodOps) {
        giveUp();
        return;
    }
    IssueRec rec;
    rec.pc = entry.pc;
    rec.op = entry.inst->op;
    rec.value = static_cast<std::uint64_t>(entry.value);
    rec.src0 = static_cast<std::uint64_t>(entry.srcVal[0]);
    rec.src1 = static_cast<std::uint64_t>(entry.srcVal[1]);
    rec.ea = entry.eaValid ? entry.ea : 0;
    rec.eaValid = entry.eaValid ? 1 : 0;
    cur_.issues.push_back(rec);
}

void
LockstepEngine::recordLoadComplete(const OooCore::RobEntry &entry)
{
    if (cur_.loads.size() >= kMaxPeriodOps) {
        giveUp();
        return;
    }
    cur_.loads.push_back({entry.pc, entry.ea,
                          static_cast<std::uint64_t>(entry.value)});
}

void
LockstepEngine::recordAccess(Addr addr)
{
    if (cur_.accesses.size() >= kMaxPeriodOps) {
        giveUp();
        return;
    }
    cur_.accesses.push_back({addr, core_.cycle_ - periodStart_});
}

std::uint64_t
LockstepEngine::cacheSigOver(const PeriodRec &rec) const
{
    // Only the sets the period's accesses map to can change (fills and
    // their evictions stay in-set; inclusive-L3 back-invalidations are
    // excluded separately by the L3-eviction guard in verify()).
    const Cache *levels[3] = {&core_.hierarchy_.l1(),
                              &core_.hierarchy_.l2(),
                              &core_.hierarchy_.l3()};
    std::vector<std::uint64_t> keys;
    keys.reserve(rec.accesses.size() * 3);
    for (const AccessRec &a : rec.accesses)
        for (std::uint64_t lvl = 0; lvl < 3; ++lvl)
            keys.push_back(
                (lvl << 32) |
                static_cast<std::uint64_t>(levels[lvl]->setIndex(a.addr)));
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    std::uint64_t sig = 0xcbf29ce484222325ull;
    for (std::uint64_t key : keys) {
        sig = sigMix(sig, key);
        sig = sigMix(sig, levels[key >> 32]->setSignature(
                              static_cast<int>(key & 0xffffffffull)));
    }
    return sig;
}

std::optional<LockstepEngine::Boundary>
LockstepEngine::capture() const
{
    const OooCore::CtxState &c = core_.ctxs_[primary_];
    Boundary b;
    b.cycle = core_.cycle_;
    b.nextSeq = core_.nextSeq_;
    b.readyStamp = core_.readyStamp_;
    b.dispatchRotate = core_.dispatchRotate_;
    b.commitRotate = core_.commitRotate_;
    b.regfile = c.regfile;

    const std::size_t n = c.rob.size();
    std::unordered_map<const OooCore::RobEntry *, std::int32_t> index;
    index.reserve(n * 2);
    for (std::size_t i = 0; i < n; ++i)
        index.emplace(c.rob[i].get(), static_cast<std::int32_t>(i));
    auto liveIndex = [&](const OooCore::RobEntry *entry)
        -> std::optional<std::int32_t> {
        auto it = index.find(entry);
        if (it == index.end())
            return std::nullopt;
        return it->second;
    };

    b.robPc.reserve(n);
    b.robMeta.reserve(n);
    b.robSeqRel.reserve(n);
    b.robValue.reserve(n);
    b.robEa.reserve(n);
    b.robConsumers.reserve(n);
    for (int slot = 0; slot < 3; ++slot) {
        b.robSrc[slot].reserve(n);
        b.robProdRel[slot].reserve(n);
    }
    for (std::size_t i = 0; i < n; ++i) {
        const OooCore::RobEntry &e = *c.rob[i];
        b.robPc.push_back(e.pc);
        b.robMeta.push_back(static_cast<std::uint8_t>(
            static_cast<unsigned>(e.status) | (e.eaValid ? 4u : 0u) |
            (e.predictedTaken ? 8u : 0u) | (e.forwarded ? 16u : 0u) |
            (static_cast<unsigned>(e.pendingSrcs) << 5)));
        b.robSeqRel.push_back(core_.nextSeq_ - e.seq);
        for (int slot = 0; slot < 3; ++slot) {
            b.robSrc[slot].push_back(
                static_cast<std::uint64_t>(e.srcVal[slot]));
            b.robProdRel[slot].push_back(
                e.srcProducer[slot] == OooCore::kNoSeq
                    ? ~std::uint64_t{0}
                    : core_.nextSeq_ - e.srcProducer[slot]);
        }
        b.robValue.push_back(static_cast<std::uint64_t>(e.value));
        b.robEa.push_back(e.eaValid ? e.ea : 0);
        std::vector<std::pair<std::int32_t, std::uint64_t>> live;
        for (const auto &[consumer, seq] : e.consumers) {
            if (consumer->seq != seq)
                continue; // squashed: inert forever (seqs never reused)
            auto idx = liveIndex(consumer);
            if (!idx)
                return std::nullopt;
            live.emplace_back(*idx, core_.nextSeq_ - seq);
        }
        b.robConsumers.push_back(std::move(live));
    }

    b.rename.reserve(c.renameTable.size());
    for (const OooCore::RobEntry *entry : c.renameTable) {
        if (entry == nullptr) {
            b.rename.push_back(-1);
            continue;
        }
        auto idx = liveIndex(entry);
        if (!idx)
            return std::nullopt;
        b.rename.push_back(*idx);
    }

    b.fetchPc = c.fetchPc;
    b.fetchStallRel = c.fetchStallUntil > core_.cycle_
                          ? c.fetchStallUntil - core_.cycle_
                          : 0;
    b.inflightStores = c.inflightStores;
    b.inflightBranches = c.inflightBranches;
    b.iqOccupancy = core_.iqOccupancy_;
    b.robFullCounted = c.robFullCounted ? 1 : 0;

    // Any stale queue entry (its producer was squashed) aborts the
    // capture: a fast-forward shifts live seqs uniformly, and a stale
    // seq left behind could collide with a recycled entry's shifted
    // seq and falsely come alive. Steady-state gadget loops squash
    // nothing, so this refusal costs only warmup iterations.
    for (const OooCore::Event &ev : queueContainer(core_.events_)) {
        if (ev.entry->seq != ev.seq ||
            ev.entry->status != OooCore::Status::Issued)
            return std::nullopt;
        auto idx = liveIndex(ev.entry);
        if (!idx)
            return std::nullopt;
        b.events.push_back({ev.cycle - core_.cycle_,
                            core_.nextSeq_ - ev.seq,
                            static_cast<std::uint64_t>(*idx)});
    }
    std::sort(b.events.begin(), b.events.end());

    for (int cls = 0; cls < 6; ++cls) {
        for (const OooCore::ReadyItem &item :
             queueContainer(core_.readyQueue_[cls])) {
            if (item.entry->seq != item.seq ||
                item.entry->status != OooCore::Status::Ready)
                return std::nullopt; // stale: see events above
            auto idx = liveIndex(item.entry);
            if (!idx)
                return std::nullopt;
            const std::uint64_t key_rel = core_.config_.readyOrderIssue
                                              ? core_.readyStamp_ - item.key
                                              : core_.nextSeq_ - item.key;
            b.ready[cls].push_back({key_rel, core_.nextSeq_ - item.seq,
                                    static_cast<std::uint64_t>(*idx)});
        }
        std::sort(b.ready[cls].begin(), b.ready[cls].end());
    }

    for (const auto &[entry, seq] : core_.replayQueue_) {
        if (entry->seq != seq)
            return std::nullopt; // stale: see events above
        auto idx = liveIndex(entry);
        if (!idx)
            return std::nullopt;
        b.replay.emplace_back(*idx, core_.nextSeq_ - seq);
    }

    for (int cls = 0; cls < 6; ++cls) {
        const std::vector<Cycle> &res = core_.pools_[cls]->reservations();
        b.fuRel[cls].reserve(res.size());
        for (Cycle r : res)
            b.fuRel[cls].push_back(r > core_.cycle_ ? r - core_.cycle_
                                                    : 0);
    }

    b.inflightSig = core_.hierarchy_.inflightSignature(core_.cycle_);
    b.hasCancelledFills = core_.hierarchy_.hasCancelledFills();
    b.rngDraws = core_.hierarchy_.rngDraws();
    b.predVersion = core_.predictor_.version();
    b.hier = core_.hierarchy_.sampleCounters();
    b.counters = core_.counters_;
    b.ctxCounters = c.counters;
    return b;
}

bool
LockstepEngine::recordsEqual(const PeriodRec &a, const PeriodRec &b) const
{
    if (a.loopIters != b.loopIters ||
        a.issues.size() != b.issues.size() ||
        a.loads.size() != b.loads.size() ||
        a.commits.size() != b.commits.size() ||
        a.accesses.size() != b.accesses.size())
        return false;
    for (std::size_t i = 0; i < a.issues.size(); ++i) {
        const IssueRec &x = a.issues[i], &y = b.issues[i];
        if (x.pc != y.pc || x.op != y.op || x.ea != y.ea ||
            x.eaValid != y.eaValid)
            return false;
    }
    for (std::size_t i = 0; i < a.loads.size(); ++i)
        if (a.loads[i].pc != b.loads[i].pc ||
            a.loads[i].ea != b.loads[i].ea)
            return false;
    for (std::size_t i = 0; i < a.commits.size(); ++i)
        if (a.commits[i].pc != b.commits[i].pc ||
            a.commits[i].op != b.commits[i].op ||
            a.commits[i].ea != b.commits[i].ea)
            return false;
    for (std::size_t i = 0; i < a.accesses.size(); ++i)
        if (a.accesses[i].addr != b.accesses[i].addr ||
            a.accesses[i].rel != b.accesses[i].rel)
            return false;
    return true;
}

std::uint64_t
LockstepEngine::branchFlipBound(std::uint64_t v, std::uint64_t d)
{
    // Periods n >= 1 until (v + n*d) mod 2^64 first hits zero (the
    // only way the branch outcome (src0 != 0) can change).
    if (d == 0)
        return kUnbounded;
    if (v == 0)
        return 1; // nonzero next period: flips immediately
    const int t = countTrailingZeros(d);
    if (t > 0 && (v & ((std::uint64_t{1} << t) - 1)) != 0)
        return kUnbounded; // 2^t never divides -v: no solution
    const std::uint64_t neg_v = (~v + 1) >> t;
    const std::uint64_t inv = oddInverse(d >> t);
    const std::uint64_t mask =
        t == 0 ? ~std::uint64_t{0}
               : (std::uint64_t{1} << (64 - t)) - 1;
    std::uint64_t n0 = (neg_v * inv) & mask;
    if (n0 == 0)
        n0 = mask; // smallest positive solution is 2^(64-t): huge
    return n0;
}

std::optional<std::uint64_t>
LockstepEngine::verify() const
{
    const Boundary &b0 = window_[0].first;
    const Boundary &b1 = window_[1].first;
    const Boundary &b2 = window_[2].first;
    const PeriodRec &r0 = window_[0].second;
    const PeriodRec &r1 = window_[1].second;
    const PeriodRec &r2 = window_[2].second;

    if (!structuralEqual(b0, b1) || !structuralEqual(b1, b2))
        return std::nullopt;
    if (!recordsEqual(r0, r1) || !recordsEqual(r1, r2))
        return std::nullopt;
    if (b0.hasCancelledFills || b1.hasCancelledFills ||
        b2.hasCancelledFills)
        return std::nullopt;
    if (b0.rngDraws != b1.rngDraws || b1.rngDraws != b2.rngDraws)
        return std::nullopt;
    if (b0.predVersion != b1.predVersion ||
        b1.predVersion != b2.predVersion)
        return std::nullopt;

    const Cycle dc = b1.cycle - b0.cycle;
    if (dc == 0 || b2.cycle - b1.cycle != dc)
        return std::nullopt;
    if (b1.nextSeq - b0.nextSeq != b2.nextSeq - b1.nextSeq)
        return std::nullopt;
    if (b1.readyStamp - b0.readyStamp != b2.readyStamp - b1.readyStamp)
        return std::nullopt;
    if (b1.dispatchRotate - b0.dispatchRotate !=
            b2.dispatchRotate - b1.dispatchRotate ||
        b1.commitRotate - b0.commitRotate !=
            b2.commitRotate - b1.commitRotate)
        return std::nullopt;

    if (!vectorDeltaSame(b0.regfile, b1.regfile, b2.regfile) ||
        !vectorDeltaSame(b0.robValue, b1.robValue, b2.robValue))
        return std::nullopt;
    for (int slot = 0; slot < 3; ++slot)
        if (!vectorDeltaSame(b0.robSrc[slot], b1.robSrc[slot],
                             b2.robSrc[slot]))
            return std::nullopt;

    if (!countersSame(b1.counters - b0.counters,
                      b2.counters - b1.counters) ||
        !countersSame(b1.ctxCounters - b0.ctxCounters,
                      b2.ctxCounters - b1.ctxCounters))
        return std::nullopt;

    // Memory-side counters extrapolate linearly; an L3 eviction would
    // back-invalidate lines in sets the access records cannot name, so
    // the periodic-state proof does not cover it — refuse.
    if (!cacheStatsDeltaSame(b0.hier.l1, b1.hier.l1, b1.hier.l1,
                             b2.hier.l1) ||
        !cacheStatsDeltaSame(b0.hier.l2, b1.hier.l2, b1.hier.l2,
                             b2.hier.l2) ||
        !cacheStatsDeltaSame(b0.hier.l3, b1.hier.l3, b1.hier.l3,
                             b2.hier.l3))
        return std::nullopt;
    if (b2.hier.l3.evictions != b1.hier.l3.evictions)
        return std::nullopt;
    if (b0.hier.ctx.size() != b1.hier.ctx.size() ||
        b1.hier.ctx.size() != b2.hier.ctx.size())
        return std::nullopt;
    for (std::size_t i = 0; i < b0.hier.ctx.size(); ++i)
        if (!ctxStatsDeltaSame(b1.hier.ctx[i] - b0.hier.ctx[i],
                               b2.hier.ctx[i] - b1.hier.ctx[i]))
            return std::nullopt;
    if (b1.hier.memAccesses - b0.hier.memAccesses !=
            b2.hier.memAccesses - b1.hier.memAccesses ||
        b1.hier.nextSeq - b0.hier.nextSeq !=
            b2.hier.nextSeq - b1.hier.nextSeq)
        return std::nullopt;

    // Per-word store deltas (the memory image's affine evolution).
    std::unordered_map<Addr, std::uint64_t> wordDelta;
    for (std::size_t i = 0; i < r2.commits.size(); ++i) {
        if (r2.commits[i].op != Opcode::Store)
            continue;
        const std::uint64_t d1 = r1.commits[i].value - r0.commits[i].value;
        const std::uint64_t d2 = r2.commits[i].value - r1.commits[i].value;
        if (d1 != d2)
            return std::nullopt;
        const Addr word = MemoryImage::wordAddr(r2.commits[i].ea);
        auto [it, inserted] = wordDelta.emplace(word, d2);
        if (!inserted && it->second != d2)
            return std::nullopt; // conflicting deltas on one word
    }

    // A load's value must slide exactly with the word it reads.
    for (std::size_t i = 0; i < r2.loads.size(); ++i) {
        const std::uint64_t d1 = r1.loads[i].value - r0.loads[i].value;
        const std::uint64_t d2 = r2.loads[i].value - r1.loads[i].value;
        if (d1 != d2)
            return std::nullopt;
        auto it = wordDelta.find(MemoryImage::wordAddr(r2.loads[i].ea));
        const std::uint64_t expect =
            it == wordDelta.end() ? 0 : it->second;
        if (d2 != expect)
            return std::nullopt;
    }

    // Every issued op (transient included) must provably map inputs
    // shifted by the observed deltas to outputs shifted by its own
    // observed delta — the induction step of the periodicity proof.
    const OooCore::CtxState &c = core_.ctxs_[primary_];
    std::uint64_t k_limit = kUnbounded;
    for (std::size_t i = 0; i < r2.issues.size(); ++i) {
        const IssueRec &x = r0.issues[i];
        const IssueRec &y = r1.issues[i];
        const IssueRec &z = r2.issues[i];
        const std::uint64_t dv = z.value - y.value;
        const std::uint64_t d0 = z.src0 - y.src0;
        const std::uint64_t d1 = z.src1 - y.src1;
        if (y.value - x.value != dv || y.src0 - x.src0 != d0 ||
            y.src1 - x.src1 != d1)
            return std::nullopt;
        const Instruction &inst =
            c.decoded->code[static_cast<std::size_t>(z.pc)];
        const bool imm_rhs = inst.src1 == kNoReg;
        bool ok = false;
        switch (z.op) {
          case Opcode::Nop:
          case Opcode::Jump:
          case Opcode::Halt: // transient only; no value, no effect
          case Opcode::MovImm:
            ok = dv == 0;
            break;
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::Lea:
            ok = true; // delta-linear for any input shift
            break;
          case Opcode::Mul:
            // (a+d0)(b+d1): the product's delta is input-dependent
            // unless one factor is frozen (or the rhs is an imm).
            ok = imm_rhs || d0 == 0 || d1 == 0;
            break;
          case Opcode::Div:
          case Opcode::And:
          case Opcode::Or:
          case Opcode::Xor:
          case Opcode::Shl:
          case Opcode::Shr:
            ok = d0 == 0 && (imm_rhs || d1 == 0) && dv == 0;
            break;
          case Opcode::Load:
          case Opcode::Prefetch:
          case Opcode::Store:
            // recordsEqual pinned the ea; store data is a plain copy
            // of src2 (delta-linear); load values were checked above.
            ok = true;
            break;
          case Opcode::Branch: {
            if (dv != 0)
                return std::nullopt; // direction changed mid-window
            const std::uint64_t bound = branchFlipBound(z.src0, d0);
            if (bound != kUnbounded)
                k_limit = std::min(k_limit, bound - 1);
            ok = true;
            break;
          }
          case Opcode::Rdtsc:
            ok = dv == static_cast<std::uint64_t>(dc);
            break;
        }
        if (!ok)
            return std::nullopt;
    }

    // Cap the skip: stay clear of the deadline fatal (post-landing
    // execution revisits the same cycles scalar execution would, so
    // the limit check itself stays bit-identical), and land a margin
    // of periods before the first branch flip so every in-flight
    // speculative instance is re-simulated rather than extrapolated.
    const std::uint64_t by_deadline = (deadline_ - b2.cycle) / dc;
    std::uint64_t k = by_deadline > 4 ? by_deadline - 4 : 0;
    if (k_limit != kUnbounded)
        k = std::min(k, k_limit);
    const std::uint64_t commits_per_period =
        std::max<std::uint64_t>(1, r2.commits.size());
    const std::uint64_t margin =
        static_cast<std::uint64_t>(core_.config_.robSize) /
            commits_per_period +
        4;
    k = k > margin ? k - margin : 0;
    return k;
}

bool
LockstepEngine::structuralEqual(const Boundary &a, const Boundary &b)
{
    if (a.regfile.size() != b.regfile.size() ||
        a.robPc != b.robPc || a.robMeta != b.robMeta ||
        a.robSeqRel != b.robSeqRel || a.robEa != b.robEa ||
        a.robConsumers != b.robConsumers || a.rename != b.rename)
        return false;
    for (int slot = 0; slot < 3; ++slot)
        if (a.robProdRel[slot] != b.robProdRel[slot])
            return false;
    if (a.fetchPc != b.fetchPc || a.fetchStallRel != b.fetchStallRel ||
        a.inflightStores != b.inflightStores ||
        a.inflightBranches != b.inflightBranches ||
        a.iqOccupancy != b.iqOccupancy ||
        a.robFullCounted != b.robFullCounted)
        return false;
    if (a.events != b.events || a.replay != b.replay)
        return false;
    for (int cls = 0; cls < 6; ++cls)
        if (a.ready[cls] != b.ready[cls] || a.fuRel[cls] != b.fuRel[cls])
            return false;
    return a.inflightSig == b.inflightSig && a.cacheSig == b.cacheSig;
}

void
LockstepEngine::applyForward(std::uint64_t k)
{
    const Boundary &b1 = window_[1].first;
    const Boundary &b2 = window_[2].first;
    const PeriodRec &r1 = window_[1].second;
    const PeriodRec &r2 = window_[2].second;

    const Cycle base = core_.cycle_;
    const Cycle kc = k * (b2.cycle - b1.cycle);
    const std::uint64_t ks = k * (b2.nextSeq - b1.nextSeq);
    const std::uint64_t kr = k * (b2.readyStamp - b1.readyStamp);

    core_.cycle_ += kc;
    core_.nextSeq_ += ks;
    core_.readyStamp_ += kr;
    core_.dispatchRotate_ +=
        static_cast<std::uint32_t>(k) *
        (b2.dispatchRotate - b1.dispatchRotate);
    core_.commitRotate_ += static_cast<std::uint32_t>(k) *
                           (b2.commitRotate - b1.commitRotate);

    addScaledCounters(core_.counters_, b2.counters - b1.counters, k);
    OooCore::CtxState &c = core_.ctxs_[primary_];
    addScaledCounters(c.counters, b2.ctxCounters - b1.ctxCounters, k);

    for (std::size_t i = 0; i < c.regfile.size(); ++i) {
        const std::uint64_t d =
            static_cast<std::uint64_t>(b2.regfile[i]) -
            static_cast<std::uint64_t>(b1.regfile[i]);
        c.regfile[i] = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(c.regfile[i]) + k * d);
    }

    for (std::size_t i = 0; i < c.rob.size(); ++i) {
        OooCore::RobEntry &e = *c.rob[i];
        e.seq += ks;
        for (int slot = 0; slot < 3; ++slot) {
            if (e.srcProducer[slot] != OooCore::kNoSeq)
                e.srcProducer[slot] += ks;
            e.srcVal[slot] = static_cast<std::int64_t>(
                static_cast<std::uint64_t>(e.srcVal[slot]) +
                k * (b2.robSrc[slot][i] - b1.robSrc[slot][i]));
        }
        e.value = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(e.value) +
            k * (b2.robValue[i] - b1.robValue[i]));
        // Dead consumer refs stay dead: both sides shift by ks.
        for (auto &consumer : e.consumers)
            consumer.second += ks;
    }

    // Uniform shifts preserve the heap orderings (cycle-then-seq and
    // key-then-seq comparisons are translation-invariant short of a
    // wraparound, which real seqs/cycles never approach).
    for (OooCore::Event &ev : mutableQueueContainer(core_.events_)) {
        ev.cycle += kc;
        ev.seq += ks;
    }
    const bool by_stamp = core_.config_.readyOrderIssue;
    for (int cls = 0; cls < 6; ++cls) {
        for (OooCore::ReadyItem &item :
             mutableQueueContainer(core_.readyQueue_[cls])) {
            item.key += by_stamp ? kr : ks;
            item.seq += ks;
        }
        std::vector<Cycle> res = core_.pools_[cls]->reservations();
        for (Cycle &r : res)
            if (r > base)
                r += kc;
        core_.pools_[cls]->setReservations(res);
    }
    for (auto &entry : core_.replayQueue_)
        entry.second += ks;

    if (c.fetchStallUntil > base)
        c.fetchStallUntil += kc;

    core_.hierarchy_.shiftInflight(kc);
    core_.hierarchy_.applyCountersDelta(b1.hier, b2.hier, k);

    // Memory words written by the period slide by their store deltas.
    std::unordered_map<Addr, std::pair<Addr, std::uint64_t>> words;
    for (std::size_t i = 0; i < r2.commits.size(); ++i) {
        if (r2.commits[i].op != Opcode::Store)
            continue;
        words[MemoryImage::wordAddr(r2.commits[i].ea)] = {
            r2.commits[i].ea,
            r2.commits[i].value - r1.commits[i].value};
    }
    for (const auto &[word, rep] : words) {
        (void)word;
        const auto &[ea, delta] = rep;
        core_.memory_.write(
            ea, static_cast<std::int64_t>(
                    static_cast<std::uint64_t>(core_.memory_.read(ea)) +
                    k * delta));
    }

    ++stats_.forwards;
    stats_.skippedPeriods += k;
    stats_.skippedCycles += kc;
    metrics().lockstepForwards.add();
    metrics().lockstepPeriodsSkipped.add(k);
    metrics().lockstepCyclesSkipped.add(kc);
    HR_TRACE_INSTANT2("lockstep", "lockstep.forward", "periods", k,
                      "cycles", kc);
}

void
LockstepEngine::finalizeBoundary()
{
    if (!recording_) {
        // First boundary after the anchor was established: the record
        // started mid-period — discard it and align to this loop top.
        recording_ = true;
        startPeriod();
        return;
    }

    std::optional<Boundary> b = capture();
    if (!b) {
        giveUp();
        return;
    }
    b->cacheSig = cacheSigOver(cur_);
    window_.emplace_back(std::move(*b), std::move(cur_));
    startPeriod();
    if (window_.size() < 3)
        return;

    const std::optional<std::uint64_t> k = verify();
    if (!k) {
        ++stats_.refusals;
        metrics().lockstepRefusals.add();
        HR_TRACE_INSTANT("lockstep", "lockstep.refusal");
        window_.pop_front();
        if (++failures_ >= kMaxFailures)
            giveUp();
        return;
    }
    if (*k == 0) {
        // Provably periodic but nothing to skip (tail of the loop or a
        // deadline-capped run): slide and keep watching.
        window_.pop_front();
        return;
    }
    applyForward(*k);
    window_.clear();
    startPeriod();
}

} // namespace hr
