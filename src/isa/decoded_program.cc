#include "isa/decoded_program.hh"

#include <cstring>

namespace hr
{

namespace
{

/** True if the op architecturally writes its dst register. */
bool
writesReg(const Instruction &inst)
{
    if (inst.dst == kNoReg)
        return false;
    switch (inst.op) {
      case Opcode::Store:
      case Opcode::Prefetch:
      case Opcode::Branch:
      case Opcode::Jump:
      case Opcode::Halt:
      case Opcode::Nop:
        return false;
      default:
        return true;
    }
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t
fnvMix(std::uint64_t hash, std::uint64_t value)
{
    hash ^= value;
    return hash * kFnvPrime;
}

} // namespace

std::uint64_t
hashProgramContent(const std::vector<Instruction> &code,
                   std::uint32_t num_regs)
{
    std::uint64_t hash = kFnvOffset;
    hash = fnvMix(hash, num_regs);
    hash = fnvMix(hash, code.size());
    for (const Instruction &inst : code) {
        hash = fnvMix(hash, static_cast<std::uint64_t>(inst.op));
        hash = fnvMix(hash, inst.dst);
        hash = fnvMix(hash, inst.src0);
        hash = fnvMix(hash, inst.src1);
        hash = fnvMix(hash, static_cast<std::uint64_t>(inst.imm));
        hash = fnvMix(hash, static_cast<std::uint8_t>(inst.scale0));
        hash = fnvMix(hash, static_cast<std::uint8_t>(inst.scale1));
        hash = fnvMix(hash, static_cast<std::uint32_t>(inst.target));
        hash = fnvMix(hash, inst.invert ? 1 : 0);
    }
    return hash;
}

bool
sameCode(const std::vector<Instruction> &a,
         const std::vector<Instruction> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const Instruction &x = a[i];
        const Instruction &y = b[i];
        if (x.op != y.op || x.dst != y.dst || x.src0 != y.src0 ||
            x.src1 != y.src1 || x.imm != y.imm ||
            x.scale0 != y.scale0 || x.scale1 != y.scale1 ||
            x.target != y.target || x.invert != y.invert) {
            return false;
        }
    }
    return true;
}

std::shared_ptr<const DecodedProgram>
decodeProgram(const Program &program)
{
    auto decoded = std::make_shared<DecodedProgram>();
    decoded->name = program.name;
    decoded->code = program.code;
    decoded->numRegs = program.numRegs;
    decoded->contentHash = hashProgramContent(program.code,
                                              program.numRegs);

    const auto size = static_cast<std::int32_t>(program.code.size());
    decoded->ops.resize(program.code.size());
    for (std::int32_t pc = 0; pc < size; ++pc) {
        const Instruction &inst = decoded->code[pc];
        DecodedOp &op = decoded->ops[pc];
        op.fu = inst.fuClass();
        op.writesDst = writesReg(inst);
        op.isMem = isMemOp(inst.op);
        op.isControl = isControlOp(inst.op);
        switch (inst.op) {
          case Opcode::Branch:
            op.next = NextPcKind::Branch;
            op.nextPc = inst.target; // taken target; fall = pc + 1
            decoded->branchPcs.push_back(pc);
            break;
          case Opcode::Jump:
            op.next = NextPcKind::Jump;
            op.nextPc = inst.target;
            break;
          case Opcode::Halt:
            op.next = NextPcKind::Halt;
            op.nextPc = size;
            break;
          default:
            op.next = NextPcKind::Seq;
            op.nextPc = pc + 1;
        }
        // Rename sources in slot order; stores read data via slot 2.
        op.srcs[0] = inst.src0;
        op.srcs[1] = inst.src1;
        op.srcs[2] = inst.op == Opcode::Store ? inst.dst : kNoReg;
        for (int slot = 0; slot < 3; ++slot)
            if (op.srcs[slot] != kNoReg)
                ++op.numSrcs;
    }
    return decoded;
}

} // namespace hr
