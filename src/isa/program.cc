#include "isa/program.hh"

#include <atomic>
#include <cstdio>

#include "util/log.hh"

namespace hr
{

std::uint64_t
allocateProgramId()
{
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::string
Program::disassemble() const
{
    std::string out;
    char buf[32];
    for (std::size_t i = 0; i < code.size(); ++i) {
        std::snprintf(buf, sizeof(buf), "%5zu: ", i);
        out += buf;
        out += code[i].toString();
        out += "\n";
    }
    return out;
}

ProgramBuilder::ProgramBuilder(std::string name)
{
    prog_.name = std::move(name);
}

void
ProgramBuilder::checkNotTaken() const
{
    panicIf(taken_, "ProgramBuilder used after take()");
}

RegId
ProgramBuilder::newReg()
{
    checkNotTaken();
    fatalIf(nextReg_ == kNoReg - 1,
            "ProgramBuilder: register space exhausted (use in-place "
            "chain helpers such as loadOrderedInto for long loops)");
    return nextReg_++;
}

std::int32_t
ProgramBuilder::here() const
{
    return static_cast<std::int32_t>(prog_.code.size());
}

std::int32_t
ProgramBuilder::emit(const Instruction &inst)
{
    checkNotTaken();
    prog_.code.push_back(inst);
    return here() - 1;
}

RegId
ProgramBuilder::movImm(std::int64_t value)
{
    RegId dst = newReg();
    movImmTo(dst, value);
    return dst;
}

void
ProgramBuilder::movImmTo(RegId dst, std::int64_t value)
{
    Instruction inst;
    inst.op = Opcode::MovImm;
    inst.dst = dst;
    inst.imm = value;
    emit(inst);
}

RegId
ProgramBuilder::binop(Opcode op, RegId a, RegId b)
{
    Instruction inst;
    inst.op = op;
    inst.dst = newReg();
    inst.src0 = a;
    inst.src1 = b;
    emit(inst);
    return inst.dst;
}

RegId
ProgramBuilder::binopImm(Opcode op, RegId a, std::int64_t imm)
{
    Instruction inst;
    inst.op = op;
    inst.dst = newReg();
    inst.src0 = a;
    inst.imm = imm;
    emit(inst);
    return inst.dst;
}

void
ProgramBuilder::chainOpImm(Opcode op, RegId r, std::int64_t imm)
{
    Instruction inst;
    inst.op = op;
    inst.dst = r;
    inst.src0 = r;
    inst.imm = imm;
    emit(inst);
}

RegId
ProgramBuilder::opChain(Opcode op, std::size_t n, RegId seed,
                        std::int64_t imm)
{
    RegId r = binopImm(Opcode::Add, seed, 0); // copy into a fresh register
    for (std::size_t i = 0; i < n; ++i)
        chainOpImm(op, r, imm);
    return r;
}

RegId
ProgramBuilder::loadOrdered(Addr addr, RegId dep)
{
    Instruction inst;
    inst.op = Opcode::Load;
    inst.dst = newReg();
    inst.src0 = dep;
    inst.scale0 = 0;
    inst.imm = static_cast<std::int64_t>(addr);
    emit(inst);
    return inst.dst;
}

void
ProgramBuilder::loadOrderedInto(RegId r, Addr addr)
{
    Instruction inst;
    inst.op = Opcode::Load;
    inst.dst = r;
    inst.src0 = r;
    inst.scale0 = 0;
    inst.imm = static_cast<std::int64_t>(addr);
    emit(inst);
}

RegId
ProgramBuilder::loadPointer(RegId pointer, std::int64_t offset)
{
    Instruction inst;
    inst.op = Opcode::Load;
    inst.dst = newReg();
    inst.src0 = pointer;
    inst.scale0 = 1;
    inst.imm = offset;
    emit(inst);
    return inst.dst;
}

RegId
ProgramBuilder::loadAbsolute(Addr addr)
{
    Instruction inst;
    inst.op = Opcode::Load;
    inst.dst = newReg();
    inst.imm = static_cast<std::int64_t>(addr);
    emit(inst);
    return inst.dst;
}

void
ProgramBuilder::storeOrdered(Addr addr, RegId data, RegId dep)
{
    Instruction inst;
    inst.op = Opcode::Store;
    inst.dst = data;
    inst.src0 = dep;
    inst.scale0 = 0;
    inst.imm = static_cast<std::int64_t>(addr);
    emit(inst);
}

void
ProgramBuilder::storeAbsolute(Addr addr, RegId data)
{
    Instruction inst;
    inst.op = Opcode::Store;
    inst.dst = data;
    inst.imm = static_cast<std::int64_t>(addr);
    emit(inst);
}

void
ProgramBuilder::prefetchOrdered(Addr addr, RegId dep)
{
    Instruction inst;
    inst.op = Opcode::Prefetch;
    inst.src0 = dep;
    inst.scale0 = 0;
    inst.imm = static_cast<std::int64_t>(addr);
    emit(inst);
}

std::int32_t
ProgramBuilder::newLabel()
{
    labelPos_.push_back(-1);
    return static_cast<std::int32_t>(labelPos_.size()) - 1;
}

void
ProgramBuilder::bind(std::int32_t label)
{
    panicIf(label < 0 ||
            label >= static_cast<std::int32_t>(labelPos_.size()),
            "bind: bad label");
    panicIf(labelPos_[label] != -1, "bind: label already bound");
    labelPos_[label] = here();
}

void
ProgramBuilder::branch(RegId cond, std::int32_t label, bool invert)
{
    Instruction inst;
    inst.op = Opcode::Branch;
    inst.src0 = cond;
    inst.invert = invert;
    inst.target = label; // patched in take()
    pendingRefs_.push_back(static_cast<std::size_t>(emit(inst)));
}

void
ProgramBuilder::jump(std::int32_t label)
{
    Instruction inst;
    inst.op = Opcode::Jump;
    inst.target = label;
    pendingRefs_.push_back(static_cast<std::size_t>(emit(inst)));
}

void
ProgramBuilder::halt()
{
    Instruction inst;
    inst.op = Opcode::Halt;
    emit(inst);
}

void
ProgramBuilder::appendInterleaved(
    const std::vector<std::vector<Instruction>> &paths)
{
    checkNotTaken();
    std::size_t total = 0;
    for (const auto &p : paths)
        total += p.size();
    std::vector<std::size_t> cursor(paths.size(), 0);
    // Proportional round-robin: at each step take from the path that is
    // furthest behind its fair share.
    for (std::size_t step = 0; step < total; ++step) {
        double best = -1.0;
        std::size_t pick = 0;
        for (std::size_t i = 0; i < paths.size(); ++i) {
            if (cursor[i] >= paths[i].size())
                continue;
            const double deficit =
                static_cast<double>(paths[i].size() - cursor[i]) /
                static_cast<double>(paths[i].size());
            if (deficit > best) {
                best = deficit;
                pick = i;
            }
        }
        prog_.code.push_back(paths[pick][cursor[pick]++]);
    }
}

Program
ProgramBuilder::take()
{
    checkNotTaken();
    for (std::size_t idx : pendingRefs_) {
        Instruction &inst = prog_.code[idx];
        const std::int32_t label = inst.target;
        panicIf(label < 0 ||
                label >= static_cast<std::int32_t>(labelPos_.size()),
                "take: unpatched branch has bad label");
        panicIf(labelPos_[label] == -1, "take: label never bound");
        inst.target = labelPos_[label];
    }
    prog_.numRegs = nextReg_;
    taken_ = true;
    return std::move(prog_);
}

RegId
SeqBuilder::binopImm(Opcode op, RegId a, std::int64_t imm)
{
    Instruction inst;
    inst.op = op;
    inst.dst = newReg();
    inst.src0 = a;
    inst.imm = imm;
    append(inst);
    return inst.dst;
}

void
SeqBuilder::chainOpImm(Opcode op, RegId r, std::int64_t imm)
{
    Instruction inst;
    inst.op = op;
    inst.dst = r;
    inst.src0 = r;
    inst.imm = imm;
    append(inst);
}

RegId
SeqBuilder::opChain(Opcode op, std::size_t n, RegId seed, std::int64_t imm)
{
    RegId r = binopImm(Opcode::Add, seed, 0);
    for (std::size_t i = 0; i < n; ++i)
        chainOpImm(op, r, imm);
    return r;
}

RegId
SeqBuilder::loadOrdered(Addr addr, RegId dep)
{
    Instruction inst;
    inst.op = Opcode::Load;
    inst.dst = newReg();
    inst.src0 = dep;
    inst.scale0 = 0;
    inst.imm = static_cast<std::int64_t>(addr);
    append(inst);
    return inst.dst;
}

void
SeqBuilder::loadOrderedInto(RegId r, Addr addr)
{
    Instruction inst;
    inst.op = Opcode::Load;
    inst.dst = r;
    inst.src0 = r;
    inst.scale0 = 0;
    inst.imm = static_cast<std::int64_t>(addr);
    append(inst);
}

RegId
SeqBuilder::loadPointer(RegId pointer, std::int64_t offset)
{
    Instruction inst;
    inst.op = Opcode::Load;
    inst.dst = newReg();
    inst.src0 = pointer;
    inst.scale0 = 1;
    inst.imm = offset;
    append(inst);
    return inst.dst;
}

void
SeqBuilder::prefetchOrdered(Addr addr, RegId dep)
{
    Instruction inst;
    inst.op = Opcode::Prefetch;
    inst.src0 = dep;
    inst.scale0 = 0;
    inst.imm = static_cast<std::int64_t>(addr);
    append(inst);
}

} // namespace hr
