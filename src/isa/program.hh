/**
 * @file
 * Programs and the ProgramBuilder DSL used by gadget generators.
 */

#ifndef HR_ISA_PROGRAM_HH
#define HR_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"
#include "util/types.hh"

namespace hr
{

/**
 * A straight-line-or-branching micro-op sequence with a stable identity.
 *
 * The identity (id) keys branch-predictor state inside a Machine, so
 * running the same Program for training and attack phases naturally
 * trains the predictor, as in the paper's transient gadgets.
 */
struct Program
{
    std::string name = "prog";
    std::vector<Instruction> code;

    /** Number of architectural registers the code uses. */
    std::uint32_t numRegs = 0;

    /** Assigned by the Machine on first execution; 0 = unassigned. */
    std::uint64_t id = 0;

    std::size_t size() const { return code.size(); }

    /** Multi-line disassembly with indices. */
    std::string disassemble() const;
};

/**
 * Allocate a process-unique Program id (collision-free, monotonic).
 *
 * Ids key branch-predictor state and the decode cache, so two distinct
 * Programs must never share one. The counter is process-wide and never
 * rolls back — not per-machine and not part of a Machine snapshot —
 * which is what makes assignment collision-free across pool reuse and
 * snapshot/restore. Replays stay bit-identical anyway: a freshly
 * assigned id always starts with cold predictor state, and predictor
 * keys are injective per (id, pc), so the id's numeric value never
 * influences simulated timing.
 */
std::uint64_t allocateProgramId();

/**
 * Builder for Programs: virtual-register allocation, labels with
 * back-patching, and helpers for the dependence idioms gadgets need
 * (chains, ordering-only loads, proportional interleaving of
 * independent paths).
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name = "prog");

    /** Allocate a fresh architectural register. */
    RegId newReg();

    /** Number of registers allocated so far. */
    RegId regCount() const { return nextReg_; }

    /** Current instruction index (== index of the next emitted op). */
    std::int32_t here() const;

    // ---- raw emission ------------------------------------------------
    /** Append an instruction verbatim; returns its index. */
    std::int32_t emit(const Instruction &inst);

    // ---- convenience emitters ----------------------------------------
    RegId movImm(std::int64_t value);
    void movImmTo(RegId dst, std::int64_t value);

    /** dst = a (+|-|*|/|&|||^) b. */
    RegId binop(Opcode op, RegId a, RegId b);
    /** dst = a op imm. */
    RegId binopImm(Opcode op, RegId a, std::int64_t imm);
    /** In-place chain step: r = r op imm (serial dependence on r). */
    void chainOpImm(Opcode op, RegId r, std::int64_t imm);

    /** Emit a serial chain of n ops, all through one register. */
    RegId opChain(Opcode op, std::size_t n, RegId seed,
                  std::int64_t imm = 1);

    /** dst = mem[addr + dep*0]: fixed address, ordering-only dependence. */
    RegId loadOrdered(Addr addr, RegId dep);
    /**
     * r = mem[addr + r*0]: in-place serial load chain step through a
     * fixed register — the idiom for loop-carried traversal chains.
     */
    void loadOrderedInto(RegId r, Addr addr);
    /** dst = mem[base_value] — pointer chase step. */
    RegId loadPointer(RegId pointer, std::int64_t offset = 0);
    /** dst = mem[addr] with no register dependence. */
    RegId loadAbsolute(Addr addr);
    /** mem[addr + dep*0] = data. */
    void storeOrdered(Addr addr, RegId data, RegId dep);
    /** mem[addr] = data, no ordering dependence (streaming stores). */
    void storeAbsolute(Addr addr, RegId data);
    /** Software prefetch of addr, ordered after dep (scale 0). */
    void prefetchOrdered(Addr addr, RegId dep);

    // ---- control flow ------------------------------------------------
    /** Allocate a label to be placed later. */
    std::int32_t newLabel();
    /** Bind a label to the current position. */
    void bind(std::int32_t label);
    /** Conditional branch to a label: taken iff (cond != 0) ^ invert. */
    void branch(RegId cond, std::int32_t label, bool invert = false);
    void jump(std::int32_t label);
    void halt();

    /**
     * Append several independent instruction sequences, interleaved
     * proportionally so that an in-order front end feeds all of them at
     * matching fractional rates (required for long racing paths whose
     * combined length exceeds the reorder buffer).
     */
    void appendInterleaved(
        const std::vector<std::vector<Instruction>> &paths);

    /** Finish: patch labels, validate, and return the program. */
    Program take();

  private:
    Program prog_;
    RegId nextReg_ = 0;
    std::vector<std::int32_t> labelPos_;    // label -> index or -1
    std::vector<std::size_t> pendingRefs_;  // instr indices awaiting patch
    bool taken_ = false;

    void checkNotTaken() const;
};

/**
 * Standalone sequence builder producing a raw instruction vector that can
 * later be interleaved into a ProgramBuilder. Registers are allocated
 * from the parent builder so sequences stay independent.
 */
class SeqBuilder
{
  public:
    explicit SeqBuilder(ProgramBuilder &parent) : parent_(parent) {}

    std::vector<Instruction> take() { return std::move(code_); }
    const std::vector<Instruction> &code() const { return code_; }

    RegId newReg() { return parent_.newReg(); }

    void append(const Instruction &inst) { code_.push_back(inst); }

    RegId binopImm(Opcode op, RegId a, std::int64_t imm);
    void chainOpImm(Opcode op, RegId r, std::int64_t imm);
    RegId opChain(Opcode op, std::size_t n, RegId seed,
                  std::int64_t imm = 1);
    RegId loadOrdered(Addr addr, RegId dep);
    void loadOrderedInto(RegId r, Addr addr);
    RegId loadPointer(RegId pointer, std::int64_t offset = 0);
    void prefetchOrdered(Addr addr, RegId dep);

  private:
    ProgramBuilder &parent_;
    std::vector<Instruction> code_;
};

} // namespace hr

#endif // HR_ISA_PROGRAM_HH
