/**
 * @file
 * DecodedProgram: the static, per-instruction facts OooCore would
 * otherwise recompute on every fetch of every trial.
 *
 * Scenario and channel trials run the same few-hundred-instruction
 * gadget Programs millions of times; per fetch the core used to
 * re-derive the functional-unit class, the register-write predicate,
 * the next-pc kind, and the source-operand layout (including the
 * store-data slot) from the raw Instruction. A DecodedProgram
 * precomputes all of it once per program content. Decoding is a pure
 * function of the instruction stream — it reads no machine state — so
 * one decoded image is shared by every machine in a pool (see
 * sim/decode_cache.hh) and by content-identical programs rebuilt
 * fresh each trial.
 *
 * The decoded image owns a copy of the code, so RobEntries reference
 * instructions through it without pinning the caller's Program alive.
 */

#ifndef HR_ISA_DECODED_PROGRAM_HH
#define HR_ISA_DECODED_PROGRAM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace hr
{

/** How fetch computes the next pc after this op. */
enum class NextPcKind : std::uint8_t
{
    Seq,    ///< fall through (nextPc == pc + 1, precomputed)
    Branch, ///< predictor decides between target and pc + 1
    Jump,   ///< unconditional (nextPc == target)
    Halt,   ///< fetch stops (nextPc == code size)
};

/** Pre-resolved static facts about one instruction. */
struct DecodedOp
{
    FuClass fu = FuClass::IntAlu;
    NextPcKind next = NextPcKind::Seq;
    bool writesDst = false; ///< architecturally writes dst
    bool isMem = false;     ///< Load/Store/Prefetch
    bool isControl = false; ///< Branch/Jump
    std::uint8_t numSrcs = 0;
    std::int32_t nextPc = 0; ///< resolved next pc for non-Branch kinds
    /** Rename sources in slot order; slot 2 carries store data. */
    RegId srcs[3] = {kNoReg, kNoReg, kNoReg};
};

/** A Program decoded once, shareable across machines and trials. */
struct DecodedProgram
{
    std::string name;
    std::vector<Instruction> code; ///< owned copy of the program code
    std::vector<DecodedOp> ops;    ///< one per instruction
    std::uint32_t numRegs = 0;
    std::uint64_t contentHash = 0; ///< FNV-1a over code + numRegs
    /** pcs of conditional branches (predictor-keyed state). */
    std::vector<std::int32_t> branchPcs;

    std::size_t size() const { return code.size(); }
};

/** Decode @p program (pure function of its code and numRegs). */
std::shared_ptr<const DecodedProgram> decodeProgram(const Program &program);

/** Exact instruction-stream equality (field-wise, no padding reads). */
bool sameCode(const std::vector<Instruction> &a,
              const std::vector<Instruction> &b);

/** FNV-1a hash of the instruction stream and register count. */
std::uint64_t hashProgramContent(const std::vector<Instruction> &code,
                                 std::uint32_t num_regs);

} // namespace hr

#endif // HR_ISA_DECODED_PROGRAM_HH
