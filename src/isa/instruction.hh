/**
 * @file
 * The micro-op ISA executed by the out-of-order core model.
 *
 * Hacky Racers gadgets are instruction-dependence graphs; this ISA is the
 * minimal vocabulary needed to express them: simple arithmetic, loads
 * (with optional ordering-only dependences via a zero scale factor),
 * stores, software prefetches, and branches. It corresponds to the
 * "simple arithmetic operations, branches, loads and coarse-grained
 * timers" the paper's threat model permits (section 1).
 */

#ifndef HR_ISA_INSTRUCTION_HH
#define HR_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "util/types.hh"

namespace hr
{

/** Micro-operation kinds. */
enum class Opcode : std::uint8_t
{
    Nop,      ///< No operation (still occupies a pipeline slot).
    MovImm,   ///< dst = imm
    Add,      ///< dst = src0 + src1|imm
    Sub,      ///< dst = src0 - src1|imm
    Mul,      ///< dst = src0 * src1|imm (3-cycle class)
    Div,      ///< dst = src0 / src1|imm (long-latency, not fully pipelined)
    And,      ///< dst = src0 & src1|imm
    Or,       ///< dst = src0 | src1|imm
    Xor,      ///< dst = src0 ^ src1|imm
    Shl,      ///< dst = src0 << (src1|imm)
    Shr,      ///< dst = src0 >> (src1|imm) (logical)
    Lea,      ///< dst = imm + src0*scale0 + src1*scale1 (1-cycle)
    Load,     ///< dst = mem[imm + src0*scale0 + src1*scale1]
    Store,    ///< mem[imm + src0*scale0 + src1*scale1] = dst-register value
    Prefetch, ///< fetch line at EA into the cache; no destination
    Branch,   ///< conditional: taken iff (src0 != 0) ^ invert; to target
    Jump,     ///< unconditional branch to target
    Halt,     ///< stop the machine when committed
    Rdtsc,    ///< dst = current cycle (ground-truth clock; tests only)
};

/** Functional-unit class an opcode issues to. */
enum class FuClass : std::uint8_t
{
    IntAlu,   ///< adds, logic, lea, movimm, nop
    IntMul,   ///< multiplies
    FpDiv,    ///< divides (not fully pipelined)
    MemRead,  ///< loads and prefetches
    MemWrite, ///< stores
    BranchU,  ///< branches and jumps
};

/** Map an opcode to the functional unit class that executes it. */
FuClass fuClassOf(Opcode op);

/** True for Load/Store/Prefetch. */
bool isMemOp(Opcode op);

/** True for Branch/Jump. */
bool isControlOp(Opcode op);

/**
 * One micro-op. Fixed two-source format.
 *
 * Memory effective address and Lea results are computed as
 *   imm + value(src0)*scale0 + value(src1)*scale1,
 * which lets gadget code create ordering-only data dependences
 * (scale = 0: the access must wait for the producer, but the address is
 * unchanged) as well as genuine pointer chases (scale = 1).
 *
 * Store reads its data from @c dst (the only three-operand case).
 */
struct Instruction
{
    Opcode op = Opcode::Nop;
    RegId dst = kNoReg;
    RegId src0 = kNoReg;
    RegId src1 = kNoReg;
    std::int64_t imm = 0;
    std::int8_t scale0 = 1;
    std::int8_t scale1 = 1;
    std::int32_t target = -1; ///< branch destination (program index)
    bool invert = false;      ///< branch on zero instead of non-zero

    /** Functional unit class for this instruction. */
    FuClass fuClass() const { return fuClassOf(op); }

    /** Human-readable rendering, e.g. "load r3 = [0x1000 + r2*0]". */
    std::string toString() const;
};

/** Name of an opcode, e.g. "mul". */
std::string opcodeName(Opcode op);

} // namespace hr

#endif // HR_ISA_INSTRUCTION_HH
