#include "isa/instruction.hh"

#include <cstdio>

#include "util/log.hh"

namespace hr
{

FuClass
fuClassOf(Opcode op)
{
    switch (op) {
      case Opcode::Nop:
      case Opcode::MovImm:
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Lea:
      case Opcode::Halt:
      case Opcode::Rdtsc:
        return FuClass::IntAlu;
      case Opcode::Mul:
        return FuClass::IntMul;
      case Opcode::Div:
        return FuClass::FpDiv;
      case Opcode::Load:
      case Opcode::Prefetch:
        return FuClass::MemRead;
      case Opcode::Store:
        return FuClass::MemWrite;
      case Opcode::Branch:
      case Opcode::Jump:
        return FuClass::BranchU;
    }
    panic("fuClassOf: bad opcode");
}

bool
isMemOp(Opcode op)
{
    return op == Opcode::Load || op == Opcode::Store ||
           op == Opcode::Prefetch;
}

bool
isControlOp(Opcode op)
{
    return op == Opcode::Branch || op == Opcode::Jump;
}

std::string
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::MovImm: return "movimm";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::Lea: return "lea";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::Prefetch: return "prefetch";
      case Opcode::Branch: return "branch";
      case Opcode::Jump: return "jump";
      case Opcode::Halt: return "halt";
      case Opcode::Rdtsc: return "rdtsc";
    }
    panic("opcodeName: bad opcode");
}

namespace
{

std::string
regName(RegId r)
{
    if (r == kNoReg)
        return "-";
    char buf[16];
    std::snprintf(buf, sizeof(buf), "r%u", static_cast<unsigned>(r));
    return buf;
}

std::string
eaString(const Instruction &inst)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "[0x%llx + %s*%d + %s*%d]",
                  static_cast<unsigned long long>(inst.imm),
                  regName(inst.src0).c_str(), inst.scale0,
                  regName(inst.src1).c_str(), inst.scale1);
    return buf;
}

} // namespace

std::string
Instruction::toString() const
{
    char buf[160];
    switch (op) {
      case Opcode::Nop:
        return "nop";
      case Opcode::Halt:
        return "halt";
      case Opcode::MovImm:
        std::snprintf(buf, sizeof(buf), "movimm %s = %lld",
                      regName(dst).c_str(), static_cast<long long>(imm));
        return buf;
      case Opcode::Load:
        std::snprintf(buf, sizeof(buf), "load %s = %s",
                      regName(dst).c_str(), eaString(*this).c_str());
        return buf;
      case Opcode::Store:
        std::snprintf(buf, sizeof(buf), "store %s = %s",
                      eaString(*this).c_str(), regName(dst).c_str());
        return buf;
      case Opcode::Prefetch:
        std::snprintf(buf, sizeof(buf), "prefetch %s",
                      eaString(*this).c_str());
        return buf;
      case Opcode::Lea:
        std::snprintf(buf, sizeof(buf), "lea %s = 0x%llx + %s*%d + %s*%d",
                      regName(dst).c_str(),
                      static_cast<unsigned long long>(imm),
                      regName(src0).c_str(), scale0,
                      regName(src1).c_str(), scale1);
        return buf;
      case Opcode::Branch:
        std::snprintf(buf, sizeof(buf), "branch %s(%s != 0) -> %d",
                      invert ? "!" : "", regName(src0).c_str(), target);
        return buf;
      case Opcode::Jump:
        std::snprintf(buf, sizeof(buf), "jump -> %d", target);
        return buf;
      default:
        std::snprintf(buf, sizeof(buf), "%s %s = %s, %s, imm=%lld",
                      opcodeName(op).c_str(), regName(dst).c_str(),
                      regName(src0).c_str(), regName(src1).c_str(),
                      static_cast<long long>(imm));
        return buf;
    }
}

} // namespace hr
