#include "timer/calibration.hh"

#include "util/log.hh"

namespace hr
{

Calibration
calibrateThresholdLenient(const std::function<double(bool)> &observe_ns)
{
    Calibration calibration;
    calibration.fastNs = observe_ns(false);
    calibration.slowNs = observe_ns(true);
    calibration.thresholdNs =
        0.5 * (calibration.slowNs + calibration.fastNs);
    calibration.separable = calibration.slowNs > calibration.fastNs;
    return calibration;
}

Calibration
calibrateThreshold(const std::function<double(bool)> &observe_ns,
                   const std::string &who)
{
    Calibration calibration = calibrateThresholdLenient(observe_ns);
    fatalIf(!calibration.separable,
            who + ": calibration produced no signal (slow state read " +
                std::to_string(calibration.slowNs) + " ns vs fast " +
                std::to_string(calibration.fastNs) +
                " ns); increase the magnifier repeats or check the "
                "timer resolution");
    return calibration;
}

} // namespace hr
