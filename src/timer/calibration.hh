/**
 * @file
 * Shared coarse-clock threshold calibration.
 *
 * Every composed timer in the paper (HackyTimer, SpectreBack, generic
 * attack pipelines) ends the same way: run the magnifier in both known
 * states, read the coarse clock, and split the difference into a
 * decision threshold. This is the one implementation of that step;
 * the per-gadget part is only "how do I force the slow/fast state".
 */

#ifndef HR_TIMER_CALIBRATION_HH
#define HR_TIMER_CALIBRATION_HH

#include <functional>
#include <string>

namespace hr
{

/** Outcome of a two-point threshold calibration. */
struct Calibration
{
    double fastNs = 0.0;      ///< observation in the known-fast state
    double slowNs = 0.0;      ///< observation in the known-slow state
    double thresholdNs = 0.0; ///< midpoint decision threshold

    /** True iff the two states were separable (slow > fast). */
    bool separable = false;

    /** Decide one observation against the threshold. */
    bool isSlow(double observed_ns) const
    {
        return observed_ns > thresholdNs;
    }
};

/**
 * Calibrate a decision threshold from one observation per known state.
 *
 * @p observe_ns runs one complete observation with the input forced to
 * the given polarity (true = the state that should read slow) and
 * returns the attacker-visible duration in nanoseconds. fatal()s in
 * @p who 's name if the states are not separable (no magnifier signal).
 */
Calibration
calibrateThreshold(const std::function<double(bool slow)> &observe_ns,
                   const std::string &who);

/**
 * Same two-point calibration but tolerating inseparable states: the
 * threshold is still the midpoint and `separable` reports the failure.
 * Used by sources (e.g. a bare coarse clock) whose whole point is that
 * calibration *can* fail.
 */
Calibration
calibrateThresholdLenient(const std::function<double(bool slow)> &observe_ns);

} // namespace hr

#endif // HR_TIMER_CALIBRATION_HH
