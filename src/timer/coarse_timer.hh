/**
 * @file
 * Model of a browser's coarse-grained clock (performance.now()).
 *
 * The threat model (section 3) gives the attacker a timer quantized to
 * 5 microseconds (optionally with jitter, modelling "fuzzy time"
 * defences). Magnifier gadgets must stretch microarchitectural timing
 * differences beyond this resolution to be observable.
 */

#ifndef HR_TIMER_COARSE_TIMER_HH
#define HR_TIMER_COARSE_TIMER_HH

#include <cstdint>

#include "util/rng.hh"
#include "util/types.hh"

namespace hr
{

/** Timer configuration. */
struct TimerConfig
{
    double ghz = 2.0;            ///< must match the Machine clock
    double resolutionNs = 5000;  ///< 5 us, today's browser default
    double jitterNs = 0;         ///< uniform [0, jitter) edge fuzzing
    std::uint64_t rngSeed = 99;

    /** Chrome-2018-style 100 ms clock. */
    static TimerConfig
    veryCoarse()
    {
        TimerConfig config;
        config.resolutionNs = 100e6;
        return config;
    }
};

/** Quantizing (and optionally fuzzed) wall-clock view of machine time. */
class CoarseTimer
{
  public:
    explicit CoarseTimer(const TimerConfig &config = {});

    const TimerConfig &config() const { return config_; }

    /** Exact nanoseconds (ground truth; not attacker-visible). */
    double exactNs(Cycle cycle) const;

    /** What performance.now() returns at this cycle, in nanoseconds. */
    double nowNs(Cycle cycle);

    /** Attacker-visible elapsed time between two cycles. */
    double elapsedNs(Cycle start, Cycle end);

    /**
     * True if the attacker can distinguish the two durations with this
     * timer from a single observation (difference >= one tick).
     */
    bool distinguishable(Cycle a, Cycle b) const;

  private:
    TimerConfig config_;
    Rng rng_;
};

} // namespace hr

#endif // HR_TIMER_COARSE_TIMER_HH
