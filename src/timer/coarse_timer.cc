#include "timer/coarse_timer.hh"

#include <cmath>

#include "util/log.hh"

namespace hr
{

CoarseTimer::CoarseTimer(const TimerConfig &config)
    : config_(config), rng_(config.rngSeed)
{
    fatalIf(config_.ghz <= 0, "CoarseTimer: bad clock");
    fatalIf(config_.resolutionNs <= 0, "CoarseTimer: bad resolution");
}

double
CoarseTimer::exactNs(Cycle cycle) const
{
    return static_cast<double>(cycle) / config_.ghz;
}

double
CoarseTimer::nowNs(Cycle cycle)
{
    double t = exactNs(cycle);
    if (config_.jitterNs > 0)
        t += rng_.uniform() * config_.jitterNs;
    return std::floor(t / config_.resolutionNs) * config_.resolutionNs;
}

double
CoarseTimer::elapsedNs(Cycle start, Cycle end)
{
    return nowNs(end) - nowNs(start);
}

bool
CoarseTimer::distinguishable(Cycle a, Cycle b) const
{
    const double da = exactNs(a);
    const double db = exactNs(b);
    return std::abs(da - db) >= config_.resolutionNs;
}

} // namespace hr
