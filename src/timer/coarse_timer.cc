#include "timer/coarse_timer.hh"

#include <cmath>

#include "util/log.hh"

namespace hr
{

CoarseTimer::CoarseTimer(const TimerConfig &config)
    : config_(config), rng_(config.rngSeed)
{
    fatalIf(config_.ghz <= 0, "CoarseTimer: bad clock");
    fatalIf(config_.resolutionNs <= 0, "CoarseTimer: bad resolution");
}

double
CoarseTimer::exactNs(Cycle cycle) const
{
    return static_cast<double>(cycle) / config_.ghz;
}

double
CoarseTimer::nowNs(Cycle cycle)
{
    double t = exactNs(cycle);
    if (config_.jitterNs > 0)
        t += rng_.uniform() * config_.jitterNs;
    return std::floor(t / config_.resolutionNs) * config_.resolutionNs;
}

double
CoarseTimer::elapsedNs(Cycle start, Cycle end)
{
    // A zero-length interval reads exactly zero: drawing jitter
    // independently for both endpoints could otherwise report a full
    // tick for no elapsed time at all.
    if (start == end)
        return 0.0;
    // Independent edge fuzzing can also quantize the end before the
    // start; a real clock read never goes backwards, so clamp.
    const double elapsed = nowNs(end) - nowNs(start);
    return elapsed < 0.0 ? 0.0 : elapsed;
}

bool
CoarseTimer::distinguishable(Cycle a, Cycle b) const
{
    const double da = exactNs(a);
    const double db = exactNs(b);
    return std::abs(da - db) >= config_.resolutionNs;
}

} // namespace hr
