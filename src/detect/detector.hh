/**
 * @file
 * Run-time detection analysis (paper section 8).
 *
 * The paper suggests two weak classifiers for Hacky-Racer activity:
 * the L1-miss rate (the PLRU and arbitrary-replacement magnifiers miss
 * constantly) and the ratio of backend-bound execution to branch
 * mispredictions (the arithmetic magnifier runs long dependent chains
 * with essentially no mispredicts). This module computes those
 * features from the machine's performance counters so the benchmarks
 * can quantify how separable gadget traffic is from benign code.
 */

#ifndef HR_DETECT_DETECTOR_HH
#define HR_DETECT_DETECTOR_HH

#include <string>

#include "sim/machine.hh"

namespace hr
{

/** Features extracted from one profiled execution. */
struct DetectorFeatures
{
    double l1MissesPerKiloInstr = 0.0;
    double backendBoundRatio = 0.0;    ///< no-commit cycles / cycles
    double mispredictsPerKiloInstr = 0.0;
    double divIssueShare = 0.0;        ///< FpDiv issues / all issues
    double ipc = 0.0;
};

/** Verdict with the dominant signal. */
struct DetectorVerdict
{
    bool suspicious = false;
    std::string reason;
};

/** Simple threshold detector over hardware-counter features. */
class Detector
{
  public:
    /** Counter thresholds (defaults follow section 8's discussion). */
    struct Thresholds
    {
        double l1MissesPerKiloInstr = 150.0;
        double backendPerMispredict = 4000.0; ///< cycles per mispredict
        double divIssueShare = 0.10;
    };

    Detector() : thresholds_(Thresholds()) {}
    explicit Detector(const Thresholds &thresholds)
        : thresholds_(thresholds)
    {
    }

    /** Profile one program execution on a machine. */
    static DetectorFeatures profile(Machine &machine, Program &program);

    /** Extract features from a finished run's counters + cache stats. */
    static DetectorFeatures featuresOf(const RunResult &result,
                                       std::uint64_t l1_misses);

    /** Classify. */
    DetectorVerdict classify(const DetectorFeatures &features) const;

  private:
    Thresholds thresholds_;
};

} // namespace hr

#endif // HR_DETECT_DETECTOR_HH
