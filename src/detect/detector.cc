#include "detect/detector.hh"

namespace hr
{

DetectorFeatures
Detector::featuresOf(const RunResult &result, std::uint64_t l1_misses)
{
    DetectorFeatures features;
    const auto &counters = result.counters;
    const double kilo_instrs =
        static_cast<double>(counters.committedInstrs) / 1e3;
    if (kilo_instrs > 0) {
        features.l1MissesPerKiloInstr =
            static_cast<double>(l1_misses) / kilo_instrs;
        features.mispredictsPerKiloInstr =
            static_cast<double>(counters.mispredicts) / kilo_instrs;
    }
    if (counters.cycles > 0) {
        features.backendBoundRatio =
            static_cast<double>(counters.noCommitCycles) /
            static_cast<double>(counters.cycles);
    }
    std::uint64_t issued = 0;
    for (std::uint64_t n : counters.issuedByClass)
        issued += n;
    if (issued > 0) {
        features.divIssueShare =
            static_cast<double>(
                counters.issuedByClass[static_cast<int>(FuClass::FpDiv)]) /
            static_cast<double>(issued);
    }
    features.ipc = counters.ipc();
    return features;
}

DetectorFeatures
Detector::profile(Machine &machine, Program &program)
{
    // Per-context attribution: on a solo machine this equals the
    // global L1 delta, and under a noisy co-run it isolates the
    // profiled workload's own misses — a per-thread counter, which is
    // what a real per-process monitor reads.
    const ContextAccessStats before = machine.contextStats(0);
    RunResult result = machine.run(program);
    const std::uint64_t misses =
        (machine.contextStats(0) - before).misses;
    return featuresOf(result, misses);
}

DetectorVerdict
Detector::classify(const DetectorFeatures &features) const
{
    DetectorVerdict verdict;
    if (features.l1MissesPerKiloInstr >
        thresholds_.l1MissesPerKiloInstr) {
        verdict.suspicious = true;
        verdict.reason = "sustained L1 miss storm (PLRU/arbitrary "
                         "magnifier signature)";
        return verdict;
    }
    // Backend-bound cycles per mispredict: long dependent-arithmetic
    // execution with almost no branches misleading.
    const double mispredicts_per_cycle =
        features.mispredictsPerKiloInstr * features.ipc / 1e3;
    const double backend_per_mispredict =
        mispredicts_per_cycle > 0
            ? features.backendBoundRatio / mispredicts_per_cycle
            : (features.backendBoundRatio > 0.5 ? 1e9 : 0.0);
    if (features.divIssueShare > thresholds_.divIssueShare &&
        backend_per_mispredict > thresholds_.backendPerMispredict) {
        verdict.suspicious = true;
        verdict.reason = "backend-bound divider chains without "
                         "mispredicts (arithmetic magnifier signature)";
        return verdict;
    }
    verdict.reason = "benign profile";
    return verdict;
}

} // namespace hr
