/**
 * @file
 * Architectural memory image: a sparse map of 8-byte words.
 *
 * Cache levels model presence and timing only; the single data image
 * lives here, which is sound for a single-core machine.
 */

#ifndef HR_UTIL_MEMORY_IMAGE_HH
#define HR_UTIL_MEMORY_IMAGE_HH

#include <cstdint>
#include <unordered_map>

#include "util/types.hh"

namespace hr
{

/** Sparse 64-bit-word memory; unwritten locations read as zero. */
class MemoryImage
{
  public:
    /** Read the word containing addr (aligned down to 8 bytes). */
    std::int64_t
    read(Addr addr) const
    {
        auto it = words_.find(wordAddr(addr));
        return it == words_.end() ? 0 : it->second;
    }

    /** Write the word containing addr. */
    void
    write(Addr addr, std::int64_t value)
    {
        words_[wordAddr(addr)] = value;
    }

    /** Number of distinct words written. */
    std::size_t footprint() const { return words_.size(); }

    void clear() { words_.clear(); }

    static Addr wordAddr(Addr addr) { return addr & ~Addr{7}; }

  private:
    std::unordered_map<Addr, std::int64_t> words_;
};

} // namespace hr

#endif // HR_UTIL_MEMORY_IMAGE_HH
