/**
 * @file
 * String-keyed parameter set with typed accessors.
 *
 * ParamSet is the universal "loose configuration" currency: scenario
 * parameters (`--param key=value`), gadget construction overrides
 * (GadgetRegistry::make), and sweep grid points all travel as one of
 * these. Values are stored as strings and parsed on access, so every
 * consumer documents its keys and defaults at the point of use.
 */

#ifndef HR_UTIL_PARAMS_HH
#define HR_UTIL_PARAMS_HH

#include <map>
#include <string>
#include <vector>

namespace hr
{

/** Levenshtein edit distance (typo suggestions). */
std::size_t editDistance(const std::string &a, const std::string &b);

/**
 * The candidate closest to @p needle by edit distance, or "" when
 * nothing is close enough to plausibly be a typo (distance must be
 * under half the needle's length, and at most 4).
 */
std::string closestMatch(const std::string &needle,
                         const std::vector<std::string> &candidates);

/** String-keyed parameters with typed accessors. */
class ParamSet
{
  public:
    void set(const std::string &key, const std::string &value);

    /** Parse "key=value" (fatal if '=' is missing). */
    void setFromArg(const std::string &arg);

    bool has(const std::string &key) const;
    std::string get(const std::string &key, const std::string &def) const;
    long long getInt(const std::string &key, long long def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;

    /** Union: entries of @p other override entries of *this. */
    ParamSet overriddenBy(const ParamSet &other) const;

    /**
     * Fatal unless every key is one of @p allowed. The error names
     * @p subject (e.g. "gadget 'pa_race'"), lists the valid keys, and
     * suggests the nearest match for the offending key — so a sweep
     * typo like `--grid slowops=...` fails with "did you mean
     * 'slow_ops'?" instead of being silently ignored.
     */
    void requireKeys(const std::vector<std::string> &allowed,
                     const std::string &subject) const;

    const std::map<std::string, std::string> &entries() const
    {
        return entries_;
    }

  private:
    std::map<std::string, std::string> entries_;
};

} // namespace hr

#endif // HR_UTIL_PARAMS_HH
