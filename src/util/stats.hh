/**
 * @file
 * Lightweight statistics helpers used by the benchmark harness and tests:
 * running moments, order statistics, and fixed-bin histograms.
 */

#ifndef HR_UTIL_STATS_HH
#define HR_UTIL_STATS_HH

#include <cstddef>
#include <string>
#include <vector>

namespace hr
{

/**
 * Accumulates samples and reports summary statistics.
 *
 * Samples are retained, so percentiles are exact.
 */
class SampleStats
{
  public:
    /** Add one observation. Non-finite samples are counted and ignored. */
    void add(double x);

    /** Number of observations so far. */
    std::size_t count() const { return samples_.size(); }

    /** Non-finite (NaN/inf) samples rejected so far. */
    std::size_t dropped() const { return dropped_; }

    /** Arithmetic mean (0 if empty). */
    double mean() const;

    /** Unbiased sample standard deviation (0 if < 2 samples). */
    double stddev() const;

    double min() const;
    double max() const;

    /** Exact percentile via nearest-rank on the sorted samples. */
    double percentile(double p) const;

    double median() const { return percentile(50.0); }

    /** Read-only access to raw samples. */
    const std::vector<double> &samples() const { return samples_; }

    /**
     * JSON summary object: count, mean, stddev, min, max, median —
     * and the dropped() non-finite counter, so a noisy sweep that
     * rejected samples cannot serialize as if it had seen them all.
     */
    std::string renderJson() const;

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
    std::size_t dropped_ = 0;

    void ensureSorted() const;
};

/**
 * Fixed-width-bin histogram over [lo, hi); out-of-range samples clamp to
 * the first/last bin.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    /** Add one sample. Non-finite samples are counted and ignored. */
    void add(double x);

    std::size_t bins() const { return counts_.size(); }
    std::size_t total() const { return total_; }

    /** Non-finite (NaN/inf) samples rejected so far. */
    std::size_t dropped() const { return dropped_; }
    std::size_t binCount(std::size_t i) const { return counts_.at(i); }

    /** Center of bin i. */
    double binCenter(std::size_t i) const;

    /** Fraction of samples in bin i (0 if empty histogram). */
    double binFraction(std::size_t i) const;

    /**
     * Fraction of probability mass shared with another histogram with the
     * same binning: sum_i min(p_i, q_i). 0 = perfectly separable signals.
     */
    double overlap(const Histogram &other) const;

    /** Multi-line ASCII rendering (for bench output). */
    std::string render(std::size_t width = 50) const;

    /**
     * JSON object: binning parameters, [center, count] pairs, and
     * the dropped() non-finite counter (total is recoverable from
     * the bins; dropped samples are visible nowhere else).
     */
    std::string renderJson() const;

    /**
     * CSV: "bin_center,count" header then one row per bin, with a
     * trailing `# dropped: N` comment line (the section-comment
     * convention of ResultTable's CSV output).
     */
    std::string renderCsv() const;

  private:
    double lo_, hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
    std::size_t dropped_ = 0;
};

/** Pearson correlation between two equal-length series. */
double correlation(const std::vector<double> &x, const std::vector<double> &y);

/** Ordinary least-squares slope of y on x. */
double linearSlope(const std::vector<double> &x, const std::vector<double> &y);

} // namespace hr

#endif // HR_UTIL_STATS_HH
