#include "util/params.hh"

#include <cstdlib>

#include "util/log.hh"

namespace hr
{

void
ParamSet::set(const std::string &key, const std::string &value)
{
    entries_[key] = value;
}

void
ParamSet::setFromArg(const std::string &arg)
{
    const auto eq = arg.find('=');
    fatalIf(eq == std::string::npos || eq == 0,
            "parameter must be key=value, got '" + arg + "'");
    set(arg.substr(0, eq), arg.substr(eq + 1));
}

bool
ParamSet::has(const std::string &key) const
{
    return entries_.count(key) != 0;
}

std::string
ParamSet::get(const std::string &key, const std::string &def) const
{
    const auto it = entries_.find(key);
    return it == entries_.end() ? def : it->second;
}

long long
ParamSet::getInt(const std::string &key, long long def) const
{
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return def;
    char *end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 0);
    fatalIf(end == it->second.c_str() || *end != '\0',
            "parameter " + key + ": '" + it->second + "' is not an integer");
    return v;
}

double
ParamSet::getDouble(const std::string &key, double def) const
{
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return def;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    fatalIf(end == it->second.c_str() || *end != '\0',
            "parameter " + key + ": '" + it->second + "' is not a number");
    return v;
}

bool
ParamSet::getBool(const std::string &key, bool def) const
{
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return def;
    const std::string &v = it->second;
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    fatal("parameter " + key + ": '" + v + "' is not a boolean");
}

ParamSet
ParamSet::overriddenBy(const ParamSet &other) const
{
    ParamSet merged = *this;
    for (const auto &[key, value] : other.entries_)
        merged.entries_[key] = value;
    return merged;
}

} // namespace hr
