#include "util/params.hh"

#include <algorithm>
#include <cstdlib>

#include "util/log.hh"

namespace hr
{

std::size_t
editDistance(const std::string &a, const std::string &b)
{
    // Single-row Levenshtein; fine for key/name-sized strings.
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t sub =
                diag + (a[i - 1] == b[j - 1] ? 0 : 1);
            diag = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
        }
    }
    return row[b.size()];
}

std::string
closestMatch(const std::string &needle,
             const std::vector<std::string> &candidates)
{
    std::string best;
    std::size_t best_distance = ~std::size_t{0};
    for (const std::string &candidate : candidates) {
        const std::size_t d = editDistance(needle, candidate);
        if (d < best_distance) {
            best_distance = d;
            best = candidate;
        }
    }
    const std::size_t cutoff =
        std::min<std::size_t>(4, needle.size() > 1 ? needle.size() / 2
                                                   : 1);
    return best_distance <= cutoff ? best : std::string();
}

void
ParamSet::set(const std::string &key, const std::string &value)
{
    entries_[key] = value;
}

void
ParamSet::setFromArg(const std::string &arg)
{
    const auto eq = arg.find('=');
    fatalIf(eq == std::string::npos || eq == 0,
            "parameter must be key=value, got '" + arg + "'");
    set(arg.substr(0, eq), arg.substr(eq + 1));
}

bool
ParamSet::has(const std::string &key) const
{
    return entries_.count(key) != 0;
}

std::string
ParamSet::get(const std::string &key, const std::string &def) const
{
    const auto it = entries_.find(key);
    return it == entries_.end() ? def : it->second;
}

long long
ParamSet::getInt(const std::string &key, long long def) const
{
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return def;
    char *end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 0);
    fatalIf(end == it->second.c_str() || *end != '\0',
            "parameter " + key + ": '" + it->second + "' is not an integer");
    return v;
}

double
ParamSet::getDouble(const std::string &key, double def) const
{
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return def;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    fatalIf(end == it->second.c_str() || *end != '\0',
            "parameter " + key + ": '" + it->second + "' is not a number");
    return v;
}

bool
ParamSet::getBool(const std::string &key, bool def) const
{
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return def;
    const std::string &v = it->second;
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    fatal("parameter " + key + ": '" + v + "' is not a boolean");
}

ParamSet
ParamSet::overriddenBy(const ParamSet &other) const
{
    ParamSet merged = *this;
    for (const auto &[key, value] : other.entries_)
        merged.entries_[key] = value;
    return merged;
}

void
ParamSet::requireKeys(const std::vector<std::string> &allowed,
                      const std::string &subject) const
{
    for (const auto &[key, value] : entries_) {
        if (std::find(allowed.begin(), allowed.end(), key) !=
            allowed.end()) {
            continue;
        }
        std::string known;
        for (const std::string &name : allowed)
            known += (known.empty() ? "" : ", ") + name;
        if (known.empty())
            known = "(none)";
        const std::string suggestion = closestMatch(key, allowed);
        fatal(subject + ": unknown parameter '" + key + "'" +
              (suggestion.empty() ? ""
                                  : " (did you mean '" + suggestion +
                                        "'?)") +
              "; valid keys: " + known);
    }
}

} // namespace hr
