#include "util/rng.hh"

#include "util/log.hh"

namespace hr
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

void
Rng::reseed(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    ++draws_;
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    panicIf(bound == 0, "Rng::below(0)");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    panicIf(lo > hi, "Rng::range: lo > hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? next() : below(span));
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xdeadbeefcafef00dull);
}

} // namespace hr
