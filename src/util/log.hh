/**
 * @file
 * gem5-style error/status helpers: panic() for internal invariant
 * violations, fatal() for user/configuration errors, warn()/inform()
 * for status output.
 */

#ifndef HR_UTIL_LOG_HH
#define HR_UTIL_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "obs/log.hh"

namespace hr
{

/** Internal simulator bug: abort with a message. */
[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

/** User/configuration error: throw so callers (and tests) may catch. */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    throw std::runtime_error("fatal: " + msg);
}

/** Non-fatal suspicious condition (leveled; see obs/log.hh). */
inline void
warn(const std::string &msg)
{
    HR_LOG(warn, "warn: %s\n", msg.c_str());
}

/**
 * Normal operating status message. Stays on stdout (part of some
 * commands' expected output) but honors the info log level.
 */
inline void
inform(const std::string &msg)
{
    if (logEnabled(LogLevel::Info))
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

/** panic() unless the invariant holds. */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

/** fatal() unless the user-facing condition holds. */
inline void
fatalIf(bool cond, const std::string &msg)
{
    if (cond)
        fatal(msg);
}

} // namespace hr

#endif // HR_UTIL_LOG_HH
