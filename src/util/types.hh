/**
 * @file
 * Fundamental scalar types shared across the Hacky Racers simulator.
 */

#ifndef HR_UTIL_TYPES_HH
#define HR_UTIL_TYPES_HH

#include <cstdint>

namespace hr
{

/** Byte address in the simulated (flat, physical) address space. */
using Addr = std::uint64_t;

/** Absolute simulated time in core clock cycles. */
using Cycle = std::uint64_t;

/** Architectural register identifier. */
using RegId = std::uint16_t;

/**
 * Hardware execution context (SMT-style logical thread) within one
 * Machine. Context 0 is the primary/legacy context; configurations
 * with a single context behave exactly like the pre-multi-context
 * simulator.
 */
using ContextId = std::uint32_t;

/** Sentinel meaning "no register operand". */
constexpr RegId kNoReg = 0xffff;

} // namespace hr

#endif // HR_UTIL_TYPES_HH
