/**
 * @file
 * Fundamental scalar types shared across the Hacky Racers simulator.
 */

#ifndef HR_UTIL_TYPES_HH
#define HR_UTIL_TYPES_HH

#include <cstdint>

namespace hr
{

/** Byte address in the simulated (flat, physical) address space. */
using Addr = std::uint64_t;

/** Absolute simulated time in core clock cycles. */
using Cycle = std::uint64_t;

/** Architectural register identifier. */
using RegId = std::uint16_t;

/** Sentinel meaning "no register operand". */
constexpr RegId kNoReg = 0xffff;

} // namespace hr

#endif // HR_UTIL_TYPES_HH
