#include "util/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/log.hh"
#include "util/table.hh"

namespace hr
{

void
SampleStats::add(double x)
{
    if (!std::isfinite(x)) {
        ++dropped_;
        return;
    }
    samples_.push_back(x);
    sorted_ = false;
}

double
SampleStats::mean() const
{
    if (samples_.empty())
        return 0.0;
    double s = 0.0;
    for (double x : samples_)
        s += x;
    return s / static_cast<double>(samples_.size());
}

double
SampleStats::stddev() const
{
    if (samples_.size() < 2)
        return 0.0;
    const double m = mean();
    double s = 0.0;
    for (double x : samples_)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(samples_.size() - 1));
}

double
SampleStats::min() const
{
    if (samples_.empty())
        return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
}

double
SampleStats::max() const
{
    if (samples_.empty())
        return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

void
SampleStats::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
SampleStats::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    // Edges return the exact order statistic: interpolating at p=0/100
    // (or on a one-element set) can drift by a few ulps, which matters
    // when callers compare percentiles against recorded extremes.
    if (samples_.size() == 1 || p <= 0.0)
        return samples_.front();
    if (p >= 100.0)
        return samples_.back();
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    fatalIf(bins == 0 || hi <= lo, "Histogram: bad binning");
}

void
Histogram::add(double x)
{
    if (!std::isfinite(x)) {
        // Casting a NaN/inf bin index to an integer is UB; count the
        // sample as dropped instead of corrupting a bin.
        ++dropped_;
        return;
    }
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    // Clamp in the double domain: casting a finite value outside the
    // int64 range is just as undefined as casting a NaN.
    double pos = (x - lo_) / width;
    const double last = static_cast<double>(counts_.size() - 1);
    if (!(pos > 0.0))
        pos = 0.0;
    else if (pos > last)
        pos = last;
    ++counts_[static_cast<std::size_t>(pos)];
    ++total_;
}

double
Histogram::binCenter(std::size_t i) const
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + width * (static_cast<double>(i) + 0.5);
}

double
Histogram::binFraction(std::size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(counts_.at(i)) / static_cast<double>(total_);
}

double
Histogram::overlap(const Histogram &other) const
{
    panicIf(other.counts_.size() != counts_.size(),
            "Histogram::overlap: bin count mismatch");
    double shared = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i)
        shared += std::min(binFraction(i), other.binFraction(i));
    return shared;
}

std::string
Histogram::render(std::size_t width) const
{
    std::size_t peak = 1;
    for (std::size_t c : counts_)
        peak = std::max(peak, c);
    std::string out;
    char line[160];
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const auto bar =
            static_cast<std::size_t>(counts_[i] * width / peak);
        std::snprintf(line, sizeof(line), "%12.3f | %-*s %zu\n",
                      binCenter(i), static_cast<int>(width),
                      std::string(bar, '#').c_str(), counts_[i]);
        out += line;
    }
    return out;
}

std::string
Histogram::renderJson() const
{
    std::string out = "{\"lo\": " + jsonNum(lo_) +
                      ", \"hi\": " + jsonNum(hi_) +
                      ", \"dropped\": " + std::to_string(dropped_) +
                      ", \"bins\": [";
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += "[" + jsonNum(binCenter(i)) + ", " +
               std::to_string(counts_[i]) + "]";
    }
    return out + "]}";
}

std::string
Histogram::renderCsv() const
{
    std::string out = "bin_center,count\n";
    for (std::size_t i = 0; i < counts_.size(); ++i)
        out += jsonNum(binCenter(i)) + "," + std::to_string(counts_[i]) +
               "\n";
    out += "# dropped: " + std::to_string(dropped_) + "\n";
    return out;
}

std::string
SampleStats::renderJson() const
{
    return "{\"count\": " + std::to_string(count()) +
           ", \"dropped\": " + std::to_string(dropped_) +
           ", \"mean\": " + jsonNum(mean()) +
           ", \"stddev\": " + jsonNum(stddev()) +
           ", \"min\": " + jsonNum(min()) +
           ", \"max\": " + jsonNum(max()) +
           ", \"median\": " + jsonNum(median()) + "}";
}

double
correlation(const std::vector<double> &x, const std::vector<double> &y)
{
    panicIf(x.size() != y.size(), "correlation: size mismatch");
    if (x.size() < 2)
        return 0.0;
    const auto n = static_cast<double>(x.size());
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sx += x[i];
        sy += y[i];
        sxx += x[i] * x[i];
        syy += y[i] * y[i];
        sxy += x[i] * y[i];
    }
    const double cov = sxy - sx * sy / n;
    const double vx = sxx - sx * sx / n;
    const double vy = syy - sy * sy / n;
    if (vx <= 0 || vy <= 0)
        return 0.0;
    return cov / std::sqrt(vx * vy);
}

double
linearSlope(const std::vector<double> &x, const std::vector<double> &y)
{
    panicIf(x.size() != y.size(), "linearSlope: size mismatch");
    if (x.size() < 2)
        return 0.0;
    const auto n = static_cast<double>(x.size());
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sx += x[i];
        sy += y[i];
        sxx += x[i] * x[i];
        sxy += x[i] * y[i];
    }
    const double vx = sxx - sx * sx / n;
    if (vx == 0)
        return 0.0;
    return (sxy - sx * sy / n) / vx;
}

} // namespace hr
