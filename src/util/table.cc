#include "util/table.hh"

#include <algorithm>
#include <cstdio>

#include "util/log.hh"

namespace hr
{

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    fatalIf(cells.size() != headers_.size(), "Table: row arity mismatch");
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::integer(long long v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", v);
    return buf;
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto renderRow = [&](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += row[c];
            line.append(widths[c] - row[c].size() + 2, ' ');
        }
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out = renderRow(headers_);
    std::size_t rule = 0;
    for (std::size_t w : widths)
        rule += w + 2;
    out += std::string(rule > 2 ? rule - 2 : rule, '-') + "\n";
    for (const auto &row : rows_)
        out += renderRow(row);
    return out;
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
}

Series::Series(std::string name, std::string x_label, std::string y_label)
    : name_(std::move(name)), xLabel_(std::move(x_label)),
      yLabel_(std::move(y_label))
{
}

void
Series::add(double x, double y)
{
    xs_.push_back(x);
    ys_.push_back(y);
}

std::string
Series::render() const
{
    std::string out = "# series: " + name_ + "\n";
    out += "# " + xLabel_ + "\t" + yLabel_ + "\n";
    char line[96];
    for (std::size_t i = 0; i < xs_.size(); ++i) {
        std::snprintf(line, sizeof(line), "%14.4f %14.4f\n", xs_[i], ys_[i]);
        out += line;
    }
    return out;
}

void
Series::print() const
{
    std::fputs(render().c_str(), stdout);
}

} // namespace hr
