#include "util/table.hh"

#include <algorithm>
#include <cstdio>

#include "util/log.hh"

namespace hr
{

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out + "\"";
}

std::string
csvQuote(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    return out + "\"";
}

std::string
jsonNum(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    fatalIf(cells.size() != headers_.size(), "Table: row arity mismatch");
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::integer(long long v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", v);
    return buf;
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto renderRow = [&](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += row[c];
            line.append(widths[c] - row[c].size() + 2, ' ');
        }
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out = renderRow(headers_);
    std::size_t rule = 0;
    for (std::size_t w : widths)
        rule += w + 2;
    out += std::string(rule > 2 ? rule - 2 : rule, '-') + "\n";
    for (const auto &row : rows_)
        out += renderRow(row);
    return out;
}

std::string
Table::renderJson() const
{
    std::string out = "[";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        out += r == 0 ? "\n" : ",\n";
        out += "  {";
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            if (c > 0)
                out += ", ";
            out += jsonQuote(headers_[c]) + ": " + jsonQuote(rows_[r][c]);
        }
        out += "}";
    }
    out += rows_.empty() ? "]" : "\n]";
    return out;
}

std::string
Table::renderCsv() const
{
    auto line = [](const std::vector<std::string> &cells) {
        std::string out;
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c > 0)
                out += ',';
            out += csvQuote(cells[c]);
        }
        return out + "\n";
    };
    std::string out = line(headers_);
    for (const auto &row : rows_)
        out += line(row);
    return out;
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
}

Series::Series(std::string name, std::string x_label, std::string y_label)
    : name_(std::move(name)), xLabel_(std::move(x_label)),
      yLabel_(std::move(y_label))
{
}

void
Series::add(double x, double y)
{
    xs_.push_back(x);
    ys_.push_back(y);
}

std::string
Series::render() const
{
    std::string out = "# series: " + name_ + "\n";
    out += "# " + xLabel_ + "\t" + yLabel_ + "\n";
    char line[96];
    for (std::size_t i = 0; i < xs_.size(); ++i) {
        std::snprintf(line, sizeof(line), "%14.4f %14.4f\n", xs_[i], ys_[i]);
        out += line;
    }
    return out;
}

std::string
Series::renderJson() const
{
    std::string out = "{";
    out += "\"name\": " + jsonQuote(name_);
    out += ", \"x_label\": " + jsonQuote(xLabel_);
    out += ", \"y_label\": " + jsonQuote(yLabel_);
    out += ", \"points\": [";
    for (std::size_t i = 0; i < xs_.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += "[" + jsonNum(xs_[i]) + ", " + jsonNum(ys_[i]) + "]";
    }
    return out + "]}";
}

std::string
Series::renderCsv() const
{
    std::string out = csvQuote(xLabel_) + "," + csvQuote(yLabel_) + "\n";
    for (std::size_t i = 0; i < xs_.size(); ++i)
        out += jsonNum(xs_[i]) + "," + jsonNum(ys_[i]) + "\n";
    return out;
}

void
Series::print() const
{
    std::fputs(render().c_str(), stdout);
}

} // namespace hr
