/**
 * @file
 * ASCII table and data-series printers used by the benchmark harness to
 * emit the rows/series the paper's tables and figures report.
 */

#ifndef HR_UTIL_TABLE_HH
#define HR_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace hr
{

/** Quote a string as a JSON string literal (with surrounding quotes). */
std::string jsonQuote(const std::string &s);

/** Quote a CSV field if it contains separators/quotes/newlines. */
std::string csvQuote(const std::string &s);

/** Format a double compactly for machine-readable output. */
std::string jsonNum(double v);

/**
 * Column-aligned ASCII table. Collects rows of strings and renders with a
 * header rule, suitable for terminal output and for diffing in tests.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append one row (must match header arity). */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format doubles with the given precision. */
    static std::string num(double v, int precision = 3);
    static std::string integer(long long v);

    /** Render the whole table. */
    std::string render() const;

    /** Render as a JSON array of row objects keyed by header. */
    std::string renderJson() const;

    /** Render as CSV (header row first, RFC-4180 quoting). */
    std::string renderCsv() const;

    /** Render and print to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Named (x, y) series, printed as aligned two-column data blocks — the
 * textual equivalent of one line on a paper figure.
 */
class Series
{
  public:
    Series(std::string name, std::string x_label, std::string y_label);

    void add(double x, double y);

    const std::string &name() const { return name_; }
    const std::vector<double> &xs() const { return xs_; }
    const std::vector<double> &ys() const { return ys_; }

    std::string render() const;

    /** Render as a JSON object with labels and a points array. */
    std::string renderJson() const;

    /** Render as CSV: a label header row, then x,y rows. */
    std::string renderCsv() const;

    void print() const;

  private:
    std::string name_, xLabel_, yLabel_;
    std::vector<double> xs_, ys_;
};

} // namespace hr

#endif // HR_UTIL_TABLE_HH
