/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256++).
 *
 * All randomness in the simulator and the experiments flows through
 * seeded Rng instances so every run is exactly reproducible.
 */

#ifndef HR_UTIL_RNG_HH
#define HR_UTIL_RNG_HH

#include <cstdint>
#include <vector>

namespace hr
{

/**
 * xoshiro256++ generator with splitmix64 seeding.
 *
 * Small, fast, and good enough statistical quality for replacement-policy
 * and jitter modelling; not cryptographic.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /**
     * Reset the stream as if freshly constructed from @p seed, but
     * keep the draws() counter monotone — so draw accounting stays
     * valid across the reseed points the simulator's noise streams go
     * through between trials.
     */
    void reseed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) (bound must be > 0). */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability p. */
    bool chance(double p);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = below(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derive an independent child stream (useful per-component). */
    Rng split();

    /**
     * Values drawn since construction. Consumers that must prove a
     * stretch of execution never consumed randomness (lockstep
     * fast-forward, dead-reseed replay) compare this before/after: an
     * unchanged count means the stream state is untouched, so any
     * reseed of it was behaviorally dead.
     */
    std::uint64_t draws() const { return draws_; }

  private:
    std::uint64_t s_[4];
    std::uint64_t draws_ = 0;
};

} // namespace hr

#endif // HR_UTIL_RNG_HH
