#!/usr/bin/env bash
# Traced-read lint: trial and scenario code must observe machine state
# through the Machine's traced accessors (Machine::contextStats,
# Machine::cacheMisses, Machine::probeLevel, Machine::peek), never by
# reaching into the hierarchy directly. Raw hierarchy reads bypass the
# record/replay trace, so a batched follower replaying a leader's
# trace would read live (wrong) state instead of the memoized value —
# exactly the class of bug the lockstep batching contract forbids.
#
# Config reads (hierarchy().l1().config(), setIndex, numSets, ...)
# are immutable and legitimately read everywhere, so the lint matches
# only the stateful accessors.
#
# Usage: tools/lint_traced_reads.sh  (run from the repo root; exits
# nonzero listing every violation)
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

# Directories whose code runs inside trials/scenarios and therefore
# must stay replay-safe. Core simulator internals (src/sim, src/cache,
# src/core) legitimately touch the hierarchy: they implement it.
# examples/ ships copy-paste starting points, so it must model the
# traced idiom too — a raw read there propagates into user code.
scan_dirs="bench examples src/gadgets src/channel src/detect src/timer src/exp src/analysis tests"

# Stateful reads that have traced Machine equivalents.
pattern='hierarchy\(\)\.(contextStats|cacheMisses|probeLevel|peek)\('

violations=$(grep -rnE "$pattern" $scan_dirs --include='*.cc' --include='*.hh' --include='*.cpp' 2>/dev/null)

if [ -n "$violations" ]; then
    echo "traced-read lint: raw hierarchy state reads in trial/scenario code:" >&2
    echo "$violations" >&2
    echo >&2
    echo "Use the traced accessors instead (they replay correctly in" >&2
    echo "batched trials): machine.contextStats(ctx), machine.cacheMisses(level)," >&2
    echo "machine.probeLevel(addr), machine.peek(addr)." >&2
    exit 1
fi

echo "traced-read lint: clean"
