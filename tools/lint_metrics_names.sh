#!/usr/bin/env bash
# Metrics-name lint: every instrument registered in the metrics
# catalog (src/obs/metrics.hh) must be named `subsystem.noun_verb` —
# a known subsystem prefix, one dot, then lowercase snake_case. The
# registry is string-keyed and its snapshot is the stable contract
# consumed by `hr_bench metrics`, the perf JSON's "metrics" object,
# and CI's jobs-invariance diff, so name drift is an interface break,
# not a style nit.
#
# Usage: tools/lint_metrics_names.sh  (run from the repo root; exits
# nonzero listing every violation)
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

catalog="src/obs/metrics.hh"
subsystems='machine|batch|group|decode|pool|lockstep|channel|runner|sweep|progress|trace'

# Catalog entries look like:  MetricCounter foo{*this, "machine.runs_total"};
# (joined across line wraps before matching).
names=$(tr '\n' ' ' < "$catalog" |
    grep -oE 'Metric(Counter|Gauge|Histogram)[[:space:]]+[A-Za-z0-9_]+\{\*this,[[:space:]]*"[^"]+"' |
    grep -oE '"[^"]+"' | tr -d '"')

if [ -z "$names" ]; then
    echo "metrics-name lint: no catalog entries found in $catalog" >&2
    echo "(the lint pattern no longer matches the registration idiom?)" >&2
    exit 1
fi

violations=""
while IFS= read -r name; do
    if ! echo "$name" | grep -qE "^($subsystems)\.[a-z][a-z0-9_]*$"; then
        violations="$violations$name"$'\n'
    fi
done <<< "$names"

if [ -n "$violations" ]; then
    echo "metrics-name lint: names violating subsystem.noun_verb:" >&2
    printf '%s' "$violations" >&2
    echo >&2
    echo "Metric names must be '<subsystem>.<noun_verb>' with subsystem" >&2
    echo "one of: ${subsystems//|/, }" >&2
    echo "and the rest lowercase snake_case (e.g. machine.runs_total)." >&2
    exit 1
fi

echo "metrics-name lint: clean ($(echo "$names" | wc -l) metric names)"
