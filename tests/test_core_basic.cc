/**
 * @file
 * Basic out-of-order core sanity: architectural results, dataflow
 * timing, ILP, memory latency, and squash behaviour.
 */

#include <gtest/gtest.h>

#include "sim/machine.hh"

namespace hr
{
namespace
{

TEST(CoreBasic, ArithmeticResultIsArchitectural)
{
    Machine machine;
    ProgramBuilder builder("arith");
    RegId a = builder.movImm(6);
    RegId b = builder.movImm(7);
    RegId c = builder.binop(Opcode::Mul, a, b);
    RegId d = builder.binopImm(Opcode::Add, c, 8);
    // Store the result so we can observe it through memory.
    builder.storeOrdered(0x1000, d, d);
    builder.halt();
    Program prog = builder.take();

    RunResult result = machine.run(prog);
    EXPECT_TRUE(result.halted);
    EXPECT_EQ(machine.peek(0x1000), 50);
}

TEST(CoreBasic, SerialChainTakesLatencyPerOp)
{
    Machine machine;
    ProgramBuilder builder("chain");
    RegId seed = builder.movImm(1);
    builder.opChain(Opcode::Add, 100, seed);
    builder.halt();
    Program prog = builder.take();

    RunResult result = machine.run(prog);
    // A 100-long dependent add chain needs >= 100 cycles.
    EXPECT_GE(result.cycles(), 100u);
    EXPECT_LE(result.cycles(), 200u);
}

TEST(CoreBasic, IndependentChainsOverlap)
{
    Machine machine;
    ProgramBuilder builder("ilp");
    RegId seed = builder.movImm(1);
    // Two independent 200-op chains: ILP should roughly halve the time
    // versus a single 400-op chain.
    builder.opChain(Opcode::Add, 200, seed);
    builder.opChain(Opcode::Add, 200, seed);
    builder.halt();
    Program both = builder.take();

    ProgramBuilder builder2("serial");
    RegId seed2 = builder2.movImm(1);
    builder2.opChain(Opcode::Add, 400, seed2);
    builder2.halt();
    Program serial = builder2.take();

    Machine machine2;
    RunResult parallel_result = machine.run(both);
    RunResult serial_result = machine2.run(serial);
    EXPECT_LT(parallel_result.cycles() * 3, serial_result.cycles() * 2)
        << "two independent chains should overlap via ILP";
}

TEST(CoreBasic, LoadMissCostsMemoryLatency)
{
    Machine machine;
    ProgramBuilder builder("miss");
    builder.loadAbsolute(0x8000);
    builder.halt();
    Program prog = builder.take();

    RunResult result = machine.run(prog);
    EXPECT_GE(result.cycles(), machine.config().memory.memLatency);
}

TEST(CoreBasic, LoadHitIsFast)
{
    Machine machine;
    machine.warm(0x8000, 1);
    ProgramBuilder builder("hit");
    builder.loadAbsolute(0x8000);
    builder.halt();
    Program prog = builder.take();

    RunResult result = machine.run(prog);
    EXPECT_LT(result.cycles(), 30u);
}

TEST(CoreBasic, LoadValueFlowsThroughPointerChase)
{
    Machine machine;
    machine.poke(0x1000, 0x2000);
    machine.poke(0x2000, 0x3000);
    machine.poke(0x3000, 42);

    ProgramBuilder builder("chase");
    RegId p0 = builder.loadAbsolute(0x1000);
    RegId p1 = builder.loadPointer(p0);
    RegId p2 = builder.loadPointer(p1);
    builder.storeOrdered(0x4000, p2, p2);
    builder.halt();
    Program prog = builder.take();

    machine.run(prog);
    EXPECT_EQ(machine.peek(0x4000), 42);
}

TEST(CoreBasic, BranchTakenSkipsCode)
{
    Machine machine;
    ProgramBuilder builder("brtaken");
    RegId cond = builder.movImm(1);
    RegId val = builder.movImm(111);
    auto skip = builder.newLabel();
    builder.branch(cond, skip); // taken
    builder.movImmTo(val, 222); // skipped
    builder.bind(skip);
    builder.storeOrdered(0x1000, val, val);
    builder.halt();
    Program prog = builder.take();

    machine.run(prog);
    EXPECT_EQ(machine.peek(0x1000), 111);
}

TEST(CoreBasic, BranchNotTakenFallsThrough)
{
    Machine machine;
    ProgramBuilder builder("brfall");
    RegId cond = builder.movImm(0);
    RegId val = builder.movImm(111);
    auto skip = builder.newLabel();
    builder.branch(cond, skip); // not taken
    builder.movImmTo(val, 222); // executed
    builder.bind(skip);
    builder.storeOrdered(0x1000, val, val);
    builder.halt();
    Program prog = builder.take();

    machine.run(prog);
    EXPECT_EQ(machine.peek(0x1000), 222);
}

TEST(CoreBasic, LoopExecutesCorrectIterationCount)
{
    Machine machine;
    ProgramBuilder builder("loop");
    RegId counter = builder.movImm(10);
    RegId sum = builder.movImm(0);
    auto top = builder.newLabel();
    builder.bind(top);
    builder.chainOpImm(Opcode::Add, sum, 3);
    builder.chainOpImm(Opcode::Sub, counter, 1);
    builder.branch(counter, top); // loop while counter != 0
    builder.storeOrdered(0x1000, sum, sum);
    builder.halt();
    Program prog = builder.take();

    RunResult result = machine.run(prog);
    EXPECT_EQ(machine.peek(0x1000), 30);
    EXPECT_GE(result.counters.branches, 10u);
}

TEST(CoreBasic, MispredictedBranchSquashesWrongPath)
{
    Machine machine;
    ProgramBuilder builder("squash");
    // Train taken 20 times, then flip: last iteration falls through.
    RegId counter = builder.movImm(20);
    auto top = builder.newLabel();
    builder.bind(top);
    builder.chainOpImm(Opcode::Sub, counter, 1);
    builder.branch(counter, top);
    builder.halt();
    Program prog = builder.take();

    RunResult result = machine.run(prog);
    EXPECT_TRUE(result.halted);
    // The loop-exit mispredict must have squashed something.
    EXPECT_GE(result.counters.mispredicts, 1u);
    EXPECT_GE(result.counters.squashedInstrs, 1u);
}

TEST(CoreBasic, TransientLoadFillsCacheAfterSquash)
{
    // The cornerstone of the P/A racing gadget: a load issued down a
    // mispredicted path still fills the cache.
    Machine machine;
    constexpr Addr kProbe = 0x4'0000;

    ProgramBuilder builder("transient");
    RegId counter = builder.newReg(); // initial value via run()
    RegId zero = builder.movImm(0);
    auto body_end = builder.newLabel();
    // Slow condition: a chain delays the branch resolution so the
    // transient body has time to issue its load.
    RegId slow = builder.opChain(Opcode::Add, 30, zero, 0);
    RegId cond = builder.binop(Opcode::Add, slow, counter);
    builder.branch(cond, body_end); // taken when counter != 0
    builder.loadAbsolute(kProbe);   // transient when counter == 0... no:
    builder.bind(body_end);
    builder.halt();
    Program prog = builder.take();

    // Train: counter = 1 -> branch taken, body skipped. The very first
    // run mispredicts (cold predictor defaults to not-taken) and touches
    // the probe transiently — itself evidence of transient fills — so
    // flush before checking the trained behaviour.
    for (int i = 0; i < 8; ++i)
        machine.run(prog, {{counter, 1}});
    machine.flushLine(kProbe);

    // Predicted taken + actually taken: the body is never even fetched.
    machine.run(prog, {{counter, 1}});
    EXPECT_EQ(machine.probeLevel(kProbe), 0)
        << "correctly-predicted taken branch must not touch the body";

    // And the transient direction: train not-taken, then take.
    Machine machine2;
    ProgramBuilder builder2("transient2");
    RegId counter2 = builder2.newReg();
    RegId zero2 = builder2.movImm(0);
    auto skip2 = builder2.newLabel();
    RegId slow2 = builder2.opChain(Opcode::Add, 30, zero2, 0);
    RegId cond2 = builder2.binop(Opcode::Add, slow2, counter2);
    builder2.branch(cond2, skip2); // taken when counter2 != 0
    builder2.loadAbsolute(kProbe); // fall-through body
    builder2.bind(skip2);
    builder2.halt();
    Program prog2 = builder2.take();

    // Train with counter2 = 0: not taken, body executes (touches probe).
    for (int i = 0; i < 8; ++i)
        machine2.run(prog2, {{counter2, 0}});
    machine2.flushLine(kProbe);
    ASSERT_EQ(machine2.probeLevel(kProbe), 0);

    // Attack with counter2 = 1: branch actually taken (skip body), but
    // predicted not-taken -> the body load issues transiently. Its fill
    // must persist after the squash.
    RunResult result = machine2.run(prog2, {{counter2, 1}});
    machine2.settle();
    EXPECT_GE(result.counters.mispredicts, 1u);
    EXPECT_NE(machine2.probeLevel(kProbe), 0)
        << "transient fill must survive the squash";
}

TEST(CoreBasic, StoreLoadForwarding)
{
    Machine machine;
    ProgramBuilder builder("fwd");
    RegId v = builder.movImm(77);
    builder.storeOrdered(0x9000, v, v);
    RegId r = builder.loadAbsolute(0x9000);
    builder.storeOrdered(0xa000, r, r);
    builder.halt();
    Program prog = builder.take();

    machine.run(prog);
    EXPECT_EQ(machine.peek(0xa000), 77);
}

TEST(CoreBasic, RunsAreTimedOnAMonotonicClock)
{
    Machine machine;
    ProgramBuilder builder("clock");
    RegId seed = builder.movImm(1);
    builder.opChain(Opcode::Add, 10, seed);
    builder.halt();
    Program prog = builder.take();

    RunResult r1 = machine.run(prog);
    RunResult r2 = machine.run(prog);
    EXPECT_GE(r2.startCycle, r1.endCycle);
    EXPECT_GT(r2.endCycle, r2.startCycle);
}

TEST(CoreBasic, DivIsNotFullyPipelined)
{
    // Dependent DIVs pay full latency; independent DIVs pay the
    // initiation interval. Both must exceed ADD throughput.
    Machine machine;
    ProgramBuilder builder("divchain");
    RegId seed = builder.movImm(1000000);
    builder.opChain(Opcode::Div, 20, seed, 1);
    builder.halt();
    Program chain = builder.take();
    RunResult chain_result = machine.run(chain);

    Machine machine2;
    ProgramBuilder builder2("divpar");
    RegId seed2 = builder2.movImm(1000000);
    for (int i = 0; i < 20; ++i)
        builder2.binopImm(Opcode::Div, seed2, 1);
    builder2.halt();
    Program par = builder2.take();
    RunResult par_result = machine2.run(par);

    const Cycle lat = machine.config().core.fpDiv.latency;
    const Cycle ii = machine.config().core.fpDiv.initInterval;
    EXPECT_GE(chain_result.cycles(), 20 * lat);
    EXPECT_GE(par_result.cycles(), 20 * ii);
    EXPECT_LT(par_result.cycles(), chain_result.cycles())
        << "independent divs should pipeline at the initiation interval";
}

} // namespace
} // namespace hr
