/**
 * @file
 * QIF engine tests: secret-domain enumeration (labels, base-state
 * overlay, explosion guard), observer-equivalence partitions on
 * degenerate domains (empty program, zero-influence secret,
 * singleton domain), bound monotonicity under domain widening, and
 * determinism of the capacity driver across worker counts.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/analyze.hh"
#include "analysis/capacity.hh"
#include "analysis/qif.hh"
#include "isa/program.hh"
#include "sim/profiles.hh"

namespace hr
{
namespace
{

/** The archetypal leaky target: load address = base + secret*64. */
ProgramTarget
indexedLoadTarget(std::vector<std::int64_t> values)
{
    ProgramTarget t;
    t.name = "t_indexed";
    ProgramBuilder b(t.name);
    const RegId secret = b.newReg();
    Instruction load;
    load.op = Opcode::Load;
    load.dst = b.newReg();
    load.src0 = secret;
    load.scale0 = 64;
    load.imm = 0x7100'0000;
    b.emit(load);
    b.halt();
    t.program = b.take();
    t.spec.regs = {secret};
    t.fastRegs = {{secret, 0}};
    t.slowRegs = {{secret, 1}};
    t.secretValues = std::move(values);
    return t;
}

// ---------------------------------------------------------------------
// Secret-domain enumeration.
// ---------------------------------------------------------------------

TEST(SecretDomain, TwoPolarityIsTheClassifierDomain)
{
    const SecretDomain domain = SecretDomain::twoPolarity();
    ASSERT_EQ(domain.size(), 2);
    EXPECT_EQ(domain.valuations[0].label, "fast");
    EXPECT_EQ(domain.valuations[1].label, "slow");
}

TEST(SecretDomain, EnumeratesCartesianOverRegsAndAddrs)
{
    TaintSpec spec;
    spec.regs = {static_cast<RegId>(3)};
    spec.addrs = {0x6400'0000};
    const SecretDomain domain =
        enumerateSpecDomain(spec, {0, 1, 2}, {{4, 99}});
    ASSERT_EQ(domain.size(), 9); // 3 values ^ 2 secrets
    // The public base assignment survives in every valuation.
    for (const SecretValuation &valuation : domain.valuations) {
        bool base_seen = false;
        for (const auto &[reg, value] : valuation.regs)
            base_seen |= reg == 4 && value == 99;
        EXPECT_TRUE(base_seen) << valuation.label;
        EXPECT_EQ(valuation.pokes.size(), 1u);
    }
    EXPECT_EQ(domain.valuations.front().label, "r3=0,m64000000=0");
}

TEST(SecretDomain, NoSecretsYieldsSingleBaseValuation)
{
    const SecretDomain domain = enumerateSpecDomain({}, {0, 1, 2});
    ASSERT_EQ(domain.size(), 1);
    EXPECT_EQ(domain.valuations.front().label, "base");
}

TEST(SecretDomain, RefusesCombinatorialExplosion)
{
    TaintSpec spec;
    for (int reg = 0; reg < 9; ++reg)
        spec.regs.push_back(static_cast<RegId>(reg));
    // 2^9 = 512 > kMaxValuations: must refuse, never truncate.
    EXPECT_THROW(enumerateSpecDomain(spec, {0, 1}), std::runtime_error);
}

// ---------------------------------------------------------------------
// Degenerate domains bound at exactly 0 bits.
// ---------------------------------------------------------------------

TEST(Capacity, EmptyProgramBoundsAtZero)
{
    ProgramTarget t;
    t.name = "t_empty";
    ProgramBuilder b(t.name);
    b.halt();
    t.program = b.take();
    const CapacityReport report = analyzeProgramCapacity(t, "default");
    ASSERT_EQ(report.status, "ok");
    EXPECT_EQ(report.bound.bits, 0.0);
    EXPECT_TRUE(report.bound.exact);
}

TEST(Capacity, ZeroInfluenceSecretBoundsAtExactlyZero)
{
    // Arithmetic-only mixing: the secret never reaches an address,
    // branch, or FU choice, so every valuation lands in one class.
    ProgramTarget t;
    t.name = "t_blind";
    ProgramBuilder b(t.name);
    const RegId secret = b.newReg();
    RegId acc = b.movImm(0x5a5a);
    acc = b.binop(Opcode::Xor, acc, secret);
    b.storeAbsolute(0x7200'0000, acc);
    b.halt();
    t.program = b.take();
    t.spec.regs = {secret};
    t.fastRegs = {{secret, 0}};
    t.slowRegs = {{secret, 1}};
    t.secretValues = {1, 2, 3, 4, 5, 6, 7, 8};
    const CapacityReport report = analyzeProgramCapacity(t, "default");
    ASSERT_EQ(report.status, "ok");
    EXPECT_EQ(report.bound.valuations, 8);
    EXPECT_EQ(report.bound.bits, 0.0);
    EXPECT_TRUE(report.bound.exact);
}

TEST(Capacity, SingleValuationDomainBoundsAtZero)
{
    const CapacityReport report =
        analyzeProgramCapacity(indexedLoadTarget({5}), "default");
    ASSERT_EQ(report.status, "ok");
    EXPECT_EQ(report.bound.valuations, 1);
    EXPECT_EQ(report.bound.bits, 0.0);
}

// ---------------------------------------------------------------------
// Monotonicity: widening the secret domain never shrinks the bound.
// ---------------------------------------------------------------------

TEST(Capacity, BoundMonotoneUnderDomainWidening)
{
    double previous = -1.0;
    for (const auto &values :
         {std::vector<std::int64_t>{0, 1},
          std::vector<std::int64_t>{0, 1, 2, 3},
          std::vector<std::int64_t>{0, 1, 2, 3, 4, 5, 6, 7}}) {
        const CapacityReport report =
            analyzeProgramCapacity(indexedLoadTarget(values), "default");
        ASSERT_EQ(report.status, "ok");
        EXPECT_GE(report.bound.bits, previous);
        previous = report.bound.bits;
    }
    // 8 distinguishable line choices = exactly 3 bits per trial.
    EXPECT_EQ(previous, 3.0);
}

// ---------------------------------------------------------------------
// boundCapacity on raw footprints.
// ---------------------------------------------------------------------

TEST(Capacity, WideningIsolatesApproximateValuations)
{
    const MachineConfig config = machineConfigForProfile("default");
    // Three identical exact footprints -> one class, 0 bits.
    std::vector<CacheFootprint> fps(3);
    for (CacheFootprint &fp : fps) {
        fp.fillsExact = true;
        fp.accessesExact = true;
    }
    CapacityBound bound = boundCapacity(fps, config);
    EXPECT_EQ(bound.jointClasses, 1);
    EXPECT_EQ(bound.bits, 0.0);
    EXPECT_TRUE(bound.exact);

    // Making one approximate isolates it: 2 classes, inexact bound.
    fps[1].fillsExact = false;
    fps[1].accessesExact = false;
    bound = boundCapacity(fps, config);
    EXPECT_EQ(bound.jointClasses, 2);
    EXPECT_FALSE(bound.exact);
}

// ---------------------------------------------------------------------
// Capacity driver determinism across worker counts.
// ---------------------------------------------------------------------

TEST(Capacity, DriverDeterministicAcrossJobs)
{
    AnalyzeOptions options;
    options.all = true;
    const auto render = [&](int jobs) {
        options.jobs = jobs;
        std::ostringstream os;
        printCapacityJson(os, runCapacityAnalysis(options));
        return os.str();
    };
    EXPECT_EQ(render(1), render(4));
}

} // namespace
} // namespace hr
