/**
 * @file
 * Core resource-limit and scheduling tests: ROB/IQ capacity, functional
 * unit contention, MSHR-limited memory parallelism, interrupts, and
 * store disambiguation — the knobs the gadgets lean on.
 */

#include <gtest/gtest.h>

#include "sim/machine.hh"

namespace hr
{
namespace
{

TEST(CoreWindow, RobLimitsMemoryLevelParallelism)
{
    // A stream of independent cold loads: a wide window keeps many
    // misses in flight; a tiny window serializes them.
    auto run_with_rob = [](int rob) {
        MachineConfig mc;
        mc.core.robSize = rob;
        mc.memory.l1Mshrs = 16;
        Machine machine(mc);
        ProgramBuilder builder("mlpwin");
        for (int i = 0; i < 16; ++i)
            builder.loadAbsolute(0x70'0000 + static_cast<Addr>(i) * 64);
        builder.halt();
        Program prog = builder.take();
        return machine.run(prog).cycles();
    };
    const Cycle small = run_with_rob(4);
    const Cycle large = run_with_rob(224);
    EXPECT_GT(small, 3 * large)
        << "a 4-entry window must serialize most of the misses";
}

TEST(CoreWindow, IqSmallerThanRobBindsIssue)
{
    MachineConfig mc;
    mc.core.robSize = 224;
    mc.core.iqSize = 8;
    Machine machine(mc);
    ProgramBuilder builder("iq");
    RegId sync = builder.loadAbsolute(0x100'0000);
    RegId r = builder.binopImm(Opcode::And, sync, 0);
    builder.opChain(Opcode::Add, 100, r, 1);
    builder.halt();
    Program prog = builder.take();
    RunResult result = machine.run(prog);
    EXPECT_TRUE(result.halted); // correctness under a tiny scheduler
}

TEST(CoreWindow, MulThroughputMatchesUnitCount)
{
    // 40 independent MULs on 1 unit (II=1, lat 3): ~40 cycles.
    Machine machine;
    ProgramBuilder builder("mulpar");
    RegId seed = builder.movImm(3);
    for (int i = 0; i < 40; ++i)
        builder.binopImm(Opcode::Mul, seed, 3);
    builder.halt();
    Program prog = builder.take();
    const Cycle t = machine.run(prog).cycles();
    EXPECT_GE(t, 40u);
    EXPECT_LE(t, 70u);
}

TEST(CoreWindow, DividerInitiationIntervalSerializesBursts)
{
    // 8 independent DIVs, II = 4: >= 4*7 + latency cycles.
    Machine machine;
    ProgramBuilder builder("divburst");
    RegId seed = builder.movImm(1 << 20);
    for (int i = 0; i < 8; ++i)
        builder.binopImm(Opcode::Div, seed, 1);
    builder.halt();
    Program prog = builder.take();
    const auto &fu = machine.config().core.fpDiv;
    const Cycle t = machine.run(prog).cycles();
    EXPECT_GE(t, 7 * fu.initInterval + fu.latency);
}

TEST(CoreWindow, LoadPortsBoundMemoryIssueRate)
{
    // 64 independent warm loads over 2 ports: >= 32 cycles.
    Machine machine;
    for (int i = 0; i < 64; ++i)
        machine.warm(0x8000 + static_cast<Addr>(i) * 64, 1);
    ProgramBuilder builder("ports");
    for (int i = 0; i < 64; ++i)
        builder.loadAbsolute(0x8000 + static_cast<Addr>(i) * 64);
    builder.halt();
    Program prog = builder.take();
    EXPECT_GE(machine.run(prog).cycles(), 32u);
}

TEST(CoreWindow, MshrsBoundMemoryLevelParallelism)
{
    // 20 independent cold loads: with 10 MSHRs they take >= 2 memory
    // round trips; with 20 they overlap into ~1.
    auto run_with_mshrs = [](int mshrs) {
        MachineConfig mc;
        mc.memory.l1Mshrs = mshrs;
        Machine machine(mc);
        ProgramBuilder builder("mlp");
        for (int i = 0; i < 20; ++i)
            builder.loadAbsolute(0x70'0000 + static_cast<Addr>(i) * 64);
        builder.halt();
        Program prog = builder.take();
        return machine.run(prog).cycles();
    };
    const Cycle narrow = run_with_mshrs(10);
    const Cycle wide = run_with_mshrs(20);
    const Cycle mem = MachineConfig().memory.memLatency;
    EXPECT_GE(narrow, 2 * mem);
    EXPECT_LT(wide, 2 * mem);
}

TEST(CoreWindow, InterruptDrainsAndCharges)
{
    MachineConfig mc;
    mc.core.interruptInterval = 5000;
    mc.core.interruptOverhead = 1000;
    Machine machine(mc);
    ProgramBuilder builder("ticks");
    RegId counter = builder.movImm(20000);
    auto top = builder.newLabel();
    builder.bind(top);
    builder.chainOpImm(Opcode::Sub, counter, 1);
    builder.branch(counter, top);
    builder.halt();
    Program prog = builder.take();
    RunResult result = machine.run(prog);
    EXPECT_GE(result.counters.interrupts, 2u);
    // Each interrupt charges its overhead.
    EXPECT_GE(result.cycles(),
              result.counters.interrupts * 1000u + 20000u);
}

TEST(CoreWindow, OldestFirstAndFcfsBothExecuteCorrectly)
{
    for (bool fcfs : {false, true}) {
        MachineConfig mc;
        mc.core.readyOrderIssue = fcfs;
        Machine machine(mc);
        ProgramBuilder builder("arb");
        RegId a = builder.movImm(5);
        RegId b = builder.movImm(7);
        RegId c = builder.binop(Opcode::Mul, a, b);
        RegId d = builder.binopImm(Opcode::Div, c, 5);
        builder.storeOrdered(0x100, d, d);
        builder.halt();
        Program prog = builder.take();
        machine.run(prog);
        EXPECT_EQ(machine.peek(0x100), 7) << "fcfs=" << fcfs;
    }
}

TEST(CoreWindow, StoreAddressResolvesBeforeData)
{
    // A store whose data arrives late (long chain) but whose address
    // is immediate must not block an independent younger load.
    Machine machine;
    machine.poke(0x9000, 1);
    machine.warm(0x9000, 1);
    ProgramBuilder builder("sta_std");
    RegId seed = builder.movImm(1);
    RegId slow = builder.opChain(Opcode::Mul, 30, seed, 1); // ~90 cyc
    builder.storeOrdered(0x8000, slow, slow); // data late, EA static
    RegId fast = builder.loadAbsolute(0x9000); // different address
    RegId probe = builder.binopImm(Opcode::Add, fast, 1);
    builder.storeOrdered(0xa000, probe, slow); // after everything
    builder.halt();
    Program prog = builder.take();
    const Cycle t = machine.run(prog).cycles();
    // The program is ~90 cycles of MULs plus pipeline overheads; it
    // must stay chain-bound (no spurious memory-ordering stall).
    EXPECT_LE(t, 250u);
    EXPECT_EQ(machine.peek(0xa000), 2);
}

TEST(CoreWindow, LoadWaitsForAliasingStoreData)
{
    Machine machine;
    ProgramBuilder builder("alias");
    RegId seed = builder.movImm(1);
    RegId slow = builder.opChain(Opcode::Add, 50, seed, 1); // value 51
    builder.storeOrdered(0xb000, slow, slow);
    RegId loaded = builder.loadAbsolute(0xb000); // same word!
    builder.storeOrdered(0xc000, loaded, loaded);
    builder.halt();
    Program prog = builder.take();
    machine.run(prog);
    EXPECT_EQ(machine.peek(0xc000), 51)
        << "load must forward the in-flight store's data";
}

TEST(CoreWindow, SquashRestoresRenameState)
{
    // A mispredicted branch with wrong-path writes to the same
    // register must not corrupt the correct path's value.
    Machine machine;
    ProgramBuilder builder("rename");
    RegId v = builder.movImm(10);
    RegId counter = builder.movImm(6);
    auto top = builder.newLabel();
    builder.bind(top);
    builder.chainOpImm(Opcode::Sub, counter, 1);
    builder.branch(counter, top); // mispredicts at loop exit
    builder.chainOpImm(Opcode::Add, v, 1); // only after the loop
    builder.storeOrdered(0xd000, v, v);
    builder.halt();
    Program prog = builder.take();
    machine.run(prog);
    EXPECT_EQ(machine.peek(0xd000), 11);
}

TEST(CoreWindow, DeepSpeculationNestsAndRecovers)
{
    // Several dependent branches in flight at once; the oldest
    // mispredict must squash all younger work and refetch correctly.
    Machine machine;
    ProgramBuilder builder("nest");
    RegId sync = builder.loadAbsolute(0x100'0000); // slow condition base
    RegId cond = builder.binopImm(Opcode::And, sync, 0); // 0: not taken
    RegId acc = builder.movImm(0);
    auto l1 = builder.newLabel();
    auto l2 = builder.newLabel();
    builder.branch(cond, l1); // not taken
    builder.chainOpImm(Opcode::Add, acc, 1);
    builder.bind(l1);
    builder.branch(cond, l2); // not taken
    builder.chainOpImm(Opcode::Add, acc, 10);
    builder.bind(l2);
    builder.storeOrdered(0xe000, acc, acc);
    builder.halt();
    Program prog = builder.take();
    machine.flushLine(0x100'0000);
    machine.run(prog);
    EXPECT_EQ(machine.peek(0xe000), 11);
}

// Architectural-equivalence fuzz: random branch-free programs must
// produce identical memory results across wildly different
// microarchitectures (the out-of-order engine is invisible).
class ArchEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(ArchEquivalence, RandomProgramsMatchAcrossConfigs)
{
    const int seed = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed));

    ProgramBuilder builder("fuzz");
    std::vector<RegId> regs;
    for (int i = 0; i < 4; ++i)
        regs.push_back(builder.movImm(rng.range(1, 100)));
    const Opcode ops[] = {Opcode::Add, Opcode::Sub, Opcode::Mul,
                          Opcode::Div, Opcode::And, Opcode::Or,
                          Opcode::Xor, Opcode::Shl, Opcode::Shr};
    for (int i = 0; i < 120; ++i) {
        const Opcode op = ops[rng.below(std::size(ops))];
        const RegId a = regs[rng.below(regs.size())];
        const RegId b = regs[rng.below(regs.size())];
        if (rng.chance(0.5))
            regs.push_back(builder.binop(op, a, b));
        else
            regs.push_back(builder.binopImm(op, a, rng.range(1, 7)));
        if (rng.chance(0.2)) {
            builder.storeOrdered(
                0x5000 + static_cast<Addr>(rng.below(32)) * 8,
                regs.back(), regs.back());
        }
        if (rng.chance(0.2)) {
            regs.push_back(builder.loadAbsolute(
                0x5000 + static_cast<Addr>(rng.below(32)) * 8));
        }
    }
    builder.storeOrdered(0x6000, regs.back(), regs.back());
    builder.halt();
    Program prog = builder.take();

    auto run_config = [&](MachineConfig mc) {
        Machine machine(mc);
        Program copy = prog;
        copy.id = 0;
        machine.run(copy);
        std::vector<std::int64_t> words;
        for (int i = 0; i < 32; ++i)
            words.push_back(machine.peek(0x5000 + i * 8));
        words.push_back(machine.peek(0x6000));
        return words;
    };

    MachineConfig wide;
    MachineConfig narrow;
    narrow.core.robSize = 8;
    narrow.core.issueWidth = 1;
    narrow.core.fetchWidth = 1;
    narrow.core.intAlu.count = 1;
    narrow.core.readyOrderIssue = false;
    MachineConfig tiny_mem;
    tiny_mem.memory.l1Mshrs = 1;
    tiny_mem.memory.l1.numSets = 2;
    tiny_mem.memory.l1.assoc = 2;

    const auto a = run_config(wide);
    EXPECT_EQ(a, run_config(narrow));
    EXPECT_EQ(a, run_config(tiny_mem));
}

INSTANTIATE_TEST_SUITE_P(Fuzz, ArchEquivalence,
                         ::testing::Range(0, 12));

} // namespace
} // namespace hr
