/**
 * @file
 * ISA and ProgramBuilder unit tests: encoding helpers, labels,
 * interleaving, disassembly, and the path-embedding contract.
 */

#include <gtest/gtest.h>

#include "gadgets/path.hh"
#include "isa/program.hh"
#include "sim/machine.hh"

namespace hr
{
namespace
{

TEST(Opcodes, FuClassMapping)
{
    EXPECT_EQ(fuClassOf(Opcode::Add), FuClass::IntAlu);
    EXPECT_EQ(fuClassOf(Opcode::Mul), FuClass::IntMul);
    EXPECT_EQ(fuClassOf(Opcode::Div), FuClass::FpDiv);
    EXPECT_EQ(fuClassOf(Opcode::Load), FuClass::MemRead);
    EXPECT_EQ(fuClassOf(Opcode::Prefetch), FuClass::MemRead);
    EXPECT_EQ(fuClassOf(Opcode::Store), FuClass::MemWrite);
    EXPECT_EQ(fuClassOf(Opcode::Branch), FuClass::BranchU);
    EXPECT_TRUE(isMemOp(Opcode::Load));
    EXPECT_TRUE(isMemOp(Opcode::Prefetch));
    EXPECT_FALSE(isMemOp(Opcode::Add));
    EXPECT_TRUE(isControlOp(Opcode::Jump));
    EXPECT_FALSE(isControlOp(Opcode::Halt));
}

TEST(Builder, TracksRegisterCount)
{
    ProgramBuilder builder;
    RegId a = builder.newReg();
    RegId b = builder.movImm(1);
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 1);
    builder.halt();
    Program prog = builder.take();
    EXPECT_EQ(prog.numRegs, 2u);
}

TEST(Builder, LabelsPatchForwardAndBackward)
{
    ProgramBuilder builder;
    RegId c = builder.movImm(1);
    auto back = builder.newLabel();
    builder.bind(back);
    auto fwd = builder.newLabel();
    builder.branch(c, fwd);        // forward reference
    builder.jump(back);            // backward reference
    builder.bind(fwd);
    builder.halt();
    Program prog = builder.take();
    EXPECT_EQ(prog.code[1].target, 3); // branch -> halt
    EXPECT_EQ(prog.code[2].target, 1); // jump -> branch
}

TEST(Builder, UnboundLabelPanics)
{
    ProgramBuilder builder;
    RegId c = builder.movImm(1);
    auto label = builder.newLabel();
    builder.branch(c, label);
    EXPECT_DEATH(builder.take(), "label never bound");
}

TEST(Builder, InterleavePreservesOrderWithinEachPath)
{
    ProgramBuilder builder;
    SeqBuilder a(builder), b(builder);
    RegId ra = builder.newReg(), rb = builder.newReg();
    for (int i = 0; i < 10; ++i)
        a.chainOpImm(Opcode::Add, ra, i);
    for (int i = 0; i < 5; ++i)
        b.chainOpImm(Opcode::Sub, rb, i);
    builder.appendInterleaved({a.take(), b.take()});
    Program prog = builder.take();

    ASSERT_EQ(prog.size(), 15u);
    std::vector<std::int64_t> adds, subs;
    for (const auto &inst : prog.code) {
        if (inst.op == Opcode::Add)
            adds.push_back(inst.imm);
        else
            subs.push_back(inst.imm);
    }
    EXPECT_EQ(adds, (std::vector<std::int64_t>{0,1,2,3,4,5,6,7,8,9}));
    EXPECT_EQ(subs, (std::vector<std::int64_t>{0,1,2,3,4}));
    // Proportional: the shorter path must not be bunched at one end.
    EXPECT_EQ(prog.code[0].op, Opcode::Add);
    EXPECT_EQ(prog.code[1].op, Opcode::Sub);
}

TEST(Builder, DisassemblyIsReadable)
{
    ProgramBuilder builder;
    RegId r = builder.movImm(7);
    builder.loadOrdered(0x1000, r);
    builder.halt();
    Program prog = builder.take();
    const std::string text = prog.disassemble();
    EXPECT_NE(text.find("movimm r0 = 7"), std::string::npos);
    EXPECT_NE(text.find("load r1 = [0x1000 + r0*0 + -*1]"),
              std::string::npos);
    EXPECT_NE(text.find("halt"), std::string::npos);
}

TEST(Builder, UseAfterTakePanics)
{
    ProgramBuilder builder;
    builder.halt();
    builder.take();
    EXPECT_DEATH(builder.halt(), "after take");
}

TEST(PathEmbedding, TerminatorIsZeroAndOrdered)
{
    // The embedding contract: terminator value is 0, and it completes
    // only after the expression (checked by timing a slow expression).
    Machine machine;
    ProgramBuilder builder("embed");
    RegId head = builder.movImm(1234);
    SeqBuilder seq(builder);
    RegId term = embedExpression(seq, head,
                                 TargetExpr::opChain(Opcode::Add, 50));
    builder.appendInterleaved({seq.take()});
    // Store the terminator so we can check its architectural value.
    builder.storeOrdered(0x100, term, term);
    builder.halt();
    Program prog = builder.take();
    RunResult result = machine.run(prog);
    EXPECT_EQ(machine.peek(0x100), 0);
    EXPECT_GE(result.cycles(), 50u) << "embedding must not skip work";
}

TEST(PathEmbedding, LoadChainChasesAllAddresses)
{
    Machine machine;
    ProgramBuilder builder("chain_expr");
    RegId head = builder.movImm(0);
    SeqBuilder seq(builder);
    embedExpression(seq, head,
                    TargetExpr::loadChain({0x1000, 0x2000, 0x3000}));
    builder.appendInterleaved({seq.take()});
    builder.halt();
    Program prog = builder.take();
    machine.run(prog);
    machine.settle();
    EXPECT_NE(machine.probeLevel(0x1000), 0);
    EXPECT_NE(machine.probeLevel(0x2000), 0);
    EXPECT_NE(machine.probeLevel(0x3000), 0);
}

TEST(PathEmbedding, EmptyExpressionIsCheap)
{
    Machine machine;
    ProgramBuilder builder("empty");
    RegId head = builder.movImm(0);
    SeqBuilder seq(builder);
    embedExpression(seq, head, TargetExpr::empty());
    builder.appendInterleaved({seq.take()});
    builder.halt();
    Program prog = builder.take();
    EXPECT_LT(machine.run(prog).cycles(), 30u);
}

TEST(Programs, RdtscReadsTheClock)
{
    Machine machine;
    ProgramBuilder builder("rdtsc");
    Instruction ts;
    ts.op = Opcode::Rdtsc;
    ts.dst = builder.newReg();
    builder.emit(ts);
    builder.storeOrdered(0x100, ts.dst, ts.dst);
    builder.halt();
    Program prog = builder.take();
    machine.run(prog);
    const std::int64_t t1 = machine.peek(0x100);
    machine.run(prog);
    const std::int64_t t2 = machine.peek(0x100);
    EXPECT_GT(t2, t1);
}

} // namespace
} // namespace hr
