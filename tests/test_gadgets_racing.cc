/**
 * @file
 * Racing-gadget tests (paper section 5): the transient P/A gadget must
 * convert "expression longer/shorter than baseline" into probe
 * presence/absence, and the reorder gadget into fill order.
 */

#include <gtest/gtest.h>

#include "gadgets/racing.hh"

namespace hr
{
namespace
{

TEST(TransientPaRace, ShortExprLosesRace)
{
    // Expression much shorter than the baseline: the branch resolves
    // before the transient body reaches the probe access -> absent.
    Machine machine;
    TransientPaRaceConfig config;
    config.refOps = 60;
    TransientPaRace race(machine, config,
                         TargetExpr::opChain(Opcode::Add, 5));
    race.train();
    EXPECT_FALSE(race.attackAndProbe())
        << "short expression must not leave the probe in the cache";
}

TEST(TransientPaRace, LongExprWinsRace)
{
    Machine machine;
    TransientPaRaceConfig config;
    config.refOps = 20;
    TransientPaRace race(machine, config,
                         TargetExpr::opChain(Opcode::Add, 80));
    race.train();
    EXPECT_TRUE(race.attackAndProbe())
        << "long expression must leave the probe in the cache";
}

TEST(TransientPaRace, ThresholdIsMonotonic)
{
    // For a fixed baseline, sweeping the expression length must flip
    // from absent to present exactly once (monotone race outcome).
    Machine machine;
    TransientPaRaceConfig config;
    config.refOps = 40;

    int first_present = -1;
    for (int n = 5; n <= 90; n += 5) {
        TransientPaRace race(machine, config,
                             TargetExpr::opChain(Opcode::Add, n));
        race.train();
        const bool present = race.attackAndProbe();
        if (present && first_present < 0)
            first_present = n;
        if (first_present >= 0) {
            EXPECT_TRUE(present)
                << "non-monotonic race outcome at n=" << n;
        }
    }
    ASSERT_GT(first_present, 0) << "race never flipped to present";
    // The flip should occur in the vicinity of refOps (same op class).
    EXPECT_NEAR(first_present, config.refOps, 20);
}

TEST(TransientPaRace, MulBaselineExtendsThreshold)
{
    // MUL baseline ops are ~3x ADD latency: an expression of k ADDs
    // should race about 3k/3 = k MULs. Check a 60-add expr beats a
    // 10-mul baseline (60 > 30 cycles) but loses to a 40-mul baseline.
    Machine machine;
    TransientPaRaceConfig config;
    config.refOp = Opcode::Mul;

    config.refOps = 10;
    TransientPaRace fast_base(machine, config,
                              TargetExpr::opChain(Opcode::Add, 60));
    fast_base.train();
    EXPECT_TRUE(fast_base.attackAndProbe());

    config.refOps = 40;
    TransientPaRace slow_base(machine, config,
                              TargetExpr::opChain(Opcode::Add, 60));
    slow_base.train();
    EXPECT_FALSE(slow_base.attackAndProbe());
}

TEST(TransientPaRace, DistinguishesCacheHitFromMiss)
{
    // The timer primitive of section 7.4: a reference path between the
    // L1 hit time and the memory miss time classifies a load.
    Machine machine;
    constexpr Addr kTarget = 0x500'0000;
    TransientPaRaceConfig config;
    config.refOp = Opcode::Mul;
    config.refOps = 12; // ~36 cycles: between L1 hit (4) and miss (210+)
    TransientPaRace race(machine, config,
                         TargetExpr::loadLatency(kTarget));

    machine.warm(kTarget, 1);
    race.train();
    machine.warm(kTarget, 1); // training polluted nothing, but be sure
    EXPECT_FALSE(race.attackAndProbe()) << "L1 hit should lose the race";

    race.train();
    machine.flushLine(kTarget);
    EXPECT_TRUE(race.attackAndProbe()) << "miss should win the race";
}

TEST(TransientPaRace, IndirectArgumentCarriesAddress)
{
    Machine machine;
    constexpr Addr kHot = 0x500'0000;
    constexpr Addr kCold = 0x600'0000;
    TransientPaRaceConfig config;
    config.refOp = Opcode::Mul;
    config.refOps = 12;
    TransientPaRace race(machine, config,
                         TargetExpr::loadIndirect(TransientPaRace::kArgReg));

    machine.warm(kHot, 1);
    race.train(static_cast<std::int64_t>(kHot));
    machine.warm(kHot, 1);
    EXPECT_FALSE(race.attackAndProbe(static_cast<std::int64_t>(kHot)));

    race.train(static_cast<std::int64_t>(kHot));
    machine.flushLine(kCold);
    EXPECT_TRUE(race.attackAndProbe(static_cast<std::int64_t>(kCold)));
}

TEST(TransientPaRace, RobBoundsTheBaselineLength)
{
    // Section 7.2: the reorder-buffer capacity caps how long a baseline
    // path can be and still fit in the transient window. With a
    // baseline far larger than the ROB, the probe access cannot even
    // dispatch before the squash, so the probe stays absent even for an
    // extremely slow expression.
    MachineConfig mc = MachineConfig::effectiveWindowProfile(); // ROB 64
    Machine machine(mc);
    TransientPaRaceConfig config;
    config.refOps = 300; // far beyond the 64-entry window
    TransientPaRace race(machine, config,
                         TargetExpr::opChain(Opcode::Add, 2000));
    race.train();
    EXPECT_FALSE(race.attackAndProbe())
        << "baseline beyond the ROB window can never reach the probe";
}

TEST(ReorderRace, CompletionOrderBecomesFillOrder)
{
    // Prime nothing: A and B both cold. After the race, the L1 set
    // holds both; which was inserted first is visible through the
    // replacement state (here we check via eviction candidate motion
    // in a 2-line probe: instead, use fill stats ordering indirectly by
    // checking both lines landed).
    Machine machine(MachineConfig::plruProfile());
    ReorderRaceConfig config;
    config.addrA = 0x500'0000;
    config.addrB = 0x500'2000; // 8 KB apart: same L1 set (128 sets x 64B)
    config.refOps = 30;
    ReorderRace race(machine, config,
                     TargetExpr::opChain(Opcode::Add, 5));
    race.run();
    machine.settle();
    EXPECT_NE(machine.probeLevel(config.addrA), 0);
    EXPECT_NE(machine.probeLevel(config.addrB), 0);
}

TEST(ReorderRace, NoBranchesNoMispredicts)
{
    // The defining property of section 5.2: no speculation whatsoever.
    Machine machine;
    ReorderRaceConfig config;
    config.addrA = 0x500'0000;
    config.addrB = 0x501'0000;
    config.refOps = 30;
    ReorderRace race(machine, config,
                     TargetExpr::opChain(Opcode::Add, 50));
    RunResult result = race.run();
    EXPECT_EQ(result.counters.mispredicts, 0u);
    EXPECT_EQ(result.counters.squashedInstrs, 0u);
    EXPECT_EQ(result.counters.branches, 0u);
}

} // namespace
} // namespace hr
