/**
 * @file
 * Static leakage analyzer tests: taint round-trips on hand-built
 * programs with known verdicts, footprint-vs-dynamic agreement across
 * every machine profile, determinism of the analyze driver across
 * worker counts, and the unknown-name suggestion contract.
 */

#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <stdexcept>

#include "analysis/analyze.hh"
#include "analysis/capacity.hh"
#include "analysis/leakage.hh"
#include "channel/channel.hh"
#include "channel/channel_registry.hh"
#include "exp/perf.hh"
#include "isa/program.hh"
#include "sim/machine.hh"
#include "sim/profiles.hh"

namespace hr
{
namespace
{

std::string
messageOf(const std::function<void()> &action)
{
    try {
        action();
    } catch (const std::runtime_error &e) {
        return e.what();
    }
    return "";
}

bool
hasFinding(const TaintReport &report, LeakKind kind)
{
    for (const TaintFinding &finding : report.findings)
        if (finding.kind == kind)
            return true;
    return false;
}

// ---------------------------------------------------------------------
// Taint round-trips: known-leaky and known-clean programs.
// ---------------------------------------------------------------------

TEST(Taint, SecretIndexedLoadIsFlagged)
{
    ProgramBuilder b("t");
    const RegId secret = b.newReg();
    Instruction load;
    load.op = Opcode::Load;
    load.dst = b.newReg();
    load.src0 = secret;
    load.scale0 = 64;
    load.imm = 0x1000;
    b.emit(load);
    b.halt();
    const Program program = b.take();

    TaintSpec spec;
    spec.regs = {secret};
    const TaintReport report =
        analyzeTaint(*decodeProgram(program), spec);
    EXPECT_FALSE(report.constantTime());
    EXPECT_TRUE(hasFinding(report, LeakKind::Address));
}

TEST(Taint, ArithmeticOnlyIsConstantTime)
{
    // The secret flows through every ALU class and is stored to a
    // fixed address: no secret-dependent address, branch, or FU mix.
    ProgramBuilder b("t");
    const RegId secret = b.newReg();
    RegId acc = b.binop(Opcode::Add, secret, b.movImm(123));
    acc = b.binop(Opcode::Xor, acc, secret);
    b.chainOpImm(Opcode::Mul, acc, 7);
    b.chainOpImm(Opcode::Div, acc, 3);
    b.chainOpImm(Opcode::Shr, acc, 2);
    b.storeAbsolute(0x2000, acc);
    b.halt();
    const Program program = b.take();

    TaintSpec spec;
    spec.regs = {secret};
    const TaintReport report =
        analyzeTaint(*decodeProgram(program), spec);
    EXPECT_TRUE(report.constantTime()) << "findings: "
                                       << report.findings.size();
}

TEST(Taint, SecretBranchFlagsControlFlow)
{
    ProgramBuilder b("t");
    const RegId secret = b.newReg();
    const std::int32_t slow = b.newLabel();
    const std::int32_t done = b.newLabel();
    b.branch(secret, slow);
    b.loadAbsolute(0x3000);
    b.jump(done);
    b.bind(slow);
    const RegId d = b.movImm(100);
    b.chainOpImm(Opcode::Div, d, 3);
    b.bind(done);
    b.halt();
    const Program program = b.take();

    TaintSpec spec;
    spec.regs = {secret};
    const TaintReport report =
        analyzeTaint(*decodeProgram(program), spec);
    EXPECT_TRUE(hasFinding(report, LeakKind::Branch));
    EXPECT_TRUE(hasFinding(report, LeakKind::ControlMem));
    EXPECT_TRUE(hasFinding(report, LeakKind::ControlFu));
}

TEST(Taint, MemorySecretPropagatesThroughLoad)
{
    // The secret lives at a marked address; the loaded value indexes
    // a second load.
    ProgramBuilder b("t");
    const RegId key = b.loadAbsolute(0x4000);
    Instruction load;
    load.op = Opcode::Load;
    load.dst = b.newReg();
    load.src0 = key;
    load.scale0 = 64;
    load.imm = 0x5000;
    b.emit(load);
    b.halt();
    const Program program = b.take();

    TaintSpec spec;
    spec.addrs = {0x4000};
    const TaintReport report =
        analyzeTaint(*decodeProgram(program), spec);
    EXPECT_TRUE(hasFinding(report, LeakKind::Address));
}

TEST(Taint, OrderingOnlyDependenceDoesNotTaint)
{
    // scale0 = 0 is an ordering-only edge in the ISA: the operand's
    // value (and hence its taint) must not reach the address.
    ProgramBuilder b("t");
    const RegId secret = b.newReg();
    Instruction load;
    load.op = Opcode::Load;
    load.dst = b.newReg();
    load.src0 = secret;
    load.scale0 = 0;
    load.imm = 0x6000;
    b.emit(load);
    b.halt();
    const Program program = b.take();

    TaintSpec spec;
    spec.regs = {secret};
    const TaintReport report =
        analyzeTaint(*decodeProgram(program), spec);
    EXPECT_TRUE(report.constantTime());
}

// ---------------------------------------------------------------------
// The built-in demo corpus round-trips through the full pipeline
// (taint + differential + dynamic cross-validation).
// ---------------------------------------------------------------------

TEST(Analysis, DemoCorpusVerdictsAndValidation)
{
    MachinePool pool(machineConfigForProfile("default"));
    for (const ProgramTarget &target : programTargets()) {
        const LeakageReport report =
            analyzeProgramTarget(target, "default", &pool);
        EXPECT_EQ(report.status, "ok") << target.name;
        EXPECT_TRUE(report.validation.ran) << target.name;
        EXPECT_TRUE(report.validation.passed)
            << target.name << ": "
            << (report.validation.failures.empty()
                    ? ""
                    : report.validation.failures.front());
        const bool expect_clean =
            target.name.rfind("clean_", 0) == 0;
        EXPECT_EQ(report.constantTime, expect_clean) << target.name;
    }
}

// ---------------------------------------------------------------------
// Footprint model vs the real machine, on every registered profile.
// ---------------------------------------------------------------------

TEST(Analysis, FootprintMatchesDynamicOnEveryProfile)
{
    for (const MachineProfile &profile : machineProfiles()) {
        const MachineConfig config =
            machineConfigForProfile(profile.name);

        // Branch-free pointer chase over poked words + disjoint
        // stores: statically fully resolved, so the model must be
        // exact on fills and accesses.
        ProgramBuilder b("chase");
        RegId p = b.movImm(0x9000'0000);
        for (int hop = 0; hop < 4; ++hop)
            p = b.loadPointer(p);
        b.storeAbsolute(0x9100'0000, p);
        b.storeAbsolute(0x9100'0040, p);
        b.halt();
        Program program = b.take();

        const std::map<Addr, std::int64_t> pokes = {
            {0x9000'0000, 0x9000'1000},
            {0x9000'1000, 0x9000'2000},
            {0x9000'2000, 0x9000'3000},
            {0x9000'3000, 0x9000'4000},
        };

        FootprintBuilder builder(config);
        builder.addProgram(
            interpretProgram(*decodeProgram(program), {}, pokes));
        const CacheFootprint fp = builder.finish();
        ASSERT_TRUE(fp.accessesExact) << profile.name;
        ASSERT_TRUE(fp.fillsExact) << profile.name;

        Machine machine(config);
        for (const auto &[addr, value] : pokes)
            machine.poke(addr, value);
        machine.run(program);
        machine.settle();
        std::uint64_t accesses = 0, fills = 0;
        for (int c = 0; c < machine.contexts(); ++c) {
            const ContextAccessStats stats =
                machine.contextStats(static_cast<ContextId>(c));
            accesses += stats.hits[0] + stats.misses;
            fills += stats.fills;
        }
        EXPECT_EQ(accesses, fp.memOps) << profile.name;
        EXPECT_EQ(fills, fp.predictedFills) << profile.name;
    }
}

// ---------------------------------------------------------------------
// The analyze driver is deterministic across worker counts.
// ---------------------------------------------------------------------

TEST(Analysis, DriverDeterministicAcrossJobs)
{
    AnalyzeOptions options;
    options.targets = {"repetition", "coarse_timer",
                       "secret_indexed_load", "clean_arith"};
    options.validate = false;

    std::string renders[2];
    const int jobs[2] = {1, 4};
    for (int i = 0; i < 2; ++i) {
        options.jobs = jobs[i];
        std::ostringstream os;
        printReportJson(os, runAnalysis(options));
        renders[i] = os.str();
    }
    EXPECT_EQ(renders[0], renders[1]);
    EXPECT_NE(renders[0].find("\"leak_class\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Capacity soundness regression: measured per-symbol MI never exceeds
// the static QIF bound, and the bound is tight for several channels
// (the ISSUE 8 acceptance bar, same math as the
// fig_capacity_bound_vs_measured scenario).
// ---------------------------------------------------------------------

TEST(Analysis, CapacityBoundsMeasuredShannonMi)
{
    const char *profile = "smt2_plru";
    const MachineConfig config = machineConfigForProfile(profile);
    int measured = 0;
    int tight = 0;
    for (const ChannelInfo *info : ChannelRegistry::instance().all()) {
        const CapacityReport report =
            analyzeChannelCapacity(info->name, profile, {});
        ASSERT_EQ(report.status, "ok") << info->name;

        Machine machine(config);
        Channel channel(
            ChannelRegistry::instance().makeConfig(info->name, {}));
        if (!channel.compatible(machine))
            continue;
        channel.prepare(machine);
        std::vector<bool> symbols;
        for (int i = 0; i < 64; ++i)
            symbols.push_back(i % 2 == 1);
        const ChannelStats stats =
            channel.measureSymbols(machine, symbols);
        const double mi = stats.shannonBitsPerSymbol();
        EXPECT_LE(mi, report.bound.bits + 1e-9) << info->name;
        ++measured;
        tight += report.bound.bits - mi <= 1.0 ? 1 : 0;
    }
    EXPECT_EQ(measured,
              static_cast<int>(ChannelRegistry::instance().all().size()));
    EXPECT_GE(tight, 3);
}

// ---------------------------------------------------------------------
// Unknown names fail with edit-distance suggestions everywhere.
// ---------------------------------------------------------------------

TEST(Analysis, UnknownTargetSuggests)
{
    AnalyzeOptions options;
    options.targets = {"secret_indexed_loda"};
    const std::string message =
        messageOf([&] { runAnalysis(options); });
    EXPECT_NE(message.find("unknown target"), std::string::npos)
        << message;
    EXPECT_NE(message.find("secret_indexed_load"), std::string::npos)
        << message;
}

TEST(Analysis, UnknownProfileSuggests)
{
    const std::string message =
        messageOf([] { machineConfigForProfile("smt_2"); });
    EXPECT_NE(message.find("unknown machine profile"),
              std::string::npos)
        << message;
    EXPECT_NE(message.find("did you mean 'smt2'"), std::string::npos)
        << message;
}

TEST(Analysis, UnknownPerfSuiteSuggests)
{
    PerfOptions options;
    options.only = {"host_sped"};
    const std::string message =
        messageOf([&] { runPerfSuites(options); });
    EXPECT_NE(message.find("unknown suite"), std::string::npos)
        << message;
    EXPECT_NE(message.find("did you mean 'host_speed'"),
              std::string::npos)
        << message;
}

} // namespace
} // namespace hr
