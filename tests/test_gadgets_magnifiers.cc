/**
 * @file
 * Magnifier-gadget tests (paper section 6): each magnifier must turn a
 * one-shot state difference into a large, repeat-scalable timing
 * difference.
 */

#include <gtest/gtest.h>

#include "gadgets/arbitrary_magnifier.hh"
#include "gadgets/arith_magnifier.hh"
#include "gadgets/plru_magnifier.hh"
#include "gadgets/plru_pattern.hh"
#include "gadgets/racing.hh"

namespace hr
{
namespace
{

class PlruMagnifierTest : public ::testing::Test
{
  protected:
    PlruMagnifierTest() : machine_(MachineConfig::plruProfile()) {}

    Machine machine_;
};

TEST_F(PlruMagnifierTest, PresentMissesEveryOtherAccessForever)
{
    auto config = PlruMagnifier::makeConfig(machine_, 3, 400);
    PlruMagnifier magnifier(machine_, config,
                            PlruVariant::PresenceAbsence);
    magnifier.prime();
    machine_.warm(config.a, 1); // "present" input
    MagnifierResult result = magnifier.traverse();
    // 3 misses per 6-access period, indefinitely.
    EXPECT_NEAR(static_cast<double>(result.l1Misses),
                3.0 * config.repeats, 6.0);
    // A must still be resident at the end (never evicted).
    EXPECT_EQ(machine_.probeLevel(config.a), 1);
}

TEST_F(PlruMagnifierTest, AbsentHasNoMisses)
{
    auto config = PlruMagnifier::makeConfig(machine_, 3, 400);
    PlruMagnifier magnifier(machine_, config,
                            PlruVariant::PresenceAbsence);
    magnifier.prime(); // A absent
    MagnifierResult result = magnifier.traverse();
    EXPECT_LE(result.l1Misses, 2u);
}

TEST_F(PlruMagnifierTest, TimingGapScalesWithRepeats)
{
    Cycle previous_gap = 0;
    for (int repeats : {100, 200, 400, 800}) {
        auto config = PlruMagnifier::makeConfig(machine_, 3, repeats);
        PlruMagnifier magnifier(machine_, config,
                                PlruVariant::PresenceAbsence);
        magnifier.prime();
        const Cycle fast = magnifier.traverse().cycles;
        magnifier.prime();
        machine_.warm(config.a, 1);
        const Cycle slow = magnifier.traverse().cycles;
        ASSERT_GT(slow, fast);
        const Cycle gap = slow - fast;
        EXPECT_GT(gap, previous_gap)
            << "gap must grow with repeats (repeats=" << repeats << ")";
        previous_gap = gap;
    }
    // 800 repeats must exceed a 5 us browser tick (10000 cycles @2GHz).
    EXPECT_GT(previous_gap, 10000u);
}

TEST_F(PlruMagnifierTest, LoadBasedPrimingMatchesWarmPriming)
{
    auto config = PlruMagnifier::makeConfig(machine_, 3, 100);
    PlruMagnifier magnifier(machine_, config,
                            PlruVariant::PresenceAbsence);

    // Realistic attacker priming via loads only.
    for (Addr a : {config.a, config.b, config.c, config.d, config.e})
        machine_.flushLine(a);
    Program prime = magnifier.buildPrimeProgram();
    machine_.run(prime);
    machine_.settle();
    machine_.warm(config.a, 2);

    machine_.warm(config.a, 1);
    MagnifierResult result = magnifier.traverse();
    EXPECT_NEAR(static_cast<double>(result.l1Misses),
                3.0 * config.repeats, 6.0);
    EXPECT_EQ(machine_.probeLevel(config.a), 1);
}

TEST_F(PlruMagnifierTest, ReorderVariantDistinguishesInsertionOrder)
{
    auto config = PlruMagnifier::makeConfig(machine_, 3, 400);
    PlruMagnifier magnifier(machine_, config, PlruVariant::Reorder);

    // Case 1: A inserted before B's touch.
    magnifier.prime();
    machine_.warm(config.a, 1); // A arrives...
    machine_.warm(config.b, 1); // ...then B is touched
    const MagnifierResult a_first = magnifier.traverse();

    // Case 2: B touched before A arrives.
    magnifier.prime();
    machine_.warm(config.b, 1);
    machine_.warm(config.a, 1);
    const MagnifierResult b_first = magnifier.traverse();

    EXPECT_GT(a_first.l1Misses, static_cast<std::uint64_t>(
                                    config.repeats));
    EXPECT_LE(b_first.l1Misses, 8u)
        << "B-first must evict A and then stop missing (Fig. 4)";
    EXPECT_GT(a_first.cycles, b_first.cycles + 10000);
}

TEST_F(PlruMagnifierTest, EndToEndWithReorderRace)
{
    // Full section 6.2 pipeline: a non-transient reorder race feeds the
    // reorder magnifier; a slow expression must yield a slow traversal.
    auto config = PlruMagnifier::makeConfig(machine_, 3, 400);
    PlruMagnifier magnifier(machine_, config, PlruVariant::Reorder);

    ReorderRaceConfig race_config;
    race_config.addrA = config.a;
    race_config.addrB = config.b;
    race_config.refOp = Opcode::Add;
    race_config.refOps = 60;

    // Fast expression: measurement path finishes first -> A's fill
    // lands before B's touch -> misses forever.
    magnifier.prime();
    {
        ReorderRace race(machine_, race_config,
                         TargetExpr::opChain(Opcode::Add, 5));
        race.run();
        machine_.settle();
    }
    const Cycle fast_expr_cycles = magnifier.traverse().cycles;

    // Slow expression: B's touch lands first -> A evicted -> all hits.
    magnifier.prime();
    {
        ReorderRace race(machine_, race_config,
                         TargetExpr::opChain(Opcode::Add, 150));
        race.run();
        machine_.settle();
    }
    const Cycle slow_expr_cycles = magnifier.traverse().cycles;

    EXPECT_GT(fast_expr_cycles, slow_expr_cycles + 10000)
        << "insertion order must be magnified into a large timing gap";
}

TEST(PlruPattern, FinderRecoversTheW4Pattern)
{
    auto pattern = findPinPattern(4);
    ASSERT_TRUE(pattern.has_value());
    EXPECT_GE(pattern->missesPerPeriod, 1);
    EXPECT_LE(pattern->accesses.size(), 6u)
        << "W=4 admits a 6-access period (B,C,E,C,D,C)";
    EXPECT_TRUE(validatePinPattern(4, *pattern));
}

TEST(PlruPattern, FinderGeneralizesToOtherAssociativities)
{
    for (int assoc : {8, 16}) {
        auto pattern = findPinPattern(assoc, 20);
        ASSERT_TRUE(pattern.has_value()) << "assoc=" << assoc;
        EXPECT_TRUE(validatePinPattern(assoc, *pattern))
            << "assoc=" << assoc;
    }
}

TEST(PlruPattern, TwoWayCacheAdmitsNoPinPattern)
{
    // With W = 2, filling the only non-pinned way necessarily points
    // the tree at the pinned line, so no miss-bearing cycle can avoid
    // evicting it. The finder must prove this by exhaustion.
    EXPECT_FALSE(findPinPattern(2, 20).has_value());
}

TEST(PlruPattern, SetModelMatchesFig3Walkthrough)
{
    // Replay Fig. 3 exactly: ids 0=A 1=B 2=C 3=D 4=E.
    PlruSetModel model(4);
    // Fig. 3(1): [B C D E], candidate B.
    EXPECT_TRUE(model.access(1)); // B: miss (cold fill)
    EXPECT_TRUE(model.access(2)); // C
    EXPECT_TRUE(model.access(3)); // D
    EXPECT_TRUE(model.access(4)); // E
    EXPECT_FALSE(model.access(3)); // D again: hit, sets candidate B
    EXPECT_EQ(model.evictionCandidate(), 1);

    // (1)->(2): A fills over B, candidate becomes E.
    EXPECT_TRUE(model.access(0));
    EXPECT_EQ(model.render(), "[A C D E]");
    EXPECT_EQ(model.evictionCandidate(), 4);

    // P/A pattern (B,C,E,C,D,C): misses at B, E, D; A never evicted.
    EXPECT_TRUE(model.access(1));  // (2)->(3) B evicts E
    EXPECT_EQ(model.render(), "[A C D B]");
    EXPECT_FALSE(model.access(2)); // (3)->(4) C hit
    EXPECT_TRUE(model.access(4));  // (4)->(5) E evicts D
    EXPECT_EQ(model.render(), "[A C E B]");
    EXPECT_EQ(model.evictionCandidate(), 0) << "A is candidate at (5)";
    EXPECT_FALSE(model.access(2)); // (5)->(6) C hit protects A
    EXPECT_TRUE(model.access(3));  // (6)->(7) D evicts B
    EXPECT_EQ(model.render(), "[A C E D]");
    EXPECT_FALSE(model.access(2)); // (7)->(8) C hit
    EXPECT_TRUE(model.contains(0)) << "A survived the whole period";
}

TEST(ArbitraryMagnifier, DelayedInputCreatesCascade)
{
    // Deterministic per-set policy: the chain reaction is clean.
    MachineConfig mc = MachineConfig::randomL1Profile();
    mc.memory.l1.policy = PolicyKind::Lru;
    Machine machine(mc);
    ArbitraryMagnifierConfig config;
    config.numSets = 32;
    config.repeats = 40;
    ArbitraryMagnifier magnifier(machine, config);
    const Cycle delta = magnifier.measureDelta();
    // The cascade must dwarf the initial ~200-cycle input delay.
    EXPECT_GT(delta, 10000u);
}

TEST(ArbitraryMagnifier, DeltaGrowsWithRepeats)
{
    MachineConfig mc = MachineConfig::randomL1Profile();
    mc.memory.l1.policy = PolicyKind::Lru;
    Machine machine(mc);
    Cycle previous = 0;
    for (int repeats : {10, 40, 160}) {
        ArbitraryMagnifierConfig config;
        config.numSets = 32;
        config.repeats = repeats;
        ArbitraryMagnifier magnifier(machine, config);
        const Cycle delta = magnifier.measureDelta();
        EXPECT_GT(delta, previous * 2) << "repeats=" << repeats;
        previous = delta;
    }
    // 160 iterations must beat a 5 us browser tick by a wide margin.
    EXPECT_GT(previous, 100000u);
}

TEST(ArbitraryMagnifier, WithoutPrefetchingSaturates)
{
    MachineConfig mc = MachineConfig::randomL1Profile();
    mc.memory.l1.policy = PolicyKind::Lru;
    Machine machine(mc);
    ArbitraryMagnifierConfig config;
    config.numSets = 32;
    config.prefetch = false;

    config.repeats = 4;
    ArbitraryMagnifier small(machine, config);
    const Cycle small_delta = small.measureDelta();

    config.repeats = 64;
    ArbitraryMagnifier large(machine, config);
    const Cycle large_delta = large.measureDelta();

    // Without restoration the chain reaction dies after the first pass:
    // growth must be far less than proportional (16x repeats).
    EXPECT_LT(large_delta, small_delta * 8)
        << "prefetch-free magnification must be bounded by the set count";
}

TEST(ArbitraryMagnifier, WorksAcrossReplacementPolicies)
{
    // Section 6.3's point: any per-set policy is exploitable. Random
    // replacement is the weakest in our model: restoring prefetch
    // fills evict already-restored lines, so its magnification is
    // noise-bounded but still present (see EXPERIMENTS.md).
    for (PolicyKind policy : {PolicyKind::Random, PolicyKind::Lru,
                              PolicyKind::Nru, PolicyKind::Srrip}) {
        MachineConfig mc = MachineConfig::randomL1Profile();
        mc.memory.l1.policy = policy;
        Machine machine(mc);
        ArbitraryMagnifierConfig config;
        config.numSets = 32;
        config.repeats = 40;
        ArbitraryMagnifier magnifier(machine, config);
        const Cycle floor =
            policy == PolicyKind::Random ? 400u : 4000u;
        EXPECT_GT(magnifier.measureDelta(), floor)
            << "policy=" << policyKindName(policy);
    }
}

TEST(ArithMagnifier, DelayedInputCreatesContention)
{
    Machine machine;
    ArithMagnifierConfig config;
    config.stages = 500;
    ArithMagnifier magnifier(machine, config);
    const Cycle delta = magnifier.measureDelta();
    EXPECT_GT(delta, 500u)
        << "divider contention must amplify the initial delay";
}

TEST(ArithMagnifier, DeltaGrowsWithStages)
{
    Machine machine;
    Cycle previous = 0;
    for (int stages : {200, 800, 3200}) {
        ArithMagnifierConfig config;
        config.stages = stages;
        ArithMagnifier magnifier(machine, config);
        const Cycle delta = magnifier.measureDelta();
        EXPECT_GT(delta, previous) << "stages=" << stages;
        previous = delta;
    }
}

TEST(ArithMagnifier, UsesNoCacheBeyondTheHeads)
{
    Machine machine;
    ArithMagnifierConfig config;
    config.stages = 100;
    ArithMagnifier magnifier(machine, config);
    const auto &l1 = machine.hierarchy().l1();
    magnifier.run(true);
    const std::uint64_t misses_before = l1.stats().misses;
    magnifier.run(true);
    // Only sync + two head lines can miss per run.
    EXPECT_LE(l1.stats().misses - misses_before, 3u);
}

TEST(ArithMagnifier, TimerInterruptFreezesTheDelta)
{
    // Fig. 12's saturation: once the runtime crosses the interrupt
    // interval, the drain re-aligns the paths and the delta stops
    // growing.
    MachineConfig mc;
    mc.withInterrupts(0.05); // 100k cycles: small for test speed
    Machine machine(mc);

    ArithMagnifierConfig config;
    config.stages = 3200; // runtime spans several interrupt intervals
    ArithMagnifier capped(machine, config);
    const Cycle capped_delta = capped.measureDelta();

    Machine free_machine; // no interrupts
    ArithMagnifier free(free_machine, config);
    const Cycle free_delta = free.measureDelta();

    EXPECT_LT(capped_delta, free_delta)
        << "pipeline resets must limit stateless magnification";
}

} // namespace
} // namespace hr
