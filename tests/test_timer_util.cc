/**
 * @file
 * Coarse-timer model and utility-layer tests.
 */

#include <gtest/gtest.h>

#include <limits>

#include "timer/coarse_timer.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace hr
{
namespace
{

TEST(CoarseTimer, QuantizesToResolution)
{
    CoarseTimer timer; // 5 us at 2 GHz
    // 5 us = 10000 cycles.
    EXPECT_EQ(timer.nowNs(0), 0.0);
    EXPECT_EQ(timer.nowNs(9999), 0.0);
    EXPECT_EQ(timer.nowNs(10000), 5000.0);
    EXPECT_EQ(timer.nowNs(25000), 10000.0);
}

TEST(CoarseTimer, SubResolutionIsInvisible)
{
    CoarseTimer timer;
    // A 100ns event inside one tick: elapsed reads zero.
    EXPECT_EQ(timer.elapsedNs(1000, 1200), 0.0);
    EXPECT_FALSE(timer.distinguishable(1000, 1200));
    // 6 us apart: visible.
    EXPECT_TRUE(timer.distinguishable(0, 12000));
}

TEST(CoarseTimer, JitterFuzzesEdgesDeterministically)
{
    TimerConfig config;
    config.jitterNs = 1000;
    config.rngSeed = 4;
    CoarseTimer a(config), b(config);
    for (Cycle c : {5000u, 9990u, 10010u, 20000u})
        EXPECT_EQ(a.nowNs(c), b.nowNs(c));
}

TEST(CoarseTimer, VeryCoarsePreset)
{
    CoarseTimer timer(TimerConfig::veryCoarse());
    EXPECT_EQ(timer.nowNs(2'000'000), 0.0); // 1 ms < 100 ms tick
}

TEST(CoarseTimer, ZeroIntervalReadsExactlyZero)
{
    // Regression: elapsedNs drew independent jitter for start and end,
    // so a zero-length interval could read as a whole (positive or
    // negative) tick.
    TimerConfig config;
    config.jitterNs = 6000; // wider than the 5 us resolution
    config.rngSeed = 11;
    CoarseTimer timer(config);
    for (Cycle c : {0u, 1000u, 9999u, 10000u, 123456u})
        for (int rep = 0; rep < 20; ++rep)
            EXPECT_EQ(timer.elapsedNs(c, c), 0.0);
}

TEST(CoarseTimer, ElapsedNeverNegative)
{
    TimerConfig config;
    config.jitterNs = 6000;
    config.rngSeed = 12;
    CoarseTimer timer(config);
    Rng rng(13);
    for (int i = 0; i < 500; ++i) {
        const Cycle start = rng.below(1'000'000);
        const Cycle end = start + rng.below(30'000);
        EXPECT_GE(timer.elapsedNs(start, end), 0.0);
    }
}

TEST(Rng, DeterministicAndWellDistributed)
{
    Rng a(1), b(1);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());

    Rng rng(2);
    int buckets[10] = {};
    for (int i = 0; i < 10000; ++i)
        ++buckets[rng.below(10)];
    for (int count : buckets)
        EXPECT_NEAR(count, 1000, 150);
}

TEST(Rng, RangeAndChance)
{
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        const auto v = rng.range(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
    int heads = 0;
    for (int i = 0; i < 2000; ++i)
        heads += rng.chance(0.25);
    EXPECT_NEAR(heads, 500, 80);
}

TEST(Rng, ShuffleIsAPermutation)
{
    Rng rng(4);
    std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
    auto original = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, original);
}

TEST(SampleStats, MomentsAndPercentiles)
{
    SampleStats stats;
    for (double x : {1.0, 2.0, 3.0, 4.0, 5.0})
        stats.add(x);
    EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
    EXPECT_NEAR(stats.stddev(), 1.5811, 1e-3);
    EXPECT_DOUBLE_EQ(stats.min(), 1.0);
    EXPECT_DOUBLE_EQ(stats.max(), 5.0);
    EXPECT_DOUBLE_EQ(stats.median(), 3.0);
    EXPECT_DOUBLE_EQ(stats.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(stats.percentile(100), 5.0);
}

TEST(Histogram, BinningAndOverlap)
{
    Histogram a(0, 10, 10), b(0, 10, 10);
    for (int i = 0; i < 100; ++i) {
        a.add(2.5);
        b.add(7.5);
    }
    EXPECT_EQ(a.binCount(2), 100u);
    EXPECT_DOUBLE_EQ(a.overlap(b), 0.0);
    Histogram c(0, 10, 10);
    for (int i = 0; i < 100; ++i)
        c.add(2.5);
    EXPECT_DOUBLE_EQ(a.overlap(c), 1.0);
    // Out-of-range clamps.
    a.add(-5);
    a.add(50);
    EXPECT_EQ(a.binCount(0), 1u);
    EXPECT_EQ(a.binCount(9), 1u);
}

TEST(SampleStats, PercentileEdgesAreExactOrderStatistics)
{
    SampleStats empty;
    EXPECT_EQ(empty.percentile(50.0), 0.0);

    SampleStats one;
    one.add(42.5);
    EXPECT_EQ(one.percentile(0.0), 42.5);
    EXPECT_EQ(one.percentile(50.0), 42.5);
    EXPECT_EQ(one.percentile(100.0), 42.5);

    // Sizes where rank interpolation could drift by an ulp: p = 100
    // must return the recorded max exactly, p = 0 the min.
    SampleStats stats;
    for (int i = 0; i < 7; ++i)
        stats.add(1e15 + static_cast<double>(i) * 0.7);
    EXPECT_EQ(stats.percentile(100.0), stats.max());
    EXPECT_EQ(stats.percentile(0.0), stats.min());
    EXPECT_EQ(stats.percentile(120.0), stats.max()); // clamps
    EXPECT_EQ(stats.percentile(-5.0), stats.min());
}

TEST(SampleStats, DropsNonFiniteSamples)
{
    SampleStats stats;
    stats.add(1.0);
    stats.add(std::numeric_limits<double>::quiet_NaN());
    stats.add(std::numeric_limits<double>::infinity());
    stats.add(3.0);
    EXPECT_EQ(stats.count(), 2u);
    EXPECT_EQ(stats.dropped(), 2u);
    EXPECT_DOUBLE_EQ(stats.mean(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 3.0);
}

TEST(Histogram, DropsNonFiniteSamples)
{
    // Regression: a NaN sample cast to an int64 bin index is UB.
    Histogram hist(0, 10, 10);
    hist.add(5.0);
    hist.add(std::numeric_limits<double>::quiet_NaN());
    hist.add(-std::numeric_limits<double>::infinity());
    EXPECT_EQ(hist.total(), 1u);
    EXPECT_EQ(hist.dropped(), 2u);
    EXPECT_EQ(hist.binCount(5), 1u);
    EXPECT_DOUBLE_EQ(hist.binFraction(5), 1.0);

    // Finite but astronomically out-of-range values must clamp (the
    // double -> int64 cast of a huge bin index is UB too).
    hist.add(1e300);
    hist.add(-1e300);
    EXPECT_EQ(hist.total(), 3u);
    EXPECT_EQ(hist.binCount(9), 1u);
    EXPECT_EQ(hist.binCount(0), 1u);
}

TEST(SampleStats, JsonSummaryIncludesDropped)
{
    SampleStats stats;
    stats.add(1.0);
    stats.add(std::numeric_limits<double>::quiet_NaN());
    stats.add(3.0);
    const std::string json = stats.renderJson();
    EXPECT_NE(json.find("\"count\": 2"), std::string::npos) << json;
    EXPECT_NE(json.find("\"dropped\": 1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"mean\": 2"), std::string::npos) << json;
    EXPECT_NE(json.find("\"median\": "), std::string::npos) << json;
}

TEST(Histogram, EmittersIncludeDropped)
{
    Histogram hist(0, 10, 5);
    hist.add(5.0);
    hist.add(std::numeric_limits<double>::infinity());
    hist.add(std::numeric_limits<double>::quiet_NaN());
    const std::string json = hist.renderJson();
    EXPECT_NE(json.find("\"dropped\": 2"), std::string::npos) << json;
    const std::string csv = hist.renderCsv();
    EXPECT_NE(csv.find("# dropped: 2"), std::string::npos) << csv;
    // A clean histogram still reports the counter (schema stability).
    Histogram clean(0, 10, 5);
    clean.add(1.0);
    EXPECT_NE(clean.renderJson().find("\"dropped\": 0"),
              std::string::npos);
    EXPECT_NE(clean.renderCsv().find("# dropped: 0"),
              std::string::npos);
}

TEST(StatsHelpers, CorrelationAndSlope)
{
    std::vector<double> x{1, 2, 3, 4, 5};
    std::vector<double> y{2, 4, 6, 8, 10};
    EXPECT_NEAR(correlation(x, y), 1.0, 1e-9);
    EXPECT_NEAR(linearSlope(x, y), 2.0, 1e-9);
    std::vector<double> anti{10, 8, 6, 4, 2};
    EXPECT_NEAR(correlation(x, anti), -1.0, 1e-9);
}

TEST(Table, RendersAlignedRows)
{
    Table table({"a", "bbbb"});
    table.addRow({"1", "2"});
    table.addRow({"333", "4"});
    const std::string out = table.render();
    EXPECT_NE(out.find("a    bbbb"), std::string::npos);
    EXPECT_NE(out.find("333"), std::string::npos);
    EXPECT_THROW(table.addRow({"only-one"}), std::runtime_error);
}

TEST(Series, RecordsAndRenders)
{
    Series series("s", "x", "y");
    series.add(1, 10);
    series.add(2, 20);
    EXPECT_EQ(series.xs().size(), 2u);
    EXPECT_NE(series.render().find("# series: s"), std::string::npos);
}

} // namespace
} // namespace hr
