/**
 * @file
 * Replacement-policy unit tests and cross-policy property sweeps.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "cache/replacement.hh"
#include "util/rng.hh"

namespace hr
{
namespace
{

TEST(TreePlru, VictimFollowsPointers)
{
    TreePlruPolicy plru(4);
    // All bits 0: victim is way 0.
    EXPECT_EQ(plru.victim(), 0);
    plru.setBits({1, 0, 0});
    EXPECT_EQ(plru.victim(), 2);
    plru.setBits({1, 0, 1});
    EXPECT_EQ(plru.victim(), 3);
    plru.setBits({0, 1, 1});
    EXPECT_EQ(plru.victim(), 1);
}

TEST(TreePlru, TouchPointsAwayFromAccessedWay)
{
    TreePlruPolicy plru(4);
    plru.touch(0);
    // Root points right (away from 0), left node points right.
    EXPECT_EQ(plru.bits()[0], 1);
    EXPECT_EQ(plru.bits()[1], 1);
    EXPECT_NE(plru.victim(), 0);

    plru.touch(3);
    EXPECT_EQ(plru.bits()[0], 0);
    EXPECT_EQ(plru.bits()[2], 0);
    EXPECT_NE(plru.victim(), 3);
}

TEST(TreePlru, TouchedWayIsNeverTheImmediateVictim)
{
    for (int assoc : {2, 4, 8, 16, 32}) {
        TreePlruPolicy plru(assoc);
        Rng rng(assoc);
        for (int step = 0; step < 200; ++step) {
            const int way =
                static_cast<int>(rng.below(static_cast<std::uint64_t>(
                    assoc)));
            plru.touch(way);
            EXPECT_NE(plru.victim(), way) << "assoc=" << assoc;
        }
    }
}

TEST(TreePlru, RejectsNonPowerOfTwo)
{
    EXPECT_THROW(TreePlruPolicy(3), std::runtime_error);
    EXPECT_THROW(TreePlruPolicy(12), std::runtime_error);
    EXPECT_THROW(TreePlruPolicy(1), std::runtime_error);
}

TEST(TreePlru, Fig3InitialStateConstruction)
{
    // The Fig. 3(1) recipe: fill ways 0..3, then re-touch way 2.
    TreePlruPolicy plru(4);
    plru.touch(0);
    plru.touch(1);
    plru.touch(2);
    plru.touch(3);
    plru.touch(2);
    EXPECT_EQ(plru.bits(), (std::vector<std::uint8_t>{0, 0, 1}));
    EXPECT_EQ(plru.victim(), 0);
}

TEST(Lru, EvictsLeastRecentlyUsed)
{
    LruPolicy lru(4);
    for (int w = 0; w < 4; ++w)
        lru.touch(w);
    EXPECT_EQ(lru.victim(), 0);
    lru.touch(0);
    EXPECT_EQ(lru.victim(), 1);
    lru.touch(2);
    EXPECT_EQ(lru.victim(), 1);
    lru.touch(1);
    EXPECT_EQ(lru.victim(), 3);
}

TEST(Lru, InvalidateMakesWayVictim)
{
    LruPolicy lru(4);
    for (int w = 0; w < 4; ++w)
        lru.touch(w);
    lru.invalidate(2);
    EXPECT_EQ(lru.victim(), 2);
}

TEST(Random, IsDeterministicPerSeed)
{
    RandomPolicy a(8, Rng(77)), b(8, Rng(77)), c(8, Rng(78));
    std::vector<int> va, vb, vc;
    for (int i = 0; i < 32; ++i) {
        va.push_back(a.victim());
        vb.push_back(b.victim());
        vc.push_back(c.victim());
    }
    EXPECT_EQ(va, vb);
    EXPECT_NE(va, vc);
}

TEST(Random, CoversAllWays)
{
    RandomPolicy random(8, Rng(1));
    std::set<int> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(random.victim());
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Nru, EvictsNotRecentlyUsedFirst)
{
    NruPolicy nru(4);
    nru.touch(1);
    nru.touch(3);
    const int victim = nru.victim();
    EXPECT_TRUE(victim == 0 || victim == 2);
}

TEST(Nru, SaturationAgesOthers)
{
    NruPolicy nru(2);
    nru.touch(0);
    nru.touch(1); // saturates: everyone aged, way 1 re-marked
    EXPECT_EQ(nru.victim(), 0);
}

TEST(Srrip, HitsPromoteInsertionsAgeOut)
{
    SrripPolicy srrip(4);
    for (int w = 0; w < 4; ++w)
        srrip.touch(w); // fills at rrpv 2
    srrip.touch(0);     // hit: rrpv 0
    // Victim must not be the promoted way.
    EXPECT_NE(srrip.victim(), 0);
}

TEST(PolicyNames, RoundTrip)
{
    for (PolicyKind kind : {PolicyKind::TreePlru, PolicyKind::Lru,
                            PolicyKind::Random, PolicyKind::Nru,
                            PolicyKind::Srrip}) {
        EXPECT_EQ(policyKindFromName(policyKindName(kind)), kind);
    }
    EXPECT_THROW(policyKindFromName("fifo"), std::runtime_error);
}

// ---- property sweep across (policy, associativity) ------------------

using PolicyCase = std::tuple<PolicyKind, int>;

class PolicyProperties : public ::testing::TestWithParam<PolicyCase>
{
  protected:
    std::unique_ptr<ReplacementPolicy>
    make() const
    {
        auto [kind, assoc] = GetParam();
        return makePolicy(kind, assoc, 99);
    }
};

TEST_P(PolicyProperties, VictimAlwaysInRange)
{
    auto policy = make();
    Rng rng(3);
    for (int step = 0; step < 300; ++step) {
        const int victim = policy->victim();
        EXPECT_GE(victim, 0);
        EXPECT_LT(victim, policy->assoc());
        policy->touch(static_cast<int>(
            rng.below(static_cast<std::uint64_t>(policy->assoc()))));
    }
}

TEST_P(PolicyProperties, CloneBehavesIdentically)
{
    auto policy = make();
    Rng rng(5);
    for (int i = 0; i < 20; ++i)
        policy->touch(static_cast<int>(
            rng.below(static_cast<std::uint64_t>(policy->assoc()))));
    auto clone = policy->clone();
    // Same subsequent behaviour on the same access stream.
    Rng rng2(7);
    for (int i = 0; i < 50; ++i) {
        const int way = static_cast<int>(
            rng2.below(static_cast<std::uint64_t>(policy->assoc())));
        EXPECT_EQ(policy->victim(), clone->victim()) << "step " << i;
        policy->touch(way);
        clone->touch(way);
    }
}

TEST_P(PolicyProperties, StateStringIsStable)
{
    auto policy = make();
    policy->touch(0);
    EXPECT_EQ(policy->stateString(), policy->clone()->stateString());
    EXPECT_FALSE(policy->stateString().empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyProperties,
    ::testing::Combine(
        ::testing::Values(PolicyKind::TreePlru, PolicyKind::Lru,
                          PolicyKind::Random, PolicyKind::Nru,
                          PolicyKind::Srrip),
        ::testing::Values(2, 4, 8, 16)),
    [](const ::testing::TestParamInfo<PolicyCase> &info) {
        return policyKindName(std::get<0>(info.param)) + "_w" +
               std::to_string(std::get<1>(info.param));
    });

// LRU-specific invariant: an access stream of distinct lines evicts in
// insertion order (used implicitly by the eviction-set attack).
TEST(Lru, StreamEvictsInInsertionOrder)
{
    LruPolicy lru(4);
    for (int w = 0; w < 4; ++w)
        lru.touch(w);
    std::vector<int> evictions;
    for (int i = 0; i < 4; ++i) {
        const int victim = lru.victim();
        evictions.push_back(victim);
        lru.touch(victim); // "refill" the way
    }
    EXPECT_EQ(evictions, (std::vector<int>{0, 1, 2, 3}));
}

} // namespace
} // namespace hr
