/**
 * @file
 * ParamSet unknown-key validation and typo-suggestion tests, plus the
 * registry close-match behaviour they feed (`hr_bench run <typo>` and
 * `hr_bench sweep --grid <typo>` must fail usefully).
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "exp/registry.hh"
#include "gadgets/gadget_registry.hh"
#include "util/params.hh"

namespace hr
{
namespace
{

std::string
messageOf(const std::function<void()> &action)
{
    try {
        action();
    } catch (const std::runtime_error &e) {
        return e.what();
    }
    return "";
}

TEST(ParamSuggest, EditDistanceBasics)
{
    EXPECT_EQ(editDistance("", ""), 0u);
    EXPECT_EQ(editDistance("abc", "abc"), 0u);
    EXPECT_EQ(editDistance("abc", ""), 3u);
    EXPECT_EQ(editDistance("kitten", "sitting"), 3u);
    EXPECT_EQ(editDistance("slowops", "slow_ops"), 1u);
}

TEST(ParamSuggest, ClosestMatchPicksNearest)
{
    const std::vector<std::string> keys = {"slow_ops", "fast_ops",
                                           "counter_unroll"};
    EXPECT_EQ(closestMatch("slowops", keys), "slow_ops");
    EXPECT_EQ(closestMatch("fast_osp", keys), "fast_ops");
    // Nothing plausibly close: no suggestion.
    EXPECT_EQ(closestMatch("zzzzzzzzzz", keys), "");
}

TEST(ParamSuggest, RequireKeysListsValidAndSuggests)
{
    ParamSet params;
    params.set("slowops", "8");
    const std::string message = messageOf([&] {
        params.requireKeys({"slow_ops", "fast_ops"}, "gadget 'x'");
    });
    EXPECT_NE(message.find("unknown parameter 'slowops'"),
              std::string::npos);
    EXPECT_NE(message.find("did you mean 'slow_ops'?"),
              std::string::npos);
    EXPECT_NE(message.find("slow_ops, fast_ops"), std::string::npos);

    // Valid keys pass silently.
    ParamSet good;
    good.set("fast_ops", "4");
    EXPECT_NO_THROW(
        good.requireKeys({"slow_ops", "fast_ops"}, "gadget 'x'"));
}

TEST(ParamSuggest, GadgetMakeRejectsTypoWithSuggestion)
{
    ParamSet params;
    params.set("slowops", "8");
    const std::string message = messageOf([&] {
        GadgetRegistry::instance().make("smt_contention", params);
    });
    EXPECT_NE(message.find("did you mean 'slow_ops'?"),
              std::string::npos);
}

TEST(ParamSuggest, GadgetResolveSuggestsName)
{
    const std::string message = messageOf([&] {
        GadgetRegistry::instance().resolve("smt_contenton");
    });
    EXPECT_NE(message.find("did you mean 'smt_contention'?"),
              std::string::npos);
}

TEST(ParamSuggest, ScenarioResolveSuggestsName)
{
    // The registry is empty in this test binary unless scenarios were
    // linked; register nothing and just exercise the no-match path.
    const std::string message = messageOf(
        [&] { ScenarioRegistry::instance().resolve("no_such_name"); });
    EXPECT_NE(message.find("no scenario matches"), std::string::npos);
}

} // namespace
} // namespace hr
