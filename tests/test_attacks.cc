/**
 * @file
 * End-to-end attack tests (paper section 7): SpectreBack leaks a known
 * secret, the eviction-set generator builds congruent minimal sets
 * with only the Hacky-Racers timer, and the flush+reload repetition
 * study reproduces the Fig. 7 cancellation effect.
 */

#include <gtest/gtest.h>

#include "attacks/evset.hh"
#include "attacks/flush_reload.hh"
#include "attacks/spectreback.hh"
#include "detect/detector.hh"
#include "gadgets/arith_magnifier.hh"

namespace hr
{
namespace
{

TEST(SpectreBack, LeaksAKnownSecret)
{
    Machine machine(MachineConfig::plruProfile());
    SpectreBackConfig config;
    SpectreBack attack(machine, config);
    attack.calibrate();

    const std::vector<std::uint8_t> secret = {0xde, 0xad, 0xbe, 0xef};
    SpectreBackResult result = attack.leakSecret(secret);

    ASSERT_EQ(result.leaked.size(), secret.size());
    EXPECT_GE(result.accuracy, 0.88)
        << "paper reports > 88% accuracy";
    EXPECT_GT(result.kilobitsPerSecond, 0.5)
        << "leak rate should be in the kbit/s range";
}

TEST(SpectreBack, LeaksThroughACoarse100msClock)
{
    // The magnifier defeats even the coarsest timer ever shipped, by
    // scaling its repeat count (PLRU magnification is unbounded).
    MachineConfig mc = MachineConfig::plruProfile();
    Machine machine(mc);
    SpectreBackConfig config;
    config.timer.resolutionNs = 1e6; // 1 ms (full 100 ms is just slow)
    config.magnifierRepeats = 200000;
    SpectreBack attack(machine, config);
    attack.calibrate();

    const std::vector<std::uint8_t> secret = {0xa5};
    SpectreBackResult result = attack.leakSecret(secret);
    EXPECT_GE(result.accuracy, 0.99);
}

TEST(SpectreBack, BitsComeFromTransientExecutionOnly)
{
    // With training disabled (predictor never learns "body executes"),
    // the transient touch never fires... the cold predictor actually
    // predicts not-taken, which in this encoding *is* the body path, so
    // instead verify the opposite: the attack program architecturally
    // skips the body on out-of-bounds x (no secret access commits).
    Machine machine(MachineConfig::plruProfile());
    SpectreBackConfig config;
    SpectreBack attack(machine, config);
    attack.calibrate();
    const std::vector<std::uint8_t> secret = {0x5a};
    SpectreBackResult result = attack.leakSecret(secret);
    EXPECT_GE(result.accuracy, 0.88);
    // Ground truth: the leaked value came from cache state, not from an
    // architectural read (the program's committed loads never include
    // the secret word on the attack path — checked via counters being
    // branch-taken on every attack run, i.e. squashes occurred).
    EXPECT_GT(machine.core().counters().squashedInstrs, 0u);
}

class EvSetTest : public ::testing::Test
{
  protected:
    static MachineConfig
    smallLlcConfig()
    {
        MachineConfig mc = MachineConfig::plruProfile();
        // A small LLC keeps the test quick: 256 KB, 16-way, 256 sets.
        mc.memory.l3.numSets = 256;
        mc.memory.l3.assoc = 16;
        mc.memory.l3.policy = PolicyKind::Lru;
        return mc;
    }
};

TEST_F(EvSetTest, BuildsACongruentMinimalEvictionSet)
{
    Machine machine(smallLlcConfig());
    EvSetConfig config;
    EvictionSetGenerator generator(machine, config);

    const Addr target = 0x7654'0040;
    EvSetResult result = generator.build(target);

    EXPECT_TRUE(result.success);
    EXPECT_TRUE(result.groundTruthCongruent)
        << "every set member must map to the target's LLC set";
    EXPECT_EQ(result.set.size(),
              static_cast<std::size_t>(
                  machine.hierarchy().l3().config().assoc));
    EXPECT_GT(result.timerQueries, 0u);
}

TEST_F(EvSetTest, FinalSetFunctionallyEvictsTheTarget)
{
    Machine machine(smallLlcConfig());
    EvSetConfig config;
    config.seed = 7;
    EvictionSetGenerator generator(machine, config);

    const Addr target = 0x7654'0080;
    EvSetResult result = generator.build(target);
    ASSERT_TRUE(result.success);

    // Directly verify with ground truth: warm target, traverse the
    // set via warms, target must be gone from the LLC.
    machine.warm(target, 1);
    for (Addr addr : result.set)
        machine.warm(addr, 1);
    EXPECT_EQ(machine.probeLevel(target), 0)
        << "minimal eviction set must push the target out (inclusive "
           "LLC back-invalidates)";
}

TEST(FlushReload, PlainRepetitionCancelsTheSignal)
{
    Machine machine;
    FlushReloadConfig config;
    FlushReloadRepetition study(machine, config);
    FlushReloadOutcome plain = study.runPlain();

    // Same-address rounds: load slow, reload fast; diff-address: the
    // reverse. The totals must be nearly equal (Fig. 7a).
    const double same = static_cast<double>(plain.sameAddr.total());
    const double diff = static_cast<double>(plain.diffAddr.total());
    EXPECT_NEAR(same / diff, 1.0, 0.05)
        << "plain repetition must show (almost) no total signal";

    // And the per-stage anti-correlation must be visible.
    EXPECT_GT(plain.sameAddr.percent(1), plain.diffAddr.percent(1))
        << "victim-load stage slower in the same-address case";
    EXPECT_LT(plain.sameAddr.percent(2), plain.diffAddr.percent(2))
        << "reload stage faster in the same-address case";
}

TEST(FlushReload, RacingGadgetRestoresTheSignal)
{
    Machine machine;
    FlushReloadConfig config;
    FlushReloadRepetition study(machine, config);
    FlushReloadOutcome raced = study.runWithRacingGadget();

    // The load stage is now constant-time; the reload difference
    // survives into the total (Fig. 7b).
    const auto signal = raced.totalSignal();
    EXPECT_GT(signal, 0);
    // The signal should be roughly one cache-miss-delta per round.
    EXPECT_GT(signal, 100 * config.rounds);

    // Load-stage cycles nearly equal across cases (the paper's Fig. 7b
    // normalizes both cases to the same-address total).
    const double same_load =
        static_cast<double>(raced.sameAddr.cycles[1]);
    const double diff_load =
        static_cast<double>(raced.diffAddr.cycles[1]);
    EXPECT_NEAR(same_load / diff_load, 1.0, 0.05)
        << "racing envelope must make the load stage constant-time";
}

TEST(Detector, FlagsMagnifiersButNotBenignCode)
{
    Detector detector;

    // Benign: a dependent arithmetic mix with warm memory.
    {
        Machine machine;
        ProgramBuilder builder("benign");
        RegId r = builder.movImm(3);
        for (int i = 0; i < 200; ++i) {
            builder.chainOpImm(Opcode::Add, r, 7);
            builder.chainOpImm(Opcode::Mul, r, 3);
        }
        builder.halt();
        Program prog = builder.take();
        auto features = Detector::profile(machine, prog);
        EXPECT_FALSE(detector.classify(features).suspicious)
            << "benign arithmetic must not be flagged";
    }

    // PLRU magnifier traffic: an L1 miss storm.
    {
        Machine machine(MachineConfig::plruProfile());
        auto config = PlruMagnifier::makeConfig(machine, 3, 600);
        PlruMagnifier magnifier(machine, config,
                                PlruVariant::PresenceAbsence);
        magnifier.prime();
        machine.warm(config.a, 1);
        ProgramBuilder builder("storm");
        RegId r = builder.movImm(0);
        for (int rep = 0; rep < 600; ++rep)
            for (Addr addr : magnifier.pattern())
                r = builder.loadOrdered(addr, r);
        builder.halt();
        Program prog = builder.take();
        auto features = Detector::profile(machine, prog);
        EXPECT_TRUE(detector.classify(features).suspicious)
            << "magnifier miss storm should be visible to counters";
    }
}

} // namespace
} // namespace hr
