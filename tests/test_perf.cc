/**
 * @file
 * Perf-suite plumbing tests: JSON render/parse round trip and the
 * baseline comparison rules (tolerance, direction, host-speed
 * normalization). The timing loops themselves are exercised through
 * one cheap real suite.
 */

#include <gtest/gtest.h>

#include "exp/perf.hh"

namespace hr
{
namespace
{

PerfSuite
suite(const std::string &name, double value, const std::string &unit,
      bool higher, bool normalize)
{
    PerfSuite s;
    s.name = name;
    s.metric = "metric of " + name;
    s.unit = unit;
    s.value = value;
    s.wallSeconds = 0.1;
    s.iterations = 10;
    s.higherIsBetter = higher;
    s.normalize = normalize;
    return s;
}

std::vector<PerfSuite>
sampleSuites()
{
    return {
        suite("host_speed", 1e8, "/s", true, false),
        suite("core_throughput", 5e6, "/s", true, true),
        suite("trial_path_speedup", 12.0, "x", true, false),
        suite("fig08_quick_wall", 0.5, "s", false, true),
    };
}

TEST(Perf, JsonRoundTripPreservesSuites)
{
    const std::vector<PerfSuite> suites = sampleSuites();
    const std::string json = renderPerfJson(suites, true);
    const std::vector<PerfBaselineEntry> parsed =
        parsePerfBaseline(json);
    ASSERT_EQ(parsed.size(), suites.size());
    for (std::size_t i = 0; i < suites.size(); ++i) {
        EXPECT_EQ(parsed[i].name, suites[i].name);
        EXPECT_NEAR(parsed[i].value, suites[i].value,
                    suites[i].value * 1e-9);
        EXPECT_EQ(parsed[i].higherIsBetter, suites[i].higherIsBetter);
        EXPECT_EQ(parsed[i].normalize, suites[i].normalize);
    }
}

TEST(Perf, ParseRejectsDocumentsWithoutSuites)
{
    EXPECT_THROW(parsePerfBaseline("{\"schema\": \"hr_perf/v1\"}"),
                 std::exception);
}

TEST(Perf, CompareWithinTolerancePasses)
{
    const std::vector<PerfSuite> current = sampleSuites();
    const std::vector<PerfBaselineEntry> baseline =
        parsePerfBaseline(renderPerfJson(current, true));
    const PerfComparison cmp = comparePerf(current, baseline, 0.25);
    EXPECT_TRUE(cmp.passed) << cmp.report;
}

TEST(Perf, CompareFlagsRegressions)
{
    std::vector<PerfSuite> current = sampleSuites();
    const std::vector<PerfBaselineEntry> baseline =
        parsePerfBaseline(renderPerfJson(current, true));

    // Higher-is-better: a 50% drop fails at 25% tolerance.
    current[1].value *= 0.5;
    EXPECT_FALSE(comparePerf(current, baseline, 0.25).passed);
    current[1].value /= 0.5;

    // Lower-is-better: a 2x wall-time increase fails.
    current[3].value *= 2.0;
    const PerfComparison cmp = comparePerf(current, baseline, 0.25);
    EXPECT_FALSE(cmp.passed);
    EXPECT_NE(cmp.report.find("FAIL"), std::string::npos);
    EXPECT_NE(cmp.report.find("fig08_quick_wall"), std::string::npos);
}

TEST(Perf, CompareNormalizesByHostSpeed)
{
    std::vector<PerfSuite> current = sampleSuites();
    const std::vector<PerfBaselineEntry> baseline =
        parsePerfBaseline(renderPerfJson(current, true));

    // A host 2x slower: normalized throughput halves and wall time
    // doubles — both should still pass...
    current[0].value *= 0.5;
    current[1].value *= 0.5;
    current[3].value *= 2.0;
    EXPECT_TRUE(comparePerf(current, baseline, 0.25).passed);

    // ...but the unnormalized ratio suite gets no such slack.
    current[2].value *= 0.5;
    EXPECT_FALSE(comparePerf(current, baseline, 0.25).passed);
}

TEST(Perf, PerSuiteToleranceOverridesGlobal)
{
    // Batch suites carry a tighter tolerance than the CLI-wide 25%;
    // the override must round-trip through the JSON baseline and win
    // over the global value on both sides of the comparison.
    std::vector<PerfSuite> current = sampleSuites();
    current[1].tolerance = 0.10;
    const std::vector<PerfBaselineEntry> baseline =
        parsePerfBaseline(renderPerfJson(current, true));
    ASSERT_EQ(baseline[1].tolerance, 0.10);
    ASSERT_EQ(baseline[0].tolerance, 0.0); // unset stays global

    // A 15% drop passes the global 25% but fails the suite's 10%.
    current[1].value *= 0.85;
    EXPECT_FALSE(comparePerf(current, baseline, 0.25).passed);

    // The current run's tolerance wins even when the baseline entry
    // predates the override (e.g. a freshly tightened suite).
    std::vector<PerfSuite> loose = sampleSuites();
    const std::vector<PerfBaselineEntry> old_baseline =
        parsePerfBaseline(renderPerfJson(loose, true));
    std::vector<PerfSuite> tightened = sampleSuites();
    tightened[1].tolerance = 0.10;
    tightened[1].value *= 0.85;
    EXPECT_FALSE(comparePerf(tightened, old_baseline, 0.25).passed);

    // And within the override, it passes.
    tightened[1].value = sampleSuites()[1].value * 0.95;
    EXPECT_TRUE(comparePerf(tightened, old_baseline, 0.25).passed);
}

TEST(Perf, CompareIgnoresSuitesMissingFromBaseline)
{
    std::vector<PerfSuite> current = sampleSuites();
    current.push_back(suite("brand_new", 1.0, "/s", true, true));
    const std::vector<PerfBaselineEntry> baseline = parsePerfBaseline(
        renderPerfJson(sampleSuites(), true));
    const PerfComparison cmp = comparePerf(current, baseline, 0.25);
    EXPECT_TRUE(cmp.passed);
    EXPECT_NE(cmp.report.find("brand_new"), std::string::npos);
}

TEST(Perf, HostSpeedSuiteRuns)
{
    PerfOptions options;
    options.quick = true;
    options.only = {"host_speed"};
    const std::vector<PerfSuite> suites = runPerfSuites(options);
    ASSERT_EQ(suites.size(), 1u);
    EXPECT_EQ(suites.front().name, "host_speed");
    EXPECT_GT(suites.front().value, 0.0);
    EXPECT_GT(suites.front().iterations, 0);
}

} // namespace
} // namespace hr
