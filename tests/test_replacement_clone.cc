/**
 * @file
 * Replacement-policy clone() fidelity tests.
 *
 * The pin-pattern search explores replacement-state spaces by cloning
 * policies mid-sequence, so a clone must be a perfect fork: from the
 * moment of cloning, the clone and the original must produce identical
 * victim choices and identical stateString() renderings for any
 * subsequent access sequence (including Random, whose RNG stream state
 * must be copied, not re-seeded).
 */

#include <gtest/gtest.h>

#include "cache/replacement.hh"
#include "util/rng.hh"

namespace hr
{
namespace
{

constexpr PolicyKind kAllKinds[] = {PolicyKind::TreePlru, PolicyKind::Lru,
                                    PolicyKind::Random, PolicyKind::Nru,
                                    PolicyKind::Srrip};

/** Drive a policy with `ops` pseudo-random touch/victim/invalidate. */
void
churn(ReplacementPolicy &policy, Rng &rng, int ops)
{
    for (int i = 0; i < ops; ++i) {
        switch (rng.below(4)) {
          case 0:
          case 1:
            policy.touch(static_cast<int>(
                rng.below(static_cast<std::uint64_t>(policy.assoc()))));
            break;
          case 2:
            policy.victim();
            break;
          default:
            policy.invalidate(static_cast<int>(rng.below(
                static_cast<std::uint64_t>(policy.assoc()))));
            break;
        }
    }
}

TEST(ReplacementClone, ForkIsBitFaithfulForEveryPolicy)
{
    for (PolicyKind kind : kAllKinds) {
        for (int assoc : {4, 8, 16}) {
            SCOPED_TRACE(policyKindName(kind) + "/assoc " +
                         std::to_string(assoc));
            auto original = makePolicy(kind, assoc, 0xfeed);

            // Reach a non-trivial mid-sequence state before cloning.
            Rng warmup(0x1111);
            churn(*original, warmup, 200);

            auto clone = original->clone();
            ASSERT_NE(clone, nullptr);
            EXPECT_EQ(clone->assoc(), original->assoc());
            EXPECT_EQ(clone->stateString(), original->stateString());

            // Identical post-clone op streams must yield identical
            // victim and state sequences on both instances.
            Rng ops_a(0x2222), ops_b(0x2222);
            for (int step = 0; step < 300; ++step) {
                const int way_a = static_cast<int>(ops_a.below(
                    static_cast<std::uint64_t>(assoc)));
                const int way_b = static_cast<int>(ops_b.below(
                    static_cast<std::uint64_t>(assoc)));
                ASSERT_EQ(way_a, way_b);
                switch (step % 3) {
                  case 0:
                    original->touch(way_a);
                    clone->touch(way_b);
                    break;
                  case 1:
                    ASSERT_EQ(original->victim(), clone->victim())
                        << "diverged at step " << step;
                    break;
                  default:
                    original->invalidate(way_a);
                    clone->invalidate(way_b);
                    break;
                }
                ASSERT_EQ(original->stateString(), clone->stateString())
                    << "diverged at step " << step;
            }
        }
    }
}

/** A clone must be independent: mutating it leaves the original alone. */
TEST(ReplacementClone, ForkIsIndependent)
{
    for (PolicyKind kind : kAllKinds) {
        SCOPED_TRACE(policyKindName(kind));
        auto original = makePolicy(kind, 8, 0xbeef);
        Rng warmup(0x3333);
        churn(*original, warmup, 100);

        auto clone = original->clone();
        const std::string before = original->stateString();

        // Hammer only the clone.
        Rng hammer(0x4444);
        churn(*clone, hammer, 100);

        EXPECT_EQ(original->stateString(), before);
    }
}

/** Random's clone must copy RNG state, not restart the stream. */
TEST(ReplacementClone, RandomCloneContinuesTheRngStream)
{
    auto original = makePolicy(PolicyKind::Random, 8, 0xabcd);
    for (int i = 0; i < 37; ++i)
        original->victim(); // advance the stream mid-way

    auto clone = original->clone();
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(original->victim(), clone->victim()) << "draw " << i;
}

} // namespace
} // namespace hr
