/**
 * @file
 * Multi-context (SMT) machine tests.
 *
 * The contracts: co-run interleaving is fully deterministic (two
 * machines with the same configuration and programs produce
 * bit-identical results, independent of worker threads), per-context
 * counters and cache attribution isolate each hardware thread's work,
 * and a single-context machine's per-context result equals the
 * whole-core delta — the legacy contract.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/machine_pool.hh"
#include "exp/scenario.hh"
#include "isa/program.hh"
#include "sim/machine.hh"
#include "sim/noise.hh"
#include "sim/profiles.hh"

namespace hr
{
namespace
{

/** Load/ALU mix touching a couple of dozen lines. */
Program
makePrimary(int variant)
{
    ProgramBuilder builder("mc_primary" + std::to_string(variant));
    RegId acc = builder.movImm(variant + 1);
    for (int i = 0; i < 24; ++i) {
        RegId v = builder.loadAbsolute(0x50000 +
                                       static_cast<Addr>(i) * 0x1040);
        acc = builder.binop(Opcode::Add, acc, v);
        acc = builder.binopImm(Opcode::Mul, acc, 3);
    }
    builder.storeOrdered(0x88000, acc, acc);
    builder.halt();
    return builder.take();
}

/** Everything cheaply observable about a co-run. */
struct CoRunFingerprint
{
    Cycle now = 0;
    Cycle runCycles = 0;
    std::uint64_t primaryCommitted = 0;
    std::uint64_t noiseCommitted = 0;
    std::uint64_t primaryMisses = 0;
    std::uint64_t noiseMisses = 0;
    std::uint64_t l1MissesTotal = 0;
    std::int64_t storedWord = 0;

    bool
    operator==(const CoRunFingerprint &o) const
    {
        return now == o.now && runCycles == o.runCycles &&
               primaryCommitted == o.primaryCommitted &&
               noiseCommitted == o.noiseCommitted &&
               primaryMisses == o.primaryMisses &&
               noiseMisses == o.noiseMisses &&
               l1MissesTotal == o.l1MissesTotal &&
               storedWord == o.storedWord;
    }
};

CoRunFingerprint
coRunOnce(Machine &machine, int variant)
{
    const PerfCounters noise_before =
        machine.core().contextCounters(1);
    const ContextAccessStats prim_attr_before =
        machine.contextStats(0);
    const ContextAccessStats noise_attr_before =
        machine.contextStats(1);

    Program primary = makePrimary(variant);
    const RunResult result = machine.run(primary);

    CoRunFingerprint fp;
    fp.now = machine.now();
    fp.runCycles = result.cycles();
    fp.primaryCommitted = result.counters.committedInstrs;
    fp.noiseCommitted = (machine.core().contextCounters(1) -
                         noise_before)
                            .committedInstrs;
    fp.primaryMisses = (machine.contextStats(0) -
                        prim_attr_before)
                           .misses;
    fp.noiseMisses = (machine.contextStats(1) -
                      noise_attr_before)
                         .misses;
    fp.l1MissesTotal = machine.hierarchy().l1().stats().misses;
    fp.storedWord = machine.peek(0x88000);
    return fp;
}

TEST(MultiContext, SingleContextResultEqualsWholeCoreDelta)
{
    // The legacy contract: with one context, the per-context result
    // delta is the whole-core delta, bit for bit.
    Machine machine(machineConfigForProfile("default"));
    const PerfCounters before = machine.core().counters();
    Program prog = makePrimary(0);
    const RunResult result = machine.run(prog);
    const PerfCounters delta = machine.core().counters() - before;
    EXPECT_EQ(result.counters.cycles, delta.cycles);
    EXPECT_EQ(result.counters.committedInstrs, delta.committedInstrs);
    EXPECT_EQ(result.counters.noCommitCycles, delta.noCommitCycles);
    EXPECT_EQ(result.counters.mispredicts, delta.mispredicts);
    EXPECT_EQ(result.counters.robFullStalls, delta.robFullStalls);
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(result.counters.issuedByClass[i],
                  delta.issuedByClass[i]);
}

TEST(MultiContext, CoRunIsDeterministicAcrossMachines)
{
    for (const char *noise : {"pointer_chase", "stream_writer"}) {
        SCOPED_TRACE(noise);
        CoRunFingerprint fps[2];
        for (CoRunFingerprint &fp : fps) {
            Machine machine(machineConfigForProfile("smt2"));
            installNoise(machine, 1, noise);
            fp = coRunOnce(machine, 1);
        }
        EXPECT_TRUE(fps[0] == fps[1]);
        // The neighbor really ran, and its work is attributed to it.
        EXPECT_GT(fps[0].noiseCommitted, 0u);
        EXPECT_GT(fps[0].noiseMisses, 0u);
    }
}

TEST(MultiContext, AttributionSplitsTheSharedL1Stats)
{
    Machine machine(machineConfigForProfile("smt2"));
    installNoise(machine, 1, NoiseKind::PointerChase);
    const CoRunFingerprint fp = coRunOnce(machine, 0);
    machine.settle();
    // Every demand miss belongs to exactly one context.
    EXPECT_EQ(fp.primaryMisses + fp.noiseMisses, fp.l1MissesTotal);
    EXPECT_GT(fp.primaryMisses, 0u);
    EXPECT_GT(fp.noiseMisses, 0u);
}

TEST(MultiContext, SnapshotRestoreCoversAllContexts)
{
    Machine machine(machineConfigForProfile("smt2_plru"));
    installNoise(machine, 1, NoiseKind::PointerChase);
    coRunOnce(machine, 0); // warm everything, assign program ids
    Machine::Snapshot snap = machine.snapshot();

    const CoRunFingerprint first = coRunOnce(machine, 1);
    machine.restore(snap);
    const CoRunFingerprint replay = coRunOnce(machine, 1);
    EXPECT_TRUE(first == replay);
}

TEST(MultiContext, RunOnSecondaryContext)
{
    Machine machine(machineConfigForProfile("smt2"));
    const PerfCounters c0_before = machine.core().contextCounters(0);
    Program prog = makePrimary(0);
    const RunResult result = machine.run(1, prog);
    EXPECT_TRUE(result.halted);
    EXPECT_GT(result.counters.committedInstrs, 0u);
    // Context 0 stayed idle.
    EXPECT_EQ((machine.core().contextCounters(0) - c0_before)
                  .committedInstrs,
              0u);
    // The secondary context's accesses are attributed to it.
    EXPECT_GT(machine.contextStats(1).misses, 0u);
}

TEST(MultiContext, ExplicitCoRunnersInterleave)
{
    Machine machine(machineConfigForProfile("smt2"));
    Program primary = makePrimary(0);
    Program neighbor = makeNoiseProgram(machine,
                                        NoiseKind::StreamWriter);
    const RunResult result =
        machine.coRun(0, primary, {{1, &neighbor}});
    EXPECT_TRUE(result.halted);
    EXPECT_GT(machine.core().contextCounters(1).committedStores, 0u);
}

TEST(MultiContext, CoRunTrialsAreJobCountIndependent)
{
    // The engine contract extended to noisy co-runs: pooled trials fan
    // out over any worker count with bit-identical results.
    auto run_trials = [](int jobs) {
        MachinePool pool(machineConfigForProfile("smt2_plru"),
                         [](Machine &machine) {
                             installNoise(machine, 1,
                                          NoiseKind::PointerChase);
                         });
        ScenarioContext ctx(8, jobs, 42, "smt2_plru", ParamSet(), {});
        return ctx.mapTrials([&](int index, Rng &) {
            auto lease = pool.lease();
            return coRunOnce(lease.machine(), index % 3);
        });
    };
    const auto serial = run_trials(1);
    const auto parallel = run_trials(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_TRUE(serial[i] == parallel[i]) << "trial " << i;
}

TEST(MultiContext, BackgroundsSurviveAcrossRunsAndRestart)
{
    // Two identical runs against a registered background give the
    // same neighbor interleaving both times (the background restarts
    // fresh each run) apart from persistent-cache warmup effects.
    Machine a(machineConfigForProfile("smt2"));
    installNoise(a, 1, NoiseKind::StreamWriter);
    Machine b(machineConfigForProfile("smt2"));
    installNoise(b, 1, NoiseKind::StreamWriter);
    coRunOnce(a, 0);
    coRunOnce(b, 0);
    const CoRunFingerprint second_a = coRunOnce(a, 0);
    const CoRunFingerprint second_b = coRunOnce(b, 0);
    EXPECT_TRUE(second_a == second_b);
}

} // namespace
} // namespace hr
